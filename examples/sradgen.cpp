// SRAdGen: the paper's mapping tool as a small command-line utility.
//
//   sradgen 5 1 4 0 5 1 4 0 3 7 6 2 3 7 6 2
//   sradgen --trace access.trace          (see seq/trace_io.hpp for the format;
//                                          maps RowAS and ColAS separately)
//
// Accepts a one-dimensional address sequence on the command line (or runs a
// built-in demo set without arguments), runs the Section-5 mapping
// procedure, prints the Table-2 style parameters, and — when mapping
// succeeds — emits synthesizable behavioral VHDL plus a structural Verilog
// netlist of the generator. On failure it prints the restriction diagnostic
// and retries with the multi-counter extension.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "core/multicounter.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "seq/trace_io.hpp"

namespace {

using namespace addm;

void process(const std::string& name, const std::vector<std::uint32_t>& seq,
             bool emit_hdl) {
  std::printf("---- %s ----\ninput:", name.c_str());
  for (auto a : seq) std::printf(" %u", a);
  std::printf("\n\n");

  const auto result = core::map_sequence(seq);
  std::printf("%s", result.params.to_string().c_str());
  if (result.ok()) {
    std::printf("=> mapped onto %zu shift register(s), %zu flip-flops\n\n",
                result.config->num_registers(), result.config->num_flipflops());
    if (emit_hdl) {
      std::printf("%s\n", codegen::srag_to_behavioral_vhdl(*result.config, "srag").c_str());
      const auto nl = core::elaborate_srag(*result.config);
      std::printf("%s\n", codegen::to_verilog(nl, "srag").c_str());
    }
    return;
  }

  std::printf("=> not mappable: %s (%s)\n", to_string(*result.failure).c_str(),
              result.detail.c_str());
  const auto multi = core::map_sequence_multicounter(seq);
  if (multi.ok()) {
    std::printf("=> multi-counter extension maps it: pass counts");
    for (auto pc : multi.config->pass_counts) std::printf(" %u", pc);
    std::printf("\n\n");
  } else {
    std::printf("=> multi-counter extension cannot map it either (%s)\n\n",
                multi.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--trace") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    try {
      const auto trace = seq::read_trace(in);
      std::printf("trace '%s': %zu accesses over %zux%zu\n\n", trace.name().c_str(),
                  trace.length(), trace.geometry().width, trace.geometry().height);
      process("row address sequence", trace.rows(), /*emit_hdl=*/true);
      process("column address sequence", trace.cols(), /*emit_hdl=*/true);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (argc > 1) {
    std::vector<std::uint32_t> seq;
    for (int i = 1; i < argc; ++i)
      seq.push_back(static_cast<std::uint32_t>(std::strtoul(argv[i], nullptr, 10)));
    process("command line sequence", seq, /*emit_hdl=*/true);
    return 0;
  }

  // Demo set: every example sequence from Section 4/5 of the paper.
  process("paper fig5, dC=2", {5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2}, true);
  process("paper DivCnt violation", {5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2},
          false);
  process("paper fig5, pC=8", {5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2}, false);
  process("paper PassCnt violation",
          {5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2}, false);
  process("paper grouping failure", {1, 2, 3, 4, 3, 2, 1, 4}, false);
  return 0;
}
