// Image zoom-by-two pipeline: the "zoombytow" workload of Table 3.
//
// A source image sits in the ADDM; the zoom engine reads source pixel
// (r/2, c/2) for every output pixel in raster order. Each source pixel is
// read four times — the SRAG absorbs the column repetition in DivCnt and the
// row repetition in the run length, so the whole 4x-oversampled read needs
// no address arithmetic at all. The demo runs the gate-level system, checks
// the upscaled image, and prints the mapping parameters that make it work.
#include <cstdio>
#include <vector>

#include "core/srag_mapper.hpp"
#include "memory/system.hpp"
#include "seq/workloads.hpp"

int main() {
  using namespace addm;
  constexpr std::size_t kSrc = 16;  // source image 16x16 -> output 32x32

  const auto write_trace = seq::incremental({kSrc, kSrc});
  const auto read_trace = seq::zoom_by_two_read({kSrc, kSrc});
  std::printf("source %zux%zu -> output %zux%zu (%zu reads)\n\n", kSrc, kSrc, 2 * kSrc,
              2 * kSrc, read_trace.length());

  // Show why this maps: the row sequence repeats each source row 2*2*kSrc
  // times, the column sequence each source column twice.
  const auto rows = read_trace.rows();
  const auto rm = core::map_sequence(rows, kSrc);
  const auto cols = read_trace.cols();
  const auto cm = core::map_sequence(cols, kSrc);
  if (!rm.ok() || !cm.ok()) {
    std::printf("unexpected mapping failure\n");
    return 1;
  }
  std::printf("row mapping: dC=%u pC=%u (%zu flip-flops)\n", rm.params.dC, rm.params.pC,
              rm.config->num_flipflops());
  std::printf("col mapping: dC=%u pC=%u (%zu flip-flops)\n\n", cm.params.dC, cm.params.pC,
              cm.config->num_flipflops());

  // Gate-level run: write a gradient image, read the zoomed stream.
  memory::AddmSystem system(write_trace, read_trace);
  std::vector<std::uint32_t> src(write_trace.length());
  for (std::size_t r = 0; r < kSrc; ++r)
    for (std::size_t c = 0; c < kSrc; ++c) src[r * kSrc + c] = static_cast<std::uint32_t>(16 * r + c);

  const auto out = system.run(src);

  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < 2 * kSrc; ++r)
    for (std::size_t c = 0; c < 2 * kSrc; ++c)
      if (out[r * 2 * kSrc + c] != src[(r / 2) * kSrc + c / 2]) ++mismatches;

  std::printf("zoomed stream verified: %zu mismatches, %zu select violations\n",
              mismatches, system.violation_count());

  // A corner of the output, to see the pixel duplication.
  std::printf("\noutput corner (4x8):\n");
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 8; ++c) std::printf("%4u", out[r * 2 * kSrc + c]);
    std::printf("\n");
  }
  return mismatches == 0 ? 0 : 1;
}
