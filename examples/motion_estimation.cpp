// Motion-estimation system demo: the full Figure-2 ADDM pipeline.
//
// A producer writes a video frame into the ADDM in raster order through one
// gate-level SRAG pair; the block-matching consumer reads it in macroblock
// order through another. The demo verifies every pixel against a
// conventional-RAM reference, confirms the two-hot contract held on every
// access, and prints the area/delay of both generators next to the CntAG
// baseline.
#include <cstdio>
#include <numeric>

#include "core/cntag.hpp"
#include "core/metrics.hpp"
#include "memory/conventional_ram.hpp"
#include "memory/system.hpp"
#include "seq/workloads.hpp"
#include "tech/library.hpp"

int main() {
  using namespace addm;
  constexpr std::size_t kDim = 32;

  seq::MotionEstimationParams p;
  p.img_width = p.img_height = kDim;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto write_trace = seq::incremental({kDim, kDim});
  const auto read_trace = seq::motion_estimation_read(p);
  std::printf("frame %zux%zu, macroblocks %zux%zu: %zu writes, %zu reads\n", kDim, kDim,
              p.mb_width, p.mb_height, write_trace.length(), read_trace.length());

  // Build the system (maps both traces, elaborates gate-level SRAG pairs).
  memory::AddmSystem system(write_trace, read_trace);

  // A synthetic frame: pixel value = linear address (easy to verify).
  std::vector<std::uint32_t> frame(write_trace.length());
  std::iota(frame.begin(), frame.end(), 0);

  const auto stream = system.run(frame);

  // Verify against the conventional RAM reference.
  memory::ConventionalRam ref({kDim, kDim});
  for (std::size_t k = 0; k < write_trace.length(); ++k)
    ref.write(write_trace.linear()[k], frame[k]);
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < read_trace.length(); ++k)
    if (stream[k] != ref.read(read_trace.linear()[k])) ++mismatches;

  std::printf("consumer stream: %zu accesses, %zu mismatches, %zu select violations\n",
              stream.size(), mismatches, system.violation_count());

  // Cost of the generators involved.
  const auto lib = tech::Library::generic_180nm();
  auto read_build = core::build_srag_2d_for_trace(read_trace);
  const auto srag = core::measure_netlist(read_build.netlist, lib);
  auto cnt_nl = core::elaborate_cntag(read_trace, {});
  const auto cnt = core::measure_netlist(cnt_nl, lib);
  std::printf("\nread generator cost (%zux%zu):\n", kDim, kDim);
  std::printf("  SRAG : %5zu cells, %7.0f units, crit %.3f ns\n", srag.cells,
              srag.area_units, srag.delay_ns);
  std::printf("  CntAG: %5zu cells, %7.0f units, crit %.3f ns (full netlist)\n",
              cnt.cells, cnt.area_units, cnt.delay_ns);

  return (mismatches == 0 && system.violation_count() == 0) ? 0 : 1;
}
