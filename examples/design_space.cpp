// Design-space exploration demo — the paper's stated "final goal": given an
// access pattern, survey every applicable address-generator architecture and
// report the area/delay landscape with its Pareto front.
//
// Runs the explorer over four access patterns (FIFO, block motion
// estimation, DCT transpose-within-block, strided) at 16x16 and shows how
// architecture feasibility and the Pareto front shift with pattern
// regularity.
#include <cstdio>

#include "core/explorer.hpp"
#include "seq/workloads.hpp"

int main() {
  using namespace addm;
  constexpr std::size_t kDim = 16;

  seq::MotionEstimationParams p;
  p.img_width = p.img_height = kDim;
  p.mb_width = p.mb_height = 8;
  p.m = 0;

  struct Scenario {
    const char* title;
    seq::AddressTrace trace;
  };
  const Scenario scenarios[] = {
      {"FIFO / incremental", seq::incremental({kDim, kDim})},
      {"block motion estimation (8x8 macroblocks)", seq::motion_estimation_read(p)},
      {"separable DCT (column read within 8x8 blocks)",
       seq::dct_block_column_read({kDim, kDim}, 8)},
      {"strided (stride 3) — irregular for SRAG", seq::strided({kDim, kDim}, 3)},
  };

  core::ExploreOptions opt;
  opt.max_fsm_states = 256;  // keep the symbolic FSM candidates affordable

  for (const auto& s : scenarios) {
    std::printf("== %s (%zu accesses over %zux%zu) ==\n", s.title, s.trace.length(), kDim,
                kDim);
    const auto points = core::explore_generators(s.trace, opt);
    std::printf("%s\n", core::format_exploration(points).c_str());
  }
  return 0;
}
