// Batch exploration demo: run the design-space explorer over the whole
// built-in workload suite at two geometries, concurrently, and print the
// aggregated CSV report plus cache statistics.
//
// This is the library-level equivalent of `tools/addm_explore --suite 2`.
#include <cstdio>

#include "core/batch_explorer.hpp"
#include "seq/workloads.hpp"

int main() {
  using namespace addm;

  const auto traces = seq::scaled_suite({8, 8}, 2);

  core::BatchOptions opt;
  opt.threads = 0;  // hardware concurrency
  core::BatchExplorer explorer(opt);
  const core::BatchResult result = explorer.run(traces);

  std::fputs(core::batch_report_csv(result).c_str(), stdout);
  std::fprintf(stderr,
               "\n%zu traces, %zu evaluated, %zu served from cache, %.3fs\n",
               result.traces, result.evaluations, result.cache_hits,
               result.wall_seconds);

  // Second run: everything is a cache hit.
  const core::BatchResult again = explorer.run(traces);
  std::fprintf(stderr, "re-run: %zu evaluated, %zu cache hits, %.3fs\n",
               again.evaluations, again.cache_hits, again.wall_seconds);
  return 0;
}
