// Quickstart: map the paper's Table-1 motion-estimation sequence onto the
// SRAG architecture, inspect the mapping parameters (Table 2), elaborate the
// generator to gates, and simulate it cycle by cycle against the sequence.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <fstream>

#include "core/metrics.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "tech/library.hpp"

int main() {
  using namespace addm;

  // The paper's running example: 4x4 image, 2x2 macroblocks, m=0 (Figure 7).
  seq::MotionEstimationParams params;
  params.img_width = params.img_height = 4;
  params.mb_width = params.mb_height = 2;
  params.m = 0;
  const seq::AddressTrace trace = seq::motion_estimation_read(params);

  std::printf("LinAS:");
  for (auto a : trace.linear()) std::printf(" %u", a);
  std::printf("\n");

  // Map the row address sequence (Section 5).
  const auto rows = trace.rows();
  const core::MapResult row_map = core::map_sequence(rows, 4);
  if (!row_map.ok()) {
    std::printf("row mapping failed: %s\n", row_map.detail.c_str());
    return 1;
  }
  std::printf("\nRow-sequence mapping parameters (cf. Table 2):\n%s\n",
              row_map.params.to_string().c_str());

  const auto cols = trace.cols();
  const core::MapResult col_map = core::map_sequence(cols, 4);
  if (!col_map.ok()) {
    std::printf("column mapping failed: %s\n", col_map.detail.c_str());
    return 1;
  }

  // Elaborate the full two-hot generator and measure it.
  netlist::Netlist nl = core::elaborate_srag_2d(*row_map.config, *col_map.config);
  const auto lib = tech::Library::generic_180nm();
  netlist::Netlist measured = nl;  // measure a buffered copy, simulate the original
  const auto metrics = core::measure_netlist(measured, lib);
  std::printf("SRAG generator: %zu cells, area %.0f units, critical path %.3f ns\n\n",
              metrics.cells, metrics.area_units, metrics.delay_ns);

  // Simulate the gate-level generator and check it replays the trace,
  // recording a waveform along the way.
  sim::Simulator s(nl);
  sim::VcdRecorder vcd(s, "srag_2d");
  s.set("reset", true);
  s.set("next", false);
  s.step();
  vcd.sample();
  s.set("reset", false);
  s.set("next", true);
  bool ok = true;
  for (std::size_t k = 0; k < trace.length(); ++k) {
    const auto row = s.hot_index("rs");
    const auto col = s.hot_index("cs");
    if (!row || !col) {
      std::printf("access %zu: select lines not two-hot!\n", k);
      return 1;
    }
    const std::uint32_t addr =
        static_cast<std::uint32_t>(*row * trace.geometry().width + *col);
    if (addr != trace.linear()[k]) {
      std::printf("access %zu: generator gave %u, expected %u\n", k, addr,
                  trace.linear()[k]);
      ok = false;
    }
    s.step();
    vcd.sample();
  }
  std::printf("gate-level replay of all %zu accesses: %s\n", trace.length(),
              ok ? "OK" : "MISMATCH");

  std::ofstream("quickstart.vcd") << vcd.str();
  std::printf("waveform written to quickstart.vcd (%zu samples)\n", vcd.samples());
  return ok ? 0 : 1;
}
