#!/usr/bin/env bash
# Docs/CLI drift check: fails if README.md or docs/*.md reference a
# `--flag` that none of the addm tools' --help output prints.  Keeps the
# CLI reference tables honest — a renamed or removed flag must be fixed in
# the docs in the same commit.
#
# Usage: scripts/check_docs_flags.sh BUILD_DIR
set -euo pipefail

bindir=${1:?usage: check_docs_flags.sh BUILD_DIR (containing the addm tools)}
repo=$(cd "$(dirname "$0")/.." && pwd)

help_flags=$(
  for tool in addm_explore addm_trace_gen addm_trace_import addm_merge addm_cache addm_serve addm_client; do
    "$bindir/$tool" --help 2>&1
  done | grep -oE -- '--[a-z][a-z0-9-]*' | sort -u
)

# Non-addm flags the docs legitimately mention (cmake/ctest invocations).
allow='--build --output-on-failure --test-dir'

doc_flags=$(cat "$repo/README.md" "$repo"/docs/*.md |
  grep -oE -- '--[a-z][a-z0-9-]*' | sort -u)

status=0
for flag in $doc_flags; do
  if grep -qxF -- "$flag" <<<"$help_flags"; then continue; fi
  case " $allow " in
    *" $flag "*) continue ;;
  esac
  echo "error: $flag is referenced in README/docs but no tool's --help prints it" >&2
  status=1
done

if [ "$status" -eq 0 ]; then
  echo "docs flags OK: every documented flag appears in a tool's --help"
fi
exit $status
