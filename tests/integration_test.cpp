// Cross-module integration tests: gate-level SFM against the behavioral
// FIFO, buffered netlists against unbuffered ones, structural claims from the
// paper asserted over the measurement pipeline, and failure injection into
// the ADDM legality checker.
#include <gtest/gtest.h>

#include <numeric>

#include "core/cntag.hpp"
#include "core/metrics.hpp"
#include "core/sfm.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "memory/addm_array.hpp"
#include "memory/sfm_memory.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "tech/buffering.hpp"
#include "tech/library.hpp"

namespace addm {
namespace {

TEST(Integration, SfmNetlistTracksBehavioralFifo) {
  constexpr std::size_t kCells = 6;
  netlist::Netlist nl = core::elaborate_sfm(kCells);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next_write", false);
  s.set("next_read", false);
  s.step();
  s.set("reset", false);

  memory::SfmMemory fifo(kCells);
  std::vector<std::uint32_t> cells(kCells, 0);

  // Interleave pushes and pops; the select lines must always point at the
  // behavioral head/tail.
  const int plan[] = {1, 1, 1, -1, 1, -1, -1, 1, 1, -1, 1, -1, -1, -1};
  std::uint32_t next_val = 10;
  for (int op : plan) {
    ASSERT_EQ(s.hot_index("wsel"), fifo.tail());
    ASSERT_EQ(s.hot_index("rsel"), fifo.head());
    if (op > 0) {
      cells[fifo.tail()] = next_val;
      fifo.push(next_val++);
      s.set("next_write", true);
      s.set("next_read", false);
    } else {
      const auto rsel = s.hot_index("rsel");
      ASSERT_TRUE(rsel.has_value());
      EXPECT_EQ(cells[*rsel], fifo.pop());
      s.set("next_write", false);
      s.set("next_read", true);
    }
    s.step();
  }
}

TEST(Integration, BufferedSragStillReplaysTrace) {
  // Buffer insertion must not change generator behaviour.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 16;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto trace = seq::motion_estimation_read(p);
  auto build = core::build_srag_2d_for_trace(trace);
  tech::insert_buffers(build.netlist, 4);  // aggressive buffering
  ASSERT_TRUE(build.netlist.validate().empty());

  sim::Simulator s(build.netlist);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  for (std::size_t k = 0; k < trace.length(); ++k) {
    const auto row = s.hot_index("rs");
    const auto col = s.hot_index("cs");
    ASSERT_TRUE(row && col) << k;
    EXPECT_EQ(*row * 16 + *col, trace.linear()[k]) << k;
    s.step();
  }
}

TEST(Integration, MeasurementPipelineRespectsFanoutBound) {
  auto build = core::build_srag_2d_for_trace(seq::incremental({32, 32}));
  const auto lib = tech::Library::generic_180nm();
  (void)core::measure_netlist(build.netlist, lib, 8);
  const auto fo = build.netlist.fanout_counts();
  for (netlist::NetId n = 2; n < build.netlist.num_nets(); ++n)
    EXPECT_LE(fo[n], 8u) << "net " << n;
}

TEST(Integration, SragDelayRoughlyFlatAcrossArraySizes) {
  // Paper: "The delay through the SRAGs increases slowly with array size."
  const auto lib = tech::Library::generic_180nm();
  auto delay_at = [&](std::size_t dim) {
    seq::MotionEstimationParams p;
    p.img_width = p.img_height = dim;
    p.mb_width = p.mb_height = 8;
    p.m = 0;
    auto b = core::build_srag_2d_for_trace(seq::motion_estimation_read(p));
    return core::measure_netlist(b.netlist, lib).delay_ns;
  };
  const double d16 = delay_at(16);
  const double d64 = delay_at(64);
  EXPECT_LT(d64, 2.0 * d16);  // grows, but far from linearly
}

TEST(Integration, CntAgDelayGrowsWithArraySize) {
  // Paper: "the delay in the CntAG increases much faster with array size"
  // because the decoders come to dominate.
  const auto lib = tech::Library::generic_180nm();
  auto delay_at = [&](std::size_t dim) {
    auto nl = core::elaborate_cntag(seq::incremental({dim, dim}), {});
    return core::measure_netlist(nl, lib).delay_ns;
  };
  EXPECT_LT(delay_at(16), delay_at(128));
}

TEST(Integration, TwoHotCheaperThanOneHot) {
  // Section 4: two-hot (row+col rings) needs W+H flip-flops; one-hot (SFM
  // style over the whole array) needs W*H.
  const auto trace = seq::incremental({16, 16});
  auto srag = core::build_srag_2d_for_trace(trace);
  const auto lib = tech::Library::generic_180nm();
  const auto two_hot = core::measure_netlist(srag.netlist, lib);

  netlist::Netlist one_hot_nl = core::elaborate_sfm(16 * 16);
  const auto one_hot = core::measure_netlist(one_hot_nl, lib);
  EXPECT_LT(two_hot.area_units, one_hot.area_units / 2);
}

TEST(Integration, CorruptedSelectsAreDetected) {
  // Failure injection: drive the array with raw (illegal) select patterns
  // mimicking a double-token fault and confirm detection + corruption.
  memory::AddmArray array({4, 4});
  std::vector<std::uint8_t> rs(4, 0), cs(4, 0);
  rs[0] = 1;
  cs[1] = 1;
  array.write(rs, cs, 5);
  EXPECT_EQ(array.violation_count(), 0u);
  rs[2] = 1;  // double row select fault
  array.write(rs, cs, 9);
  EXPECT_EQ(array.violation_count(), 1u);
  EXPECT_EQ(array.cell(0, 1), 9u);
  EXPECT_EQ(array.cell(2, 1), 9u);
}

TEST(Integration, MapperConfigMatchesElaboratedFlopCount) {
  const auto trace = seq::dct_block_column_read({16, 16}, 8);
  auto build = core::build_srag_2d_for_trace(trace);
  const auto stats = build.netlist.stats();
  // All token flip-flops present (plus counters).
  EXPECT_GE(stats.num_seq, build.row.num_flipflops() + build.col.num_flipflops());
}

}  // namespace
}  // namespace addm
