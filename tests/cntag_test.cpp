// Tests for the CntAG baseline: the index counter + transform must present
// the right binary addresses, the decoders the right one-hot selects, across
// workloads, decoder styles and carry styles.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cntag.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "tech/library.hpp"
#include "tech/sta.hpp"

namespace addm::core {
namespace {

seq::AddressTrace workload(int kind, std::size_t dim) {
  using namespace seq;
  const ArrayGeometry g{dim, dim};
  switch (kind) {
    case 0: return incremental(g);
    case 1: {
      MotionEstimationParams p;
      p.img_width = p.img_height = dim;
      p.mb_width = p.mb_height = 4;
      p.m = 0;
      return motion_estimation_read(p);
    }
    case 2: return dct_block_column_read(g, 4);
    case 3: return transpose_read(g);
    default: return strided(g, 3);  // irregular: exercises real table logic
  }
}

class CntAgReplayTest : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CntAgReplayTest, WalksTraceWithCorrectSelects) {
  const auto [kind, dim] = GetParam();
  const auto trace = workload(kind, dim);

  CntAgOptions opt;
  opt.decoder_style = synth::DecoderStyle::Flat;
  netlist::Netlist nl = elaborate_cntag(trace, opt);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  // Walk the whole trace plus wrap-around back to the start.
  for (std::size_t k = 0; k < trace.length() + 3; ++k) {
    const std::uint32_t a = trace.linear()[k % trace.length()];
    EXPECT_EQ(s.get_bus("ra"), trace.row_of(a)) << "access " << k;
    EXPECT_EQ(s.get_bus("ca"), trace.col_of(a)) << "access " << k;
    EXPECT_EQ(s.hot_index("rs"), trace.row_of(a)) << "access " << k;
    EXPECT_EQ(s.hot_index("cs"), trace.col_of(a)) << "access " << k;
    s.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CntAgReplayTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(std::size_t{4},
                                                              std::size_t{8})));

TEST(CntAg, DecoderStylesAreEquivalent) {
  const auto trace = workload(1, 8);
  CntAgOptions flat, shared;
  flat.decoder_style = synth::DecoderStyle::Flat;
  shared.decoder_style = synth::DecoderStyle::SharedChain;

  netlist::Netlist nf = elaborate_cntag(trace, flat);
  netlist::Netlist ns = elaborate_cntag(trace, shared);
  sim::Simulator sf(nf), ss(ns);
  for (auto* s : {&sf, &ss}) {
    s->set("reset", true);
    s->set("next", false);
    s->step();
    s->set("reset", false);
    s->set("next", true);
  }
  for (std::size_t k = 0; k < trace.length(); ++k) {
    EXPECT_EQ(sf.hot_index("rs"), ss.hot_index("rs")) << k;
    EXPECT_EQ(sf.hot_index("cs"), ss.hot_index("cs")) << k;
    sf.step();
    ss.step();
  }
}

TEST(CntAg, SharedDecodersSmallerThanFlat) {
  const auto trace = workload(0, 16);
  const auto lib = tech::Library::generic_180nm();
  CntAgOptions flat, shared;
  flat.decoder_style = synth::DecoderStyle::Flat;
  shared.decoder_style = synth::DecoderStyle::SharedChain;
  const auto af = tech::analyze_area(elaborate_cntag(trace, flat), lib).total;
  const auto as = tech::analyze_area(elaborate_cntag(trace, shared), lib).total;
  EXPECT_LT(as, af);
}

TEST(CntAg, WithoutDecodersHasNoSelectOutputs) {
  CntAgOptions opt;
  opt.include_decoders = false;
  netlist::Netlist nl = elaborate_cntag(workload(0, 4), opt);
  EXPECT_TRUE(nl.find_output("ra[0]").has_value());
  EXPECT_FALSE(nl.find_output("rs[0]").has_value());
}

TEST(CntAg, IncrementalTransformIsFree) {
  // For the identity sequence the transform must collapse to wiring: the
  // netlist has no gates beyond the counter itself (plus decoders when on).
  CntAgOptions opt;
  opt.include_decoders = false;
  netlist::Netlist nl = elaborate_cntag(workload(0, 8), opt);
  // A 6-bit lookahead counter: 6 flops + increment logic; the transform adds
  // nothing, so every combinational gate belongs to the counter.
  netlist::Netlist counter_only;
  {
    netlist::NetlistBuilder b(counter_only);
    synth::CounterSpec spec;
    spec.bits = 6;
    spec.modulo = 64;
    synth::build_counter(b, spec, b.input("next"), b.input("reset"));
  }
  EXPECT_EQ(nl.stats().num_comb, counter_only.stats().num_comb);
}

TEST(CntAg, RejectsEmptyTrace) {
  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  seq::AddressTrace empty({2, 2}, {});
  EXPECT_THROW(build_cntag(b, empty, netlist::kConst1, netlist::kConst0, {}),
               std::invalid_argument);
}

TEST(CntAg, NonSquareGeometry) {
  const seq::AddressTrace trace = seq::incremental({8, 4});  // 8 wide, 4 tall
  netlist::Netlist nl = elaborate_cntag(trace, {});
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  for (std::size_t k = 0; k < trace.length(); ++k) {
    const std::uint32_t a = trace.linear()[k];
    EXPECT_EQ(s.hot_index("rs"), a / 8) << k;
    EXPECT_EQ(s.hot_index("cs"), a % 8) << k;
    s.step();
  }
}

}  // namespace
}  // namespace addm::core
