// Unit tests for the netlist substrate: cells, builder folding/hashing,
// validation, topological ordering, fanout accounting and DOT export.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/dot.hpp"
#include "netlist/netlist.hpp"

namespace addm::netlist {
namespace {

TEST(CellTraits, AritiesMatchConventions) {
  EXPECT_EQ(traits(CellType::Inv).num_inputs, 1);
  EXPECT_EQ(traits(CellType::Mux2).num_inputs, 3);
  EXPECT_EQ(traits(CellType::DffER).num_inputs, 3);
  EXPECT_TRUE(is_sequential(CellType::Dff));
  EXPECT_FALSE(is_sequential(CellType::Nand2));
  EXPECT_EQ(cell_name(CellType::Xnor2), "XNOR2");
}

TEST(Netlist, ConstantsPreexist) {
  Netlist nl;
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_FALSE(nl.is_primary_input(kConst0));
  EXPECT_FALSE(nl.driver_of(kConst0).has_value());
}

TEST(Netlist, AddInputOutput) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output("y", a);
  EXPECT_TRUE(nl.is_primary_input(a));
  EXPECT_EQ(nl.find_input("a"), a);
  EXPECT_EQ(nl.find_output("y"), a);
  EXPECT_FALSE(nl.find_input("b").has_value());
}

TEST(Netlist, AddCellChecksArity) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.new_net();
  EXPECT_THROW(nl.add_cell(CellType::And2, {a}, y), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_cell(CellType::Inv, {a}, y));
}

TEST(Netlist, ValidateCleanCircuit) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("y", b.and2(a, c));
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, ValidateDetectsUndriven) {
  Netlist nl;
  const NetId dangling = nl.new_net();
  nl.add_output("y", dangling);
  const auto issues = nl.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].kind, ValidationIssue::Kind::UndrivenNet);
}

TEST(Netlist, ValidateDetectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.new_net();
  const NetId y = nl.new_net();
  nl.add_cell(CellType::Inv, {a}, y);
  nl.add_cell(CellType::Inv, {y}, a);
  bool found = false;
  for (const auto& i : nl.validate())
    found |= i.kind == ValidationIssue::Kind::CombinationalLoop;
  EXPECT_TRUE(found);
  EXPECT_FALSE(nl.topo_order().has_value());
}

TEST(Netlist, SequentialFeedbackIsNotALoop) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  const NetId d = b.inv(q);
  nl.add_cell(CellType::Dff, {d}, q);  // toggle flop
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_TRUE(nl.topo_order().has_value());
}

TEST(Netlist, FanoutCounts) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId x = b.inv(a);
  const NetId y = b.and2(x, c);
  b.output("x", x);
  b.output("y", y);
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[a], 1u);  // inv input
  EXPECT_EQ(fo[x], 2u);  // and input + PO
  EXPECT_EQ(fo[y], 1u);  // PO
}

TEST(Builder, ConstantFoldingAnd) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  EXPECT_EQ(b.and2(a, kConst0), kConst0);
  EXPECT_EQ(b.and2(a, kConst1), a);
  EXPECT_EQ(b.and2(a, a), a);
  EXPECT_EQ(b.and2(a, b.inv(a)), kConst0);
  EXPECT_EQ(nl.stats().of(CellType::And2), 0u);
}

TEST(Builder, ConstantFoldingOrXorMux) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  EXPECT_EQ(b.or2(a, kConst1), kConst1);
  EXPECT_EQ(b.xor2(a, a), kConst0);
  EXPECT_EQ(b.xor2(a, kConst0), a);
  EXPECT_EQ(b.mux2(kConst0, a, c), a);
  EXPECT_EQ(b.mux2(kConst1, a, c), c);
  EXPECT_EQ(b.mux2(c, a, a), a);
  EXPECT_EQ(b.mux2(a, kConst0, kConst1), a);
}

TEST(Builder, InverterPairing) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId na = b.inv(a);
  EXPECT_EQ(b.inv(na), a);
  EXPECT_EQ(b.inv(a), na);  // cached
  EXPECT_EQ(nl.stats().of(CellType::Inv), 1u);
}

TEST(Builder, StructuralHashingSharesGates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId g1 = b.and2(a, c);
  const NetId g2 = b.and2(c, a);  // commutative: same gate
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(nl.stats().of(CellType::And2), 1u);
}

TEST(Builder, SharingDisabledDuplicatesGates) {
  Netlist nl;
  NetlistBuilder b(nl);
  b.set_sharing(false);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId g1 = b.and2(a, c);
  const NetId g2 = b.and2(a, c);
  EXPECT_NE(g1, g2);
  EXPECT_EQ(nl.stats().of(CellType::And2), 2u);
}

TEST(Builder, TreesBalanceAndFold) {
  Netlist nl;
  NetlistBuilder b(nl);
  std::vector<NetId> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(b.input("x" + std::to_string(i)));
  const NetId y = b.and_tree(xs);
  b.output("y", y);
  EXPECT_EQ(nl.stats().of(CellType::And2), 7u);
  EXPECT_EQ(b.and_tree({}), kConst1);
  EXPECT_EQ(b.or_tree({}), kConst0);
  std::vector<NetId> one{xs[0]};
  EXPECT_EQ(b.or_tree(one), xs[0]);
}

TEST(Builder, EqualsConst) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto word = b.input_bus("w", 4);
  const NetId eq = b.equals_const(word, 0b1010);
  b.output("eq", eq);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Builder, ConstantWord) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto w = b.constant_word(0b101, 3);
  EXPECT_EQ(w[0], kConst1);
  EXPECT_EQ(w[1], kConst0);
  EXPECT_EQ(w[2], kConst1);
}

TEST(Dot, ContainsPortsAndCells) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.inv(a));
  const std::string dot = to_dot(nl, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("INV"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"y\""), std::string::npos);
}

TEST(Netlist, StatsCountsTypes) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId q = b.dff(a);
  b.output("q", q);
  const auto s = nl.stats();
  EXPECT_EQ(s.num_cells, 1u);
  EXPECT_EQ(s.num_seq, 1u);
  EXPECT_EQ(s.num_comb, 0u);
}

TEST(Netlist, SweepDeadCellsRemovesUnreachableLogic) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId live = b.and2(a, c);
  b.xor2(a, c);                    // dead combinational cell
  const NetId dead_q = b.dff(a);   // dead flop
  b.and2(dead_q, c);               // dead logic fed by the dead flop
  b.output("y", live);
  EXPECT_EQ(nl.stats().num_cells, 4u);
  EXPECT_EQ(nl.sweep_dead_cells(), 3u);
  EXPECT_EQ(nl.stats().num_cells, 1u);
  EXPECT_TRUE(nl.validate().empty());
  // Drivers stay consistent after renumbering.
  EXPECT_EQ(nl.driver_of(live), 0u);
}

TEST(Netlist, SweepKeepsSequentialFeedback) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);
  EXPECT_EQ(nl.sweep_dead_cells(), 0u);
  EXPECT_EQ(nl.stats().num_cells, 2u);
}

TEST(Netlist, SetCellInputRewires) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId y = b.inv(a);
  const auto drv = nl.driver_of(y);
  ASSERT_TRUE(drv.has_value());
  nl.set_cell_input(*drv, 0, c);
  EXPECT_EQ(nl.cell(*drv).inputs[0], c);
  EXPECT_THROW(nl.set_cell_input(*drv, 5, c), std::out_of_range);
}

}  // namespace
}  // namespace addm::netlist
