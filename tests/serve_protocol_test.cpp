// Wire-protocol tests for the addm_serve daemon (serve/protocol.hpp):
// frame encode/decode round trips, the explore-request grammar, the JSON
// fallback, and — the robustness core — a deterministic fuzz pass feeding
// truncations, bit flips, hostile lengths, and garbage at every parser.
// The decoder/parsers must classify every input as a frame, a need-more
// prefix, or malformed, without crashing, hanging, or over-reading.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/fingerprint.hpp"
#include "serve/protocol.hpp"

namespace addm::serve {
namespace {

// Deterministic xorshift so fuzz failures reproduce exactly.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

TEST(ServeFrame, RoundTripsAllTypes) {
  for (std::uint8_t type : {kExplore, kAdmin, kPing, kChunk, kDone, kError,
                            kPong, kAdminDone}) {
    const std::string payload = "payload for " + std::to_string(type);
    const std::string wire = encode_frame(type, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
    Frame f;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(wire, f, consumed), DecodeStatus::kFrame);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.payload, payload);
  }
}

TEST(ServeFrame, EmptyPayloadAndBackToBackFrames) {
  const std::string wire = encode_frame(kPing, "") + encode_frame(kPong, "x");
  Frame f;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(wire, f, consumed), DecodeStatus::kFrame);
  EXPECT_EQ(f.type, kPing);
  EXPECT_EQ(f.payload, "");
  const std::string rest = wire.substr(consumed);
  ASSERT_EQ(decode_frame(rest, f, consumed), DecodeStatus::kFrame);
  EXPECT_EQ(f.type, kPong);
  EXPECT_EQ(f.payload, "x");
}

TEST(ServeFrame, EveryTruncationIsNeedMore) {
  const std::string wire = encode_frame(kExplore, "format csv\nsuite 1 8x8\n");
  Frame f;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(decode_frame(std::string_view(wire).substr(0, n), f, consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(ServeFrame, BadMagicIsMalformedImmediately) {
  Frame f;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame("B", f, consumed, &error), DecodeStatus::kMalformed);
  EXPECT_EQ(error, "bad frame magic");
  EXPECT_EQ(decode_frame("ADSX____", f, consumed), DecodeStatus::kMalformed);
  EXPECT_EQ(decode_frame("{\"op\":\"ping\"}", f, consumed),
            DecodeStatus::kMalformed);
}

TEST(ServeFrame, WrongVersionAndReservedBytesAreMalformed) {
  std::string wire = encode_frame(kPing, "");
  wire[4] = 2;  // future version
  Frame f;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(wire, f, consumed, &error), DecodeStatus::kMalformed);
  EXPECT_EQ(error, "unsupported protocol version");

  wire = encode_frame(kPing, "");
  wire[6] = 1;  // reserved byte
  EXPECT_EQ(decode_frame(wire, f, consumed), DecodeStatus::kMalformed);
}

TEST(ServeFrame, OversizedLengthIsRejectedBeforeBuffering) {
  // Header claims 4 GiB-ish payload: must be malformed from the header
  // alone, never need-more (that would make a hostile client park 64 MiB+
  // in the daemon's buffer per connection).
  std::string wire = encode_frame(kExplore, "");
  wire[8] = static_cast<char>(0xff);
  wire[9] = static_cast<char>(0xff);
  wire[10] = static_cast<char>(0xff);
  wire[11] = static_cast<char>(0x7f);
  Frame f;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(wire, f, consumed, &error), DecodeStatus::kMalformed);
  EXPECT_EQ(error, "frame payload exceeds 64 MiB cap");
}

TEST(ServeFrame, FuzzedBytesNeverCrashAndClassifyConsistently) {
  Rng rng;
  for (int iter = 0; iter < 2000; ++iter) {
    // Mix of pure garbage and corrupted real frames.
    std::string input;
    if (iter % 2 == 0) {
      const std::size_t len = rng.next() % 64;
      for (std::size_t i = 0; i < len; ++i)
        input.push_back(static_cast<char>(rng.next() & 0xff));
    } else {
      input = encode_frame(static_cast<std::uint8_t>(rng.next() & 0xff),
                           "fuzz payload");
      const std::size_t flips = 1 + rng.next() % 4;
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t pos = rng.next() % input.size();
        input[pos] = static_cast<char>(input[pos] ^ (1u << (rng.next() % 8)));
      }
      input = input.substr(0, rng.next() % (input.size() + 1));
    }
    Frame f;
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(input, f, consumed);
    if (st == DecodeStatus::kFrame) {
      EXPECT_LE(consumed, input.size());
      EXPECT_GE(consumed, kFrameHeaderSize);
    }
    // A classified prefix must stay stable as bytes are appended: a
    // malformed buffer can never become a frame by reading more.
    if (st == DecodeStatus::kMalformed) {
      std::string more = input + "extra bytes";
      EXPECT_EQ(decode_frame(more, f, consumed), DecodeStatus::kMalformed);
    }
  }
}

TEST(ServeExploreRequest, RoundTripsThroughGrammar) {
  ExploreRequest req;
  req.format = "json";
  req.suite_scales = 3;
  req.suite_base = {16, 4};
  req.options.emplace_back("no-fsm", "");
  req.options.emplace_back("max-fanout", "6");
  req.options.emplace_back("archs", "SRAG");
  TraceSource path;
  path.kind = TraceSource::Kind::kPath;
  path.name = "/tmp/some trace file.trace";
  req.traces.push_back(path);
  TraceSource inl;
  inl.kind = TraceSource::Kind::kInline;
  inl.name = "mytrace";
  inl.data = "geometry 4x4\n0 1 2 3\n";  // embedded newlines must survive
  req.traces.push_back(inl);

  ExploreRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_explore_request(encode_explore_request(req), parsed, error))
      << error;
  EXPECT_EQ(parsed.format, "json");
  EXPECT_EQ(parsed.suite_scales, 3u);
  EXPECT_EQ(parsed.suite_base.width, 16u);
  EXPECT_EQ(parsed.suite_base.height, 4u);
  ASSERT_EQ(parsed.options.size(), 3u);
  EXPECT_EQ(parsed.options[1].second, "6");
  ASSERT_EQ(parsed.traces.size(), 2u);
  EXPECT_EQ(parsed.traces[0].name, "/tmp/some trace file.trace");
  EXPECT_EQ(parsed.traces[1].name, "mytrace");
  EXPECT_EQ(parsed.traces[1].data, inl.data);
}

TEST(ServeExploreRequest, RejectsMalformedDirectives) {
  ExploreRequest out;
  std::string error;
  EXPECT_FALSE(parse_explore_request("bogus directive\n", out, error));
  EXPECT_FALSE(parse_explore_request("format xml\nsuite 1 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("suite 0 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("suite 1 8x0\n", out, error));
  EXPECT_FALSE(parse_explore_request("suite 1 8x8\nsuite 1 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("option bogus-knob 1\nsuite 1 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("option no-fsm yes\nsuite 1 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("option archs NotAnArch\nsuite 1 8x8\n", out, error));
  EXPECT_FALSE(parse_explore_request("trace inline 10 t\nshort\n", out, error));
  EXPECT_EQ(error, "truncated inline trace data");
  // Directive as the final line with no trailing newline and no data: the
  // scanner's pos is payload.size() + 1 here, so the truncation check must
  // not underflow into an out-of-bounds read (TSan-caught regression).
  EXPECT_FALSE(parse_explore_request("trace inline 5 t", out, error));
  EXPECT_EQ(error, "truncated inline trace data");
  EXPECT_FALSE(parse_explore_request("trace inline 5 t\n12345missing-newline",
                                     out, error));
  EXPECT_FALSE(parse_explore_request("trace ftp host\n", out, error));
  EXPECT_FALSE(parse_explore_request("", out, error));
  EXPECT_EQ(error, "no input traces (use suite or trace directives)");
  EXPECT_FALSE(parse_explore_request("format csv\n", out, error));
}

TEST(ServeExploreRequest, FuzzedPayloadsNeverCrash) {
  Rng rng;
  const std::string seed = encode_explore_request([] {
    ExploreRequest r;
    r.suite_scales = 2;
    r.options.emplace_back("minimizer", "auto");
    TraceSource t;
    t.kind = TraceSource::Kind::kInline;
    t.data = "geometry 2x2\n0 1\n";
    r.traces.push_back(t);
    return r;
  }());
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input = seed;
    const std::size_t flips = 1 + rng.next() % 6;
    for (std::size_t i = 0; i < flips; ++i)
      input[rng.next() % input.size()] =
          static_cast<char>(rng.next() & 0xff);
    input = input.substr(0, rng.next() % (input.size() + 1));
    ExploreRequest out;
    std::string error;
    parse_explore_request(input, out, error);  // must not crash or throw
  }
}

TEST(ServeOptions, DefaultRequestYieldsDefaultOptions) {
  // The pinned-fingerprint property: an optionless request must produce an
  // ExploreOptions whose fingerprint equals the CLI default's.
  ExploreRequest req;
  req.suite_scales = 1;
  core::ExploreOptions opt;
  std::string error;
  ASSERT_TRUE(build_explore_options(req, opt, error)) << error;
  EXPECT_EQ(core::options_fingerprint(opt),
            core::options_fingerprint(core::ExploreOptions{}));
}

TEST(ServeOptions, AppliesEveryKey) {
  core::ExploreOptions opt;
  std::string error;
  EXPECT_TRUE(apply_explore_option(opt, "no-fsm", "", error));
  EXPECT_FALSE(opt.include_fsm);
  EXPECT_TRUE(apply_explore_option(opt, "verify-front", "", error));
  EXPECT_TRUE(opt.verify_front);
  EXPECT_TRUE(apply_explore_option(opt, "compress-periodic", "", error));
  EXPECT_TRUE(opt.compress_periodic);
  EXPECT_TRUE(apply_explore_option(opt, "max-fsm-states", "77", error));
  EXPECT_EQ(opt.max_fsm_states, 77u);
  EXPECT_TRUE(apply_explore_option(opt, "max-fanout", "5", error));
  EXPECT_EQ(opt.max_fanout, 5);
  EXPECT_TRUE(apply_explore_option(opt, "espresso-threshold", "9", error));
  EXPECT_EQ(opt.minimize.heuristic_min_vars, 9);
  EXPECT_TRUE(apply_explore_option(opt, "minimizer", "espresso", error));
  EXPECT_EQ(opt.minimize.algo, logic::MinimizerAlgo::Espresso);
  EXPECT_TRUE(apply_explore_option(opt, "archs", "SRAG,CntAG-flat", error));
  ASSERT_EQ(opt.archs.size(), 2u);

  EXPECT_FALSE(apply_explore_option(opt, "max-fanout", "0", error));
  EXPECT_FALSE(apply_explore_option(opt, "espresso-threshold", "25", error));
  EXPECT_FALSE(apply_explore_option(opt, "minimizer", "magic", error));
  EXPECT_FALSE(apply_explore_option(opt, "threads", "4", error));
}

TEST(ServeSummary, DoneRoundTrip) {
  ExploreSummary s;
  s.traces = 9;
  s.evaluations = 5;
  s.cache_hits = 3;
  s.disk_hits = 1;
  s.errors = 2;
  ExploreSummary parsed;
  ASSERT_TRUE(parse_done(encode_done(s), parsed));
  EXPECT_EQ(parsed.traces, 9u);
  EXPECT_EQ(parsed.evaluations, 5u);
  EXPECT_EQ(parsed.cache_hits, 3u);
  EXPECT_EQ(parsed.disk_hits, 1u);
  EXPECT_EQ(parsed.errors, 2u);
  // Unknown keys are tolerated (forward compatibility), garbage is not.
  ASSERT_TRUE(parse_done("traces 1\nfuture_field 7\n", parsed));
  EXPECT_FALSE(parse_done("traces one\n", parsed));
}

TEST(ServeError, RoundTrip) {
  ErrorInfo e{"bad-request", "line 3: unknown directive\nwith detail"};
  ErrorInfo parsed;
  ASSERT_TRUE(parse_error(encode_error(e), parsed));
  EXPECT_EQ(parsed.code, "bad-request");
  EXPECT_EQ(parsed.message, e.message);
  EXPECT_FALSE(parse_error("", parsed));
}

TEST(ServeJson, ParsesScalarsAndStructures) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(" {\"a\":[1,2.5,-3],\"b\":{\"c\":true,\"d\":null},"
                         "\"s\":\"he\\nllo\\u0041\"} ",
                         v, error))
      << error;
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  std::uint64_t n = 0;
  EXPECT_TRUE(a->array[0].as_u64(n));
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(a->array[1].as_u64(n));  // fractional
  EXPECT_FALSE(a->array[2].as_u64(n));  // negative
  EXPECT_EQ(v.find("b")->find("c")->boolean, true);
  EXPECT_EQ(v.find("s")->string, "he\nlloA");
}

TEST(ServeJson, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json("", v, error));
  EXPECT_FALSE(parse_json("{", v, error));
  EXPECT_FALSE(parse_json("{\"a\":}", v, error));
  EXPECT_FALSE(parse_json("[1,2,]", v, error));
  EXPECT_FALSE(parse_json("\"unterminated", v, error));
  EXPECT_FALSE(parse_json("truex", v, error));
  EXPECT_FALSE(parse_json("{} trailing", v, error));
  EXPECT_FALSE(parse_json("\"\\u00e9\"", v, error));  // non-ASCII escape
  // Depth cap: 40 nested arrays exceed the 32-level limit.
  std::string deep(40, '[');
  deep += std::string(40, ']');
  EXPECT_FALSE(parse_json(deep, v, error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(ServeJson, FuzzedDocumentsNeverCrash) {
  Rng rng;
  const std::string seed =
      "{\"op\":\"explore\",\"suite\":{\"scales\":1,\"base\":\"8x8\"},"
      "\"options\":{\"no-fsm\":true},\"traces\":[{\"inline\":\"x\"}]}";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input = seed;
    const std::size_t flips = 1 + rng.next() % 6;
    for (std::size_t i = 0; i < flips; ++i)
      input[rng.next() % input.size()] =
          static_cast<char>(rng.next() & 0xff);
    input = input.substr(0, rng.next() % (input.size() + 1));
    JsonRequest out;
    std::string error;
    parse_json_request(input, out, error);  // must not crash or throw
  }
}

TEST(ServeJson, RequestRoundTrip) {
  ExploreRequest req;
  req.format = "json";
  req.suite_scales = 2;
  req.suite_base = {8, 16};
  req.options.emplace_back("no-fsm", "");
  req.options.emplace_back("max-fsm-states", "64");
  req.options.emplace_back("archs", "SRAG");
  TraceSource t;
  t.kind = TraceSource::Kind::kInline;
  t.name = "inline0";
  t.data = "geometry 2x2\n0 1 2 3\n";
  req.traces.push_back(t);

  JsonRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_json_request(json_explore_request(req), parsed, error))
      << error;
  ASSERT_EQ(parsed.kind, JsonRequestKind::kExplore);
  EXPECT_EQ(parsed.explore.format, "json");
  EXPECT_EQ(parsed.explore.suite_scales, 2u);
  EXPECT_EQ(parsed.explore.suite_base.height, 16u);
  ASSERT_EQ(parsed.explore.options.size(), 3u);
  EXPECT_EQ(parsed.explore.options[0].first, "no-fsm");
  EXPECT_EQ(parsed.explore.options[0].second, "");
  EXPECT_EQ(parsed.explore.options[1].second, "64");
  ASSERT_EQ(parsed.explore.traces.size(), 1u);
  EXPECT_EQ(parsed.explore.traces[0].data, t.data);

  JsonRequest admin;
  ASSERT_TRUE(parse_json_request(json_admin_request("prune 10 0"), admin, error));
  ASSERT_EQ(admin.kind, JsonRequestKind::kAdmin);
  EXPECT_EQ(admin.admin_command, "prune 10 0");

  JsonRequest ping;
  ASSERT_TRUE(parse_json_request(json_ping_request(), ping, error));
  EXPECT_EQ(ping.kind, JsonRequestKind::kPing);
}

TEST(ServeJson, RequestValidation) {
  JsonRequest out;
  std::string error;
  EXPECT_FALSE(parse_json_request("[]", out, error));
  EXPECT_FALSE(parse_json_request("{}", out, error));
  EXPECT_FALSE(parse_json_request("{\"op\":\"fly\"}", out, error));
  EXPECT_FALSE(parse_json_request("{\"op\":\"admin\"}", out, error));
  EXPECT_FALSE(parse_json_request("{\"op\":\"explore\"}", out, error));
  EXPECT_FALSE(parse_json_request(
      "{\"op\":\"explore\",\"suite\":{\"scales\":0}}", out, error));
  EXPECT_FALSE(parse_json_request(
      "{\"op\":\"explore\",\"suite\":{\"scales\":1},\"options\":"
      "{\"no-fsm\":false}}",
      out, error));
  EXPECT_FALSE(parse_json_request(
      "{\"op\":\"explore\",\"traces\":[{\"path\":\"a\",\"inline\":\"b\"}]}",
      out, error));
  EXPECT_TRUE(parse_json_request(
      "{\"op\":\"explore\",\"suite\":{\"scales\":1},\"options\":"
      "{\"archs\":[\"SRAG\",\"CntAG-flat\"]}}",
      out, error))
      << error;
  ASSERT_EQ(out.explore.options.size(), 1u);
  EXPECT_EQ(out.explore.options[0].second, "SRAG,CntAG-flat");
}

TEST(ServeJson, EscapeProducesParseableStrings) {
  std::string nasty;
  for (int c = 0; c < 256; ++c) nasty.push_back(static_cast<char>(c));
  const std::string line = "\"" + json_escape(nasty) + "\"";
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(line, v, error)) << error;
  EXPECT_EQ(v.string, nasty);
}

}  // namespace
}  // namespace addm::serve
