// Determinism tests for the architecture-generator registry driver: the
// points explore_generators returns must be byte-identical at every
// arch_threads value, and registry-ordered no matter what order the
// entries actually execute in.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/batch_explorer.hpp"
#include "core/explorer.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

void expect_points_equal(const std::vector<DesignPoint>& a,
                         const std::vector<DesignPoint>& b,
                         const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].architecture, b[i].architecture) << context << " point " << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << context << " point " << i;
    EXPECT_EQ(a[i].note, b[i].note) << context << " point " << i;
    EXPECT_EQ(a[i].metrics.area_units, b[i].metrics.area_units) << context << " " << i;
    EXPECT_EQ(a[i].metrics.delay_ns, b[i].metrics.delay_ns) << context << " " << i;
    EXPECT_EQ(a[i].metrics.clk_to_out_ns, b[i].metrics.clk_to_out_ns)
        << context << " " << i;
    EXPECT_EQ(a[i].metrics.reg_to_reg_ns, b[i].metrics.reg_to_reg_ns)
        << context << " " << i;
    EXPECT_EQ(a[i].metrics.cells, b[i].metrics.cells) << context << " " << i;
    EXPECT_EQ(a[i].metrics.flipflops, b[i].metrics.flipflops) << context << " " << i;
    EXPECT_EQ(a[i].metrics.buffers_added, b[i].metrics.buffers_added)
        << context << " " << i;
  }
}

TEST(RegistryDeterminism, IdenticalPointsAcrossArchThreads) {
  // Traces chosen to cover feasible, infeasible, and mixed registries.
  const seq::AddressTrace traces[] = {seq::incremental({8, 8}),
                                      seq::zigzag({8, 8}),
                                      seq::transpose_read({8, 8})};
  for (const auto& trace : traces) {
    ExploreOptions serial;
    serial.arch_threads = 1;
    const auto reference = explore_generators(trace, serial);
    for (std::size_t arch_threads : {2u, 8u, 0u}) {
      ExploreOptions opt;
      opt.arch_threads = arch_threads;
      expect_points_equal(reference, explore_generators(trace, opt),
                          trace.name() + " arch_threads=" +
                              std::to_string(arch_threads));
    }
  }
}

TEST(RegistryDeterminism, ShuffledExecutionOrderYieldsRegistryOrder) {
  // Candidates are independent tasks: evaluating registry entries one by
  // one, in a shuffled order, must reproduce the driver's points slot for
  // slot — and the driver's output order must be the registry's.
  const auto trace = seq::incremental({8, 8});
  const ExploreOptions opt;
  const auto driver_points = explore_generators(trace, opt);

  const auto& registry = generator_registry();
  std::vector<std::size_t> applicable;
  for (std::size_t i = 0; i < registry.size(); ++i)
    if (registry[i].applicable(trace, opt)) applicable.push_back(i);
  ASSERT_EQ(driver_points.size(), applicable.size());

  std::vector<std::size_t> order(applicable.size());
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(42);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<DesignPoint> points(applicable.size());
    for (std::size_t slot : order)
      points[slot] = registry[applicable[slot]].elaborate(trace, opt);
    expect_points_equal(driver_points, points, "shuffle round " + std::to_string(round));
    for (std::size_t slot = 0; slot < applicable.size(); ++slot)
      EXPECT_EQ(driver_points[slot].architecture, registry[applicable[slot]].name);
  }
}

TEST(RegistryDeterminism, ParetoAndFilterStableAcrossArchThreads) {
  const auto trace = seq::zigzag({8, 8});
  ExploreOptions serial;
  serial.archs = {"CntAG-flat", "FSM-binary", "SFM"};
  serial.arch_threads = 1;
  const auto reference = explore_generators(trace, serial);
  ExploreOptions parallel = serial;
  parallel.arch_threads = 8;
  const auto points = explore_generators(trace, parallel);
  expect_points_equal(reference, points, "filtered");
  EXPECT_EQ(pareto_front(reference), pareto_front(points));
}

TEST(RegistryDeterminism, BatchReportsIdenticalAcrossThreadMatrix) {
  // The ISSUE's matrix at the API level: arch_threads x threads must not
  // change a byte of either report.  (The CLI-level matrix, cache
  // directories included, is the arch_determinism ctest entry.)
  const auto traces = seq::standard_suite({8, 8});
  std::string csv_ref, json_ref;
  for (std::size_t threads : {1u, 4u}) {
    for (std::size_t arch_threads : {1u, 2u, 8u}) {
      BatchOptions opt;
      opt.threads = threads;
      opt.explore.arch_threads = arch_threads;
      BatchExplorer batch(opt);
      const BatchResult result = batch.run(traces);
      const std::string csv = batch_report_csv(result);
      const std::string json = batch_report_json(result);
      if (csv_ref.empty()) {
        csv_ref = csv;
        json_ref = json;
      } else {
        EXPECT_EQ(csv, csv_ref) << threads << "x" << arch_threads;
        EXPECT_EQ(json, json_ref) << threads << "x" << arch_threads;
      }
    }
  }
}

TEST(RegistryDeterminism, EspressoMinimizerDeterministicAcrossThreadMatrix) {
  // FSM-heavy batch with the heuristic minimizer actually engaged: zigzag
  // traces exercise the biggest FSM covers, and a threshold of 1 routes
  // every minimize() call through espresso.  Reports must still be
  // byte-identical at every threads x arch_threads combination, and must
  // differ from the default-isop reports' metrics only through the
  // minimizer's (equivalent, possibly differently shaped) covers.
  const std::vector<seq::AddressTrace> traces = {seq::zigzag({16, 16}),
                                                 seq::strided({16, 16}, 3),
                                                 seq::incremental({16, 16})};
  std::string csv_ref;
  for (std::size_t threads : {1u, 4u}) {
    for (std::size_t arch_threads : {1u, 4u}) {
      BatchOptions opt;
      opt.threads = threads;
      opt.explore.arch_threads = arch_threads;
      opt.explore.minimize.algo = logic::MinimizerAlgo::Auto;
      opt.explore.minimize.heuristic_min_vars = 1;
      BatchExplorer batch(opt);
      const std::string csv = batch_report_csv(batch.run(traces));
      if (csv_ref.empty())
        csv_ref = csv;
      else
        EXPECT_EQ(csv, csv_ref) << threads << "x" << arch_threads;
    }
  }
  EXPECT_FALSE(csv_ref.empty());
}

TEST(RegistryDeterminism, DegenerateTraceThrowsAtEveryThreadCount) {
  // Multiple entries fail for an empty-geometry trace; the driver must
  // surface the registry-first failure deterministically so batch error
  // strings (which enter reports) are schedule-independent.
  const seq::AddressTrace empty({4, 4}, {});
  std::string serial_error;
  for (std::size_t arch_threads : {1u, 8u}) {
    ExploreOptions opt;
    opt.arch_threads = arch_threads;
    try {
      explore_generators(empty, opt);
      FAIL() << "expected a throw at arch_threads=" << arch_threads;
    } catch (const std::exception& e) {
      if (arch_threads == 1)
        serial_error = e.what();
      else
        EXPECT_EQ(serial_error, e.what());
    }
  }
}

}  // namespace
}  // namespace addm::core
