// Tests for address-trace text serialization: round trips, format features
// (comments, multi-line, name), and line-numbered error diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

TEST(TraceIo, RoundTripMotionEstimation) {
  MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto original = motion_estimation_read(p);
  const auto text = write_trace_string(original);
  const auto parsed = read_trace_string(text);
  EXPECT_EQ(parsed.linear(), original.linear());
  EXPECT_EQ(parsed.geometry(), original.geometry());
  EXPECT_EQ(parsed.name(), original.name());
}

TEST(TraceIo, ParsesCommentsAndLayout) {
  const auto t = read_trace_string(
      "# header comment\n"
      "geometry 4 4   # inline comment\n"
      "name demo\n"
      "0 1\n"
      "\n"
      "4 5 # trailing comment\n");
  EXPECT_EQ(t.geometry(), (ArrayGeometry{4, 4}));
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{0, 1, 4, 5}));
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  try {
    read_trace_string("geometry 4 4\n0 1\nbogus\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(TraceIo, RejectsMissingGeometry) {
  EXPECT_THROW(read_trace_string("0 1 2\n"), std::invalid_argument);
  EXPECT_THROW(read_trace_string("# nothing\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsDuplicateGeometry) {
  EXPECT_THROW(read_trace_string("geometry 2 2\ngeometry 2 2\n0\n"),
               std::invalid_argument);
}

TEST(TraceIo, RejectsBadGeometry) {
  EXPECT_THROW(read_trace_string("geometry 0 4\n0\n"), std::invalid_argument);
  EXPECT_THROW(read_trace_string("geometry 4\n0\n"), std::invalid_argument);
  EXPECT_THROW(read_trace_string("geometry 4 4 9\n0\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsOutOfRangeAddress) {
  try {
    read_trace_string("geometry 2 2\n0 4\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("outside"), std::string::npos);
  }
}

TEST(TraceIo, RejectsSignedAddressTokens) {
  // "-1" used to slip through std::stoul by wrapping to a huge unsigned
  // value; both sign prefixes must be rejected as non-addresses.
  for (const char* tok : {"-1", "+1"}) {
    try {
      read_trace_string(std::string("geometry 2 2\n0 ") + tok + "\n");
      FAIL() << "expected parse failure for token " << tok;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("not an address"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
  }
}

TEST(TraceIo, RejectsDuplicateName) {
  // `name` used to silently accept a second directive (last one won) while
  // `geometry` rejected duplicates; the two directives now validate alike.
  try {
    read_trace_string("geometry 2 2\nname a\nname b\n0\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate name"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(TraceIo, RejectsTrailingNameTokens) {
  // Trailing tokens after the identifier used to be silently dropped.
  try {
    read_trace_string("geometry 2 2\nname demo junk\n0\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trailing token 'junk'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(TraceIo, RejectsMissingNameValue) {
  try {
    read_trace_string("geometry 2 2\nname\n0\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("expected 'name <identifier>'"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, NameCommentAndPlacementStillAccepted) {
  // A comment after the identifier is not a trailing token, and the
  // directive may still appear after address lines.
  const auto t = read_trace_string("geometry 2 2\n0 1\nname late # ok\n2\n");
  EXPECT_EQ(t.name(), "late");
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(TraceIo, RejectsEmptyTrace) {
  EXPECT_THROW(read_trace_string("geometry 2 2\n"), std::invalid_argument);
}

TEST(TraceIo, WriterWrapsLines) {
  const auto t = incremental({8, 8});
  const auto text = write_trace_string(t);
  // 64 addresses at 16 per line -> at least 4 address lines.
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_GE(lines, 6u);  // header + geometry + name + 4 data lines
}

TEST(TraceIoFile, RoundTripThroughDisk) {
  const auto original = transpose_read({8, 4});
  const std::string path = ::testing::TempDir() + "trace_io_file_roundtrip.trace";
  write_trace_file(path, original);
  const auto parsed = read_trace_file(path);
  EXPECT_EQ(parsed.linear(), original.linear());
  EXPECT_EQ(parsed.geometry(), original.geometry());
  EXPECT_EQ(parsed.name(), original.name());
  std::remove(path.c_str());
}

TEST(TraceIoFile, MissingFileThrowsWithPath) {
  try {
    read_trace_file("/nonexistent/dir/missing.trace");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing.trace"), std::string::npos);
  }
}

TEST(TraceIoFile, UnwritablePathThrows) {
  const auto t = incremental({4, 4});
  EXPECT_THROW(write_trace_file("/nonexistent/dir/out.trace", t), std::runtime_error);
}

}  // namespace
}  // namespace addm::seq
