// Tests for the design-space explorer: feasibility classification, metric
// sanity, the FSM state-budget cutoff and the Pareto front.
#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

const DesignPoint* find(const std::vector<DesignPoint>& ps, const std::string& arch) {
  for (const auto& p : ps)
    if (p.architecture == arch) return &p;
  return nullptr;
}

TEST(Explorer, FifoTraceAllArchitecturesFeasible) {
  const auto points = explore_generators(seq::incremental({8, 8}));
  for (const char* arch : {"SRAG", "SRAG-multicounter", "CntAG-flat", "CntAG-shared",
                           "FSM-binary", "FSM-gray", "FSM-onehot", "SFM"}) {
    const auto* p = find(points, arch);
    ASSERT_NE(p, nullptr) << arch;
    EXPECT_TRUE(p->feasible) << arch << ": " << p->note;
    EXPECT_GT(p->metrics.area_units, 0.0) << arch;
    EXPECT_GT(p->metrics.delay_ns, 0.0) << arch;
  }
}

TEST(Explorer, BlockTraceSfmInfeasible) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto points = explore_generators(seq::motion_estimation_read(p));
  const auto* sfm = find(points, "SFM");
  ASSERT_NE(sfm, nullptr);
  EXPECT_FALSE(sfm->feasible);
  EXPECT_NE(sfm->note.find("FIFO"), std::string::npos);
  const auto* srag = find(points, "SRAG");
  ASSERT_NE(srag, nullptr);
  EXPECT_TRUE(srag->feasible) << srag->note;
}

TEST(Explorer, StridedTraceSragInfeasibleButCntAgWorks) {
  const auto points = explore_generators(seq::strided({8, 8}, 3));
  const auto* srag = find(points, "SRAG");
  ASSERT_NE(srag, nullptr);
  EXPECT_FALSE(srag->feasible);
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_NE(cnt, nullptr);
  EXPECT_TRUE(cnt->feasible);
}

TEST(Explorer, ZigzagFallsBackToCntAg) {
  // The zigzag scan's diagonal structure defeats both SRAG mappers; the
  // counter-based generator (synthesized transform) must still be feasible.
  const auto points = explore_generators(seq::zigzag({8, 8}));
  const auto* srag = find(points, "SRAG");
  const auto* multi = find(points, "SRAG-multicounter");
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_TRUE(srag && multi && cnt);
  EXPECT_FALSE(srag->feasible);
  EXPECT_FALSE(multi->feasible);
  EXPECT_TRUE(cnt->feasible);
}

TEST(Explorer, FsmBudgetCutoff) {
  ExploreOptions opt;
  opt.max_fsm_states = 16;
  const auto points = explore_generators(seq::incremental({8, 8}), opt);  // 64 states
  const auto* fsm = find(points, "FSM-binary");
  ASSERT_NE(fsm, nullptr);
  EXPECT_FALSE(fsm->feasible);
  EXPECT_NE(fsm->note.find("impractical"), std::string::npos);
}

TEST(Explorer, FsmCanBeDisabled) {
  ExploreOptions opt;
  opt.include_fsm = false;
  const auto points = explore_generators(seq::incremental({4, 4}), opt);
  EXPECT_EQ(find(points, "FSM-binary"), nullptr);
}

TEST(Explorer, ParetoFrontNonEmptyAndNonDominated) {
  const auto points = explore_generators(seq::incremental({8, 8}));
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i : front) {
    EXPECT_TRUE(points[i].feasible);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (!points[j].feasible || i == j) continue;
      const bool strictly_dominates =
          points[j].metrics.area_units <= points[i].metrics.area_units &&
          points[j].metrics.delay_ns <= points[i].metrics.delay_ns &&
          (points[j].metrics.area_units < points[i].metrics.area_units ||
           points[j].metrics.delay_ns < points[i].metrics.delay_ns);
      EXPECT_FALSE(strictly_dominates) << i << " dominated by " << j;
    }
  }
}

TEST(Explorer, ParetoIgnoresInfeasible) {
  std::vector<DesignPoint> ps(2);
  ps[0].architecture = "a";
  ps[0].feasible = false;
  ps[1].architecture = "b";
  ps[1].feasible = true;
  ps[1].metrics.area_units = 10;
  ps[1].metrics.delay_ns = 1;
  const auto front = pareto_front(ps);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 1u);
}

TEST(Explorer, FormatContainsEveryArchitecture) {
  const auto points = explore_generators(seq::incremental({4, 4}));
  const std::string table = format_exploration(points);
  for (const auto& p : points)
    EXPECT_NE(table.find(p.architecture), std::string::npos) << p.architecture;
  EXPECT_NE(table.find("pareto"), std::string::npos);
}

TEST(Explorer, SragBeatsCntAgOnDelayForBlockAccess) {
  // The paper's headline claim, asserted as a structural property at 16x16.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 16;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto points = explore_generators(seq::motion_estimation_read(p));
  const auto* srag = find(points, "SRAG");
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_TRUE(srag && cnt);
  ASSERT_TRUE(srag->feasible && cnt->feasible);
  EXPECT_LT(srag->metrics.delay_ns, cnt->metrics.delay_ns);
  EXPECT_GT(srag->metrics.area_units, cnt->metrics.area_units);
}

TEST(Explorer, DeterministicAcrossCalls) {
  // The batch explorer's byte-identical-report contract rests on
  // explore_generators being a pure function of (trace, options).
  const auto trace = seq::transpose_read({8, 8});
  const auto a = explore_generators(trace);
  const auto b = explore_generators(trace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].architecture, b[i].architecture);
    EXPECT_EQ(a[i].feasible, b[i].feasible);
    EXPECT_EQ(a[i].note, b[i].note);
    EXPECT_EQ(a[i].metrics.area_units, b[i].metrics.area_units);
    EXPECT_EQ(a[i].metrics.delay_ns, b[i].metrics.delay_ns);
    EXPECT_EQ(a[i].metrics.cells, b[i].metrics.cells);
  }
  EXPECT_EQ(pareto_front(a), pareto_front(b));
}

}  // namespace
}  // namespace addm::core
