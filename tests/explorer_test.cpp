// Tests for the design-space explorer: feasibility classification, metric
// sanity, the FSM state-budget cutoff and the Pareto front.
#include <gtest/gtest.h>

#include <sstream>

#include "core/explorer.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

const DesignPoint* find(const std::vector<DesignPoint>& ps, const std::string& arch) {
  for (const auto& p : ps)
    if (p.architecture == arch) return &p;
  return nullptr;
}

TEST(Explorer, FifoTraceAllArchitecturesFeasible) {
  const auto points = explore_generators(seq::incremental({8, 8}));
  for (const char* arch : {"SRAG", "SRAG-multicounter", "CntAG-flat", "CntAG-shared",
                           "FSM-binary", "FSM-gray", "FSM-onehot", "SFM"}) {
    const auto* p = find(points, arch);
    ASSERT_NE(p, nullptr) << arch;
    EXPECT_TRUE(p->feasible) << arch << ": " << p->note;
    EXPECT_GT(p->metrics.area_units, 0.0) << arch;
    EXPECT_GT(p->metrics.delay_ns, 0.0) << arch;
  }
}

TEST(Explorer, BlockTraceSfmInfeasible) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto points = explore_generators(seq::motion_estimation_read(p));
  const auto* sfm = find(points, "SFM");
  ASSERT_NE(sfm, nullptr);
  EXPECT_FALSE(sfm->feasible);
  EXPECT_NE(sfm->note.find("FIFO"), std::string::npos);
  const auto* srag = find(points, "SRAG");
  ASSERT_NE(srag, nullptr);
  EXPECT_TRUE(srag->feasible) << srag->note;
}

TEST(Explorer, StridedTraceSragInfeasibleButCntAgWorks) {
  const auto points = explore_generators(seq::strided({8, 8}, 3));
  const auto* srag = find(points, "SRAG");
  ASSERT_NE(srag, nullptr);
  EXPECT_FALSE(srag->feasible);
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_NE(cnt, nullptr);
  EXPECT_TRUE(cnt->feasible);
}

TEST(Explorer, ZigzagFallsBackToCntAg) {
  // The zigzag scan's diagonal structure defeats both SRAG mappers; the
  // counter-based generator (synthesized transform) must still be feasible.
  const auto points = explore_generators(seq::zigzag({8, 8}));
  const auto* srag = find(points, "SRAG");
  const auto* multi = find(points, "SRAG-multicounter");
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_TRUE(srag && multi && cnt);
  EXPECT_FALSE(srag->feasible);
  EXPECT_FALSE(multi->feasible);
  EXPECT_TRUE(cnt->feasible);
}

TEST(Explorer, FsmBudgetCutoff) {
  ExploreOptions opt;
  opt.max_fsm_states = 16;
  const auto points = explore_generators(seq::incremental({8, 8}), opt);  // 64 states
  const auto* fsm = find(points, "FSM-binary");
  ASSERT_NE(fsm, nullptr);
  EXPECT_FALSE(fsm->feasible);
  EXPECT_NE(fsm->note.find("impractical"), std::string::npos);
}

TEST(Explorer, FsmCanBeDisabled) {
  ExploreOptions opt;
  opt.include_fsm = false;
  const auto points = explore_generators(seq::incremental({4, 4}), opt);
  EXPECT_EQ(find(points, "FSM-binary"), nullptr);
}

TEST(Explorer, ParetoFrontNonEmptyAndNonDominated) {
  const auto points = explore_generators(seq::incremental({8, 8}));
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i : front) {
    EXPECT_TRUE(points[i].feasible);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (!points[j].feasible || i == j) continue;
      const bool strictly_dominates =
          points[j].metrics.area_units <= points[i].metrics.area_units &&
          points[j].metrics.delay_ns <= points[i].metrics.delay_ns &&
          (points[j].metrics.area_units < points[i].metrics.area_units ||
           points[j].metrics.delay_ns < points[i].metrics.delay_ns);
      EXPECT_FALSE(strictly_dominates) << i << " dominated by " << j;
    }
  }
}

TEST(Explorer, ParetoIgnoresInfeasible) {
  std::vector<DesignPoint> ps(2);
  ps[0].architecture = "a";
  ps[0].feasible = false;
  ps[1].architecture = "b";
  ps[1].feasible = true;
  ps[1].metrics.area_units = 10;
  ps[1].metrics.delay_ns = 1;
  const auto front = pareto_front(ps);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 1u);
}

TEST(Explorer, FormatPadsLongArchitectureNames) {
  // Regression: names >= 20 chars used to get zero padding and run straight
  // into the feasible column.  The name column must widen to the longest
  // name plus two spaces, with every row's feasible field aligned under the
  // header's.
  std::vector<DesignPoint> ps(2);
  ps[0].architecture = "a-very-long-architecture-name";  // 29 chars
  ps[0].feasible = true;
  ps[0].metrics.area_units = 12;
  ps[0].metrics.delay_ns = 1.5;
  ps[1].architecture = "short";
  ps[1].feasible = false;
  ps[1].note = "nope";
  const std::string table = format_exploration(ps);

  std::vector<std::string> lines;
  std::istringstream is(table);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  const std::size_t col = lines[0].find("feasible");
  ASSERT_NE(col, std::string::npos);
  EXPECT_EQ(col, ps[0].architecture.size() + 2);
  EXPECT_EQ(lines[1].substr(0, ps[0].architecture.size()), ps[0].architecture);
  EXPECT_EQ(lines[1].substr(ps[0].architecture.size(), 2), "  ");
  EXPECT_EQ(lines[1].substr(col, 3), "yes");
  EXPECT_EQ(lines[2].substr(col, 2), "no");
}

TEST(Explorer, FormatAlignsDefaultRegistryNames) {
  const auto points = explore_generators(seq::incremental({4, 4}));
  const std::string table = format_exploration(points);
  std::vector<std::string> lines;
  std::istringstream is(table);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_GT(lines.size(), 1u);
  const std::size_t col = lines[0].find("feasible");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    ASSERT_GT(lines[i].size(), col + 3) << lines[i];
    const std::string f = lines[i].substr(col, 3);
    EXPECT_TRUE(f == "yes" || f.substr(0, 2) == "no") << lines[i];
  }
}

TEST(Explorer, RegistryOrderIsStable) {
  // The registry order is a persisted contract (reports and cache entries
  // store points in this order); changing it requires a fingerprint-seed
  // bump, so a test pins it.
  const std::vector<std::string> expected = {
      "SRAG",       "SRAG-multicounter", "CntAG-flat", "CntAG-shared",
      "CntAG-predecoded", "FSM-binary",  "FSM-gray",   "FSM-onehot",
      "SFM"};
  EXPECT_EQ(generator_names(), expected);
}

TEST(Explorer, ArchsSubsetSelectsInRegistryOrder) {
  ExploreOptions opt;
  opt.archs = {"SFM", "SRAG"};  // request order is irrelevant
  const auto points = explore_generators(seq::incremental({8, 8}), opt);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].architecture, "SRAG");
  EXPECT_EQ(points[1].architecture, "SFM");

  opt.archs = {"no-such-architecture"};
  EXPECT_TRUE(explore_generators(seq::incremental({8, 8}), opt).empty());
}

TEST(Explorer, ArchsSubsetMatchesFullRunPoints) {
  // A filtered run must reproduce the corresponding points of the full run
  // exactly — candidates are independent tasks.
  const auto trace = seq::transpose_read({8, 8});
  const auto full = explore_generators(trace);
  ExploreOptions opt;
  opt.archs = {"CntAG-shared", "FSM-gray"};
  const auto subset = explore_generators(trace, opt);
  ASSERT_EQ(subset.size(), 2u);
  for (const auto& p : subset) {
    const DesignPoint* f = find(full, p.architecture);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(p.feasible, f->feasible);
    EXPECT_EQ(p.note, f->note);
    EXPECT_EQ(p.metrics.area_units, f->metrics.area_units);
    EXPECT_EQ(p.metrics.delay_ns, f->metrics.delay_ns);
  }
}

TEST(Explorer, FormatContainsEveryArchitecture) {
  const auto points = explore_generators(seq::incremental({4, 4}));
  const std::string table = format_exploration(points);
  for (const auto& p : points)
    EXPECT_NE(table.find(p.architecture), std::string::npos) << p.architecture;
  EXPECT_NE(table.find("pareto"), std::string::npos);
}

TEST(Explorer, SragBeatsCntAgOnDelayForBlockAccess) {
  // The paper's headline claim, asserted as a structural property at 16x16.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 16;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto points = explore_generators(seq::motion_estimation_read(p));
  const auto* srag = find(points, "SRAG");
  const auto* cnt = find(points, "CntAG-flat");
  ASSERT_TRUE(srag && cnt);
  ASSERT_TRUE(srag->feasible && cnt->feasible);
  EXPECT_LT(srag->metrics.delay_ns, cnt->metrics.delay_ns);
  EXPECT_GT(srag->metrics.area_units, cnt->metrics.area_units);
}

TEST(Explorer, DeterministicAcrossCalls) {
  // The batch explorer's byte-identical-report contract rests on
  // explore_generators being a pure function of (trace, options).
  const auto trace = seq::transpose_read({8, 8});
  const auto a = explore_generators(trace);
  const auto b = explore_generators(trace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].architecture, b[i].architecture);
    EXPECT_EQ(a[i].feasible, b[i].feasible);
    EXPECT_EQ(a[i].note, b[i].note);
    EXPECT_EQ(a[i].metrics.area_units, b[i].metrics.area_units);
    EXPECT_EQ(a[i].metrics.delay_ns, b[i].metrics.delay_ns);
    EXPECT_EQ(a[i].metrics.cells, b[i].metrics.cells);
  }
  EXPECT_EQ(pareto_front(a), pareto_front(b));
}

}  // namespace
}  // namespace addm::core
