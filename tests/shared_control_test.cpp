// Tests for the shared-control 2-D SRAG (the paper's future-work area
// reduction): functional equivalence against independent composition across
// workloads, correct sharing-mode selection, and actual area savings.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/shared_control.hpp"
#include "core/srag_mapper.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "tech/library.hpp"

namespace addm::core {
namespace {

struct Mapped2d {
  SragConfig row;
  SragConfig col;
};

Mapped2d map_both(const seq::AddressTrace& trace) {
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  auto rm = map_sequence(rows, static_cast<std::uint32_t>(trace.geometry().height));
  auto cm = map_sequence(cols, static_cast<std::uint32_t>(trace.geometry().width));
  EXPECT_TRUE(rm.ok() && cm.ok());
  return {*rm.config, *cm.config};
}

seq::AddressTrace workload(int kind, std::size_t dim) {
  using namespace seq;
  switch (kind) {
    case 0: return incremental({dim, dim});
    case 1: {
      MotionEstimationParams p;
      p.img_width = p.img_height = dim;
      p.mb_width = p.mb_height = 4;
      p.m = 0;
      return motion_estimation_read(p);
    }
    case 2: return zoom_by_two_read({dim, dim});
    case 3: return transpose_read({dim, dim});
    default: return dct_block_column_read({dim, dim}, 4);
  }
}

class SharedControlEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(SharedControlEquivalence, MatchesTraceExactly) {
  const auto [kind, dim] = GetParam();
  const auto trace = workload(kind, dim);
  const auto cfgs = map_both(trace);

  ControlSharing sharing;
  netlist::Netlist nl = elaborate_srag_2d_shared(cfgs.row, cfgs.col, &sharing);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  const std::size_t w = trace.geometry().width;
  // Two full passes to catch wrap-around bugs in the derived enable.
  for (std::size_t k = 0; k < 2 * trace.length(); ++k) {
    const auto row = s.hot_index("rs");
    const auto col = s.hot_index("cs");
    ASSERT_TRUE(row && col) << "kind " << kind << " access " << k;
    ASSERT_EQ(*row * w + *col, trace.linear()[k % trace.length()])
        << "kind " << kind << " access " << k << " sharing "
        << static_cast<int>(sharing);
    s.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SharedControlEquivalence,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(std::size_t{8},
                                                              std::size_t{16})));

TEST(SharedControl, FifoUsesColumnCycle) {
  // Raster scan: the row advances exactly when the column ring completes —
  // the row DivCnt must disappear entirely.
  const auto cfgs = map_both(seq::incremental({16, 16}));
  ControlSharing sharing;
  (void)elaborate_srag_2d_shared(cfgs.row, cfgs.col, &sharing);
  EXPECT_EQ(sharing, ControlSharing::ColumnCycle);
}

TEST(SharedControl, MotionEstimationSharesSomething) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 16;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto cfgs = map_both(seq::motion_estimation_read(p));
  ControlSharing sharing;
  (void)elaborate_srag_2d_shared(cfgs.row, cfgs.col, &sharing);
  EXPECT_NE(sharing, ControlSharing::None);
}

TEST(SharedControl, SavesAreaOnFifo) {
  const auto lib = tech::Library::generic_180nm();
  const auto cfgs = map_both(seq::incremental({64, 64}));

  netlist::Netlist independent = elaborate_srag_2d(cfgs.row, cfgs.col);
  const auto indep = measure_netlist(independent, lib);

  netlist::Netlist shared = elaborate_srag_2d_shared(cfgs.row, cfgs.col);
  const auto shrd = measure_netlist(shared, lib);

  EXPECT_LT(shrd.area_units, indep.area_units);
  EXPECT_LT(shrd.flipflops, indep.flipflops);  // the row DivCnt flops are gone
}

TEST(SharedControl, FallsBackWhenUnalignable) {
  // dC_row = 3, dC_col = 2: 3 % 2 != 0 and 2 % 3 != 0 -> independent.
  SragConfig row;
  row.registers = {{0, 1}};
  row.div_count = 3;
  row.pass_count = 2;
  row.num_select_lines = 2;
  SragConfig col;
  col.registers = {{0, 1, 2}};
  col.div_count = 2;
  col.pass_count = 3;
  col.num_select_lines = 3;
  ControlSharing sharing;
  netlist::Netlist nl = elaborate_srag_2d_shared(row, col, &sharing);
  EXPECT_EQ(sharing, ControlSharing::None);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(SharedControl, FastDimensionMayBeTheRow) {
  // Transpose read: rows change every access (dC=1), columns slowly — the
  // composition must share in the row->column direction.
  const auto cfgs = map_both(seq::transpose_read({16, 16}));
  EXPECT_LT(cfgs.row.div_count, cfgs.col.div_count);
  ControlSharing sharing;
  (void)elaborate_srag_2d_shared(cfgs.row, cfgs.col, &sharing);
  EXPECT_NE(sharing, ControlSharing::None);
}

}  // namespace
}  // namespace addm::core
