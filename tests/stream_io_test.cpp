// Tests for the streaming trace reader (chunk-boundary handling, error
// parity with read_trace), the compressed-read convenience, and the
// valgrind/lackey log importer.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "seq/stream_io.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

AddressTrace stream_read(const std::string& text, std::size_t chunk) {
  std::istringstream in(text);
  TraceReader reader(in, chunk);
  return reader.read_all();
}

TEST(TraceReader, ReadsIncrementally) {
  std::istringstream in("geometry 4 4\nname inc\n0 1 2\n3 4\n");
  TraceReader reader(in);
  std::uint32_t a = 0;
  std::vector<std::uint32_t> got;
  while (reader.next(a)) got.push_back(a);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(reader.geometry(), (ArrayGeometry{4, 4}));
  EXPECT_EQ(reader.name(), "inc");
  EXPECT_EQ(reader.delivered(), 5u);
  EXPECT_FALSE(reader.next(a));  // stays exhausted
}

TEST(TraceReader, GeometryKnownAfterFirstAddress) {
  std::istringstream in("geometry 8 2\n7\n");
  TraceReader reader(in);
  std::uint32_t a = 0;
  ASSERT_TRUE(reader.next(a));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(reader.geometry(), (ArrayGeometry{8, 2}));
}

TEST(TraceReader, EveryChunkSizeProducesTheSameTrace) {
  // Exercise every line-vs-chunk alignment, including chunks smaller than a
  // token and a final line without a newline.
  const std::string text =
      "# comment line\n"
      "geometry 16 4   # inline\n"
      "\n"
      "name chunky\n"
      "0 1 2 3 10 11 12 13\n"
      "60 61 62 63";
  const auto expected = read_trace_string(text);
  for (std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 16u, 64u, 4096u}) {
    const auto got = stream_read(text, chunk);
    EXPECT_EQ(got.linear(), expected.linear()) << "chunk " << chunk;
    EXPECT_EQ(got.geometry(), expected.geometry()) << "chunk " << chunk;
    EXPECT_EQ(got.name(), expected.name()) << "chunk " << chunk;
  }
}

TEST(TraceReader, ErrorsMatchReadTrace) {
  const std::vector<std::string> bad = {
      "0 1 2\n",                          // addresses before geometry
      "geometry 2 2\ngeometry 2 2\n0\n",  // duplicate geometry
      "geometry 0 4\n0\n",                // zero dimension
      "geometry 4\n0\n",                  // missing height
      "geometry 4 4 9\n0\n",              // trailing token
      "geometry 2 2\n0 4\n",              // out of range
      "geometry 2 2\n0 -1\n",             // signed token
      "geometry 2 2\n0 1e5\n",            // partial numeric token
      "geometry 2 2\nname\n0\n",          // missing name value
      "geometry 2 2\nname a b\n0\n",      // trailing name token
      "geometry 2 2\nname a\nname b\n0\n",  // duplicate name
      "geometry 2 2\n",                   // no addresses
      "# nothing\n",                      // missing geometry
  };
  for (const std::string& text : bad) {
    std::string batch_err, stream_err;
    try {
      read_trace_string(text);
    } catch (const std::invalid_argument& e) {
      batch_err = e.what();
    }
    try {
      stream_read(text, 3);
    } catch (const std::invalid_argument& e) {
      stream_err = e.what();
    }
    ASSERT_FALSE(batch_err.empty()) << text;
    EXPECT_EQ(stream_err, batch_err) << text;
  }
}

TEST(TraceReader, MatchesReadTraceOnGeneratedSuite) {
  for (const auto& t : standard_suite({8, 8})) {
    const std::string text = write_trace_string(t);
    const auto got = stream_read(text, 64);
    EXPECT_EQ(got.linear(), t.linear()) << t.name();
    EXPECT_EQ(got.name(), t.name());
  }
}

TEST(ReadTraceCompressed, FactorsWithoutMaterializing) {
  const std::vector<std::uint32_t> period{0, 1, 2, 3, 8, 9, 10, 11};
  std::ostringstream os;
  os << "geometry 8 8\nname looped\n";
  for (int r = 0; r < 500; ++r) {
    for (std::uint32_t v : period) os << v << " ";
    os << "\n";
  }
  std::istringstream in(os.str());
  const CompressedTrace ct = read_trace_compressed(in, 128);
  EXPECT_EQ(ct.period, period);
  EXPECT_EQ(ct.repeats, 500u);
  EXPECT_EQ(ct.name, "looped");
  EXPECT_EQ(ct.geometry, (ArrayGeometry{8, 8}));
  // Same factorization as materialize-then-compress.
  std::istringstream in2(os.str());
  const CompressedTrace batch = compress_periodic(read_trace(in2));
  EXPECT_EQ(ct.period, batch.period);
  EXPECT_EQ(ct.repeats, batch.repeats);
}

TEST(ReadTraceCompressed, FileRoundTrip) {
  const auto t = transpose_read({8, 4});
  const std::string path = ::testing::TempDir() + "stream_io_compressed.trace";
  write_trace_file(path, t);
  const CompressedTrace ct = read_trace_compressed_file(path);
  EXPECT_EQ(ct.expand().linear(), t.linear());
  std::remove(path.c_str());
  EXPECT_THROW(read_trace_compressed_file(path), std::runtime_error);
}

LackeyImportOptions geom_opt(std::size_t w, std::size_t h) {
  LackeyImportOptions opt;
  opt.geometry = {w, h};
  return opt;
}

AddressTrace import_text(const std::string& text, const LackeyImportOptions& opt) {
  std::istringstream in(text);
  return import_lackey(in, opt);
}

TEST(LackeyImport, ParsesLoadsStoresAndSkipsChatter) {
  const std::string log =
      "==1234== Lackey, an example Valgrind tool\n"
      "I  0x40001000,4\n"
      " L 40100000,4\n"
      " L 0x40100004,4\n"
      " S 40100008,8\n"
      "\n"
      " M 4010000c,4\n"
      "==1234== done\n";
  const auto t = import_text(log, geom_opt(4, 4));
  // Instruction fetch excluded by default; base = first data address.
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(t.geometry(), (ArrayGeometry{4, 4}));
}

TEST(LackeyImport, KindsFilterSelectsMarkers) {
  const std::string log =
      "I 1000,4\n L 2000,4\n S 2004,4\n M 2008,4\n";
  LackeyImportOptions opt = geom_opt(8, 8);
  opt.kinds = "S";
  EXPECT_EQ(import_text(log, opt).linear(), (std::vector<std::uint32_t>{0}));
  opt.kinds = "LS";
  EXPECT_EQ(import_text(log, opt).linear(), (std::vector<std::uint32_t>{0, 1}));
  opt.kinds = "I";
  EXPECT_EQ(import_text(log, opt).linear(), (std::vector<std::uint32_t>{0}));
}

TEST(LackeyImport, ExplicitBaseAndWordSize) {
  LackeyImportOptions opt = geom_opt(4, 4);
  opt.auto_base = false;
  opt.base = 0x2000;
  opt.word_bytes = 8;
  // 0x2000 -> word 0, 0x2008 -> word 1, 0x200c folds onto word 1.
  const auto t = import_text(" L 2000,4\n L 2008,4\n L 200c,4\n", opt);
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{0, 1, 1}));
}

TEST(LackeyImport, NameAndTraceIoRoundTrip) {
  LackeyImportOptions opt = geom_opt(4, 4);
  opt.name = "imported";
  const auto t = import_text(" L 1000,4\n L 1004,4\n", opt);
  EXPECT_EQ(t.name(), "imported");
  const auto back = read_trace_string(write_trace_string(t));
  EXPECT_EQ(back.linear(), t.linear());
  EXPECT_EQ(back.name(), t.name());
}

TEST(LackeyImport, ErrorsCarryLineNumbers) {
  const struct {
    const char* log;
    const char* what;
  } cases[] = {
      {" L zz,4\n", "expected hex address"},
      {" L 1000 4\n", "expected ',<size>'"},
      {" L 1000,\n", "expected ',<size>'"},
      {" L 1000,4 junk\n", "trailing token"},
      {" X 1000,4\n", "unrecognized line"},
  };
  for (const auto& c : cases) {
    try {
      import_text(std::string("I 500,4\n") + c.log, geom_opt(8, 8));
      FAIL() << c.log;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.what), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
  }
}

TEST(LackeyImport, RejectsOutOfArrayAndBelowBase) {
  try {
    import_text(" L 1000,4\n L 9000,4\n", geom_opt(2, 2));
    FAIL() << "expected out-of-array failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("outside the 2x2 array"), std::string::npos)
        << e.what();
  }
  try {
    import_text(" L 1000,4\n L 0800,4\n", geom_opt(8, 8));
    FAIL() << "expected below-base failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("below the base"), std::string::npos)
        << e.what();
  }
}

TEST(LackeyImport, RejectsBadOptionsAndEmptyResult) {
  EXPECT_THROW(import_text(" L 0,4\n", geom_opt(0, 4)), std::invalid_argument);
  LackeyImportOptions bad_word = geom_opt(4, 4);
  bad_word.word_bytes = 0;
  EXPECT_THROW(import_text(" L 0,4\n", bad_word), std::invalid_argument);
  LackeyImportOptions bad_kinds = geom_opt(4, 4);
  bad_kinds.kinds = "LX";
  EXPECT_THROW(import_text(" L 0,4\n", bad_kinds), std::invalid_argument);
  // A log with only instruction fetches has no matching accesses under the
  // default LSM filter.
  EXPECT_THROW(import_text("I 1000,4\n", geom_opt(4, 4)), std::invalid_argument);
}

}  // namespace
}  // namespace addm::seq
