// Regression tests for concurrent evaluation-cache access in the daemon
// configuration: readers probing a directory while a flush (store_batch +
// record_hits) is in progress, and while serialized maintenance
// (compact/prune) rewrites it.
//
// The property under test is the eval-cache robustness contract's reader
// half: a concurrent reader may MISS an entry that is mid-write or
// mid-rewrite, but it must never crash and never observe a WRONG hit — a
// load_entry success must always return exactly the content stored for
// that key.  Entries here encode their key into their content, so any
// cross-key mixup or torn read fails loudly.
//
// Also covers the BatchExplorer daemon mode those writes come from:
// defer_disk_flush accumulates pending entries in memory, flush_disk is
// the single serialized writer, and concurrent run()+flush_disk() is safe.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/eval_cache.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

// One synthetic entry whose bytes are a pure function of its key: the
// verification oracle for the "never a wrong hit" property.
EvalCacheEntry entry_for(std::uint64_t i) {
  EvalCacheEntry e;
  e.key.trace_hash = 0x1000 + i;
  e.key.options_hash = 0xabcdef;
  DesignPoint p;
  p.architecture = "arch-" + std::to_string(i);
  p.feasible = true;
  p.note = "content for key " + std::to_string(i);
  p.metrics.area_units = static_cast<double>(i) * 1.5;
  p.metrics.delay_ns = static_cast<double>(i) + 0.25;
  p.metrics.cells = static_cast<std::size_t>(i);
  e.points.push_back(p);
  DesignPoint q;
  q.architecture = "alt-" + std::to_string(i);
  q.feasible = false;
  q.note = "infeasible for key " + std::to_string(i);
  e.points.push_back(q);
  e.pareto = {0};
  return e;
}

// Full content check: a hit must be byte-faithful to entry_for(i).
void expect_exact(const EvalCacheEntry& got, std::uint64_t i) {
  const EvalCacheEntry want = entry_for(i);
  ASSERT_EQ(got.key.trace_hash, want.key.trace_hash);
  ASSERT_EQ(got.key.options_hash, want.key.options_hash);
  ASSERT_EQ(serialize_eval_entry(got), serialize_eval_entry(want))
      << "wrong or torn content served for key " << i;
}

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

TEST(CacheConcurrency, ReadersNeverSeeWrongHitsDuringFlushes) {
  const std::string dir =
      testing::TempDir() + "cache_concurrency_flush";
  std::filesystem::remove_all(dir);

  constexpr std::uint64_t kKeys = 48;
  constexpr std::size_t kBatch = 8;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> hits{0};

  // Writer: the daemon's flush pattern — batches of stores plus hit
  // records, repeated.
  std::thread writer([&] {
    EvalCacheDir cache(dir);
    for (std::uint64_t base = 0; base < kKeys; base += kBatch) {
      std::vector<EvalCacheEntry> batch;
      for (std::uint64_t i = base; i < base + kBatch && i < kKeys; ++i)
        batch.push_back(entry_for(i));
      cache.store_batch(batch);
      std::vector<std::pair<EvalCacheKey, std::uint64_t>> credit;
      for (const auto& e : batch) credit.emplace_back(e.key, 1);
      cache.record_hits(credit);
    }
    done.store(true);
  });

  // Readers: hammer load_entry across the whole key range while the writer
  // is mid-flush.  Every hit is content-verified.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      EvalCacheDir cache(dir);
      Rng rng(static_cast<std::uint64_t>(r) + 7);
      while (!done.load()) {
        const std::uint64_t i = rng.next() % kKeys;
        EvalCacheEntry got;
        if (cache.load_entry(entry_for(i).key, got)) {
          expect_exact(got, i);
          hits.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  // `hits` is opportunistic (on a loaded single-core box the writer can
  // finish before any probe lands), so only the final state is asserted:
  // after the writer finishes every key must be a (correct) hit.
  EvalCacheDir cache(dir);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EvalCacheEntry got;
    ASSERT_TRUE(cache.load_entry(entry_for(i).key, got)) << "key " << i;
    expect_exact(got, i);
  }
}

TEST(CacheConcurrency, ReadersSurviveSerializedMaintenanceRewrites) {
  const std::string dir =
      testing::TempDir() + "cache_concurrency_maint";
  std::filesystem::remove_all(dir);

  constexpr std::uint64_t kKeys = 32;
  {
    EvalCacheDir cache(dir);
    std::vector<EvalCacheEntry> batch;
    for (std::uint64_t i = 0; i < kKeys; ++i) batch.push_back(entry_for(i));
    ASSERT_EQ(cache.store_batch(batch), kKeys);
  }

  std::atomic<bool> done{false};

  // One maintainer (the daemon serializes maintenance, so a single thread
  // is the faithful model) alternating compact and prune-with-headroom —
  // every pass rewrites the index and payload files.
  std::thread maintainer([&] {
    EvalCacheDir cache(dir);
    for (int round = 0; round < 25; ++round) {
      if (round % 2 == 0) {
        const auto m = cache.compact();
        EXPECT_TRUE(m.ok);
        EXPECT_EQ(m.kept, kKeys);
      } else {
        const auto m = cache.prune(kKeys + 8, UINT64_MAX);
        EXPECT_TRUE(m.ok);
        EXPECT_EQ(m.evicted, 0u);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> hits{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      EvalCacheDir cache(dir);
      Rng rng(static_cast<std::uint64_t>(r) + 99);
      while (!done.load()) {
        const std::uint64_t i = rng.next() % kKeys;
        EvalCacheEntry got;
        // Mid-rewrite a probe may miss (the contract allows it); a hit
        // must be exact.
        if (cache.load_entry(entry_for(i).key, got)) {
          expect_exact(got, i);
          hits.fetch_add(1);
        }
        // Index-scan loads must tolerate rewrites the same way.
        if ((rng.next() & 15) == 0) {
          for (const auto& e : cache.load_matching(0xabcdef))
            expect_exact(e, e.key.trace_hash - 0x1000);
        }
      }
    });
  }
  maintainer.join();
  for (auto& t : readers) t.join();

  // Maintenance preserved everything.
  EvalCacheDir cache(dir);
  EXPECT_EQ(cache.read_records().size(), kKeys);
  EXPECT_TRUE(cache.verify().clean());
}

TEST(CacheConcurrency, DeferredFlushAccumulatesThenPersistsOnce) {
  const std::string dir = testing::TempDir() + "cache_deferred_flush";
  std::filesystem::remove_all(dir);

  BatchOptions opt;
  opt.cache_dir = dir;
  opt.defer_disk_flush = true;
  opt.threads = 1;
  BatchExplorer explorer(opt);

  // The suite contains traces that alias to the same (trace, options) memo
  // key, so the number of distinct cache entries is the evaluation count,
  // not the trace count.
  const auto traces = seq::scaled_suite({8, 8}, 1);
  const BatchResult first = explorer.run(traces);
  const std::size_t unique = first.evaluations;
  ASSERT_GT(unique, 0u);
  EXPECT_EQ(first.disk_entries_stored, 0u) << "deferred mode wrote the disk";
  EXPECT_EQ(explorer.pending_flush(), unique);
  EXPECT_TRUE(!std::filesystem::exists(dir) ||
              std::filesystem::is_empty(dir));

  const auto stats = explorer.flush_disk();
  EXPECT_EQ(stats.stored, unique);
  EXPECT_EQ(explorer.pending_flush(), 0u);
  EvalCacheDir cache(dir);
  EXPECT_EQ(cache.read_records().size(), unique);

  // Re-running after a flush is all memo hits and queues nothing new;
  // flush_disk becomes a no-op (but still credits nothing spuriously).
  const BatchResult second = explorer.run(traces);
  EXPECT_EQ(second.cache_hits, traces.size());
  EXPECT_EQ(explorer.pending_flush(), 0u);
  EXPECT_EQ(explorer.flush_disk().stored, 0u);

  // A fresh deferred explorer warm-starts from disk and queues only the
  // hit credits, which flush as `hit` records, not duplicate entries.
  BatchExplorer warm(opt);
  const BatchResult third = warm.run(traces);
  EXPECT_EQ(third.disk_hits, traces.size());
  EXPECT_EQ(third.evaluations, 0u);
  warm.flush_disk();
  std::uint64_t total_hits = 0;
  for (const auto& rec : cache.read_records()) total_hits += rec.meta.hits;
  EXPECT_EQ(total_hits, traces.size());
}

TEST(CacheConcurrency, ConcurrentRunsAndFlushesAreSafe) {
  const std::string dir = testing::TempDir() + "cache_concurrent_runs";
  std::filesystem::remove_all(dir);

  BatchOptions opt;
  opt.cache_dir = dir;
  opt.defer_disk_flush = true;
  opt.threads = 1;
  BatchExplorer explorer(opt);

  // Two request threads with different option sets (the daemon's shape)
  // racing a flusher thread.  Some suite traces alias to one memo key, so
  // the per-option-set entry count is the unique-evaluation count.
  const auto traces = seq::scaled_suite({8, 8}, 1);
  const std::size_t unique = BatchExplorer(BatchOptions{}).run(traces).evaluations;
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load()) explorer.flush_disk();
    explorer.flush_disk();
  });
  std::thread worker_a([&] {
    for (int i = 0; i < 3; ++i) explorer.run(traces, ExploreOptions{});
  });
  std::thread worker_b([&] {
    ExploreOptions no_fsm;
    no_fsm.include_fsm = false;
    for (int i = 0; i < 3; ++i) explorer.run(traces, no_fsm);
  });
  worker_a.join();
  worker_b.join();
  done.store(true);
  flusher.join();

  // Both option sets landed exactly once per unique key, and the directory
  // is canonical-valid.
  EvalCacheDir cache(dir);
  EXPECT_EQ(cache.read_records().size(), 2 * unique);
  EXPECT_TRUE(cache.verify().clean());

  // A cold offline explorer warm-starts entirely from what the daemon
  // flushed — and the report matches a cold run byte for byte.
  BatchOptions offline;
  offline.cache_dir = dir;
  offline.threads = 1;
  BatchExplorer warm(offline);
  const BatchResult warm_result = warm.run(traces);
  EXPECT_EQ(warm_result.disk_hits, traces.size());
  BatchExplorer cold(BatchOptions{});
  EXPECT_EQ(batch_report_csv(warm_result), batch_report_csv(cold.run(traces)));
}

}  // namespace
}  // namespace addm::core
