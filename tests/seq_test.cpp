// Tests for the sequence layer: trace splitting (Table 1 of the paper),
// analysis primitives (D/R/U/O/Z building blocks) and workload generators.
#include <gtest/gtest.h>

#include "seq/analysis.hpp"
#include "seq/trace.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

using V = std::vector<std::uint32_t>;

TEST(Trace, RowColSplitRowMajor) {
  AddressTrace t({4, 4}, {0, 5, 10, 15});
  EXPECT_EQ(t.rows(), (V{0, 1, 2, 3}));
  EXPECT_EQ(t.cols(), (V{0, 1, 2, 3}));
}

TEST(Trace, RejectsOutOfRangeAddress) {
  EXPECT_THROW(AddressTrace({2, 2}, {4}), std::invalid_argument);
  EXPECT_THROW(AddressTrace({0, 2}, {}), std::invalid_argument);
}

TEST(Trace, Table1MotionEstimationExample) {
  // The paper's running example: 4x4 image, 2x2 macroblocks, m=0.
  MotionEstimationParams p;
  p.img_width = p.img_height = 4;
  p.mb_width = p.mb_height = 2;
  p.m = 0;
  const AddressTrace t = motion_estimation_read(p);
  // Table 1 (LinAS / RowAS / ColAS), verbatim from the paper.
  EXPECT_EQ(t.linear(), (V{0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15}));
  EXPECT_EQ(t.rows(), (V{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3}));
  EXPECT_EQ(t.cols(), (V{0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3}));
}

TEST(Workloads, MotionEstimationSearchRangeRepeatsBlocks) {
  MotionEstimationParams p;
  p.img_width = p.img_height = 4;
  p.mb_width = p.mb_height = 2;
  p.m = 1;  // 4 search iterations per block
  const AddressTrace t = motion_estimation_read(p);
  EXPECT_EQ(t.length(), 16u * 4u);
  // First block (addresses 0,1,4,5) scanned 4 times before moving on.
  for (int rep = 0; rep < 4; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * 4;
    EXPECT_EQ(t.linear()[base + 0], 0u);
    EXPECT_EQ(t.linear()[base + 1], 1u);
    EXPECT_EQ(t.linear()[base + 2], 4u);
    EXPECT_EQ(t.linear()[base + 3], 5u);
  }
}

TEST(Workloads, MotionEstimationValidation) {
  MotionEstimationParams p;
  p.img_width = 4;
  p.img_height = 4;
  p.mb_width = 3;  // does not tile
  p.mb_height = 2;
  EXPECT_THROW(motion_estimation_read(p), std::invalid_argument);
}

TEST(Workloads, IncrementalAndFifo) {
  const AddressTrace t = incremental({4, 2});
  EXPECT_EQ(t.length(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(t.linear()[i], i);
  EXPECT_TRUE(is_permutation_of_range(t.linear(), 8));
  EXPECT_EQ(fifo({4, 2}).linear(), t.linear());
}

TEST(Workloads, DctBlockColumnRead) {
  const AddressTrace t = dct_block_column_read({4, 4}, 2);
  // First 2x2 block read column-by-column: (0,0),(1,0),(0,1),(1,1).
  EXPECT_EQ(t.linear()[0], 0u);
  EXPECT_EQ(t.linear()[1], 4u);
  EXPECT_EQ(t.linear()[2], 1u);
  EXPECT_EQ(t.linear()[3], 5u);
  EXPECT_TRUE(is_permutation_of_range(t.linear(), 16));
}

TEST(Workloads, ZoomByTwoReadsEachPixelFourTimes) {
  const AddressTrace t = zoom_by_two_read({2, 2});
  EXPECT_EQ(t.length(), 16u);
  // Output row 0: source (0,0),(0,0),(0,1),(0,1); row 1 repeats it.
  EXPECT_EQ(t.linear(), (V{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3}));
  std::vector<int> counts(4, 0);
  for (auto a : t.linear()) ++counts[a];
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Workloads, TransposeRead) {
  const AddressTrace t = transpose_read({3, 2});
  EXPECT_EQ(t.linear(), (V{0, 3, 1, 4, 2, 5}));
}

TEST(Workloads, BlockRasterMatchesMotionEstimation) {
  MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  EXPECT_EQ(block_raster({8, 8}, 4, 4).linear(), motion_estimation_read(p).linear());
}

TEST(Workloads, StridedVisitsAll) {
  const AddressTrace t = strided({4, 4}, 3);  // gcd(3,16)=1
  EXPECT_EQ(t.linear()[0], 0u);
  EXPECT_EQ(t.linear()[1], 3u);
  std::vector<bool> seen(16, false);
  for (auto a : t.linear()) seen[a] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Workloads, ZigzagVisitsAllInAntiDiagonals) {
  const AddressTrace t = zigzag({4, 4});
  EXPECT_TRUE(is_permutation_of_range(t.linear(), 16));
  // The classic JPEG head: 0, then diagonal 1 downward (1,4), diagonal 2
  // upward (8,5,2), ...
  EXPECT_EQ(t.linear()[0], 0u);
  EXPECT_EQ(t.linear()[1], 1u);
  EXPECT_EQ(t.linear()[2], 4u);
  EXPECT_EQ(t.linear()[3], 8u);
  EXPECT_EQ(t.linear()[4], 5u);
  EXPECT_EQ(t.linear()[5], 2u);
}

TEST(Workloads, ZigzagNonSquare) {
  const AddressTrace t = zigzag({3, 2});
  EXPECT_TRUE(is_permutation_of_range(t.linear(), 6));
}

TEST(Workloads, RepeatEach) {
  const AddressTrace t = repeat_each(incremental({2, 2}), 3);
  EXPECT_EQ(t.linear(), (V{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}));
  EXPECT_THROW(repeat_each(t, 0), std::invalid_argument);
}

TEST(Analysis, RunLengths) {
  EXPECT_EQ(run_lengths(V{0, 0, 1, 1, 1, 2}), (V{2, 3, 1}));
  EXPECT_EQ(run_lengths(V{5}), (V{1}));
  EXPECT_TRUE(run_lengths(V{}).empty());
}

TEST(Analysis, AllEqual) {
  EXPECT_TRUE(all_equal(V{2, 2, 2}));
  EXPECT_FALSE(all_equal(V{2, 3}));
  EXPECT_FALSE(all_equal(V{}));
}

TEST(Analysis, CollapseRuns) {
  EXPECT_EQ(collapse_runs(V{0, 0, 1, 1, 0, 0}), (V{0, 1, 0}));
  EXPECT_EQ(collapse_runs(V{7}), (V{7}));
}

TEST(Analysis, UniqueInOrder) {
  EXPECT_EQ(unique_in_order(V{5, 1, 5, 4, 1, 0}), (V{5, 1, 4, 0}));
}

TEST(Analysis, OccurrenceInfo) {
  const V reduced{0, 1, 0, 1, 2, 3, 2, 3};
  const V unique{0, 1, 2, 3};
  const auto info = occurrence_info(reduced, unique);
  EXPECT_EQ(info.occurrences, (V{2, 2, 2, 2}));
  EXPECT_EQ(info.first_pos, (V{0, 1, 4, 5}));
}

TEST(Analysis, SmallestPeriod) {
  EXPECT_EQ(smallest_period(V{1, 2, 1, 2, 1, 2}), 2u);
  EXPECT_EQ(smallest_period(V{1, 2, 3}), 3u);
  EXPECT_EQ(smallest_period(V{4, 4, 4}), 1u);
  // Partial trailing period still counts.
  EXPECT_EQ(smallest_period(V{1, 2, 3, 1, 2}), 3u);
}

TEST(Analysis, IsPermutationOfRange) {
  EXPECT_TRUE(is_permutation_of_range(V{2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_of_range(V{2, 0, 0}, 3));
  EXPECT_FALSE(is_permutation_of_range(V{0, 1}, 3));
}

// Every workload generator must stay within its declared geometry (the
// AddressTrace constructor enforces it; this sweep exercises the generators).
TEST(Workloads, GeneratorsProduceValidTraces) {
  for (std::size_t dim : {8u, 16u, 32u}) {
    const ArrayGeometry g{dim, dim};
    EXPECT_EQ(incremental(g).length(), dim * dim);
    EXPECT_EQ(dct_block_column_read(g, 8).length(), dim * dim);
    EXPECT_EQ(zoom_by_two_read(g).length(), 4 * dim * dim);
    EXPECT_EQ(transpose_read(g).length(), dim * dim);
    EXPECT_EQ(block_raster(g, 8, 8).length(), dim * dim);
    EXPECT_EQ(strided(g, 3).length(), dim * dim);
  }
}

}  // namespace
}  // namespace addm::seq
