// Tests for the affine loop-nest front end: trip counts, odometer
// enumeration, bounds checking, and cross-checks against the hand-written
// workload generators.
#include <gtest/gtest.h>

#include "seq/loopnest.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

TEST(Loop, TripCounts) {
  EXPECT_EQ((Loop{"i", 0, 4, 1}).trip_count(), 4u);
  EXPECT_EQ((Loop{"i", 0, 5, 2}).trip_count(), 3u);
  EXPECT_EQ((Loop{"i", -2, 2, 1}).trip_count(), 4u);
  EXPECT_EQ((Loop{"i", 3, -1, -1}).trip_count(), 4u);
  EXPECT_THROW((Loop{"i", 0, 0, 1}).trip_count(), std::invalid_argument);
  EXPECT_THROW((Loop{"i", 0, 4, 0}).trip_count(), std::invalid_argument);
  EXPECT_THROW((Loop{"i", 0, 4, -1}).trip_count(), std::invalid_argument);
}

TEST(LoopNest, RasterEnumeration) {
  LoopNest nest;
  nest.add("r", 0, 2).add("c", 0, 3);
  EXPECT_EQ(nest.iterations(), 6u);
  AffineAccess acc;
  acc.row_coeffs = {1, 0};
  acc.col_coeffs = {0, 1};
  const auto t = nest.trace(acc, {3, 2});
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST(LoopNest, StridedAndOffsetAccess) {
  LoopNest nest;
  nest.add("i", 0, 3);
  AffineAccess acc;
  acc.row_coeffs = {1};
  acc.col_coeffs = {0};
  acc.col_offset = 2;
  const auto t = nest.trace(acc, {4, 4});
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{2, 6, 10}));
}

TEST(LoopNest, NegativeStepLoop) {
  LoopNest nest;
  nest.add("i", 3, -1, -1);
  AffineAccess acc;
  acc.row_coeffs = {0};
  acc.col_coeffs = {1};
  const auto t = nest.trace(acc, {4, 1});
  EXPECT_EQ(t.linear(), (std::vector<std::uint32_t>{3, 2, 1, 0}));
}

TEST(LoopNest, OutOfRangeAccessRejected) {
  LoopNest nest;
  nest.add("i", 0, 5);
  AffineAccess acc;
  acc.row_coeffs = {0};
  acc.col_coeffs = {1};
  EXPECT_THROW(nest.trace(acc, {4, 1}), std::invalid_argument);  // i=4 -> col 4
}

TEST(LoopNest, NegativeAddressRejected) {
  LoopNest nest;
  nest.add("i", 0, 3);
  AffineAccess acc;
  acc.row_coeffs = {0};
  acc.col_coeffs = {1};
  acc.col_offset = -1;
  EXPECT_THROW(nest.trace(acc, {4, 1}), std::invalid_argument);
}

TEST(LoopNest, EmptyNestRejected) {
  LoopNest nest;
  EXPECT_THROW(nest.trace(AffineAccess{}, {2, 2}), std::invalid_argument);
}

TEST(LoopNestProgram, MotionEstimationMatchesGenerator) {
  for (int m : {0, 1, 2}) {
    MotionEstimationParams p;
    p.img_width = p.img_height = 8;
    p.mb_width = p.mb_height = 4;
    p.m = m;
    const auto prog = motion_estimation_program(p);
    const auto from_nest = prog.nest.trace(prog.access, prog.geometry);
    const auto from_generator = motion_estimation_read(p);
    EXPECT_EQ(from_nest.linear(), from_generator.linear()) << "m=" << m;
  }
}

TEST(LoopNestProgram, RasterMatchesIncremental) {
  const ArrayGeometry g{8, 4};
  const auto prog = raster_program(g);
  EXPECT_EQ(prog.nest.trace(prog.access, prog.geometry).linear(),
            incremental(g).linear());
}

TEST(LoopNestProgram, DctMatchesGenerator) {
  const ArrayGeometry g{16, 16};
  const auto prog = dct_block_column_program(g, 8);
  EXPECT_EQ(prog.nest.trace(prog.access, prog.geometry).linear(),
            dct_block_column_read(g, 8).linear());
}

TEST(LoopNestProgram, DctValidatesBlock) {
  EXPECT_THROW(dct_block_column_program({10, 10}, 8), std::invalid_argument);
}

}  // namespace
}  // namespace addm::seq
