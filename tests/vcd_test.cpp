// Tests for the VCD waveform recorder.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace addm::sim {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

Netlist toggle_design() {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(netlist::CellType::Dff, {b.inv(q)}, q);
  nl.add_input("en");  // unused input, must still appear in the header
  nl.add_output("q[0]", q);
  return nl;
}

TEST(Vcd, HeaderDeclaresSignals) {
  const Netlist nl = toggle_design();
  Simulator s(nl);
  VcdRecorder vcd(s, "toggler");
  const std::string out = vcd.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module toggler $end"), std::string::npos);
  EXPECT_NE(out.find(" en $end"), std::string::npos);
  EXPECT_NE(out.find(" q_0 $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, RecordsValueChangesOnly) {
  const Netlist nl = toggle_design();
  Simulator s(nl);
  VcdRecorder vcd(s);
  for (int i = 0; i < 4; ++i) {
    s.step();
    vcd.sample();
  }
  const std::string out = vcd.str();
  // q toggles every cycle: timestamps #1..#4 all present.
  for (int t = 1; t <= 4; ++t)
    EXPECT_NE(out.find("#" + std::to_string(t) + "\n"), std::string::npos) << t;
  EXPECT_EQ(vcd.samples(), 4u);
}

TEST(Vcd, QuietCyclesEmitNoTimestamp) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  b.output("q", b.dff(d));
  Simulator s(nl);
  s.set("d", false);
  VcdRecorder vcd(s);
  s.step();
  vcd.sample();  // nothing changed
  EXPECT_EQ(vcd.str().find("#1\n"), std::string::npos);
}

TEST(Vcd, InternalNetsOptional) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.inv(b.inv(a)));
  Simulator s(nl);
  VcdOptions opt;
  opt.include_internal_nets = true;
  VcdRecorder with(s, "top", opt);
  VcdRecorder without(s, "top");
  EXPECT_GT(with.str().size(), without.str().size());
}

TEST(Vcd, IdsAreUniquePrintable) {
  // 100+ signals exercise the multi-character base-94 identifiers.
  Netlist nl;
  NetlistBuilder b(nl);
  for (int i = 0; i < 120; ++i) b.output("o" + std::to_string(i), b.input("i" + std::to_string(i)));
  Simulator s(nl);
  VcdRecorder vcd(s);
  const std::string out = vcd.str();
  std::size_t vars = 0;
  for (std::size_t pos = out.find("$var"); pos != std::string::npos;
       pos = out.find("$var", pos + 1))
    ++vars;
  // Each output aliases its input net, and aliased nets are recorded once.
  EXPECT_EQ(vars, 120u);
}

}  // namespace
}  // namespace addm::sim
