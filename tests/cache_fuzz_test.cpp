// Randomized corruption fuzzing for the persistent evaluation cache.
//
// Each round builds a small cache, injects a random mix of the corruptions a
// real deployment can produce — index truncated mid-record, payload bytes
// flipped, payload files deleted or replaced, torn concurrent-writer files,
// garbage index lines, stale temp files — and then asserts the robustness
// contract: every load degrades to a miss or returns byte-exact original
// data (never a wrong hit, never a crash), verify() never throws, and one
// compact() pass repairs the directory to a clean, idempotent canonical
// form.
//
// The seed is logged on every run and can be pinned for reproduction:
//   ADDM_FUZZ_SEED=12345 ./cache_fuzz_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/fingerprint.hpp"

namespace addm::core {
namespace {

namespace fs = std::filesystem;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("ADDM_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return std::random_device{}();
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "addm_cache_fuzz" / name;
  fs::remove_all(dir);
  fs::create_directories(dir.parent_path());
  return dir.string();
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spew(const fs::path& p, const std::string& text) {
  std::ofstream(p, std::ios::binary | std::ios::trunc) << text;
}

/// Byte map of a cache directory (filename -> contents); the canonical-form
/// and idempotence checks compare these.
std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& f : fs::directory_iterator(dir))
    if (f.is_regular_file()) files[f.path().filename().string()] = slurp(f.path());
  return files;
}

EvalCacheEntry make_entry(std::mt19937_64& rng, std::uint64_t trace_hash,
                          std::uint64_t options_hash) {
  EvalCacheEntry e;
  e.key = {trace_hash, options_hash};
  const std::size_t n = 1 + rng() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    DesignPoint p;
    p.architecture = "arch" + std::to_string(rng() % 8);
    p.feasible = rng() % 4 != 0;
    if (p.feasible) {
      p.metrics.area_units = static_cast<double>(rng() % 100000) / 7.0;
      p.metrics.delay_ns = static_cast<double>(rng() % 1000) / 13.0;
      p.metrics.cells = rng() % 500;
      p.metrics.flipflops = rng() % 100;
    }
    std::string note;
    for (std::size_t c = rng() % 20; c > 0; --c)
      note += static_cast<char>(rng() % 256);  // arbitrary bytes incl. NUL/newline
    p.note = note;
    e.points.push_back(std::move(p));
  }
  e.pareto.push_back(0);
  return e;
}

struct Fuzzer {
  std::mt19937_64 rng;

  /// Valid entries as originally stored, by filename: the wrong-hit oracle.
  std::map<std::string, std::string> originals;

  std::string filename(const EvalCacheKey& k) {
    return hex64(k.trace_hash) + "-" + hex64(k.options_hash) + ".entry";
  }

  void corrupt(const std::string& dir) {
    const fs::path root(dir);
    const int kinds = 1 + static_cast<int>(rng() % 4);
    for (int k = 0; k < kinds; ++k) {
      switch (rng() % 7) {
        case 0: {  // truncate the index at a random byte (mid-record included)
          const fs::path index = root / "index.txt";
          std::string text = slurp(index);
          if (!text.empty()) spew(index, text.substr(0, rng() % text.size()));
          break;
        }
        case 1: {  // flip a byte in a random payload
          std::vector<fs::path> payloads;
          for (const auto& f : fs::directory_iterator(root))
            if (f.path().extension() == ".entry") payloads.push_back(f.path());
          if (payloads.empty()) break;
          const fs::path victim = payloads[rng() % payloads.size()];
          std::string text = slurp(victim);
          if (text.empty()) break;
          text[rng() % text.size()] ^= static_cast<char>(1 + rng() % 255);
          spew(victim, text);
          break;
        }
        case 2: {  // delete a random payload
          std::vector<fs::path> payloads;
          for (const auto& f : fs::directory_iterator(root))
            if (f.path().extension() == ".entry") payloads.push_back(f.path());
          if (!payloads.empty()) fs::remove(payloads[rng() % payloads.size()]);
          break;
        }
        case 3: {  // garbage / partial lines appended to the index
          std::ofstream out(root / "index.txt", std::ios::app);
          switch (rng() % 3) {
            case 0: out << "entry deadbeef\n"; break;
            case 1: out << "entry " << hex64(rng()) << " " << hex64(rng()); break;
            case 2: out << std::string(1 + rng() % 40, '\xfe') << "\n"; break;
          }
          break;
        }
        case 4: {  // torn write: a half-payload under a brand-new key
          const EvalCacheKey key{rng(), rng()};
          const std::string text =
              serialize_eval_entry(make_entry(rng, key.trace_hash, key.options_hash));
          spew(root / filename(key), text.substr(0, text.size() / 2));
          break;
        }
        case 5: {  // stale temp file from a crashed writer
          spew(root / ("index.txt.tmp." + std::to_string(rng() % 100000)),
               "partial");
          break;
        }
        case 6: {  // payload replaced wholesale with junk
          std::vector<fs::path> payloads;
          for (const auto& f : fs::directory_iterator(root))
            if (f.path().extension() == ".entry") payloads.push_back(f.path());
          if (!payloads.empty()) spew(payloads[rng() % payloads.size()], "junk\n");
          break;
        }
      }
    }
  }

  void run_round(const std::string& dir) {
    originals.clear();
    EvalCacheDir cache(dir);
    const std::size_t count = 4 + rng() % 9;
    std::vector<EvalCacheEntry> batch;
    for (std::size_t i = 0; i < count; ++i) {
      EvalCacheEntry e = make_entry(rng, rng(), rng() % 3);  // few option sets
      if (originals.count(filename(e.key))) continue;
      originals[filename(e.key)] = serialize_eval_entry(e);
      batch.push_back(std::move(e));
    }
    ASSERT_EQ(cache.store_batch(batch), batch.size());

    corrupt(dir);

    // Contract 1: loads never throw and never return a wrong hit — every
    // loaded entry must byte-match what was originally stored for its key.
    EvalCacheLoadStats stats;
    const auto loaded = cache.load_all(&stats);
    EXPECT_LE(loaded.size(), originals.size());
    for (const auto& e : loaded) {
      auto it = originals.find(filename(e.key));
      ASSERT_NE(it, originals.end()) << "hit on a never-stored key";
      EXPECT_EQ(serialize_eval_entry(e), it->second) << "wrong hit";
    }

    // Contract 2: verify never throws; compact repairs to a clean, stable,
    // idempotent directory that still only serves original data.
    (void)cache.verify();
    const auto m = cache.compact();
    EXPECT_TRUE(m.ok);
    const auto v = cache.verify();
    EXPECT_TRUE(v.clean()) << "missing=" << v.missing << " corrupt=" << v.corrupt
                           << " orphans=" << v.orphans
                           << " orphan_corrupt=" << v.orphan_corrupt
                           << " stale=" << v.stale_files
                           << " damage=" << v.index_damage;
    const auto once = dir_bytes(dir);
    EXPECT_TRUE(cache.compact().ok);
    EXPECT_EQ(dir_bytes(dir), once) << "compact not idempotent";

    for (const auto& e : cache.load_all()) {
      auto it = originals.find(filename(e.key));
      ASSERT_NE(it, originals.end()) << "post-compact hit on a never-stored key";
      EXPECT_EQ(serialize_eval_entry(e), it->second) << "post-compact wrong hit";
    }
  }
};

TEST(CacheFuzz, RandomCorruptionNeverCrashesOrLies) {
  const std::uint64_t seed = fuzz_seed();
  // Logged unconditionally so a CI failure is reproducible locally.
  std::fprintf(stderr, "cache_fuzz seed: %llu (pin with ADDM_FUZZ_SEED)\n",
               static_cast<unsigned long long>(seed));
  Fuzzer fuzzer;
  fuzzer.rng.seed(seed);
  constexpr int kRounds = 120;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round) + " seed " + std::to_string(seed));
    const std::string dir = fresh_dir("round");
    fuzzer.run_round(dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace addm::core
