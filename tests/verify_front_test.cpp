// Tests for the --verify-front exploration stage (core/verify.hpp): Pareto
// points get deterministic verification verdicts appended to their notes,
// non-front points are untouched, failures are reported (not thrown), and
// the options fingerprint stays pinned for the default options.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/explorer.hpp"
#include "core/fingerprint.hpp"
#include "core/verify.hpp"
#include "netlist/builder.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

TEST(VerifyFront, AnnotatesOnlyParetoPoints) {
  const auto trace = seq::block_raster({8, 8}, 4, 4);
  ExploreOptions off;
  ExploreOptions on;
  on.verify_front = true;

  const auto base = explore_generators(trace, off);
  const auto verified = explore_generators(trace, on);
  ASSERT_EQ(base.size(), verified.size());

  const auto front = pareto_front(base);
  ASSERT_FALSE(front.empty());
  const std::set<std::size_t> on_front(front.begin(), front.end());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (on_front.count(i)) {
      EXPECT_EQ(verified[i].note.rfind(base[i].note, 0), 0u)
          << verified[i].architecture << ": verdict must append, not rewrite";
      EXPECT_NE(verified[i].note.find("[verified:"), std::string::npos)
          << verified[i].architecture << ": " << verified[i].note;
      EXPECT_EQ(verified[i].note.find("FAILED"), std::string::npos)
          << verified[i].architecture << ": " << verified[i].note;
    } else {
      EXPECT_EQ(verified[i].note, base[i].note) << verified[i].architecture;
    }
  }
}

TEST(VerifyFront, EveryRegistryEntryHasAReference) {
  for (const GeneratorEntry& e : generator_registry())
    EXPECT_TRUE(static_cast<bool>(e.reference)) << e.name;
}

TEST(VerifyFront, ReportsMismatchWithCycleDiagnostics) {
  // A "generator" whose select lines are stuck at line 0: correct for the
  // first access of a raster trace, wrong as soon as the address moves.
  ReferenceCircuit rc;
  netlist::NetlistBuilder b(rc.netlist);
  b.input("reset");
  b.input("next");
  const std::vector<netlist::NetId> stuck = {netlist::kConst1, netlist::kConst0,
                                             netlist::kConst0, netlist::kConst0};
  b.output_bus("rs", stuck);
  b.output_bus("cs", stuck);

  const auto trace = seq::block_raster({4, 4}, 2, 2);
  const auto err = verify_reference_against_trace(rc, trace);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos) << *err;

  // A missing bus is its own diagnostic, not a crash.
  ReferenceCircuit no_bus = rc;
  no_bus.row_bus = "zz";
  const auto err2 = verify_reference_against_trace(no_bus, trace);
  ASSERT_TRUE(err2.has_value());
  EXPECT_NE(err2->find("no output bus"), std::string::npos) << *err2;
}

TEST(VerifyFront, FingerprintPinnedWhenDisabledDistinctWhenEnabled) {
  const ExploreOptions def;
  ExploreOptions off;
  off.verify_front = false;
  ExploreOptions on;
  on.verify_front = true;
  EXPECT_EQ(options_fingerprint(def), options_fingerprint(off));
  EXPECT_NE(options_fingerprint(def), options_fingerprint(on));
}

TEST(VerifyFront, BatchReportDeterministicAcrossThreads) {
  const auto traces = seq::scaled_suite({8, 8}, 1);

  BatchOptions serial;
  serial.threads = 1;
  serial.explore.verify_front = true;
  BatchOptions threaded;
  threaded.threads = 4;
  threaded.explore.arch_threads = 2;
  threaded.explore.verify_front = true;

  BatchExplorer a(serial);
  BatchExplorer b(threaded);
  const std::string ra = batch_report_csv(a.run(traces));
  const std::string rb = batch_report_csv(b.run(traces));
  EXPECT_EQ(ra, rb);
  EXPECT_NE(ra.find("[verified:"), std::string::npos);
  EXPECT_EQ(ra.find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace addm::core
