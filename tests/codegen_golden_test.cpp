// Golden-file regression tests for the HDL emitters: the Verilog and VHDL
// renderings of a fixed SRAG configuration are compared byte-for-byte with
// checked-in references under tests/golden/.
//
// The golden directory is found through the ADDM_GOLDEN_DIR environment
// variable (set by CMake for ctest runs). To regenerate after an intentional
// emitter change, run with ADDM_UPDATE_GOLDEN=1 and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "core/srag_elab.hpp"

namespace addm::codegen {
namespace {

core::SragConfig fixed_config() {
  // The Figure-5 SRAG with both counters active: two registers of four
  // flip-flops, dC=2, pC=8 — exercises DivCnt, PassCnt, muxes and tie-offs.
  core::SragConfig cfg;
  cfg.registers = {{5, 1, 4, 0}, {3, 7, 6, 2}};
  cfg.div_count = 2;
  cfg.pass_count = 8;
  cfg.num_select_lines = 10;  // lines 8 and 9 are never visited: tied low
  return cfg;
}

std::string golden_dir() {
  const char* dir = std::getenv("ADDM_GOLDEN_DIR");
  return dir ? dir : "tests/golden";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void compare_with_golden(const std::string& generated, const std::string& file) {
  const std::string path = golden_dir() + "/" + file;
  if (std::getenv("ADDM_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << generated;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << path
      << " (run with ADDM_UPDATE_GOLDEN=1 to create it)";
  EXPECT_EQ(generated, expected)
      << "emitter output diverged from " << path
      << "; if intentional, regenerate with ADDM_UPDATE_GOLDEN=1";
}

TEST(CodegenGolden, SragVerilog) {
  const netlist::Netlist nl = core::elaborate_srag(fixed_config());
  compare_with_golden(to_verilog(nl, "srag_fixed"), "srag_fixed.v.golden");
}

TEST(CodegenGolden, SragStructuralVhdl) {
  const netlist::Netlist nl = core::elaborate_srag(fixed_config());
  compare_with_golden(to_structural_vhdl(nl, "srag_fixed"),
                      "srag_fixed_structural.vhd.golden");
}

TEST(CodegenGolden, SragBehavioralVhdl) {
  compare_with_golden(srag_to_behavioral_vhdl(fixed_config(), "srag_fixed"),
                      "srag_fixed_behavioral.vhd.golden");
}

TEST(CodegenGolden, EmittersAreDeterministic) {
  const netlist::Netlist nl = core::elaborate_srag(fixed_config());
  EXPECT_EQ(to_verilog(nl, "srag_fixed"), to_verilog(nl, "srag_fixed"));
  EXPECT_EQ(to_structural_vhdl(nl, "srag_fixed"), to_structural_vhdl(nl, "srag_fixed"));
}

}  // namespace
}  // namespace addm::codegen
