# End-to-end streaming-pipeline smoke, run as a ctest entry and by the CI
# smoke job:
#
#   1. addm_trace_import on the checked-in lackey log must reproduce the
#      checked-in golden trace byte-for-byte (stdin and --in/--out paths)
#   2. addm_explore --stream must produce byte-identical reports to the
#      materializing reader on that trace
#   3. --compress-periodic on the (aperiodic) imported trace must be a
#      byte-for-byte no-op on the report
#   4. a generated multi-pass periodic trace must explore with every note
#      annotated "[periodic 300x8]", and --stream --compress-periodic must
#      agree with --compress-periodic alone
#
# Usage: cmake -DADDM_EXPLORE=... -DADDM_TRACE_IMPORT=... -DGOLDEN_DIR=...
#              -DWORK_DIR=... -P this
foreach(var ADDM_EXPLORE ADDM_TRACE_IMPORT GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

macro(run_checked)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE _rc ERROR_VARIABLE _err OUTPUT_QUIET)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${_rc}): ${ARGN}\n${_err}")
  endif()
endmacro()

macro(compare_files a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE _cmp)
  if(NOT _cmp EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endmacro()

# 1. Import the checked-in lackey log; must match the checked-in golden.
run_checked(${ADDM_TRACE_IMPORT} --geometry 8x8
  --in ${GOLDEN_DIR}/lackey_sample.log
  --out ${WORK_DIR}/imported.trace --quiet)
compare_files(${WORK_DIR}/imported.trace ${GOLDEN_DIR}/lackey_sample.trace
  "lackey import golden")

# Stdin path must behave exactly like --in.
execute_process(COMMAND ${ADDM_TRACE_IMPORT} --geometry 8x8
  --out ${WORK_DIR}/imported_stdin.trace --quiet
  INPUT_FILE ${GOLDEN_DIR}/lackey_sample.log
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stdin import failed (rc=${rc}):\n${err}")
endif()
compare_files(${WORK_DIR}/imported_stdin.trace ${WORK_DIR}/imported.trace
  "stdin vs --in import")

# 2 + 3. Explore the imported trace four ways: the report bytes must never
# change (the trace is aperiodic, so compression is a strict no-op).
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/imported.trace
  --out ${WORK_DIR}/imported.csv --quiet)
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/imported.trace --stream
  --out ${WORK_DIR}/imported_stream.csv --quiet)
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/imported.trace
  --compress-periodic --out ${WORK_DIR}/imported_compressed.csv --quiet)
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/imported.trace --stream
  --compress-periodic --out ${WORK_DIR}/imported_both.csv --quiet)
compare_files(${WORK_DIR}/imported_stream.csv ${WORK_DIR}/imported.csv
  "--stream report")
compare_files(${WORK_DIR}/imported_compressed.csv ${WORK_DIR}/imported.csv
  "--compress-periodic report (aperiodic trace)")
compare_files(${WORK_DIR}/imported_both.csv ${WORK_DIR}/imported.csv
  "--stream --compress-periodic report (aperiodic trace)")

# 4. A periodic trace: 300 passes over an 8-access loop.  Compression must
# annotate every generator note, and streaming must not change the result.
set(body "geometry 8 8\nname loop8\n")
foreach(i RANGE 299)
  string(APPEND body "0 1 2 3 8 9 10 11\n")
endforeach()
file(WRITE ${WORK_DIR}/periodic.trace "${body}")
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/periodic.trace
  --compress-periodic --out ${WORK_DIR}/periodic.csv --quiet)
run_checked(${ADDM_EXPLORE} --trace ${WORK_DIR}/periodic.trace --stream
  --compress-periodic --out ${WORK_DIR}/periodic_stream.csv --quiet)
compare_files(${WORK_DIR}/periodic_stream.csv ${WORK_DIR}/periodic.csv
  "--stream --compress-periodic report (periodic trace)")

file(STRINGS ${WORK_DIR}/periodic.csv report_lines)
list(LENGTH report_lines n_lines)
if(n_lines LESS 2)
  message(FATAL_ERROR "periodic report unexpectedly short (${n_lines} lines)")
endif()
set(row 0)
foreach(line IN LISTS report_lines)
  if(row GREATER 0 AND NOT line MATCHES "\\[periodic 300x8\\]")
    message(FATAL_ERROR "report row lacks the periodic annotation: ${line}")
  endif()
  math(EXPR row "${row} + 1")
endforeach()

message(STATUS "stream smoke OK: golden import, --stream and "
  "--compress-periodic byte-identical, periodic annotation present")
