# End-to-end nested-parallelism determinism check (ctest entry + CI):
# addm_explore must produce byte-identical CSV and JSON reports AND
# byte-identical cache directories (index.txt line order included) for
# every --threads x --arch-threads combination, and an --archs-filtered
# run sharing a cache directory with a full run must never be served from
# (or poison) the full run's entries.
#
# Usage: cmake -DADDM_EXPLORE=... -DWORK_DIR=... -P this
foreach(var ADDM_EXPLORE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(SUITE 1)  # 9 traces at 8x8

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

macro(run_checked)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE _rc ERROR_VARIABLE _err OUTPUT_QUIET)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${_rc}): ${ARGN}\n${_err}")
  endif()
endmacro()

macro(compare_files a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE _cmp)
  if(NOT _cmp EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endmacro()

# Byte-compares two cache directories: same file names, same contents.
macro(compare_dirs a b what)
  file(GLOB _a_files RELATIVE ${a} ${a}/*)
  file(GLOB _b_files RELATIVE ${b} ${b}/*)
  list(SORT _a_files)
  list(SORT _b_files)
  if(NOT _a_files STREQUAL _b_files)
    message(FATAL_ERROR "${what}: file sets differ\n  ${a}: ${_a_files}\n  ${b}: ${_b_files}")
  endif()
  if(_a_files STREQUAL "")
    message(FATAL_ERROR "${what}: cache directories are empty")
  endif()
  foreach(f ${_a_files})
    compare_files(${a}/${f} ${b}/${f} "${what} (${f})")
  endforeach()
endmacro()

# Reference: fully serial run.
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 1 --arch-threads 1
  --cache-dir ${WORK_DIR}/cache_ref --format csv --out ${WORK_DIR}/ref.csv --quiet)
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 1 --arch-threads 1
  --format json --out ${WORK_DIR}/ref.json --quiet)

# The matrix: every combination must reproduce reports and cache bytes.
foreach(threads 1 4)
  foreach(arch 1 2 8)
    if(threads EQUAL 1 AND arch EQUAL 1)
      continue()
    endif()
    set(tag t${threads}_a${arch})
    run_checked(${ADDM_EXPLORE} --suite ${SUITE}
      --threads ${threads} --arch-threads ${arch}
      --cache-dir ${WORK_DIR}/cache_${tag}
      --format csv --out ${WORK_DIR}/${tag}.csv --quiet)
    run_checked(${ADDM_EXPLORE} --suite ${SUITE}
      --threads ${threads} --arch-threads ${arch}
      --format json --out ${WORK_DIR}/${tag}.json --quiet)
    compare_files(${WORK_DIR}/${tag}.csv ${WORK_DIR}/ref.csv "CSV ${tag}")
    compare_files(${WORK_DIR}/${tag}.json ${WORK_DIR}/ref.json "JSON ${tag}")
    compare_dirs(${WORK_DIR}/cache_${tag} ${WORK_DIR}/cache_ref "cache ${tag}")
  endforeach()
endforeach()

# --archs subset: distinct cache keys, so a warm full-run cache serves the
# full run but NOT the filtered run, and after both ran, both are warm.
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --archs SRAG,CntAG-flat
  --cache-dir ${WORK_DIR}/cache_ref --format csv
  --out ${WORK_DIR}/filtered.csv --quiet)
execute_process(COMMAND ${ADDM_EXPLORE} --suite ${SUITE}
  --cache-dir ${WORK_DIR}/cache_ref --format csv --out ${WORK_DIR}/full_warm.csv
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm full rerun failed (rc=${rc}):\n${err}")
endif()
if(NOT err MATCHES "\\(0 evaluated, 0 memo hits, 9 disk hits, 0 errors\\)")
  message(FATAL_ERROR "filtered run poisoned the full run's cache keys:\n${err}")
endif()
compare_files(${WORK_DIR}/full_warm.csv ${WORK_DIR}/ref.csv "full report after filtered run")
execute_process(COMMAND ${ADDM_EXPLORE} --suite ${SUITE} --archs SRAG,CntAG-flat
  --cache-dir ${WORK_DIR}/cache_ref --format csv --out ${WORK_DIR}/filtered_warm.csv
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm filtered rerun failed (rc=${rc}):\n${err}")
endif()
if(NOT err MATCHES "\\(0 evaluated, 0 memo hits, 9 disk hits, 0 errors\\)")
  message(FATAL_ERROR "filtered rerun was not served from its own keys:\n${err}")
endif()
compare_files(${WORK_DIR}/filtered_warm.csv ${WORK_DIR}/filtered.csv
  "filtered report warm vs cold")

message(STATUS "arch determinism OK: reports and cache dirs byte-identical across the thread matrix; --archs keys are disjoint")
