// Tests for the memoization fingerprints: stability, name-independence, and
// sensitivity to every field that changes exploration results.
#include <gtest/gtest.h>

#include "core/fingerprint.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

seq::AddressTrace named(const seq::AddressTrace& t, const std::string& name) {
  seq::AddressTrace copy = t;
  copy.set_name(name);
  return copy;
}

TEST(Fingerprint, TraceHashIgnoresName) {
  const auto t = seq::transpose_read({8, 8});
  EXPECT_EQ(trace_fingerprint(t), trace_fingerprint(named(t, "other")));
}

TEST(Fingerprint, TraceHashSeesAddressesAndGeometry) {
  const auto a = seq::transpose_read({8, 8});
  const auto b = seq::incremental({8, 8});
  EXPECT_NE(trace_fingerprint(a), trace_fingerprint(b));
  // Same linear sequence, different geometry: incremental 4x8 vs 8x4.
  const auto g1 = seq::incremental({4, 8});
  const auto g2 = seq::incremental({8, 4});
  EXPECT_EQ(g1.linear(), g2.linear());
  EXPECT_NE(trace_fingerprint(g1), trace_fingerprint(g2));
}

TEST(Fingerprint, TraceHashStableAcrossRuns) {
  // Pinned value: the cache key format is part of the report (trace_hash
  // column), so accidental changes should fail a test.
  const auto t = seq::incremental({4, 4});
  EXPECT_EQ(trace_fingerprint(t), trace_fingerprint(seq::incremental({4, 4})));
  const std::uint64_t once = trace_fingerprint(t);
  EXPECT_NE(once, 0u);
}

TEST(Fingerprint, PinnedValuesForCacheCompatibility) {
  // Persisted-cache compatibility across code changes: these exact values
  // were produced by the pre-registry-refactor explorer.  If either
  // changes, every existing cache directory silently goes cold — that must
  // be a deliberate kOptionsFingerprintSeed bump, never an accident.
  EXPECT_EQ(options_fingerprint(ExploreOptions{}), 0x80f73374c170bfacull);
  EXPECT_EQ(trace_fingerprint(seq::incremental({8, 8})), 0x0484d9da654efdc5ull);
}

TEST(Fingerprint, ArchThreadsIsSchedulingOnlyAndNotHashed) {
  // arch_threads never changes exploration output, so serial and parallel
  // runs must share cache entries.
  const ExploreOptions base;
  for (std::size_t t : {0u, 1u, 2u, 64u}) {
    ExploreOptions o = base;
    o.arch_threads = t;
    EXPECT_EQ(options_fingerprint(o), options_fingerprint(base)) << t;
  }
}

TEST(Fingerprint, ArchsSubsetsGetDistinctCanonicalKeys) {
  const ExploreOptions base;
  const std::uint64_t full = options_fingerprint(base);

  ExploreOptions srag = base;
  srag.archs = {"SRAG"};
  EXPECT_NE(options_fingerprint(srag), full);

  ExploreOptions pair = base;
  pair.archs = {"SRAG", "SFM"};
  EXPECT_NE(options_fingerprint(pair), full);
  EXPECT_NE(options_fingerprint(pair), options_fingerprint(srag));

  // Canonicalization: order and duplicates don't matter, so equivalent
  // subsets (identical output) share one cache key.
  ExploreOptions swapped = base;
  swapped.archs = {"SFM", "SRAG", "SFM"};
  EXPECT_EQ(options_fingerprint(swapped), options_fingerprint(pair));

  // A non-empty filter that selects nothing still differs from "no filter".
  ExploreOptions unknown = base;
  unknown.archs = {"no-such-architecture"};
  EXPECT_NE(options_fingerprint(unknown), full);

  // ... but a filter spelling out the whole registry produces the same
  // output as no filter, so it must collapse to the same key and stay warm
  // against a default-run cache.
  ExploreOptions everything = base;
  everything.archs = generator_names();
  EXPECT_EQ(options_fingerprint(everything), full);
}

TEST(Fingerprint, MinimizerHashedOnlyWhenNonDefault) {
  // The verify_front pattern: the default (Isop) hashes nothing, keeping
  // pre-dispatcher cache directories warm; non-default selections change
  // covers and must get their own keys.
  const ExploreOptions base;
  const std::uint64_t h0 = options_fingerprint(base);

  // Isop ignores the Auto threshold, so every Isop spelling shares the
  // pinned default key.
  ExploreOptions isop_tuned = base;
  isop_tuned.minimize.heuristic_min_vars = 3;
  EXPECT_EQ(options_fingerprint(isop_tuned), h0);

  ExploreOptions esp = base;
  esp.minimize.algo = logic::MinimizerAlgo::Espresso;
  EXPECT_NE(options_fingerprint(esp), h0);

  ExploreOptions exact = base;
  exact.minimize.algo = logic::MinimizerAlgo::Exact;
  EXPECT_NE(options_fingerprint(exact), h0);
  EXPECT_NE(options_fingerprint(exact), options_fingerprint(esp));

  // Espresso-always ignores the threshold too: equal output, equal key.
  ExploreOptions esp_tuned = esp;
  esp_tuned.minimize.heuristic_min_vars = 3;
  EXPECT_EQ(options_fingerprint(esp_tuned), options_fingerprint(esp));

  // Auto's output depends on the threshold, so the threshold is hashed.
  ExploreOptions auto_a = base;
  auto_a.minimize.algo = logic::MinimizerAlgo::Auto;
  ExploreOptions auto_b = auto_a;
  auto_b.minimize.heuristic_min_vars = 3;
  EXPECT_NE(options_fingerprint(auto_a), h0);
  EXPECT_NE(options_fingerprint(auto_a), options_fingerprint(esp));
  EXPECT_NE(options_fingerprint(auto_a), options_fingerprint(auto_b));
}

TEST(Fingerprint, CompressPeriodicHashedOnlyWhenEnabled) {
  // Same pattern as verify_front: periodic traces explore differently under
  // compression (period-trace metrics, annotated notes), so the flag needs
  // its own cache keys — but the default hashes nothing, keeping existing
  // cache directories warm.
  const ExploreOptions base;
  ExploreOptions on = base;
  on.compress_periodic = true;
  EXPECT_NE(options_fingerprint(on), options_fingerprint(base));

  ExploreOptions on_verify = on;
  on_verify.verify_front = true;
  EXPECT_NE(options_fingerprint(on_verify), options_fingerprint(on));
}

TEST(Fingerprint, OptionsHashSeesEveryExplorationField) {
  const ExploreOptions base;
  const std::uint64_t h0 = options_fingerprint(base);

  ExploreOptions o = base;
  o.max_fanout = base.max_fanout + 1;
  EXPECT_NE(options_fingerprint(o), h0);

  o = base;
  o.max_fsm_states = 7;
  EXPECT_NE(options_fingerprint(o), h0);

  o = base;
  o.include_fsm = false;
  EXPECT_NE(options_fingerprint(o), h0);

  o = base;
  o.library.wire_delay_per_fanout += 0.001;
  EXPECT_NE(options_fingerprint(o), h0);

  o = base;
  o.library.params(netlist::CellType::Nand2).area += 1.0;
  EXPECT_NE(options_fingerprint(o), h0);

  EXPECT_EQ(options_fingerprint(base), h0);
}

}  // namespace
}  // namespace addm::core
