// Unit tests for the technology layer: library sanity, static timing
// analysis on hand-checked circuits, buffer-tree insertion (fanout bound,
// functional equivalence) and the activity-based power estimate.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "tech/buffering.hpp"
#include "tech/library.hpp"
#include "tech/power.hpp"
#include "tech/sta.hpp"

namespace addm::tech {
namespace {

using netlist::CellType;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(Library, Generic180nmIsPopulated) {
  const Library lib = Library::generic_180nm();
  for (int t = 0; t < netlist::kNumCellTypes; ++t) {
    const auto& p = lib.params(static_cast<CellType>(t));
    EXPECT_GT(p.area, 0.0) << "cell " << t;
    if (is_sequential(static_cast<CellType>(t))) {
      EXPECT_GT(p.clk_to_q, 0.0);
      EXPECT_GT(p.setup, 0.0);
    } else {
      EXPECT_GT(p.intrinsic, 0.0);
    }
  }
  // Flip-flops with more control pins must not be smaller.
  EXPECT_GE(lib.params(CellType::DffER).area, lib.params(CellType::DffE).area);
  EXPECT_GE(lib.params(CellType::DffE).area, lib.params(CellType::Dff).area);
}

TEST(Sta, PureCombinationalPath) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId y = b.and2(a, c);
  b.output("y", y);

  Library lib = Library::generic_180nm();
  lib.wire_delay_per_fanout = 0.0;
  const auto t = analyze_timing(nl, lib);
  const auto& p = lib.params(CellType::And2);
  // One AND2 stage driving one primary-output load.
  EXPECT_NEAR(t.input_to_output_ns, p.intrinsic + p.slope * 1.0, 1e-9);
  EXPECT_EQ(t.reg_to_reg_ns, 0.0);
  EXPECT_NEAR(t.critical_path_ns, t.input_to_output_ns, 1e-9);
}

TEST(Sta, RegisterToRegisterPath) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId q1 = b.dff(d);
  const NetId inv = b.inv(q1);
  const NetId q2 = b.dff(inv);
  b.output("q", q2);

  Library lib = Library::generic_180nm();
  lib.wire_delay_per_fanout = 0.0;
  const auto t = analyze_timing(nl, lib);
  const auto& dff = lib.params(CellType::Dff);
  const auto& invp = lib.params(CellType::Inv);
  const double expect = (dff.clk_to_q + dff.slope * 1.0)  // q1 drives inv
                        + (invp.intrinsic + invp.slope * 1.0)  // inv drives q2.D
                        + dff.setup;
  EXPECT_NEAR(t.reg_to_reg_ns, expect, 1e-9);
  // clk->output path: q2 drives the PO.
  EXPECT_NEAR(t.clk_to_output_ns, dff.clk_to_q + dff.slope * 1.0, 1e-9);
}

TEST(Sta, DeeperPathIsSlower) {
  const Library lib = Library::generic_180nm();
  auto chain_delay = [&](int depth) {
    Netlist nl;
    NetlistBuilder b(nl);
    b.set_sharing(false);
    NetId x = b.input("a");
    const NetId c = b.input("c");
    for (int i = 0; i < depth; ++i) x = b.and2(x, c);
    b.output("y", x);
    return analyze_timing(nl, lib).critical_path_ns;
  };
  EXPECT_LT(chain_delay(2), chain_delay(4));
  EXPECT_LT(chain_delay(4), chain_delay(8));
}

TEST(Sta, FanoutLoadIncreasesDelay) {
  const Library lib = Library::generic_180nm();
  auto delay_with_loads = [&](int loads) {
    Netlist nl;
    NetlistBuilder b(nl);
    b.set_sharing(false);
    const NetId a = b.input("a");
    const NetId c = b.input("c");
    const NetId x = b.and2(a, c);
    for (int i = 0; i < loads; ++i) b.output("y" + std::to_string(i), b.inv(x));
    return analyze_timing(nl, lib).critical_path_ns;
  };
  EXPECT_LT(delay_with_loads(1), delay_with_loads(16));
}

TEST(Sta, CriticalNetsTraceEndsAtEndpoint) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.inv(b.inv(a));
  b.output("y", y);
  const auto t = analyze_timing(nl, Library::generic_180nm());
  ASSERT_FALSE(t.critical_nets.empty());
  EXPECT_EQ(t.critical_nets.back(), y);
}

TEST(Sta, ThrowsOnCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.new_net();
  const NetId y = nl.new_net();
  nl.add_cell(CellType::Inv, {a}, y);
  nl.add_cell(CellType::Inv, {y}, a);
  EXPECT_THROW(analyze_timing(nl, Library::generic_180nm()), std::invalid_argument);
}

TEST(Area, SumsCellAreas) {
  Netlist nl;
  NetlistBuilder b(nl);
  b.set_sharing(false);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  b.output("y0", b.and2(a, c));
  b.output("y1", b.or2(a, c));
  const Library lib = Library::generic_180nm();
  const auto area = analyze_area(nl, lib);
  EXPECT_EQ(area.cells, 2u);
  EXPECT_NEAR(area.total,
              lib.params(CellType::And2).area + lib.params(CellType::Or2).area, 1e-9);
  EXPECT_NEAR(area.of(CellType::And2), lib.params(CellType::And2).area, 1e-9);
}

TEST(Buffering, EnforcesMaxFanout) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  for (int i = 0; i < 100; ++i) b.output("y" + std::to_string(i), b.dff(a));
  const auto stats = insert_buffers(nl, 8);
  EXPECT_GT(stats.buffers_added, 0u);
  const auto fo = nl.fanout_counts();
  for (netlist::NetId n = 2; n < nl.num_nets(); ++n) EXPECT_LE(fo[n], 8u) << "net " << n;
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Buffering, PreservesFunction) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  std::vector<NetId> outs;
  for (int i = 0; i < 40; ++i) outs.push_back(b.xor2(a, c));  // shared, high fanout on a/c
  b.set_sharing(false);
  for (int i = 0; i < 40; ++i) outs.push_back(b.and2(a, c));
  b.output_bus("y", outs);

  Netlist buffered = nl;  // copy before buffering
  insert_buffers(buffered, 4);

  sim::Simulator s0(nl), s1(buffered);
  for (int av = 0; av <= 1; ++av)
    for (int cv = 0; cv <= 1; ++cv) {
      s0.set("a", av);
      s0.set("c", cv);
      s0.eval();
      s1.set("a", av);
      s1.set("c", cv);
      s1.eval();
      for (std::size_t i = 0; i < outs.size(); ++i) {
        const std::string name = "y[" + std::to_string(i) + "]";
        EXPECT_EQ(s0.get(name), s1.get(name)) << name;
      }
    }
}

TEST(Buffering, ReducesDelayOnHighFanoutNets) {
  const Library lib = Library::generic_180nm();
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.set_sharing(false);
  for (int i = 0; i < 200; ++i) b.output("y" + std::to_string(i), b.inv(a));
  const double before = analyze_timing(nl, lib).critical_path_ns;
  insert_buffers(nl, 12);
  const double after = analyze_timing(nl, lib).critical_path_ns;
  EXPECT_LT(after, before);
}

TEST(Buffering, RejectsTinyMaxFanout) {
  Netlist nl;
  EXPECT_THROW(insert_buffers(nl, 1), std::invalid_argument);
}

TEST(Buffering, NoOpOnSmallNets) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.inv(a));
  const auto stats = insert_buffers(nl, 12);
  EXPECT_EQ(stats.buffers_added, 0u);
  EXPECT_EQ(stats.nets_repaired, 0u);
}

TEST(Power, TogglingCircuitDissipates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);

  sim::Simulator s(nl);
  s.enable_toggle_counting();
  s.run(100);

  const Library lib = Library::generic_180nm();
  const auto p = estimate_power(nl, lib, s.toggles(), 100.0 * 2.0 /*ns*/);
  EXPECT_GT(p.total_energy_pj, 0.0);
  EXPECT_GT(p.avg_power_mw, 0.0);
  EXPECT_EQ(p.total_toggles, 200u);  // q and its inverter, 100 each
}

TEST(Power, IdleCircuitDissipatesNothing) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  b.output("q", b.dff(d));
  sim::Simulator s(nl);
  s.enable_toggle_counting();
  s.set("d", false);
  s.run(50);
  const auto p = estimate_power(nl, Library::generic_180nm(), s.toggles(), 100.0);
  EXPECT_EQ(p.total_energy_pj, 0.0);
}

TEST(Power, ValidatesArguments) {
  Netlist nl;
  NetlistBuilder b(nl);
  b.output("y", b.inv(b.input("a")));
  std::vector<std::uint64_t> short_vec(1, 0);
  EXPECT_THROW(estimate_power(nl, Library::generic_180nm(), short_vec, 1.0),
               std::invalid_argument);
  std::vector<std::uint64_t> ok(nl.num_nets(), 0);
  EXPECT_THROW(estimate_power(nl, Library::generic_180nm(), ok, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace addm::tech
