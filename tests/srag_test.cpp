// Tests for the SRAG architecture: config validation, behavioral model
// semantics (paper Section-4 examples), gate-level elaboration equivalence
// against the behavioral model, and the token one-hotness invariant.
#include <gtest/gtest.h>

#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "core/srag_model.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"

namespace addm::core {
namespace {

using V = std::vector<std::uint32_t>;

SragConfig figure5_config(std::uint32_t dC, std::uint32_t pC) {
  // The SRAG of Figure 5: S0 -> lines (5,1,4,0), S1 -> lines (3,7,6,2).
  SragConfig cfg;
  cfg.registers = {{5, 1, 4, 0}, {3, 7, 6, 2}};
  cfg.div_count = dC;
  cfg.pass_count = pC;
  cfg.num_select_lines = 8;
  return cfg;
}

TEST(SragConfig, CheckRejectsBadConfigs) {
  SragConfig cfg;
  EXPECT_THROW(cfg.check(), std::invalid_argument);  // no registers
  cfg = figure5_config(1, 8);
  cfg.registers[1][0] = 5;  // duplicate select line
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg = figure5_config(1, 8);
  cfg.num_select_lines = 4;  // out of range lines
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg = figure5_config(1, 6);  // pC not multiple of register length
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg = figure5_config(0, 8);
  EXPECT_THROW(cfg.check(), std::invalid_argument);
}

TEST(SragModel, PaperDivCntSequence) {
  // dC=2, pass always firing at register boundaries (pC=4 covers one loop):
  // 5,5,1,1,4,4,0,0,3,3,7,7,6,6,2,2.
  SragModel m(figure5_config(2, 4));
  EXPECT_EQ(m.generate(16), (V{5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2}));
}

TEST(SragModel, PaperPassCntSequence) {
  // dC=1, pC=8: 5,1,4,0,5,1,4,0,3,7,6,2,3,7,6,2.
  SragModel m(figure5_config(1, 8));
  EXPECT_EQ(m.generate(16), (V{5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2}));
}

TEST(SragModel, WrapsAroundAllRegisters) {
  SragModel m(figure5_config(1, 4));
  // One loop each register, then back to register 0.
  EXPECT_EQ(m.generate(10), (V{5, 1, 4, 0, 3, 7, 6, 2, 5, 1}));
}

TEST(SragModel, ResetRestoresInitialState) {
  SragModel m(figure5_config(1, 4));
  m.pulse();
  m.pulse();
  EXPECT_NE(m.current(), 5u);
  m.reset();
  EXPECT_EQ(m.current(), 5u);
  EXPECT_EQ(m.token_register(), 0u);
  EXPECT_EQ(m.token_position(), 0u);
  EXPECT_EQ(m.div_counter(), 0u);
  EXPECT_EQ(m.pass_counter(), 0u);
}

TEST(SragModel, DivCounterHoldsAddress) {
  SragModel m(figure5_config(3, 12));
  EXPECT_EQ(m.generate(9), (V{5, 5, 5, 1, 1, 1, 4, 4, 4}));
}

// --- gate-level equivalence -------------------------------------------------

struct ElabCase {
  const char* name;
  SragConfig cfg;
};

std::vector<ElabCase> elaboration_cases() {
  std::vector<ElabCase> cases;
  cases.push_back({"fig5_dc1_pc8", figure5_config(1, 8)});
  cases.push_back({"fig5_dc2_pc4", figure5_config(2, 4)});
  cases.push_back({"fig5_dc3_pc12", figure5_config(3, 12)});
  {
    SragConfig ring;  // single register, no muxes, no PassCnt
    ring.registers = {{0, 1, 2, 3, 4, 5, 6, 7}};
    ring.div_count = 1;
    ring.pass_count = 8;
    ring.num_select_lines = 8;
    cases.push_back({"ring8", ring});
  }
  {
    SragConfig tiny;  // single flip-flop
    tiny.registers = {{0}};
    tiny.div_count = 2;
    tiny.pass_count = 1;
    tiny.num_select_lines = 1;
    cases.push_back({"single", tiny});
  }
  {
    SragConfig three;  // three registers of uneven lengths, pC = lcm-friendly
    three.registers = {{0, 1}, {2, 3}, {4, 5}};
    three.div_count = 1;
    three.pass_count = 4;
    three.num_select_lines = 6;
    cases.push_back({"three_regs", three});
  }
  return cases;
}

class SragElabTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SragElabTest, NetlistMatchesBehavioralModel) {
  const auto cases = elaboration_cases();
  const auto& tc = cases[GetParam()];
  netlist::Netlist nl = elaborate_srag(tc.cfg);
  ASSERT_TRUE(nl.validate().empty()) << tc.name;

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);

  SragModel model(tc.cfg);
  const std::size_t steps =
      4 * tc.cfg.num_flipflops() * tc.cfg.div_count * tc.cfg.num_registers() + 8;
  s.set("next", true);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto hot = s.hot_index("sel");
    ASSERT_TRUE(hot.has_value()) << tc.name << " cycle " << i << ": not one-hot";
    ASSERT_EQ(*hot, model.current()) << tc.name << " cycle " << i;
    s.step();
    model.pulse();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, SragElabTest, ::testing::Range<std::size_t>(0, 6));

TEST(SragElab, TokenInvariantExactlyOneHot) {
  // Property: across the whole period, exactly one select line is hot, even
  // while `next` idles.
  netlist::Netlist nl = elaborate_srag(figure5_config(2, 8));
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.hot_count("sel"), 1u) << "cycle " << i;
    s.set("next", (i % 3) != 0);  // stutter the next signal
    s.step();
  }
}

TEST(SragElab, NextLowFreezesGenerator) {
  netlist::Netlist nl = elaborate_srag(figure5_config(1, 8));
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.run(10);
  EXPECT_EQ(s.hot_index("sel"), 5u);  // still on the first address
}

TEST(SragElab, MidStreamResetReturnsToStart) {
  netlist::Netlist nl = elaborate_srag(figure5_config(1, 8));
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  s.run(5);
  EXPECT_NE(s.hot_index("sel"), 5u);
  s.set("reset", true);
  s.step();
  s.set("reset", false);
  EXPECT_EQ(s.hot_index("sel"), 5u);
}

TEST(SragElab, UnvisitedSelectLinesTiedLow) {
  SragConfig cfg;
  cfg.registers = {{1, 3}};
  cfg.div_count = 1;
  cfg.pass_count = 2;
  cfg.num_select_lines = 6;
  netlist::Netlist nl = elaborate_srag(cfg);
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(s.get("sel[0]"));
    EXPECT_FALSE(s.get("sel[2]"));
    EXPECT_FALSE(s.get("sel[4]"));
    EXPECT_FALSE(s.get("sel[5]"));
    s.step();
  }
}

TEST(SragElab, TwoDimensionalGeneratorReplaysTrace) {
  // 8x8 motion estimation, 4x4 blocks: the full two-hot generator must walk
  // the linear trace.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto trace = seq::motion_estimation_read(p);

  const auto rows = trace.rows();
  const auto cols = trace.cols();
  const auto rm = map_sequence(rows, 8);
  const auto cm = map_sequence(cols, 8);
  ASSERT_TRUE(rm.ok() && cm.ok());

  netlist::Netlist nl = elaborate_srag_2d(*rm.config, *cm.config);
  ASSERT_TRUE(nl.validate().empty());
  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  for (std::size_t k = 0; k < trace.length(); ++k) {
    const auto row = s.hot_index("rs");
    const auto col = s.hot_index("cs");
    ASSERT_TRUE(row && col) << "access " << k;
    EXPECT_EQ(*row * 8 + *col, trace.linear()[k]) << "access " << k;
    s.step();
  }
}

TEST(SragElab, FlipFlopCountMatchesConfig) {
  const auto cfg = figure5_config(1, 8);
  netlist::Netlist nl = elaborate_srag(cfg);
  const auto stats = nl.stats();
  // 8 token flip-flops + 3 PassCnt counter bits (pC=8); dC=1 needs no DivCnt.
  EXPECT_EQ(stats.num_seq, cfg.num_flipflops() + 3);
}

}  // namespace
}  // namespace addm::core
