// Tests for the memory models: ADDM select-legality contract and corruption
// semantics, conventional RAM, SFM FIFO, and the full gate-level AddmSystem
// round-trips (integration).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "memory/addm_array.hpp"
#include "memory/conventional_ram.hpp"
#include "memory/sfm_memory.hpp"
#include "memory/system.hpp"
#include "seq/workloads.hpp"

namespace addm::memory {
namespace {

std::vector<std::uint8_t> one_hot(std::size_t n, std::size_t hot) {
  std::vector<std::uint8_t> v(n, 0);
  v[hot] = 1;
  return v;
}

TEST(AddmArray, SingleCellReadWrite) {
  AddmArray a({4, 4});
  a.write(one_hot(4, 2), one_hot(4, 3), 0xAB);
  EXPECT_EQ(a.read(one_hot(4, 2), one_hot(4, 3)), 0xABu);
  EXPECT_EQ(a.read(one_hot(4, 0), one_hot(4, 0)), 0u);
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.cell(2, 3), 0xABu);
}

TEST(AddmArray, TwoRowWriteCorruptsBothRows) {
  // The Section-7 hazard: two asserted row selects write two cells.
  AddmArray a({4, 4});
  std::vector<std::uint8_t> rs(4, 0);
  rs[1] = rs[2] = 1;
  a.write(rs, one_hot(4, 0), 7);
  EXPECT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.cell(1, 0), 7u);
  EXPECT_EQ(a.cell(2, 0), 7u);  // corruption is observable
}

TEST(AddmArray, MultiReadWiredOr) {
  AddmArray a({4, 4});
  a.write_cell(0, 0, 0b0101);
  a.write_cell(1, 0, 0b0011);
  std::vector<std::uint8_t> rs(4, 0);
  rs[0] = rs[1] = 1;
  EXPECT_EQ(a.read(rs, one_hot(4, 0)), 0b0111u);
  EXPECT_EQ(a.violation_count(), 1u);
}

TEST(AddmArray, NoSelectReadsZeroAndCounts) {
  AddmArray a({2, 2});
  EXPECT_EQ(a.read(std::vector<std::uint8_t>(2, 0), one_hot(2, 0)), 0u);
  EXPECT_EQ(a.violation_count(), 1u);
}

TEST(AddmArray, StrictModeThrows) {
  AddmArray a({2, 2});
  a.set_strict(true);
  std::vector<std::uint8_t> rs(2, 1);
  EXPECT_THROW(a.write(rs, one_hot(2, 0), 1), std::logic_error);
}

TEST(AddmArray, SizeChecks) {
  AddmArray a({4, 2});
  EXPECT_THROW(a.write(one_hot(4, 0), one_hot(4, 0), 1), std::invalid_argument);
  EXPECT_THROW(a.write_cell(2, 0, 1), std::out_of_range);
  EXPECT_THROW(AddmArray({0, 4}), std::invalid_argument);
}

TEST(ConventionalRam, ReadWrite) {
  ConventionalRam ram({4, 4});
  ram.write(9, 42);
  EXPECT_EQ(ram.read(9), 42u);
  EXPECT_THROW(ram.write(16, 1), std::out_of_range);
  EXPECT_THROW((void)ram.read(16), std::out_of_range);
}

TEST(SfmMemory, FifoOrder) {
  SfmMemory fifo(4);
  fifo.push(1);
  fifo.push(2);
  fifo.push(3);
  EXPECT_EQ(fifo.occupancy(), 3u);
  EXPECT_EQ(fifo.pop(), 1u);
  EXPECT_EQ(fifo.pop(), 2u);
  fifo.push(4);
  fifo.push(5);  // wraps around the cell array
  EXPECT_EQ(fifo.pop(), 3u);
  EXPECT_EQ(fifo.pop(), 4u);
  EXPECT_EQ(fifo.pop(), 5u);
  EXPECT_TRUE(fifo.empty());
}

TEST(SfmMemory, OverflowUnderflow) {
  SfmMemory fifo(2);
  fifo.push(1);
  fifo.push(2);
  EXPECT_TRUE(fifo.full());
  EXPECT_THROW(fifo.push(3), std::logic_error);
  fifo.pop();
  fifo.pop();
  EXPECT_THROW(fifo.pop(), std::logic_error);
  EXPECT_THROW(SfmMemory(0), std::invalid_argument);
}

// --- end-to-end gate-level integration ---------------------------------------

TEST(AddmSystem, MotionEstimationRoundTrip) {
  // Producer writes the image in raster order; consumer reads it in the
  // block-matching order. Both generators are gate-level SRAGs.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto write_trace = seq::incremental({8, 8});
  const auto read_trace = seq::motion_estimation_read(p);

  AddmSystem sys(write_trace, read_trace);
  std::vector<std::uint32_t> image(write_trace.length());
  std::iota(image.begin(), image.end(), 100);

  const auto out = sys.run(image);
  ASSERT_EQ(out.size(), read_trace.length());
  // Reference: conventional RAM written/read with the same traces.
  ConventionalRam ref({8, 8});
  for (std::size_t k = 0; k < write_trace.length(); ++k)
    ref.write(write_trace.linear()[k], image[k]);
  for (std::size_t k = 0; k < read_trace.length(); ++k)
    EXPECT_EQ(out[k], ref.read(read_trace.linear()[k])) << "access " << k;
  EXPECT_EQ(sys.violation_count(), 0u);  // two-hot held for every access
}

TEST(AddmSystem, ZoomReadRoundTrip) {
  const auto write_trace = seq::incremental({4, 4});
  const auto read_trace = seq::zoom_by_two_read({4, 4});
  AddmSystem sys(write_trace, read_trace);

  std::vector<std::uint32_t> image(16);
  std::mt19937 rng(3);
  for (auto& v : image) v = rng() & 0xFF;

  const auto out = sys.run(image);
  for (std::size_t k = 0; k < read_trace.length(); ++k)
    EXPECT_EQ(out[k], image[read_trace.linear()[k]]) << k;
  EXPECT_EQ(sys.violation_count(), 0u);
}

TEST(AddmSystem, TransposeRoundTrip) {
  const auto write_trace = seq::incremental({8, 4});
  const auto read_trace = seq::transpose_read({8, 4});
  AddmSystem sys(write_trace, read_trace);
  std::vector<std::uint32_t> data(write_trace.length());
  std::iota(data.begin(), data.end(), 0);
  const auto out = sys.run(data);
  for (std::size_t k = 0; k < out.size(); ++k)
    EXPECT_EQ(out[k], read_trace.linear()[k]);  // identity data
  EXPECT_EQ(sys.violation_count(), 0u);
}

// Every mappable read workload must round-trip through the gate-level system
// against the conventional-RAM reference.
class AddmSystemWorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(AddmSystemWorkloadTest, RoundTripMatchesReference) {
  constexpr std::size_t kDim = 8;
  seq::AddressTrace read_trace = [&] {
    switch (GetParam()) {
      case 0: return seq::incremental({kDim, kDim});
      case 1: {
        seq::MotionEstimationParams p;
        p.img_width = p.img_height = kDim;
        p.mb_width = p.mb_height = 4;
        p.m = 1;  // repeated block scans
        return seq::motion_estimation_read(p);
      }
      case 2: return seq::dct_block_column_read({kDim, kDim}, 4);
      case 3: return seq::zoom_by_two_read({kDim, kDim});
      default: return seq::transpose_read({kDim, kDim});
    }
  }();
  const auto write_trace = seq::incremental({kDim, kDim});

  AddmSystem sys(write_trace, read_trace);
  std::vector<std::uint32_t> data(write_trace.length());
  std::mt19937 rng(11 + static_cast<unsigned>(GetParam()));
  for (auto& v : data) v = rng() & 0xFFFF;

  const auto out = sys.run(data);
  ConventionalRam ref({kDim, kDim});
  for (std::size_t k = 0; k < write_trace.length(); ++k)
    ref.write(write_trace.linear()[k], data[k]);
  for (std::size_t k = 0; k < read_trace.length(); ++k)
    ASSERT_EQ(out[k], ref.read(read_trace.linear()[k])) << "access " << k;
  EXPECT_EQ(sys.violation_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, AddmSystemWorkloadTest, ::testing::Range(0, 5));

TEST(AddmSystem, RejectsMismatchedGeometry) {
  EXPECT_THROW(AddmSystem(seq::incremental({4, 4}), seq::incremental({8, 8})),
               std::invalid_argument);
}

TEST(AddmSystem, RejectsUnmappableTrace) {
  EXPECT_THROW(AddmSystem(seq::incremental({8, 8}), seq::strided({8, 8}, 3)),
               std::invalid_argument);
}

TEST(AddmSystem, RejectsWrongDataLength) {
  AddmSystem sys(seq::incremental({4, 4}), seq::incremental({4, 4}));
  std::vector<std::uint32_t> too_short(3);
  EXPECT_THROW(sys.run(too_short), std::invalid_argument);
}

}  // namespace
}  // namespace addm::memory
