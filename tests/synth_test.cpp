// Tests for the RTL generators: counters (exhaustive behavior over widths,
// moduli and carry styles), decoders (exhaustive, both styles), token rings,
// and FSM synthesis (replay equivalence across encodings).
#include <gtest/gtest.h>

#include <tuple>

#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "synth/counter.hpp"
#include "synth/decoder.hpp"
#include "synth/fsm.hpp"
#include "synth/shift.hpp"
#include "tech/library.hpp"
#include "tech/sta.hpp"

namespace addm::synth {
namespace {

using netlist::kConst1;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(BitsFor, Values) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
}

class CounterTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, CarryStyle>> {};

TEST_P(CounterTest, CountsAndWraps) {
  const auto [bits, modulo, style] = GetParam();
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId en = b.input("en");
  const NetId rst = b.input("rst");
  CounterSpec spec{bits, modulo, style};
  const auto ports = build_counter(b, spec, en, rst);
  b.output_bus("q", ports.q);
  b.output("wrap", ports.wrap);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("en", true);
  s.set("rst", false);
  const std::uint64_t effective = modulo == 0 ? (std::uint64_t{1} << bits) : modulo;
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 3 * effective + 2; ++i) {
    EXPECT_EQ(s.get_bus("q"), expect) << "cycle " << i;
    EXPECT_EQ(s.get("wrap"), expect == effective - 1);
    s.step();
    expect = (expect + 1) % effective;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CounterTest,
    ::testing::Values(std::tuple{1, std::uint64_t{0}, CarryStyle::Ripple},
                      std::tuple{2, std::uint64_t{0}, CarryStyle::Ripple},
                      std::tuple{3, std::uint64_t{5}, CarryStyle::Ripple},
                      std::tuple{4, std::uint64_t{0}, CarryStyle::Lookahead},
                      std::tuple{4, std::uint64_t{10}, CarryStyle::Lookahead},
                      std::tuple{5, std::uint64_t{17}, CarryStyle::Lookahead},
                      std::tuple{6, std::uint64_t{0}, CarryStyle::Ripple},
                      std::tuple{8, std::uint64_t{200}, CarryStyle::Lookahead}));

TEST(Counter, EnableGates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId en = b.input("en");
  const auto ports = build_counter(b, CounterSpec{3, 0, CarryStyle::Ripple}, en, netlist::kConst0);
  b.output_bus("q", ports.q);
  sim::Simulator s(nl);
  s.set("en", false);
  s.run(5);
  EXPECT_EQ(s.get_bus("q"), 0u);
  s.set("en", true);
  s.run(3);
  EXPECT_EQ(s.get_bus("q"), 3u);
  s.set("en", false);
  s.run(4);
  EXPECT_EQ(s.get_bus("q"), 3u);
}

TEST(Counter, ResetDominates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId rst = b.input("rst");
  const auto ports = build_counter(b, CounterSpec{4, 0, CarryStyle::Lookahead}, kConst1, rst);
  b.output_bus("q", ports.q);
  sim::Simulator s(nl);
  s.set("rst", false);
  s.run(6);
  EXPECT_EQ(s.get_bus("q"), 6u);
  s.set("rst", true);
  s.step();
  EXPECT_EQ(s.get_bus("q"), 0u);
}

TEST(Counter, LookaheadIsFasterAtWidth) {
  const auto lib = tech::Library::generic_180nm();
  auto delay_of = [&](CarryStyle style) {
    Netlist nl;
    NetlistBuilder b(nl);
    const auto ports =
        build_counter(b, CounterSpec{16, 0, style}, b.input("en"), b.input("rst"));
    b.output_bus("q", ports.q);
    return tech::analyze_timing(nl, lib).reg_to_reg_ns;
  };
  EXPECT_LT(delay_of(CarryStyle::Lookahead), delay_of(CarryStyle::Ripple));
}

TEST(Counter, RejectsBadSpecs) {
  Netlist nl;
  NetlistBuilder b(nl);
  EXPECT_THROW(build_counter(b, CounterSpec{0, 0, CarryStyle::Ripple}, kConst1, kConst1),
               std::invalid_argument);
  EXPECT_THROW(build_counter(b, CounterSpec{2, 5, CarryStyle::Ripple}, kConst1, kConst1),
               std::invalid_argument);
  EXPECT_THROW(build_counter(b, CounterSpec{2, 1, CarryStyle::Ripple}, kConst1, kConst1),
               std::invalid_argument);
}

class DecoderTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, DecoderStyle>> {};

TEST_P(DecoderTest, ExhaustiveOneHot) {
  const auto [bits, outputs, style] = GetParam();
  Netlist nl;
  NetlistBuilder b(nl);
  const auto addr = b.input_bus("a", bits);
  const auto outs = build_decoder(b, addr, outputs, kConst1, style);
  b.output_bus("y", outs);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  const std::size_t n_out = outs.size();
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << bits); ++a) {
    s.set_bus("a", a);
    s.eval();
    if (a < n_out) {
      EXPECT_EQ(s.hot_index("y"), a);
    } else {
      EXPECT_EQ(s.hot_count("y"), 0u);  // out-of-range addresses select nothing
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecoderTest,
    ::testing::Values(std::tuple{1, std::size_t{0}, DecoderStyle::SharedChain},
                      std::tuple{2, std::size_t{0}, DecoderStyle::Flat},
                      std::tuple{3, std::size_t{0}, DecoderStyle::SharedChain},
                      std::tuple{3, std::size_t{5}, DecoderStyle::SharedChain},
                      std::tuple{4, std::size_t{0}, DecoderStyle::Flat},
                      std::tuple{4, std::size_t{12}, DecoderStyle::Flat},
                      std::tuple{5, std::size_t{0}, DecoderStyle::SharedChain},
                      std::tuple{6, std::size_t{0}, DecoderStyle::Flat}));

TEST(Decoder, EnableGatesAllOutputs) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto addr = b.input_bus("a", 3);
  const NetId en = b.input("en");
  b.output_bus("y", build_decoder(b, addr, 0, en, DecoderStyle::SharedChain));
  sim::Simulator s(nl);
  s.set_bus("a", 5);
  s.set("en", false);
  s.eval();
  EXPECT_EQ(s.hot_count("y"), 0u);
  s.set("en", true);
  s.eval();
  EXPECT_EQ(s.hot_index("y"), 5u);
}

TEST(Decoder, SharedStyleIsSmaller) {
  auto area_of = [&](DecoderStyle style) {
    Netlist nl;
    NetlistBuilder b(nl);
    const auto addr = b.input_bus("a", 6);
    b.output_bus("y", build_decoder(b, addr, 0, kConst1, style));
    return tech::analyze_area(nl, tech::Library::generic_180nm()).total;
  };
  EXPECT_LT(area_of(DecoderStyle::SharedChain), area_of(DecoderStyle::Flat));
}

TEST(Decoder, RejectsBadArguments) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto addr = b.input_bus("a", 2);
  EXPECT_THROW(build_decoder(b, {}, 0, kConst1, DecoderStyle::Flat),
               std::invalid_argument);
  EXPECT_THROW(build_decoder(b, addr, 5, kConst1, DecoderStyle::Flat),
               std::invalid_argument);
}

class TokenRingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TokenRingTest, TokenCirculates) {
  const std::size_t n = GetParam();
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId en = b.input("en");
  const NetId rst = b.input("rst");
  b.output_bus("t", build_token_ring(b, n, en, rst));
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("rst", true);
  s.set("en", false);
  s.step();
  s.set("rst", false);
  s.set("en", true);
  for (std::size_t i = 0; i < 3 * n; ++i) {
    ASSERT_EQ(s.hot_index("t"), i % n) << "cycle " << i;
    s.step();
  }
  // Disabled ring holds its token.
  s.set("en", false);
  const auto held = s.hot_index("t");
  s.run(5);
  EXPECT_EQ(s.hot_index("t"), held);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TokenRingTest, ::testing::Values(1u, 2u, 3u, 8u, 17u));

struct FsmCase {
  std::vector<std::uint32_t> next;
  std::vector<std::uint32_t> select;
  std::size_t lines;
};

class FsmTest : public ::testing::TestWithParam<std::tuple<FsmCase, FsmEncoding, bool>> {};

TEST_P(FsmTest, ReplayMatchesSpec) {
  const auto& [c, enc, flat] = GetParam();
  FsmSpec spec;
  spec.next_state = c.next;
  spec.select_of_state = c.select;
  spec.num_select_lines = c.lines;

  Netlist nl;
  NetlistBuilder b(nl);
  const NetId en = b.input("en");
  const NetId rst = b.input("rst");
  const auto ports = build_fsm(b, spec, en, rst, FsmStyle{enc, flat});
  b.output_bus("sel", ports.select);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("rst", true);
  s.set("en", false);
  s.step();
  s.set("rst", false);
  s.set("en", true);
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < 3 * c.next.size() + 2; ++i) {
    ASSERT_EQ(s.hot_index("sel"), c.select[state]) << "cycle " << i;
    s.step();
    state = c.next[state];
  }
}

const FsmCase kIncremental8{{1, 2, 3, 4, 5, 6, 7, 0}, {0, 1, 2, 3, 4, 5, 6, 7}, 8};
const FsmCase kPermuted{{1, 2, 3, 0}, {2, 0, 3, 1}, 4};
const FsmCase kNonPow2{{1, 2, 3, 4, 0}, {4, 3, 2, 1, 0}, 5};
const FsmCase kSharedLine{{1, 2, 3, 0}, {0, 1, 0, 1}, 2};

INSTANTIATE_TEST_SUITE_P(
    Sweep, FsmTest,
    ::testing::Combine(::testing::Values(kIncremental8, kPermuted, kNonPow2, kSharedLine),
                       ::testing::Values(FsmEncoding::Binary, FsmEncoding::Gray,
                                         FsmEncoding::OneHot),
                       ::testing::Bool()));

TEST(Fsm, GrayCode) {
  EXPECT_EQ(gray_code(0), 0u);
  EXPECT_EQ(gray_code(1), 1u);
  EXPECT_EQ(gray_code(2), 3u);
  EXPECT_EQ(gray_code(3), 2u);
  // Consecutive codes differ by one bit.
  for (std::uint32_t i = 0; i < 63; ++i)
    EXPECT_EQ(__builtin_popcount(gray_code(i) ^ gray_code(i + 1)), 1) << i;
}

TEST(Fsm, SpecValidation) {
  FsmSpec bad;
  EXPECT_THROW(bad.check(), std::invalid_argument);  // no states
  bad.next_state = {0, 5};
  bad.select_of_state = {0, 0};
  bad.num_select_lines = 1;
  EXPECT_THROW(bad.check(), std::invalid_argument);  // next out of range
  bad.next_state = {1, 0};
  bad.select_of_state = {0, 3};
  EXPECT_THROW(bad.check(), std::invalid_argument);  // select out of range
}

TEST(Fsm, EnableFreezesMachine) {
  FsmSpec spec;
  spec.next_state = {1, 2, 0};
  spec.select_of_state = {0, 1, 2};
  spec.num_select_lines = 3;
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId en = b.input("en");
  const NetId rst = b.input("rst");
  b.output_bus("sel", build_fsm(b, spec, en, rst, {}).select);
  sim::Simulator s(nl);
  s.set("rst", true);
  s.set("en", false);
  s.step();
  s.set("rst", false);
  s.run(4);
  EXPECT_EQ(s.hot_index("sel"), 0u);  // never advanced
}

TEST(Fsm, OneHotUsesOneFlopPerState) {
  FsmSpec spec;
  spec.next_state = {1, 2, 3, 4, 5, 0};
  spec.select_of_state = {0, 1, 2, 3, 4, 5};
  spec.num_select_lines = 6;
  Netlist nl;
  NetlistBuilder b(nl);
  build_fsm(b, spec, b.input("en"), b.input("rst"), FsmStyle{FsmEncoding::OneHot, false});
  EXPECT_EQ(nl.stats().num_seq, 6u);

  Netlist nl2;
  NetlistBuilder b2(nl2);
  build_fsm(b2, spec, b2.input("en"), b2.input("rst"),
            FsmStyle{FsmEncoding::Binary, false});
  EXPECT_EQ(nl2.stats().num_seq, 3u);  // ceil(log2 6)
}

}  // namespace
}  // namespace addm::synth
