// Randomized properties tying the streaming pipeline to its materializing
// counterparts:
//  * TraceReader == read_trace on arbitrary generated inputs, for both
//    parsed traces and error messages, at adversarial chunk sizes;
//  * compress -> expand is the identity on every suite trace and on
//    randomized prefix + k x period + tail constructions;
//  * exploration reports are byte-identical with compression on vs off for
//    every synthetic-suite trace (they are all aperiodic), and compressed
//    evaluation of a pure periodic trace is annotated and period-priced.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/explorer.hpp"
#include "seq/periodicity.hpp"
#include "seq/stream_io.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

// Random trace-format text: usually valid, sometimes deliberately broken
// (bad tokens, misplaced/duplicate directives, out-of-range addresses).
std::string random_trace_text(std::mt19937& rng) {
  std::uniform_int_distribution<int> pct(0, 99);
  std::ostringstream os;
  const std::size_t w = 1 + rng() % 9;
  const std::size_t h = 1 + rng() % 9;
  bool geometry_written = false;
  const int lines = 1 + static_cast<int>(rng() % 12);
  for (int l = 0; l < lines; ++l) {
    const int roll = pct(rng);
    if (!geometry_written && roll < 60) {
      os << "geometry " << w << " " << h;
      if (pct(rng) < 5) os << " trailing";
      geometry_written = true;
    } else if (roll < 8) {
      os << "# a comment with tokens 1 2 3";
    } else if (roll < 12) {
      os << "name t" << rng() % 100;
      if (pct(rng) < 10) os << " extra";
    } else if (roll < 16) {
      // empty or whitespace-only line
      if (pct(rng) < 50) os << "   \t ";
    } else if (roll < 20) {
      os << "geometry " << w << " " << h;  // possible duplicate
    } else {
      const int n = 1 + static_cast<int>(rng() % 20);
      for (int i = 0; i < n; ++i) {
        if (i) os << (pct(rng) < 10 ? "\t" : " ");
        const int kind = pct(rng);
        if (kind < 88) {
          os << rng() % (w * h + (pct(rng) < 6 ? 2 : 0));  // mostly in range
        } else if (kind < 92) {
          os << "-" << rng() % 10;
        } else if (kind < 96) {
          os << rng() % 100 << "x";
        } else {
          os << "bogus";
        }
      }
      if (pct(rng) < 15) os << "  # trailing comment";
    }
    if (l + 1 < lines || pct(rng) < 80) os << "\n";
  }
  return os.str();
}

struct ReadOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::uint32_t> linear;
  ArrayGeometry geometry;
  std::string name;
};

ReadOutcome run_batch(const std::string& text) {
  ReadOutcome out;
  try {
    const AddressTrace t = read_trace_string(text);
    out.ok = true;
    out.linear = t.linear();
    out.geometry = t.geometry();
    out.name = t.name();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

ReadOutcome run_stream(const std::string& text, std::size_t chunk) {
  ReadOutcome out;
  try {
    std::istringstream in(text);
    TraceReader reader(in, chunk);
    const AddressTrace t = reader.read_all();
    out.ok = true;
    out.linear = t.linear();
    out.geometry = t.geometry();
    out.name = t.name();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

TEST(StreamProperty, ReaderMatchesReadTraceOnRandomInputs) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string text = random_trace_text(rng);
    const ReadOutcome batch = run_batch(text);
    const std::size_t chunk = 1 + rng() % 40;
    const ReadOutcome stream = run_stream(text, chunk);
    ASSERT_EQ(stream.ok, batch.ok) << "trial " << trial << " chunk " << chunk
                                   << "\n---\n" << text << "\n---\nbatch: "
                                   << batch.error << "\nstream: " << stream.error;
    if (batch.ok) {
      EXPECT_EQ(stream.linear, batch.linear) << "trial " << trial;
      EXPECT_EQ(stream.geometry, batch.geometry) << "trial " << trial;
      EXPECT_EQ(stream.name, batch.name) << "trial " << trial;
    } else {
      EXPECT_EQ(stream.error, batch.error)
          << "trial " << trial << " chunk " << chunk << "\n---\n" << text;
    }
  }
}

TEST(StreamProperty, CompressExpandRoundTripsEverySuiteTrace) {
  for (const auto& t : standard_suite({8, 8})) {
    const CompressedTrace ct = compress_periodic(t);
    const AddressTrace back = ct.expand();
    EXPECT_EQ(back.linear(), t.linear()) << t.name();
    EXPECT_EQ(back.geometry(), t.geometry()) << t.name();
    EXPECT_EQ(back.name(), t.name()) << t.name();
    // Byte-for-byte through the writer as well.
    EXPECT_EQ(write_trace_string(back), write_trace_string(t)) << t.name();
  }
  for (const auto& t : scaled_suite({8, 8}, 3)) {
    EXPECT_EQ(compress_periodic(t).expand().linear(), t.linear()) << t.name();
  }
}

TEST(StreamProperty, CompressExpandRoundTripsRandomFactorizations) {
  std::mt19937 rng(77);
  const ArrayGeometry g{16, 16};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint32_t> a;
    const std::size_t prefix_len = rng() % 6;
    const std::size_t period_len = 1 + rng() % 12;
    const std::size_t repeats = 1 + rng() % 40;
    std::vector<std::uint32_t> period(period_len);
    for (auto& v : period) v = rng() % g.size();
    for (std::size_t i = 0; i < prefix_len; ++i) a.push_back(rng() % g.size());
    for (std::size_t r = 0; r < repeats; ++r)
      a.insert(a.end(), period.begin(), period.end());
    const std::size_t tail = rng() % period_len;
    a.insert(a.end(), period.begin(), period.begin() + static_cast<long>(tail));

    const AddressTrace t(g, a, "r" + std::to_string(trial));
    const CompressedTrace ct = compress_periodic(t);
    // Exactness is unconditional...
    const AddressTrace back = ct.expand();
    ASSERT_EQ(back.linear(), t.linear()) << "trial " << trial;
    EXPECT_EQ(back.name(), t.name());
    // ...and the factorization never stores more than the construction
    // (it may store less when the random period is itself periodic).
    EXPECT_LE(ct.stored(), prefix_len + period_len) << "trial " << trial;
  }
}

TEST(StreamProperty, StreamingAgreesWithBatchCompressionOnRandomStreams) {
  std::mt19937 rng(99);
  const ArrayGeometry g{8, 8};
  for (int trial = 0; trial < 200; ++trial) {
    // Small alphabets make accidental periods (and lock/unlock churn) likely.
    const std::uint32_t alphabet = 1 + rng() % 4;
    const std::size_t n = 1 + rng() % 120;
    std::vector<std::uint32_t> a(n);
    for (auto& v : a) v = rng() % alphabet;
    StreamingCompressor sc;
    for (std::uint32_t v : a) sc.push(v);
    const CompressedTrace streamed = sc.finish(g, "s");
    const CompressedTrace batch = compress_periodic(AddressTrace(g, a, "s"));
    EXPECT_EQ(streamed.prefix, batch.prefix) << "trial " << trial;
    EXPECT_EQ(streamed.period, batch.period) << "trial " << trial;
    EXPECT_EQ(streamed.repeats, batch.repeats) << "trial " << trial;
    EXPECT_EQ(streamed.tail, batch.tail) << "trial " << trial;
    EXPECT_EQ(streamed.expand().linear(), a) << "trial " << trial;
  }
}

}  // namespace
}  // namespace addm::seq

namespace addm::core {
namespace {

TEST(StreamProperty, SuiteReportsByteIdenticalWithCompression) {
  // Every synthetic-suite trace is aperiodic, so compression must be a
  // strict no-op on the report bytes — only the cache keys differ.
  const auto traces = seq::standard_suite({8, 8});
  BatchOptions plain;
  plain.threads = 1;
  BatchOptions compressed = plain;
  compressed.explore.compress_periodic = true;
  BatchExplorer a(plain), b(compressed);
  const std::string report_a = batch_report_csv(a.run(traces));
  const std::string report_b = batch_report_csv(b.run(traces));
  EXPECT_EQ(report_a, report_b);
}

TEST(StreamProperty, PeriodicTraceIsAnnotatedAndPeriodPriced) {
  // 200 passes over an 8-access loop: compressed evaluation must annotate
  // every note and make the FSM candidates feasible (8 states, not 1600).
  std::vector<std::uint32_t> linear;
  for (int r = 0; r < 200; ++r)
    for (std::uint32_t v : {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u}) linear.push_back(v);
  const seq::AddressTrace trace({8, 8}, linear, "loop");

  ExploreOptions opt;
  opt.compress_periodic = true;
  ExploreOptions off;
  ASSERT_EQ(ExploreOptions{}.max_fsm_states, 1024u);

  const auto compressed = explore_generators(trace, opt);
  const auto plain = explore_generators(trace, off);
  ASSERT_EQ(compressed.size(), plain.size());
  bool fsm_gained = false;
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    EXPECT_NE(compressed[i].note.find("[periodic 200x8]"), std::string::npos)
        << compressed[i].architecture << ": " << compressed[i].note;
    if (!plain[i].feasible && compressed[i].feasible) fsm_gained = true;
  }
  // 1600 states exceeds the default FSM budget, one period does not.
  EXPECT_TRUE(fsm_gained);

  // The pure-period representative equals exploring the period directly.
  const seq::AddressTrace one_period(
      {8, 8}, {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u}, "loop");
  const auto direct = explore_generators(one_period, ExploreOptions{});
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    EXPECT_EQ(compressed[i].architecture, direct[i].architecture);
    EXPECT_EQ(compressed[i].feasible, direct[i].feasible);
    EXPECT_EQ(compressed[i].metrics.area_units, direct[i].metrics.area_units) << i;
    EXPECT_EQ(compressed[i].metrics.delay_ns, direct[i].metrics.delay_ns) << i;
  }
}

TEST(StreamProperty, CompressionDeterministicAcrossThreadCounts) {
  std::vector<std::uint32_t> linear;
  for (int r = 0; r < 64; ++r)
    for (std::uint32_t v : {0u, 9u, 18u, 27u}) linear.push_back(v);
  const seq::AddressTrace trace({8, 8}, linear, "diag");
  ExploreOptions opt;
  opt.compress_periodic = true;
  const auto serial = explore_generators(trace, opt);
  for (std::size_t threads : {2u, 4u}) {
    ExploreOptions o = opt;
    o.arch_threads = threads;
    const auto parallel = explore_generators(trace, o);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].architecture, serial[i].architecture);
      EXPECT_EQ(parallel[i].note, serial[i].note);
      EXPECT_EQ(parallel[i].metrics.area_units, serial[i].metrics.area_units);
    }
  }
}

}  // namespace
}  // namespace addm::core
