// Lifecycle property tests for cache maintenance: prune determinism under
// insertion-order permutation, compact idempotence, exact budget
// enforcement, merge commutativity and its equivalence with compaction,
// hit-weighted eviction priority, version negotiation (v1 reads, future
// refusals), and the pruned-then-warm-started run reproducing a cold run's
// report byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/eval_cache.hpp"
#include "core/fingerprint.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "addm_cache_lifecycle" / name;
  fs::remove_all(dir);
  fs::create_directories(dir.parent_path());
  return dir.string();
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& f : fs::directory_iterator(dir))
    if (f.is_regular_file()) files[f.path().filename().string()] = slurp(f.path());
  return files;
}

EvalCacheEntry entry_for(std::uint64_t trace_hash, std::uint64_t options_hash,
                         std::size_t note_pad = 0) {
  EvalCacheEntry e;
  e.key = {trace_hash, options_hash};
  DesignPoint p;
  p.architecture = "SRAG";
  p.feasible = true;
  p.metrics.area_units = static_cast<double>(trace_hash % 977);
  p.metrics.delay_ns = 1.5;
  p.metrics.cells = 10;
  p.note = std::string(note_pad, 'n');
  e.points = {p};
  e.pareto = {0};
  return e;
}

TEST(CacheLifecycle, PruneDeterministicUnderInsertionOrderPermutation) {
  // Same entry multiset, three different store orders and batch splits →
  // after prune the directories must be byte-identical.  Single-batch
  // stores share one generation; to keep the multisets equal across
  // permutations every permutation stores one batch.
  std::vector<EvalCacheEntry> entries;
  for (std::uint64_t i = 0; i < 9; ++i) entries.push_back(entry_for(100 + i, 7, i));

  auto build_pruned = [&](const std::string& name,
                          const std::vector<std::size_t>& order) {
    const std::string dir = fresh_dir(name);
    EvalCacheDir cache(dir);
    std::vector<EvalCacheEntry> batch;
    for (std::size_t i : order) batch.push_back(entries[i]);
    EXPECT_EQ(cache.store_batch(batch), batch.size());
    EXPECT_TRUE(cache.prune(4, UINT64_MAX).ok);
    return dir_bytes(dir);
  };

  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  const auto reference = build_pruned("perm_ref", order);
  EXPECT_EQ(reference.size(), 5u);  // index + 4 survivors

  std::reverse(order.begin(), order.end());
  EXPECT_EQ(build_pruned("perm_rev", order), reference);
  std::rotate(order.begin(), order.begin() + 3, order.end());
  EXPECT_EQ(build_pruned("perm_rot", order), reference);
}

TEST(CacheLifecycle, CompactIsIdempotentByteForByte) {
  const std::string dir = fresh_dir("idempotent");
  EvalCacheDir cache(dir);
  std::vector<EvalCacheEntry> batch;
  for (std::uint64_t i = 0; i < 6; ++i) batch.push_back(entry_for(i, 1, i * 3));
  ASSERT_EQ(cache.store_batch(batch), batch.size());
  // Duplicate index records and an orphan payload give compact real work.
  ASSERT_TRUE(cache.store(entry_for(2, 1, 6)));
  {
    const EvalCacheEntry orphan = entry_for(0x999, 1);
    std::ofstream(fs::path(dir) / (hex64(orphan.key.trace_hash) + "-" +
                                   hex64(orphan.key.options_hash) + ".entry"),
                  std::ios::binary)
        << serialize_eval_entry(orphan);
  }

  ASSERT_TRUE(cache.compact().ok);
  const auto once = dir_bytes(dir);
  const auto m = cache.compact();
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.kept, 7u);  // 6 stored + 1 adopted orphan
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_EQ(dir_bytes(dir), once);
  ASSERT_TRUE(cache.compact().ok);
  EXPECT_EQ(dir_bytes(dir), once);
}

TEST(CacheLifecycle, PruneBudgetIsExact) {
  // Entry-count budget keeps exactly the top-k, and a byte budget is
  // honored exactly: the surviving payload bytes never exceed it, and no
  // evictable entry that would still fit under the priority order survives.
  const std::string dir = fresh_dir("budget");
  EvalCacheDir cache(dir);
  std::vector<EvalCacheEntry> batch;
  for (std::uint64_t i = 0; i < 8; ++i) batch.push_back(entry_for(i, 2, 10 * i));
  ASSERT_EQ(cache.store_batch(batch), batch.size());

  std::uint64_t total = 0;
  std::vector<std::uint64_t> sizes;  // key order == eviction order here
  for (const auto& r : cache.read_records()) {
    sizes.push_back(r.meta.bytes);
    total += r.meta.bytes;
  }
  ASSERT_EQ(sizes.size(), 8u);

  // Same hits (0) and generation (1) everywhere → eviction order is key
  // order, so a budget that cuts the first three leaves exactly five.
  const std::uint64_t budget = total - sizes[0] - sizes[1] - sizes[2];
  const auto m = cache.prune(UINT64_MAX, budget);
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.evicted, 3u);
  EXPECT_EQ(m.kept, 5u);
  EXPECT_LE(m.bytes_kept, budget);

  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 5u);
  EXPECT_EQ(s.payload_bytes, m.bytes_kept);
  EXPECT_EQ(s.recorded_bytes, m.bytes_kept);
}

TEST(CacheLifecycle, HitsProtectEntriesFromEviction) {
  const std::string dir = fresh_dir("hits");
  EvalCacheDir cache(dir);
  std::vector<EvalCacheEntry> batch;
  for (std::uint64_t i = 0; i < 6; ++i) batch.push_back(entry_for(i, 3));
  ASSERT_EQ(cache.store_batch(batch), batch.size());

  // Credit hits to the two keys eviction-by-key-order would drop first.
  ASSERT_TRUE(cache.record_hits({{{0, 3}, 5}, {{1, 3}, 2}}));
  // Hits on unknown keys are dropped, not resurrected.
  ASSERT_TRUE(cache.record_hits({{{0xdead, 3}, 9}}));

  ASSERT_TRUE(cache.prune(3, UINT64_MAX).ok);
  std::vector<std::uint64_t> kept;
  for (const auto& r : cache.read_records()) kept.push_back(r.key.trace_hash);
  // Survivors: the two hit keys plus the highest-key cold entry (cold keys
  // 2..5 evict in ascending key order until 3 remain).
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{0, 1, 5}));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 7u);  // folded into the rewritten entry records
}

TEST(CacheLifecycle, MergeCommutesAndEqualsCompaction) {
  // Build two shard caches with one overlapping key, then check the
  // tentpole contract: merge(A→X, B→X) == merge(B→Y, A→Y) byte-for-byte,
  // and compact-each-then-merge == merge-then-compact.
  auto build_shard = [&](const std::string& name, std::uint64_t lo,
                         std::uint64_t hi) {
    const std::string dir = fresh_dir(name);
    EvalCacheDir cache(dir);
    std::vector<EvalCacheEntry> batch;
    for (std::uint64_t i = lo; i < hi; ++i) batch.push_back(entry_for(i, 4, i));
    EXPECT_EQ(cache.store_batch(batch), batch.size());
    return dir;
  };
  const std::string a = build_shard("shard_a", 0, 5);
  const std::string b = build_shard("shard_b", 4, 9);  // key 4 overlaps

  const std::string ab = fresh_dir("merge_ab");
  EXPECT_EQ(EvalCacheDir::merge(ab, a).failed, 0u);
  EXPECT_EQ(EvalCacheDir::merge(ab, b).failed, 0u);
  const std::string ba = fresh_dir("merge_ba");
  EXPECT_EQ(EvalCacheDir::merge(ba, b).failed, 0u);
  EXPECT_EQ(EvalCacheDir::merge(ba, a).failed, 0u);
  EXPECT_EQ(dir_bytes(ab), dir_bytes(ba));
  EXPECT_EQ(EvalCacheDir(ab).load_all().size(), 9u);

  // compact(merged) is a no-op (merge canonicalizes)...
  const auto merged = dir_bytes(ab);
  ASSERT_TRUE(EvalCacheDir(ab).compact().ok);
  EXPECT_EQ(dir_bytes(ab), merged);

  // ...and merging pre-compacted shards yields the same bytes.
  ASSERT_TRUE(EvalCacheDir(a).compact().ok);
  ASSERT_TRUE(EvalCacheDir(b).compact().ok);
  const std::string cc = fresh_dir("merge_compacted");
  EXPECT_EQ(EvalCacheDir::merge(cc, a).failed, 0u);
  EXPECT_EQ(EvalCacheDir::merge(cc, b).failed, 0u);
  EXPECT_EQ(dir_bytes(cc), merged);
}

TEST(CacheLifecycle, V1IndexReadsAndCompactUpgrades) {
  // A v1-era directory: 3-token entry records under a version-1 header.
  // It must load fine as-is, store_batch must keep appending v1 records
  // (old readers stay compatible), and compact must upgrade to v2.
  const std::string dir = fresh_dir("v1_upgrade");
  fs::create_directories(dir);
  const EvalCacheEntry a = entry_for(0xa, 5);
  const EvalCacheEntry b = entry_for(0xb, 5);
  auto name = [](const EvalCacheEntry& e) {
    return hex64(e.key.trace_hash) + "-" + hex64(e.key.options_hash) + ".entry";
  };
  std::ofstream(fs::path(dir) / name(a), std::ios::binary) << serialize_eval_entry(a);
  std::ofstream(fs::path(dir) / name(b), std::ios::binary) << serialize_eval_entry(b);
  {
    std::ofstream index(fs::path(dir) / "index.txt");
    index << "addm-eval-cache 1\n";
    index << "entry " << hex64(a.key.trace_hash) << " " << hex64(a.key.options_hash)
          << "\n";
    index << "entry " << hex64(b.key.trace_hash) << " " << hex64(b.key.options_hash)
          << "\n";
  }

  EvalCacheDir cache(dir);
  EvalCacheLoadStats stats;
  EXPECT_EQ(cache.load_all(&stats).size(), 2u);
  EXPECT_EQ(stats.skipped, 0u);

  ASSERT_EQ(cache.store_batch({entry_for(0xc, 5)}), 1u);
  {
    std::ifstream in(fs::path(dir) / "index.txt");
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first, "addm-eval-cache 1");  // append kept the index's version
    std::string line;
    while (std::getline(in, line))
      EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 2) << line;
  }
  // record_hits has no v1 grammar to write; it reports failure, changes
  // nothing, and the directory stays fully readable.
  EXPECT_FALSE(cache.record_hits({{{0xa, 5}, 1}}));
  EXPECT_EQ(cache.load_all().size(), 3u);

  ASSERT_TRUE(cache.compact().ok);
  EXPECT_EQ(cache.stats().index_version, kEvalCacheFormatVersion);
  EXPECT_EQ(cache.load_all().size(), 3u);
  EXPECT_TRUE(cache.record_hits({{{0xa, 5}, 1}}));
}

TEST(CacheLifecycle, FutureVersionIsRefusedUntouched) {
  const std::string dir = fresh_dir("future");
  EvalCacheDir cache(dir);
  ASSERT_TRUE(cache.store(entry_for(1, 6)));
  std::string index = slurp(fs::path(dir) / "index.txt");
  index.replace(index.find("addm-eval-cache 2"), 17, "addm-eval-cache 9");
  std::ofstream(fs::path(dir) / "index.txt", std::ios::trunc) << index;

  const auto before = dir_bytes(dir);
  EXPECT_FALSE(cache.compact().ok);
  EXPECT_FALSE(cache.prune(0, 0).ok);
  EXPECT_EQ(cache.store_batch({entry_for(2, 6)}), 0u);
  EXPECT_FALSE(cache.record_hits({{{1, 6}, 1}}));
  EXPECT_EQ(dir_bytes(dir), before);  // refused means untouched
  EXPECT_EQ(cache.stats().entries, 0u);  // and unreadable reads as empty
}

TEST(CacheLifecycle, BudgetedFlushMatchesOfflinePrune) {
  // BatchOptions::cache_budget_bytes at flush time must leave the same
  // bytes on disk as an unbudgeted flush followed by an offline prune to
  // the same budget — the online path is the offline path.
  const auto traces = seq::standard_suite({8, 8});

  const std::string offline = fresh_dir("budget_offline");
  {
    BatchOptions opt;
    opt.threads = 2;
    opt.cache_dir = offline;
    BatchExplorer(opt).run(traces);
  }
  const auto unpruned_entries = EvalCacheDir(offline).stats().entries;
  // Budget = half the unbudgeted payload: guarantees real eviction while
  // staying independent of entry-size details.
  const std::uint64_t kBudget = EvalCacheDir(offline).stats().payload_bytes / 2;
  ASSERT_GT(kBudget, 0u);
  ASSERT_TRUE(EvalCacheDir(offline).prune(UINT64_MAX, kBudget).ok);

  const std::string online = fresh_dir("budget_online");
  BatchResult cold;
  {
    BatchOptions opt;
    opt.threads = 2;
    opt.cache_dir = online;
    opt.cache_budget_bytes = kBudget;
    cold = BatchExplorer(opt).run(traces);
  }
  EXPECT_GT(cold.disk_entries_evicted, 0u);
  EXPECT_LT(EvalCacheDir(online).stats().entries, unpruned_entries);
  EXPECT_LE(EvalCacheDir(online).stats().payload_bytes, kBudget);
  EXPECT_EQ(dir_bytes(online), dir_bytes(offline));
}

TEST(CacheLifecycle, PrunedWarmStartReportMatchesColdRun) {
  // The acceptance contract: pruning turns hits into misses, never into
  // wrong answers.  A warm start from a heavily pruned cache must emit a
  // report byte-identical to the cold run's.
  const auto traces = seq::standard_suite({8, 8});
  const std::string dir = fresh_dir("warm_after_prune");
  BatchOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir;

  const BatchResult cold = BatchExplorer(opt).run(traces);
  ASSERT_TRUE(EvalCacheDir(dir).prune(3, UINT64_MAX).ok);

  const BatchResult warm = BatchExplorer(opt).run(traces);
  EXPECT_EQ(warm.disk_hits + warm.evaluations, traces.size());
  EXPECT_GT(warm.evaluations, 0u);  // pruned keys really are misses
  EXPECT_EQ(batch_report_csv(warm), batch_report_csv(cold));
  EXPECT_EQ(batch_report_json(warm), batch_report_json(cold));

  // The flush restored the evicted keys: a third run is all-disk again.
  const BatchResult healed = BatchExplorer(opt).run(traces);
  EXPECT_EQ(healed.evaluations, 0u);
  EXPECT_EQ(healed.disk_hits, traces.size());
}

TEST(CacheLifecycle, ConcurrentStoreAndLoadSmoke) {
  // TSan-targeted: two stores and a loader on one directory race freely
  // (maintenance excluded — it documents single-writer).  Nothing may
  // crash or report a torn read.
  const std::string dir = fresh_dir("concurrent_smoke");
  auto writer = [&](std::uint64_t salt) {
    EvalCacheDir cache(dir);
    std::vector<EvalCacheEntry> batch;
    for (std::uint64_t i = 0; i < 8; ++i)
      batch.push_back(entry_for(salt * 100 + i, 8));
    cache.store_batch(batch);
    cache.record_hits({{{salt * 100, 8}, 1}});
  };
  std::thread w1(writer, 1), w2(writer, 2);
  {
    EvalCacheDir cache(dir);
    for (int i = 0; i < 20; ++i) (void)cache.load_all();
  }
  w1.join();
  w2.join();
  EvalCacheLoadStats stats;
  EXPECT_EQ(EvalCacheDir(dir).load_all(&stats).size(), 16u);
  EXPECT_EQ(stats.skipped, 0u);
}

}  // namespace
}  // namespace addm::core
