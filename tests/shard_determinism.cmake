# End-to-end shard/cache determinism check, run as a ctest entry and by the
# CI smoke job:
#
#   1. one unsharded addm_explore run (CSV + JSON reference reports)
#   2. three --shard i/3 runs, each writing its own --cache-dir
#   3. three more shard runs in the other format, served from those caches
#      (so byte-equality below also proves the disk round trip is exact)
#   4. addm_merge of the shard reports and of the three cache directories
#   5. the merged reports must equal the unsharded ones byte-for-byte
#   6. a rerun against the merged cache must report 100% disk hits and
#      still reproduce the reference report
#
# Usage: cmake -DADDM_EXPLORE=... -DADDM_MERGE=... -DWORK_DIR=... -P this
foreach(var ADDM_EXPLORE ADDM_MERGE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(SUITE 2)         # 2 geometries x 9 patterns = 18 traces
set(TRACES 18)

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

macro(run_checked)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE _rc ERROR_VARIABLE _err OUTPUT_QUIET)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${_rc}): ${ARGN}\n${_err}")
  endif()
endmacro()

macro(compare_files a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE _cmp)
  if(NOT _cmp EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endmacro()

# 1. Unsharded reference reports.
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 4 --format json
  --out ${WORK_DIR}/full.json --quiet)
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 4 --format csv
  --out ${WORK_DIR}/full.csv --quiet)

# 2 + 3. Shard runs: JSON cold (populating the per-shard caches), then CSV
# warm (served from them).
set(JSON_SHARDS "")
set(CSV_SHARDS "")
foreach(i RANGE 2)
  run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 2 --shard ${i}/3
    --cache-dir ${WORK_DIR}/cache_${i} --format json
    --out ${WORK_DIR}/shard_${i}.json --quiet)
  run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 2 --shard ${i}/3
    --cache-dir ${WORK_DIR}/cache_${i} --format csv
    --out ${WORK_DIR}/shard_${i}.csv --quiet)
  list(APPEND JSON_SHARDS ${WORK_DIR}/shard_${i}.json)
  list(APPEND CSV_SHARDS ${WORK_DIR}/shard_${i}.csv)
endforeach()

# 4. Merge reports and caches.
run_checked(${ADDM_MERGE} --format json --out ${WORK_DIR}/merged.json
  ${JSON_SHARDS} --quiet)
run_checked(${ADDM_MERGE} --format csv --out ${WORK_DIR}/merged.csv
  ${CSV_SHARDS}
  --cache-into ${WORK_DIR}/cache_merged
  --cache ${WORK_DIR}/cache_0 --cache ${WORK_DIR}/cache_1
  --cache ${WORK_DIR}/cache_2 --quiet)

# 5. Byte-identical to the unsharded run.
compare_files(${WORK_DIR}/merged.json ${WORK_DIR}/full.json "merged JSON report")
compare_files(${WORK_DIR}/merged.csv ${WORK_DIR}/full.csv "merged CSV report")

# 6. Rerun against the merged cache: zero evaluations, all disk hits, same
# report bytes.
execute_process(COMMAND ${ADDM_EXPLORE} --suite ${SUITE} --threads 4
  --format json --out ${WORK_DIR}/warm.json --cache-dir ${WORK_DIR}/cache_merged
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm rerun failed (rc=${rc}):\n${err}")
endif()
if(NOT err MATCHES "\\(0 evaluated, 0 memo hits, ${TRACES} disk hits, 0 errors\\)")
  message(FATAL_ERROR "warm rerun was not served entirely from the merged cache:\n${err}")
endif()
compare_files(${WORK_DIR}/warm.json ${WORK_DIR}/full.json "disk-warm JSON report")

message(STATUS "shard determinism OK: 3 shards + merge == unsharded, warm rerun 100% disk hits")
