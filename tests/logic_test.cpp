// Unit and property tests for the two-level logic layer: truth tables,
// cubes/covers, the ISOP minimizer (equivalence + irredundancy over swept and
// randomized functions) and SOP-to-gates mapping (checked by simulation).
#include <gtest/gtest.h>

#include <random>

#include "logic/cube.hpp"
#include "logic/isop.hpp"
#include "logic/sop_map.hpp"
#include "logic/truth_table.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"

namespace addm::logic {
namespace {

TEST(TruthTable, ZerosOnesVar) {
  EXPECT_TRUE(TruthTable::zeros(3).is_zero());
  EXPECT_TRUE(TruthTable::ones(3).is_ones());
  const auto x1 = TruthTable::var(3, 1);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(x1.get(m), ((m >> 1) & 1) != 0);
  EXPECT_EQ(x1.count_ones(), 4u);
}

TEST(TruthTable, SetGetRoundTrip) {
  TruthTable t(4);
  t.set(5, true);
  t.set(12, true);
  EXPECT_TRUE(t.get(5));
  EXPECT_TRUE(t.get(12));
  EXPECT_FALSE(t.get(0));
  t.set(5, false);
  EXPECT_FALSE(t.get(5));
  EXPECT_EQ(t.count_ones(), 1u);
}

TEST(TruthTable, SmallWidthsNormalized) {
  // num_vars < 6 uses a partial word; ones() must not leak beyond it.
  for (int n = 0; n <= 5; ++n) {
    const auto t = TruthTable::ones(n);
    EXPECT_EQ(t.count_ones(), std::uint64_t{1} << n) << n;
    EXPECT_TRUE(t.is_ones());
    EXPECT_TRUE((~t).is_zero());
  }
}

TEST(TruthTable, OperatorsPointwise) {
  const auto a = TruthTable::var(3, 0);
  const auto b = TruthTable::var(3, 2);
  const auto f = (a & b) | (~a & ~b);  // xnor
  for (std::uint64_t m = 0; m < 8; ++m)
    EXPECT_EQ(f.get(m), ((m & 1) != 0) == ((m >> 2 & 1) != 0));
  EXPECT_EQ((a ^ a).count_ones(), 0u);
  EXPECT_TRUE(a.diff(a).is_zero());
}

class TruthTableCofactorTest : public ::testing::TestWithParam<int> {};

TEST_P(TruthTableCofactorTest, CofactorMatchesDefinition) {
  const int n = GetParam();
  std::mt19937_64 rng(42 + static_cast<unsigned>(n));
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m)
    f.set(m, rng() & 1);
  for (int k = 0; k < n; ++k) {
    const auto f0 = f.cofactor(k, false);
    const auto f1 = f.cofactor(k, true);
    EXPECT_FALSE(f0.depends_on(k));
    EXPECT_FALSE(f1.depends_on(k));
    for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m) {
      const std::uint64_t m0 = m & ~(std::uint64_t{1} << k);
      const std::uint64_t m1 = m | (std::uint64_t{1} << k);
      EXPECT_EQ(f0.get(m), f.get(m0));
      EXPECT_EQ(f1.get(m), f.get(m1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TruthTableCofactorTest,
                         ::testing::Values(1, 2, 3, 5, 6, 7, 8, 10));

TEST(TruthTable, TopVarAndDependence) {
  const auto f = TruthTable::var(8, 3) & TruthTable::var(8, 6);
  EXPECT_TRUE(f.depends_on(3));
  EXPECT_TRUE(f.depends_on(6));
  EXPECT_FALSE(f.depends_on(0));
  EXPECT_EQ(f.top_var(), 6);
  EXPECT_EQ(TruthTable::zeros(4).top_var(), -1);
}

TEST(TruthTable, Implies) {
  const auto a = TruthTable::var(4, 0);
  const auto ab = a & TruthTable::var(4, 1);
  EXPECT_TRUE(ab.implies(a));
  EXPECT_FALSE(a.implies(ab));
}

TEST(Cube, CoversAndLiterals) {
  Cube c;                   // universe
  EXPECT_TRUE(c.covers(7));
  EXPECT_EQ(c.num_literals(), 0);
  c.mask = 0b101;
  c.polarity = 0b001;       // x0 & !x2
  EXPECT_TRUE(c.covers(0b001));
  EXPECT_TRUE(c.covers(0b011));
  EXPECT_FALSE(c.covers(0b100));
  EXPECT_EQ(c.num_literals(), 2);
  EXPECT_EQ(c.to_string(), "x2'·x0");
}

TEST(Cube, Containment) {
  Cube big{0b001, 0b001};    // x0
  Cube small{0b011, 0b001};  // x0 & !x1
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(Cube::universe().contains(big));
}

TEST(Cover, ToTruthTableAndEvaluateAgree) {
  Cover cov;
  cov.cubes.push_back({0b011, 0b011});  // x0 x1
  cov.cubes.push_back({0b100, 0b000});  // !x2
  const auto tt = cov.to_truth_table(3);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(tt.get(m), cov.evaluate(m)) << m;
  EXPECT_EQ(cov.num_literals(), 3);
  EXPECT_EQ(Cover{}.to_string(), "0");
}

TEST(Isop, ConstantFunctions) {
  EXPECT_TRUE(isop(TruthTable::zeros(4)).cubes.empty());
  const auto ones = isop(TruthTable::ones(4));
  ASSERT_EQ(ones.cubes.size(), 1u);
  EXPECT_EQ(ones.cubes[0].num_literals(), 0);
}

TEST(Isop, SingleVariableIsOneCube) {
  for (int n : {4, 8, 12}) {
    for (int k = 0; k < n; k += 3) {
      const auto cov = isop(TruthTable::var(n, k));
      ASSERT_EQ(cov.cubes.size(), 1u) << n << "," << k;
      EXPECT_EQ(cov.cubes[0].num_literals(), 1);
    }
  }
}

TEST(Isop, DecoderLineIsOneCube) {
  // f = (x == 5) over 4 vars: exactly one full cube.
  TruthTable f(4);
  f.set(5, true);
  const auto cov = isop(f);
  ASSERT_EQ(cov.cubes.size(), 1u);
  EXPECT_EQ(cov.cubes[0].num_literals(), 4);
}

TEST(Isop, XorNeedsTwoCubes) {
  const auto f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const auto cov = isop(f);
  EXPECT_EQ(cov.cubes.size(), 2u);
  EXPECT_EQ(cov.to_truth_table(2), f);
}

TEST(Isop, DontCaresShrinkCover) {
  // onset {5}, dc everything else with x0=1: minimizes to the single literal x0.
  TruthTable lower(4);
  lower.set(5, true);
  const TruthTable upper = TruthTable::var(4, 0);
  const auto cov = isop(lower, upper);
  const auto tt = cov.to_truth_table(4);
  EXPECT_TRUE(lower.implies(tt));
  EXPECT_TRUE(tt.implies(upper));
  ASSERT_EQ(cov.cubes.size(), 1u);
  EXPECT_EQ(cov.cubes[0].num_literals(), 1);
}

TEST(Isop, RejectsInvertedBounds) {
  const auto a = TruthTable::var(3, 0);
  EXPECT_THROW(isop(TruthTable::ones(3), a), std::invalid_argument);
  EXPECT_THROW(isop(TruthTable::zeros(3), TruthTable::zeros(4)), std::invalid_argument);
}

class IsopRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IsopRandomTest, EquivalentAndIrredundant) {
  const int n = GetParam();
  std::mt19937_64 rng(1000 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 20; ++trial) {
    TruthTable f(n);
    for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m) f.set(m, rng() & 1);
    const auto cov = isop(f);
    EXPECT_EQ(cov.to_truth_table(n), f) << "n=" << n << " trial=" << trial;
    EXPECT_TRUE(is_irredundant(cov, f, n)) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IsopRandomTest, ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(IsopRandom, IncompletelySpecifiedStaysInBounds) {
  std::mt19937_64 rng(7);
  const int n = 6;
  for (int trial = 0; trial < 20; ++trial) {
    TruthTable lower(n), dc(n);
    for (std::uint64_t m = 0; m < lower.num_minterms_capacity(); ++m) {
      const auto r = rng() % 4;
      if (r == 0) lower.set(m, true);
      if (r == 1) dc.set(m, true);
    }
    const TruthTable upper = lower | dc;
    const auto cov = isop(lower, upper);
    const auto val = cov.to_truth_table(n);
    EXPECT_TRUE(lower.implies(val));
    EXPECT_TRUE(val.implies(upper));
  }
}

TEST(SopMap, MappedCoverMatchesFunction) {
  std::mt19937_64 rng(99);
  const int n = 4;
  for (int trial = 0; trial < 10; ++trial) {
    TruthTable f(n);
    for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m) f.set(m, rng() & 1);
    const auto cov = isop(f);

    netlist::Netlist nl;
    netlist::NetlistBuilder b(nl);
    const auto inputs = b.input_bus("x", n);
    b.output("f", map_cover(b, cov, inputs));

    sim::Simulator s(nl);
    for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m) {
      s.set_bus("x", m);
      s.eval();
      EXPECT_EQ(s.get("f"), f.get(m)) << "minterm " << m;
    }
  }
}

TEST(SopMap, FlatModeUsesMoreGates) {
  // Two outputs sharing a subterm: hashed mapping reuses it, flat does not.
  TruthTable f(4);
  for (std::uint64_t m = 0; m < 16; ++m)
    if ((m & 0b0111) == 0b0111) f.set(m, true);  // x0 x1 x2
  TruthTable g(4);
  for (std::uint64_t m = 0; m < 16; ++m)
    if ((m & 0b1011) == 0b0011) g.set(m, true);  // x0 x1 !x3

  auto gate_count = [&](bool share) {
    netlist::Netlist nl;
    netlist::NetlistBuilder b(nl);
    const auto inputs = b.input_bus("x", 4);
    b.set_sharing(share);
    b.output("f", map_cover(b, isop(f), inputs));
    b.output("g", map_cover(b, isop(g), inputs));
    return nl.stats().num_comb;
  };
  EXPECT_LE(gate_count(true), gate_count(false));
}

TEST(SopMap, RejectsOutOfRangeVariable) {
  netlist::Netlist nl;
  netlist::NetlistBuilder b(nl);
  const auto inputs = b.input_bus("x", 2);
  Cover cov;
  cov.cubes.push_back({0b100, 0b100});  // uses x2, but only 2 inputs
  EXPECT_THROW(map_cover(b, cov, inputs), std::invalid_argument);
}

}  // namespace
}  // namespace addm::logic
