// Randomized property tests for pareto_front, pinning the semantics the
// registry-parallel explorer rewrite must preserve:
//  * no front member is dominated by any feasible point;
//  * every feasible non-member is dominated by some front *member*
//    (dominance is transitive, so exclusion always has a front witness);
//  * infeasible points never appear on the front;
//  * the front is invariant under permutation of the input (as a point
//    set), and indices come back sorted ascending.
// Deliberately small metric grids force ties and duplicates — the edge
// cases where a sloppy dominance definition goes wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/explorer.hpp"

namespace addm::core {
namespace {

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  const bool no_worse = a.metrics.area_units <= b.metrics.area_units &&
                        a.metrics.delay_ns <= b.metrics.delay_ns;
  const bool better = a.metrics.area_units < b.metrics.area_units ||
                      a.metrics.delay_ns < b.metrics.delay_ns;
  return no_worse && better;
}

std::vector<DesignPoint> random_points(std::mt19937& rng) {
  std::uniform_int_distribution<int> size_dist(0, 40);
  std::uniform_int_distribution<int> metric_dist(1, 6);  // small grid: many ties
  std::uniform_int_distribution<int> feasible_dist(0, 4);
  std::vector<DesignPoint> ps(static_cast<std::size_t>(size_dist(rng)));
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i].architecture = "p" + std::to_string(i);
    ps[i].feasible = feasible_dist(rng) != 0;  // ~20% infeasible
    if (ps[i].feasible) {
      ps[i].metrics.area_units = metric_dist(rng);
      ps[i].metrics.delay_ns = metric_dist(rng);
    }
  }
  return ps;
}

class ParetoFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParetoFuzz, FrontIsExactlyTheNonDominatedFeasibleSet) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto ps = random_points(rng);
    const auto front = pareto_front(ps);

    EXPECT_TRUE(std::is_sorted(front.begin(), front.end()));
    std::vector<bool> on_front(ps.size(), false);
    for (std::size_t i : front) {
      ASSERT_LT(i, ps.size());
      on_front[i] = true;
      EXPECT_TRUE(ps[i].feasible) << "infeasible point " << i << " on front";
      for (std::size_t j = 0; j < ps.size(); ++j)
        if (j != i && ps[j].feasible)
          EXPECT_FALSE(dominates(ps[j], ps[i]))
              << "front member " << i << " dominated by " << j;
    }
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (!ps[i].feasible || on_front[i]) continue;
      bool witnessed = false;
      for (std::size_t j : front)
        if (dominates(ps[j], ps[i])) {
          witnessed = true;
          break;
        }
      EXPECT_TRUE(witnessed) << "non-member " << i << " has no dominating front member";
    }
  }
}

TEST_P(ParetoFuzz, FrontInvariantUnderPermutation) {
  std::mt19937 rng(1000 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto ps = random_points(rng);
    const auto front = pareto_front(ps);

    std::vector<std::size_t> perm(ps.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<DesignPoint> shuffled(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) shuffled[perm[i]] = ps[i];

    // Map the shuffled front back to original indices; as index *sets* the
    // two fronts must coincide.
    std::vector<std::size_t> inverse(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) inverse[perm[i]] = i;
    std::vector<std::size_t> mapped;
    for (std::size_t i : pareto_front(shuffled)) mapped.push_back(inverse[i]);
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(mapped, front) << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoFuzz, ::testing::Range(1u, 9u));

TEST(Pareto, EmptyAndAllInfeasible) {
  EXPECT_TRUE(pareto_front({}).empty());
  std::vector<DesignPoint> ps(3);
  for (auto& p : ps) p.feasible = false;
  EXPECT_TRUE(pareto_front(ps).empty());
}

TEST(Pareto, DuplicatePointsAllSurvive) {
  // Two identical feasible points: neither strictly dominates the other, so
  // both stay on the front (ties are kept, matching the report contract).
  std::vector<DesignPoint> ps(2);
  for (auto& p : ps) {
    p.feasible = true;
    p.metrics.area_units = 5;
    p.metrics.delay_ns = 2;
  }
  EXPECT_EQ(pareto_front(ps), (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace addm::core
