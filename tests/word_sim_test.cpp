// Equivalence and unit tests for the levelized 64-lane word simulator: on
// randomized netlists (every cell type, flip-flop feedback included) each
// lane of sim::WordSimulator must be bit-identical to a scalar
// sim::Simulator driven with that lane's stimulus — outputs and toggle
// counts alike — both with one stimulus replicated across all lanes and
// with 64 distinct per-lane streams.  Plus levelizer structure tests and
// a generator-netlist replay.
//
// PRNGs are seeded, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/cntag.hpp"
#include "netlist/builder.hpp"
#include "netlist/levelize.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"
#include "sim/word_simulator.hpp"

namespace addm::sim {
namespace {

using netlist::CellType;
using netlist::kConst0;
using netlist::kConst1;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

/// A random netlist over every cell type: primary inputs, pre-created
/// flip-flop state nets (so combinational logic can read state feedback),
/// a layer of random combinational cells (acyclic by construction: cells
/// only read already-created nets), then the flip-flops themselves reading
/// arbitrary nets.  Returns the netlist and its input nets.
struct RandomCircuit {
  Netlist nl;
  std::vector<NetId> inputs;
};

RandomCircuit random_circuit(std::mt19937& rng, std::size_t num_cells) {
  RandomCircuit c;
  NetlistBuilder b(c.nl);
  b.set_sharing(false);

  std::uniform_int_distribution<int> in_dist(3, 6);
  std::uniform_int_distribution<int> ff_dist(2, 5);
  c.inputs = b.input_bus("in", in_dist(rng));

  std::vector<NetId> ffq(static_cast<std::size_t>(ff_dist(rng)));
  for (NetId& q : ffq) q = c.nl.new_net();

  std::vector<NetId> pool = {kConst0, kConst1};
  pool.insert(pool.end(), c.inputs.begin(), c.inputs.end());
  pool.insert(pool.end(), ffq.begin(), ffq.end());

  auto pick = [&]() { return pool[rng() % pool.size()]; };
  auto random_inputs = [&](CellType t) {
    std::vector<NetId> ins(netlist::traits(t).num_inputs);
    for (NetId& n : ins) n = pick();
    return ins;
  };

  const CellType comb_types[] = {CellType::Inv,  CellType::Buf,  CellType::Nand2,
                                 CellType::Nor2, CellType::And2, CellType::Or2,
                                 CellType::Xor2, CellType::Xnor2, CellType::Mux2};
  for (std::size_t i = 0; i < num_cells; ++i) {
    const CellType t = comb_types[rng() % std::size(comb_types)];
    const NetId out = c.nl.new_net();
    c.nl.add_cell(t, random_inputs(t), out);
    pool.push_back(out);
  }

  const CellType seq_types[] = {CellType::Dff,  CellType::DffR,  CellType::DffS,
                                CellType::DffE, CellType::DffER, CellType::DffES};
  for (std::size_t k = 0; k < ffq.size(); ++k) {
    const CellType t = seq_types[rng() % std::size(seq_types)];
    c.nl.add_cell(t, random_inputs(t), ffq[k]);
  }

  // A few named outputs so bus helpers have something to address.
  for (int i = 0; i < 4; ++i)
    c.nl.add_output("out[" + std::to_string(i) + "]", pick());
  return c;
}

TEST(WordSimulator, MatchesScalarWithReplicatedStimulus) {
  std::mt19937 rng(0x5eedau);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    RandomCircuit c = random_circuit(rng, 40 + rng() % 80);
    ASSERT_TRUE(c.nl.validate().empty());

    Simulator s(c.nl);
    WordSimulator w(c.nl);
    s.enable_toggle_counting();
    w.enable_toggle_counting();

    for (int step = 0; step < 24; ++step) {
      for (NetId in : c.inputs) {
        const bool v = rng() & 1;
        s.set_input(in, v);
        w.set_input(in, v ? WordSimulator::kAllLanes : 0);
      }
      s.step();
      w.step();
      for (NetId n = 0; n < c.nl.num_nets(); ++n) {
        const std::uint64_t want = s.value(n) ? WordSimulator::kAllLanes : 0;
        ASSERT_EQ(w.word(n), want) << "net " << n << " step " << step;
      }
    }
    for (NetId n = 0; n < c.nl.num_nets(); ++n)
      ASSERT_EQ(w.toggles()[n], WordSimulator::kLanes * s.toggles()[n]) << "net " << n;
  }
}

TEST(WordSimulator, MatchesScalarWithDistinctPerLaneStimuli) {
  std::mt19937 rng(0xface5u);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    RandomCircuit c = random_circuit(rng, 30 + rng() % 50);
    ASSERT_TRUE(c.nl.validate().empty());

    std::vector<Simulator> lanes;
    lanes.reserve(WordSimulator::kLanes);
    for (std::size_t l = 0; l < WordSimulator::kLanes; ++l) lanes.emplace_back(c.nl);
    WordSimulator w(c.nl);
    for (Simulator& s : lanes) s.enable_toggle_counting();
    w.enable_toggle_counting();

    for (int step = 0; step < 12; ++step) {
      for (NetId in : c.inputs) {
        std::uint64_t word = (std::uint64_t{rng()} << 32) | rng();
        w.set_input(in, word);
        for (std::size_t l = 0; l < lanes.size(); ++l)
          lanes[l].set_input(in, (word >> l) & 1);
      }
      w.step();
      for (Simulator& s : lanes) s.step();
      for (NetId n = 0; n < c.nl.num_nets(); ++n)
        for (std::size_t l = 0; l < lanes.size(); ++l)
          ASSERT_EQ(w.value(n, l), lanes[l].value(n))
              << "net " << n << " lane " << l << " step " << step;
    }
    for (NetId n = 0; n < c.nl.num_nets(); ++n) {
      std::uint64_t sum = 0;
      for (const Simulator& s : lanes) sum += s.toggles()[n];
      ASSERT_EQ(w.toggles()[n], sum) << "net " << n;
    }
  }
}

TEST(WordSimulator, ReplaysGeneratorNetlistInEveryLane) {
  const auto trace = seq::block_raster({8, 8}, 4, 4);
  netlist::Netlist nl = core::elaborate_cntag(trace, {});
  WordSimulator w(nl);
  w.set_all("reset", true);
  w.set_all("next", false);
  w.step();
  w.set_all("reset", false);
  w.set_all("next", true);
  for (std::size_t k = 0; k < trace.length() + 3; ++k) {
    const std::uint32_t a = trace.linear()[k % trace.length()];
    for (std::size_t lane : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
      EXPECT_EQ(w.get_bus("ra", lane), trace.row_of(a)) << "access " << k;
      EXPECT_EQ(w.hot_index("rs", lane), trace.row_of(a)) << "access " << k;
      EXPECT_EQ(w.hot_index("cs", lane), trace.col_of(a)) << "access " << k;
    }
    w.step();
  }
}

TEST(WordSimulator, PowerOnResetRestartsTogglesAndCycles) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);
  WordSimulator w(nl);
  w.enable_toggle_counting();
  w.run(6);
  EXPECT_EQ(w.toggles()[q], 6 * WordSimulator::kLanes);
  w.power_on_reset();
  EXPECT_EQ(w.cycles(), 0u);
  EXPECT_EQ(w.toggles()[q], 0u);
  w.run(3);
  EXPECT_EQ(w.toggles()[q], 3 * WordSimulator::kLanes);
}

TEST(WordSimulator, BusAndLaneHelpers) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto in = b.input_bus("d", 4);
  std::vector<NetId> qs;
  for (auto n : in) qs.push_back(b.dff(n));
  b.output_bus("q", qs);
  WordSimulator w(nl);
  w.set_bus("d", 0b1010);
  w.step();
  EXPECT_EQ(w.get_bus("q", 0), 0b1010u);
  EXPECT_EQ(w.get_bus("q", 63), 0b1010u);
  w.set_bus_lane("d", 5, 0b0110);
  w.step();
  EXPECT_EQ(w.get_bus("q", 5), 0b0110u);
  EXPECT_EQ(w.get_bus("q", 4), 0b1010u);  // other lanes untouched
  EXPECT_THROW(w.set_bus("nope", 1), std::invalid_argument);
  EXPECT_THROW(w.set_bus("d", 0b10000), std::invalid_argument);  // 5 bits, 4-bit bus
  EXPECT_THROW(w.set_bus_lane("d", 64, 0), std::invalid_argument);
}

TEST(WordSimulator, RejectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.new_net();
  const NetId y = nl.new_net();
  nl.add_cell(CellType::Inv, {a}, y);
  nl.add_cell(CellType::Inv, {y}, a);
  EXPECT_THROW(WordSimulator w(nl), std::invalid_argument);
}

TEST(Levelize, AssignsMonotoneLevels) {
  std::mt19937 rng(0x1e7e1u);
  RandomCircuit c = random_circuit(rng, 60);
  const auto lev = netlist::levelize(c.nl);
  ASSERT_TRUE(lev.has_value());

  // Every combinational op sits one level above its deepest input, the
  // stream is level-major, and op count equals the combinational cell count.
  EXPECT_EQ(lev->comb.size(), c.nl.stats().num_comb);
  EXPECT_EQ(lev->seq.size(), c.nl.stats().num_seq);
  EXPECT_EQ(lev->level_begin.front(), 0u);
  EXPECT_EQ(lev->level_begin.back(), lev->comb.size());
  for (std::size_t l = 0; l < lev->num_levels(); ++l) {
    for (std::size_t i = lev->level_begin[l]; i < lev->level_begin[l + 1]; ++i) {
      const netlist::FlatOp& op = lev->comb[i];
      EXPECT_EQ(lev->net_level[op.out], l + 1);
      std::uint32_t deepest = 0;
      for (int p = 0; p < netlist::traits(op.type).num_inputs; ++p) {
        EXPECT_LT(lev->net_level[op.in[p]], lev->net_level[op.out]);
        deepest = std::max(deepest, lev->net_level[op.in[p]]);
      }
      EXPECT_EQ(lev->net_level[op.out], deepest + 1);
    }
  }
  // Sources stay at level 0.
  EXPECT_EQ(lev->net_level[kConst0], 0u);
  EXPECT_EQ(lev->net_level[kConst1], 0u);
  for (NetId in : c.inputs) EXPECT_EQ(lev->net_level[in], 0u);
  for (const netlist::FlatOp& ff : lev->seq) EXPECT_EQ(lev->net_level[ff.out], 0u);
}

TEST(Levelize, RejectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.new_net();
  const NetId y = nl.new_net();
  nl.add_cell(CellType::Inv, {a}, y);
  nl.add_cell(CellType::Inv, {y}, a);
  EXPECT_FALSE(netlist::levelize(nl).has_value());
}

}  // namespace
}  // namespace addm::sim
