// Tests for the adder generator, the arithmetic-based address generator
// (replay equivalence against the loop-nest trace), and the gate-level
// memory cell arrays.
#include <gtest/gtest.h>

#include "core/arithag.hpp"
#include "core/cntag.hpp"
#include "core/metrics.hpp"
#include "memory/array_netlist.hpp"
#include "seq/loopnest.hpp"
#include "sim/simulator.hpp"
#include "synth/adder.hpp"
#include "tech/library.hpp"

namespace addm {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(Adder, ExhaustiveSmallWidths) {
  for (int bits : {1, 2, 3, 4}) {
    Netlist nl;
    NetlistBuilder b(nl);
    const auto a = b.input_bus("a", bits);
    const auto c = b.input_bus("c", bits);
    const NetId cin = b.input("cin");
    const auto ports = synth::build_adder(b, a, c, cin);
    b.output_bus("s", ports.sum);
    b.output("cout", ports.carry_out);
    ASSERT_TRUE(nl.validate().empty());

    sim::Simulator s(nl);
    const std::uint64_t limit = std::uint64_t{1} << bits;
    for (std::uint64_t av = 0; av < limit; ++av)
      for (std::uint64_t cv = 0; cv < limit; ++cv)
        for (std::uint64_t ci = 0; ci <= 1; ++ci) {
          s.set_bus("a", av);
          s.set_bus("c", cv);
          s.set("cin", ci != 0);
          s.eval();
          const std::uint64_t total = av + cv + ci;
          EXPECT_EQ(s.get_bus("s"), total % limit) << av << "+" << cv << "+" << ci;
          EXPECT_EQ(s.get("cout"), total >= limit);
        }
  }
}

TEST(Adder, RejectsMismatchedWidths) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto a = b.input_bus("a", 3);
  const auto c = b.input_bus("c", 2);
  EXPECT_THROW(synth::build_adder(b, a, c), std::invalid_argument);
}

// --- ArithAG ------------------------------------------------------------------

void check_arithag_replays(const seq::LoopNestProgram& prog) {
  const auto trace = prog.nest.trace(prog.access, prog.geometry);
  Netlist nl = core::elaborate_arithag(prog);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  const std::size_t w = prog.geometry.width;
  for (std::size_t k = 0; k < 2 * trace.length(); ++k) {  // two passes: wrap check
    const std::uint32_t expect = trace.linear()[k % trace.length()];
    ASSERT_EQ(s.get_bus("ra"), expect / w) << "access " << k;
    ASSERT_EQ(s.get_bus("ca"), expect % w) << "access " << k;
    ASSERT_EQ(s.hot_index("rs"), expect / w) << "access " << k;
    ASSERT_EQ(s.hot_index("cs"), expect % w) << "access " << k;
    s.step();
  }
}

TEST(ArithAg, RasterReplay) { check_arithag_replays(seq::raster_program({8, 8})); }

TEST(ArithAg, MotionEstimationReplay) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  check_arithag_replays(seq::motion_estimation_program(p));
}

TEST(ArithAg, MotionEstimationWithSearchReplay) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 8;
  p.mb_width = p.mb_height = 4;
  p.m = 1;  // exercises zero-coefficient loops (delta 0 minus inner spans)
  check_arithag_replays(seq::motion_estimation_program(p));
}

TEST(ArithAg, DctBlockColumnReplay) {
  check_arithag_replays(seq::dct_block_column_program({16, 16}, 4));
}

TEST(ArithAg, NonSquareGeometry) {
  check_arithag_replays(seq::raster_program({16, 4}));
}

TEST(ArithAg, RejectsNonPowerOfTwoWidth) {
  auto prog = seq::raster_program({6, 4});
  EXPECT_THROW(core::elaborate_arithag(prog), std::invalid_argument);
}

TEST(ArithAg, SlowerThanCounterBasedOnRegularPattern) {
  // The claim the paper inherits from [7]: counter-based beats
  // arithmetic-based for regular access. Compare adder-path vs counter-path.
  const auto lib = tech::Library::generic_180nm();
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 64;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto prog = seq::motion_estimation_program(p);

  core::ArithAgOptions aopt;
  aopt.include_decoders = false;
  Netlist arith = core::elaborate_arithag(prog, aopt);
  const auto am = core::measure_netlist(arith, lib);

  core::CntAgOptions copt;
  copt.include_decoders = false;
  Netlist cnt = core::elaborate_cntag(
      prog.nest.trace(prog.access, prog.geometry), copt);
  const auto cm = core::measure_netlist(cnt, lib);

  EXPECT_GT(am.delay_ns, cm.delay_ns);
}

// --- gate-level arrays ----------------------------------------------------------

TEST(ArrayNetlist, AddmArrayReadWrite) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto rs = b.input_bus("rs", 4);
  const auto cs = b.input_bus("cs", 4);
  const NetId din = b.input("din");
  const NetId we = b.input("we");
  const auto ports = memory::build_addm_array(b, {4, 4}, rs, cs, din, we);
  b.output("dout", ports.dout);
  ASSERT_TRUE(nl.validate().empty());

  sim::Simulator s(nl);
  // Write 1 to cell (2,3).
  s.set_bus("rs", 1u << 2);
  s.set_bus("cs", 1u << 3);
  s.set("din", true);
  s.set("we", true);
  s.step();
  s.set("we", false);
  s.eval();
  EXPECT_TRUE(s.get("dout"));  // still selected
  s.set_bus("cs", 1u << 0);    // different cell reads 0
  s.eval();
  EXPECT_FALSE(s.get("dout"));
}

TEST(ArrayNetlist, MultiRowSelectWiredOr) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto rs = b.input_bus("rs", 2);
  const auto cs = b.input_bus("cs", 2);
  const NetId din = b.input("din");
  const NetId we = b.input("we");
  b.output("dout", memory::build_addm_array(b, {2, 2}, rs, cs, din, we).dout);
  sim::Simulator s(nl);
  // Write 1 into (0,0) only.
  s.set_bus("rs", 0b01);
  s.set_bus("cs", 0b01);
  s.set("din", true);
  s.set("we", true);
  s.step();
  s.set("we", false);
  // Illegal double-row select: wired-OR exposes the 1.
  s.set_bus("rs", 0b11);
  s.eval();
  EXPECT_TRUE(s.get("dout"));
}

TEST(ArrayNetlist, DecodedArrayMatchesAddm) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto ra = b.input_bus("ra", 2);
  const auto ca = b.input_bus("ca", 2);
  const NetId din = b.input("din");
  const NetId we = b.input("we");
  const auto ports = memory::build_decoded_array(b, {4, 4}, ra, ca, din, we,
                                                 synth::DecoderStyle::SharedBalanced);
  b.output("dout", ports.dout);
  sim::Simulator s(nl);
  // March a value through every cell.
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::uint32_t c = 0; c < 4; ++c) {
      s.set_bus("ra", r);
      s.set_bus("ca", c);
      s.set("din", (r + c) % 2 != 0);
      s.set("we", true);
      s.step();
    }
  s.set("we", false);
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::uint32_t c = 0; c < 4; ++c) {
      s.set_bus("ra", r);
      s.set_bus("ca", c);
      s.eval();
      EXPECT_EQ(s.get("dout"), (r + c) % 2 != 0) << r << "," << c;
    }
}

TEST(ArrayNetlist, ValidatesArguments) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto rs = b.input_bus("rs", 2);
  const auto cs = b.input_bus("cs", 4);
  EXPECT_THROW(
      memory::build_addm_array(b, {4, 4}, rs, cs, netlist::kConst0, netlist::kConst0),
      std::invalid_argument);
}

}  // namespace
}  // namespace addm
