// Randomized equivalence: for many random valid SragConfigs, the behavioral
// model (SragModel::generate) and the elaborated gate-level netlist replayed
// through the cycle-accurate simulator must produce the same address stream.
//
// The PRNG is seeded, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/srag_elab.hpp"
#include "core/srag_model.hpp"
#include "sim/simulator.hpp"

namespace addm::core {
namespace {

/// A random valid config: R registers of a common length M over a shuffled
/// permutation of R*M select lines (optionally with extra never-visited
/// lines), pass_count a multiple of M, div_count small. A shared register
/// length keeps the pass_count-divisibility invariant trivially satisfiable
/// while still randomizing every structural dimension the elaborator has.
SragConfig random_config(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> regs_dist(1, 4);
  std::uniform_int_distribution<std::size_t> len_dist(1, 6);
  std::uniform_int_distribution<std::uint32_t> small_dist(1, 3);
  const std::size_t num_regs = regs_dist(rng);
  const std::size_t len = len_dist(rng);
  const std::size_t lines = num_regs * len;
  const std::size_t extra = small_dist(rng) - 1;  // 0..2 tied-off lines

  std::vector<std::uint32_t> perm(lines + extra);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  perm.resize(lines);  // dropped values become never-visited lines

  SragConfig cfg;
  cfg.registers.resize(num_regs);
  for (std::size_t r = 0; r < num_regs; ++r)
    cfg.registers[r].assign(perm.begin() + r * len, perm.begin() + (r + 1) * len);
  cfg.div_count = small_dist(rng);
  cfg.pass_count = static_cast<std::uint32_t>(len) * small_dist(rng);
  cfg.num_select_lines = static_cast<std::uint32_t>(lines + extra);
  cfg.check();
  return cfg;
}

TEST(SragRandomEquivalence, ModelMatchesNetlistOn50RandomConfigs) {
  std::mt19937 rng(0xadd7u);
  for (int trial = 0; trial < 50; ++trial) {
    const SragConfig cfg = random_config(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(cfg.num_registers()) + " regs, " +
                 std::to_string(cfg.num_flipflops()) + " ffs, dC=" +
                 std::to_string(cfg.div_count) + ", pC=" +
                 std::to_string(cfg.pass_count));

    netlist::Netlist nl = elaborate_srag(cfg);
    ASSERT_TRUE(nl.validate().empty());
    sim::Simulator s(nl);
    s.set("reset", true);
    s.set("next", false);
    s.step();
    s.set("reset", false);
    s.set("next", true);

    // Cover at least two full traversals of the token cycle.
    const std::size_t steps =
        2 * cfg.num_flipflops() * cfg.div_count * cfg.num_registers() + 8;

    SragModel model(cfg);
    const std::vector<std::uint32_t> expected = model.generate(steps);
    ASSERT_EQ(expected.size(), steps);

    for (std::size_t i = 0; i < steps; ++i) {
      const auto hot = s.hot_index("sel");
      ASSERT_TRUE(hot.has_value()) << "cycle " << i << ": select bus not one-hot";
      ASSERT_EQ(*hot, expected[i]) << "cycle " << i;
      s.step();
    }
  }
}

TEST(SragRandomEquivalence, GenerateAgreesWithPulseStream) {
  // model.generate must equal current() sampled before each pulse — the
  // contract the netlist replay above relies on.
  std::mt19937 rng(20260729u);
  for (int trial = 0; trial < 20; ++trial) {
    const SragConfig cfg = random_config(rng);
    SragModel a(cfg), b(cfg);
    const auto gen = a.generate(40);
    for (std::size_t i = 0; i < gen.size(); ++i) {
      EXPECT_EQ(gen[i], b.current()) << "trial " << trial << " step " << i;
      b.pulse();
    }
  }
}

}  // namespace
}  // namespace addm::core
