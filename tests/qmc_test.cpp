// Tests for the exact Quine-McCluskey minimizer, and ISOP-quality
// certification: across randomized functions the heuristic must stay within
// a small factor of the exact minimum cube count.
#include <gtest/gtest.h>

#include <random>

#include "logic/isop.hpp"
#include "logic/qmc.hpp"

namespace addm::logic {
namespace {

TEST(Qmc, PrimesOfSingleVariable) {
  const auto f = TruthTable::var(3, 1);
  const auto primes = prime_implicants(f, f);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].num_literals(), 1);
  EXPECT_EQ(primes[0].polarity & primes[0].mask, 0b010u);
}

TEST(Qmc, PrimesOfXor) {
  const auto f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const auto primes = prime_implicants(f, f);
  EXPECT_EQ(primes.size(), 2u);  // both minterms are themselves prime
}

TEST(Qmc, ClassicTextbookFunction) {
  // f = sum m(0,1,2,5,6,7) over 3 vars: minimum cover has 3 cubes
  // (e.g. x1'x0', x2'x0? ... classic result: 3 two-literal cubes).
  TruthTable f(3);
  for (std::uint64_t m : {0u, 1u, 2u, 5u, 6u, 7u}) f.set(m, true);
  const auto cover = minimize_exact(f);
  EXPECT_EQ(cover.to_truth_table(3), f);
  EXPECT_EQ(cover.num_cubes(), 3);
  for (const Cube& c : cover.cubes) EXPECT_EQ(c.num_literals(), 2);
}

TEST(Qmc, DontCaresEnableBiggerCubes) {
  // onset {5}, everything else with x0=1 don't-care: one literal suffices.
  TruthTable lower(4);
  lower.set(5, true);
  const TruthTable upper = TruthTable::var(4, 0);
  const auto cover = minimize_exact(lower, upper);
  ASSERT_EQ(cover.num_cubes(), 1);
  EXPECT_EQ(cover.cubes[0].num_literals(), 1);
}

TEST(Qmc, ConstantFunctions) {
  EXPECT_EQ(minimize_exact(TruthTable::zeros(4)).num_cubes(), 0);
  const auto ones = minimize_exact(TruthTable::ones(4));
  ASSERT_EQ(ones.num_cubes(), 1);
  EXPECT_EQ(ones.cubes[0].num_literals(), 0);
}

TEST(Qmc, RejectsBadArguments) {
  EXPECT_THROW(prime_implicants(TruthTable::ones(3), TruthTable::var(3, 0)),
               std::invalid_argument);
}

class QmcRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(QmcRandomTest, ExactCoverIsCorrectAndMinimal) {
  const int n = GetParam();
  std::mt19937_64 rng(77 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 10; ++trial) {
    TruthTable f(n);
    for (std::uint64_t m = 0; m < f.num_minterms_capacity(); ++m) f.set(m, rng() & 1);
    const auto exact = minimize_exact(f);
    EXPECT_EQ(exact.to_truth_table(n), f);
    // Minimality cross-check: no cover can be irredundant AND smaller if the
    // exact solver is right; verify against the heuristic.
    const auto heuristic = isop(f);
    EXPECT_EQ(heuristic.to_truth_table(n), f);
    EXPECT_LE(exact.num_cubes(), heuristic.num_cubes());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QmcRandomTest, ::testing::Values(2, 3, 4, 5));

TEST(IsopQuality, WithinFactorOfExactMinimum) {
  // Certify the heuristic the synthesis flow relies on: over random 5-var
  // functions, ISOP stays within 1.5x of the exact minimum cube count.
  std::mt19937_64 rng(4242);
  int total_exact = 0, total_isop = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TruthTable f(5);
    for (std::uint64_t m = 0; m < 32; ++m) f.set(m, rng() & 1);
    total_exact += minimize_exact(f).num_cubes();
    total_isop += isop(f).num_cubes();
  }
  EXPECT_LE(total_isop, total_exact * 3 / 2) << "ISOP quality regressed: " << total_isop
                                             << " vs exact " << total_exact;
}

}  // namespace
}  // namespace addm::logic
