// Tests for the Section-5 mapping procedure: the paper's Table-2 example and
// its restriction counter-examples verbatim, plus replay-equivalence
// property sweeps over every mappable workload.
#include <gtest/gtest.h>

#include "core/srag_mapper.hpp"
#include "core/srag_model.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

using V = std::vector<std::uint32_t>;

TEST(Mapper, PaperTable2RowSequence) {
  // RowAS of Table 1 (the data shown in the paper's Table 2).
  const V I{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const MapResult r = map_sequence(I, 4);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.params.D, (V{2, 2, 2, 2, 2, 2, 2, 2}));
  EXPECT_EQ(r.params.R, (V{0, 1, 0, 1, 2, 3, 2, 3}));
  EXPECT_EQ(r.params.U, (V{0, 1, 2, 3}));
  EXPECT_EQ(r.params.O, (V{2, 2, 2, 2}));
  EXPECT_EQ(r.params.Z, (V{0, 1, 4, 5}));
  ASSERT_EQ(r.params.S.size(), 2u);
  EXPECT_EQ(r.params.S[0], (V{0, 1}));
  EXPECT_EQ(r.params.S[1], (V{2, 3}));
  EXPECT_EQ(r.params.P, (V{4, 4}));
  EXPECT_EQ(r.params.dC, 2u);
  EXPECT_EQ(r.params.pC, 4u);
}

TEST(Mapper, PaperSection4DivCntExample) {
  // "the SRAG shown in Figure 5, with dC = 2 ... gives the address sequence
  //  5,5,1,1,4,4,0,0,3,3,7,7,6,6,2,2"
  const V I{5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2};
  const MapResult r = map_sequence(I, 8);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.params.dC, 2u);
  // The paper's Figure 5 realizes this with two registers, but its own
  // grouping rule (equal occurrence counts, consecutive first appearances)
  // merges all eight addresses into one ring — an equivalent, cheaper layout.
  ASSERT_EQ(r.config->registers.size(), 1u);
  EXPECT_EQ(r.config->registers[0], (V{5, 1, 4, 0, 3, 7, 6, 2}));
  SragModel model(*r.config);
  EXPECT_EQ(model.generate(I.size()), I);
}

TEST(Mapper, PaperSection4DivCntViolation) {
  // "In contrast, the sequence 5,5,5,1,1,4,4,0,0,3,3,7,7,6,6,2,2 ... violates
  //  the DivCnt restriction."
  const V I{5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2};
  const MapResult r = map_sequence(I, 8);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::NonUniformDivCount);
}

TEST(Mapper, PaperSection4PassCntExample) {
  // "with pC = 8 and dC = 1 gives the sequence 5,1,4,0,5,1,4,0,3,7,6,2,3,7,6,2"
  const V I{5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2};
  const MapResult r = map_sequence(I, 8);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.params.dC, 1u);
  EXPECT_EQ(r.params.pC, 8u);
  ASSERT_EQ(r.config->registers.size(), 2u);
  EXPECT_EQ(r.config->registers[0], (V{5, 1, 4, 0}));
  EXPECT_EQ(r.config->registers[1], (V{3, 7, 6, 2}));
}

TEST(Mapper, PaperSection4PassCntViolation) {
  // "the sequence 5,1,4,0,5,1,4,0,5,1,4,0,3,7,6,2,3,7,6,2 has a pC of 12 for
  //  S0 and 8 for S1 and therefore would violate the PassCnt restriction."
  const V I{5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2};
  const MapResult r = map_sequence(I, 8);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::NonUniformPassCount);
  EXPECT_EQ(r.params.P, (V{12, 8}));
}

TEST(Mapper, PaperSection5GroupingFailure) {
  // "Initial grouping may fail for certain address sequences such as
  //  1,2,3,4,3,2,1,4" — caught by the verification step.
  const V I{1, 2, 3, 4, 3, 2, 1, 4};
  const MapResult r = map_sequence(I, 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::GroupingFailed);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Mapper, EmptySequence) {
  const MapResult r = map_sequence(V{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::EmptySequence);
}

TEST(Mapper, SingleAddress) {
  const MapResult r = map_sequence(V{3});
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.config->registers.size(), 1u);
  EXPECT_EQ(r.config->div_count, 1u);
  SragModel m(*r.config);
  EXPECT_EQ(m.current(), 3u);
}

TEST(Mapper, ConstantSequence) {
  const MapResult r = map_sequence(V{7, 7, 7, 7});
  ASSERT_TRUE(r.ok()) << r.detail;
  // A single address repeated: one 1-flop register; either a dC of 4 or a
  // period reduction is acceptable as long as replay matches.
  SragModel m(*r.config);
  EXPECT_EQ(m.generate(4), (V{7, 7, 7, 7}));
}

TEST(Mapper, IncrementalBecomesSingleRing) {
  V I(64);
  for (std::uint32_t i = 0; i < 64; ++i) I[i] = i;
  const MapResult r = map_sequence(I);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.config->num_registers(), 1u);
  EXPECT_EQ(r.config->num_flipflops(), 64u);
  EXPECT_EQ(r.config->div_count, 1u);
}

TEST(Mapper, SelectLineCountDefaultsToMaxPlusOne) {
  const MapResult r = map_sequence(V{0, 9, 0, 9});
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.config->num_select_lines, 10u);
}

TEST(Mapper, MultiPeriodInputReducesToOnePeriod) {
  // Two periods of the Table-1 ColAS; pC must come from one period (4), not
  // from total occurrence counts (8).
  const V I{0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3};
  const MapResult r = map_sequence(I, 4);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.params.pC, 4u);
  SragModel m(*r.config);
  EXPECT_EQ(m.generate(I.size()), I);
}

TEST(Mapper, NonContiguousReuseRejected) {
  // 0 reappears with different neighbours; the single-PassCnt SRAG cannot
  // express it. Any failure kind is fine, but it must not map.
  const V I{0, 1, 0, 2};
  EXPECT_FALSE(map_sequence(I).ok());
}

// --- replay-equivalence property sweep over workloads -----------------------

struct WorkloadCase {
  const char* name;
  seq::AddressTrace trace;
};

std::vector<WorkloadCase> mappable_workloads() {
  using namespace seq;
  std::vector<WorkloadCase> cases;
  for (std::size_t dim : {8u, 16u, 32u}) {
    const ArrayGeometry g{dim, dim};
    MotionEstimationParams p;
    p.img_width = p.img_height = dim;
    p.mb_width = p.mb_height = 4;
    p.m = 0;
    cases.push_back({"motion_est", motion_estimation_read(p)});
    p.m = 1;
    cases.push_back({"motion_est_m1", motion_estimation_read(p)});
    cases.push_back({"incremental", incremental(g)});
    cases.push_back({"dct", dct_block_column_read(g, 4)});
    cases.push_back({"zoom", zoom_by_two_read(g)});
    cases.push_back({"transpose", transpose_read(g)});
    cases.push_back({"block_raster", block_raster(g, 4, 4)});
  }
  return cases;
}

class MapperWorkloadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapperWorkloadTest, BothDimensionsMapAndReplay) {
  const auto cases = mappable_workloads();
  const auto& wc = cases[GetParam()];
  const auto rows = wc.trace.rows();
  const auto cols = wc.trace.cols();

  const MapResult rm =
      map_sequence(rows, static_cast<std::uint32_t>(wc.trace.geometry().height));
  ASSERT_TRUE(rm.ok()) << wc.name << " rows: " << rm.detail;
  SragModel row_model(*rm.config);
  EXPECT_EQ(row_model.generate(rows.size()), rows) << wc.name;

  const MapResult cm =
      map_sequence(cols, static_cast<std::uint32_t>(wc.trace.geometry().width));
  ASSERT_TRUE(cm.ok()) << wc.name << " cols: " << cm.detail;
  SragModel col_model(*cm.config);
  EXPECT_EQ(col_model.generate(cols.size()), cols) << wc.name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, MapperWorkloadTest,
                         ::testing::Range<std::size_t>(0, 21));

TEST(Mapper, RepairSplitsOverMergedGroups) {
  // 0..7 visited once each then 8,9 twice: the greedy grouping merges 0..7
  // into one register (P=8) clashing with (8,9)'s P=4. The repair pass must
  // split it into two 4-flop registers and map with pC=4.
  const V I{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 8, 9};
  const MapResult r = map_sequence(I, 10);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.params.pC, 4u);
  ASSERT_EQ(r.config->registers.size(), 3u);
  EXPECT_EQ(r.config->registers[0], (V{0, 1, 2, 3}));
  EXPECT_EQ(r.config->registers[1], (V{4, 5, 6, 7}));
  EXPECT_EQ(r.config->registers[2], (V{8, 9}));
  SragModel m(*r.config);
  EXPECT_EQ(m.generate(I.size()), I);
}

TEST(Mapper, AnalyzeSequenceExposesInitialGrouping) {
  const V I{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 8, 9};
  const SequenceAnalysis a = analyze_sequence(I);
  ASSERT_TRUE(a.ok());
  // Pre-repair: the merged grouping with non-uniform P is visible.
  ASSERT_EQ(a.params.S.size(), 2u);
  EXPECT_EQ(a.params.P, (V{8, 4}));
}

TEST(Mapper, FailureToStringCoversAllKinds) {
  EXPECT_FALSE(to_string(MapFailure::EmptySequence).empty());
  EXPECT_FALSE(to_string(MapFailure::NonUniformDivCount).empty());
  EXPECT_FALSE(to_string(MapFailure::NonUniformPassCount).empty());
  EXPECT_FALSE(to_string(MapFailure::GroupingFailed).empty());
}

TEST(MappingParameters, ToStringContainsAllSets) {
  const V I{0, 0, 1, 1};
  const MapResult r = map_sequence(I, 2);
  ASSERT_TRUE(r.ok());
  const std::string s = r.params.to_string();
  for (const char* key : {"I  =", "D  =", "R  =", "U  =", "O  =", "Z  =", "S  =",
                          "P  =", "dC =", "pC ="})
    EXPECT_NE(s.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace addm::core
