// Randomized property tests over the SRAG stack:
//  * round trip: a random valid SragConfig's generated sequence must map
//    back to *some* config whose replay reproduces it exactly;
//  * the mapped config never uses more flip-flops than the generating one;
//  * gate-level elaborations of random configs track the behavioral model
//    and keep the one-hot token invariant;
//  * multi-counter round trips for random per-register pass counts.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/multicounter.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "core/srag_model.hpp"
#include "sim/simulator.hpp"

namespace addm::core {
namespace {

SragConfig random_config(std::mt19937& rng) {
  std::uniform_int_distribution<int> regs_dist(1, 4);
  std::uniform_int_distribution<int> pc_pick(0, 3);
  std::uniform_int_distribution<int> dc_dist(1, 4);
  const int n_regs = regs_dist(rng);
  const std::uint32_t pc_options[] = {2, 4, 6, 12};
  const std::uint32_t pC = pc_options[pc_pick(rng)];

  // Register lengths must divide pC. Length-1 registers are excluded: a
  // single flip-flop looping pC times emits consecutive repeats that the
  // Section-5 procedure misreads as division counts — a documented
  // conservatism of the paper's heuristic (see MapperConservatism below).
  std::vector<std::uint32_t> divisors;
  for (std::uint32_t d = 2; d <= pC; ++d)
    if (pC % d == 0) divisors.push_back(d);

  SragConfig cfg;
  cfg.div_count = static_cast<std::uint32_t>(dc_dist(rng));
  cfg.pass_count = pC;
  std::uint32_t next_line = 0;
  for (int i = 0; i < n_regs; ++i) {
    const std::uint32_t len = divisors[rng() % divisors.size()];
    std::vector<std::uint32_t> reg(len);
    std::iota(reg.begin(), reg.end(), next_line);
    next_line += len;
    cfg.registers.push_back(std::move(reg));
  }
  // Shuffle the select-line assignment globally (keeps lines distinct).
  std::vector<std::uint32_t> perm(next_line);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (auto& reg : cfg.registers)
    for (auto& line : reg) line = perm[line];
  cfg.num_select_lines = next_line;
  return cfg;
}

std::size_t full_period(const SragConfig& cfg) {
  return static_cast<std::size_t>(cfg.div_count) * cfg.pass_count * cfg.num_registers();
}

class SragRoundTripFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SragRoundTripFuzz, MapOfGeneratedSequenceReplays) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const SragConfig cfg = random_config(rng);
    SragModel model(cfg);
    const auto seq = model.generate(2 * full_period(cfg));

    const MapResult r = map_sequence(seq, cfg.num_select_lines);
    ASSERT_TRUE(r.ok()) << "seed " << GetParam() << " trial " << trial << ": "
                        << r.detail;
    SragModel mapped(*r.config);
    EXPECT_EQ(mapped.generate(seq.size()), seq) << "seed " << GetParam();
    // The mapper's grouping may merge registers but never invents state.
    EXPECT_LE(r.config->num_flipflops(), cfg.num_flipflops());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SragRoundTripFuzz, ::testing::Range(1u, 9u));

class SragGateLevelFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SragGateLevelFuzz, NetlistTracksModelAndStaysOneHot) {
  std::mt19937 rng(100 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const SragConfig cfg = random_config(rng);
    netlist::Netlist nl = elaborate_srag(cfg);
    ASSERT_TRUE(nl.validate().empty());

    sim::Simulator s(nl);
    s.set("reset", true);
    s.set("next", false);
    s.step();
    s.set("reset", false);

    SragModel model(cfg);
    std::uniform_int_distribution<int> coin(0, 1);
    const std::size_t steps = 2 * full_period(cfg) + 7;
    for (std::size_t i = 0; i < steps; ++i) {
      // Randomly stutter `next` — the generator must freeze cleanly.
      const bool pulse = coin(rng) != 0;
      ASSERT_EQ(s.hot_count("sel"), 1u) << "trial " << trial << " step " << i;
      ASSERT_EQ(s.hot_index("sel"), model.current()) << "trial " << trial << " step " << i;
      s.set("next", pulse);
      s.step();
      if (pulse) model.pulse();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SragGateLevelFuzz, ::testing::Range(1u, 5u));

class MultiCounterFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiCounterFuzz, RoundTripWithUnequalPassCounts) {
  std::mt19937 rng(500 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    MultiSragConfig cfg;
    std::uniform_int_distribution<int> regs_dist(2, 4);
    std::uniform_int_distribution<int> len_dist(2, 4);  // see random_config note
    std::uniform_int_distribution<int> iter_dist(1, 3);
    const int n_regs = regs_dist(rng);
    std::uint32_t next_line = 0;
    std::size_t period = 0;
    for (int i = 0; i < n_regs; ++i) {
      const std::uint32_t len = static_cast<std::uint32_t>(len_dist(rng));
      std::vector<std::uint32_t> reg(len);
      std::iota(reg.begin(), reg.end(), next_line);
      next_line += len;
      cfg.registers.push_back(std::move(reg));
      const std::uint32_t iters = static_cast<std::uint32_t>(iter_dist(rng));
      cfg.pass_counts.push_back(len * iters);
      period += len * iters;
    }
    cfg.div_count = 1 + static_cast<std::uint32_t>(rng() % 3);
    cfg.num_select_lines = next_line;

    MultiSragModel model(cfg);
    const auto seq = model.generate(2 * period * cfg.div_count);
    const auto r = map_sequence_multicounter(seq, cfg.num_select_lines);
    ASSERT_TRUE(r.ok()) << "seed " << GetParam() << " trial " << trial << ": "
                        << r.detail;
    MultiSragModel mapped(*r.config);
    EXPECT_EQ(mapped.generate(seq.size()), seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCounterFuzz, ::testing::Range(1u, 7u));

TEST(MapperConservatism, SingleFlopRegisterSequencesAreRejected) {
  // An SRAG with a 1-flip-flop register looping twice CAN generate
  // 7,7,0,1,0,1 (dC=1, registers {7},{0,1}, pC=2) — but the Section-5
  // procedure derives division counts from run lengths, reads the leading
  // 7,7 as dC=2, and rejects. The paper's mapper is sound (everything it
  // accepts replays) but not complete; this test documents the boundary.
  SragConfig cfg;
  cfg.registers = {{7}, {0, 1}};
  cfg.div_count = 1;
  cfg.pass_count = 2;
  cfg.num_select_lines = 8;
  SragModel model(cfg);
  const auto seq = model.generate(12);
  ASSERT_EQ(seq[0], 7u);
  ASSERT_EQ(seq[1], 7u);  // the ambiguous repeat
  const MapResult r = map_sequence(seq, 8);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::NonUniformDivCount);
}

}  // namespace
}  // namespace addm::core
