// Tests for netlist text serialization: exact round trips (including drive
// strengths and net-id preservation), simulation equivalence after a round
// trip, and parser diagnostics.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist_io.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"

namespace addm::netlist {
namespace {

Netlist small_design() {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId r = b.input("rst");
  const NetId x = b.xor2(a, c);
  const NetId q = b.dff_r(x, r);
  b.output("y", b.mux2(a, x, q));
  nl.set_cell_drive(0, 4);  // exercise drive round-trip
  return nl;
}

TEST(NetlistIo, RoundTripPreservesStructure) {
  const Netlist original = small_design();
  const std::string text = write_netlist_string(original);
  const Netlist parsed = read_netlist_string(text);

  EXPECT_EQ(parsed.num_nets(), original.num_nets());
  ASSERT_EQ(parsed.cells().size(), original.cells().size());
  for (std::size_t i = 0; i < original.cells().size(); ++i) {
    EXPECT_EQ(parsed.cell(i).type, original.cell(i).type) << i;
    EXPECT_EQ(parsed.cell(i).inputs, original.cell(i).inputs) << i;
    EXPECT_EQ(parsed.cell(i).output, original.cell(i).output) << i;
    EXPECT_EQ(parsed.cell(i).drive, original.cell(i).drive) << i;
  }
  EXPECT_EQ(parsed.find_input("a"), original.find_input("a"));
  EXPECT_EQ(parsed.find_output("y"), original.find_output("y"));
  EXPECT_TRUE(parsed.validate().empty());
  // Serialization is canonical: a second trip is byte-identical.
  EXPECT_EQ(write_netlist_string(parsed), text);
}

TEST(NetlistIo, RoundTripSimulatesIdentically) {
  const Netlist original = small_design();
  const Netlist parsed = read_netlist_string(write_netlist_string(original));
  sim::Simulator s0(original), s1(parsed);
  for (int v = 0; v < 8; ++v) {
    for (auto* s : {&s0, &s1}) {
      s->set("a", v & 1);
      s->set("c", v & 2);
      s->set("rst", v & 4);
      s->step();
    }
    EXPECT_EQ(s0.get("y"), s1.get("y")) << v;
  }
}

TEST(NetlistIo, RoundTripElaboratedSrag) {
  const auto rm = core::map_sequence(seq::incremental({8, 8}).rows(), 8);
  ASSERT_TRUE(rm.ok());
  const Netlist original = core::elaborate_srag(*rm.config);
  const Netlist parsed = read_netlist_string(write_netlist_string(original));
  EXPECT_EQ(parsed.cells().size(), original.cells().size());
  EXPECT_TRUE(parsed.validate().empty());
}

TEST(NetlistIo, ParserDiagnostics) {
  EXPECT_THROW(read_netlist_string(""), std::invalid_argument);
  EXPECT_THROW(read_netlist_string("netlist v2\n"), std::invalid_argument);
  EXPECT_THROW(read_netlist_string("nets 4\n"), std::invalid_argument);  // no header
  EXPECT_THROW(read_netlist_string("netlist v1\ninput 2 a\n"),
               std::invalid_argument);  // nets missing
  EXPECT_THROW(read_netlist_string("netlist v1\nnets 4\ncell BOGUS -> 2 3\n"),
               std::invalid_argument);
  EXPECT_THROW(read_netlist_string("netlist v1\nnets 4\ncell INV -> 9 2\n"),
               std::invalid_argument);  // net out of range
  EXPECT_THROW(read_netlist_string("netlist v1\nnets 4\ncell INV -> 2 3 3\n"),
               std::invalid_argument);  // arity
  try {
    read_netlist_string("netlist v1\nnets 4\nwhatever\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(NetlistIo, CommentsAndBlanksIgnored) {
  const Netlist parsed = read_netlist_string(
      "# a comment\n"
      "netlist v1\n"
      "nets 4   # constants + two more\n"
      "\n"
      "input 2 a\n"
      "cell INV -> 3 2\n"
      "output 3 y\n");
  EXPECT_EQ(parsed.cells().size(), 1u);
  EXPECT_TRUE(parsed.validate().empty());
}

TEST(NetlistIo, BindInputValidation) {
  Netlist nl;
  EXPECT_THROW(nl.bind_input("x", kConst0), std::invalid_argument);
  const NetId n = nl.new_net();
  nl.bind_input("x", n);
  EXPECT_THROW(nl.bind_input("again", n), std::invalid_argument);  // already driven
}

}  // namespace
}  // namespace addm::netlist
