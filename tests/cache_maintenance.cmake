# End-to-end cache lifecycle check through the real CLIs, run as a ctest
# entry and by the CI smoke job:
#
#   1. unsharded reference report + three cold shard runs with per-shard
#      cache directories
#   2. compact-each-then-merge vs merge-then-compact: the two cache
#      directories must be byte-identical (the canonicalization contract)
#   3. `addm_cache stats --json` golden check on an empty directory
#   4. verify-checksums exit-code cycle: clean (0) -> corrupted payload (1)
#      -> compact repairs -> clean (0)
#   5. prune --max-entries, then a warm run against the pruned cache must
#      reproduce the reference report byte-for-byte (misses, never wrong
#      answers)
#   6. an online --cache-budget run must also reproduce the reference
#      report while keeping the directory under the byte budget
#
# Usage: cmake -DADDM_EXPLORE=... -DADDM_MERGE=... -DADDM_CACHE=...
#              -DGOLDEN_DIR=... -DWORK_DIR=... -P this
foreach(var ADDM_EXPLORE ADDM_MERGE ADDM_CACHE GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(SUITE 2)  # 2 geometries x 9 patterns = 18 traces

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

macro(run_checked)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE _rc ERROR_VARIABLE _err OUTPUT_QUIET)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${_rc}): ${ARGN}\n${_err}")
  endif()
endmacro()

macro(compare_files a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE _cmp)
  if(NOT _cmp EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endmacro()

# Byte-compares two directories: same relative file set, same bytes per file.
macro(compare_dirs a b what)
  file(GLOB_RECURSE _a_files RELATIVE ${a} ${a}/*)
  file(GLOB_RECURSE _b_files RELATIVE ${b} ${b}/*)
  list(SORT _a_files)
  list(SORT _b_files)
  if(NOT "${_a_files}" STREQUAL "${_b_files}")
    message(FATAL_ERROR "${what}: file sets differ\n  ${a}: ${_a_files}\n  ${b}: ${_b_files}")
  endif()
  foreach(_f ${_a_files})
    compare_files(${a}/${_f} ${b}/${_f} "${what}: ${_f}")
  endforeach()
endmacro()

# 1. Reference report + three cold shard runs populating shard caches.
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 4 --format csv
  --out ${WORK_DIR}/full.csv --quiet)
foreach(i RANGE 2)
  run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 2 --shard ${i}/3
    --cache-dir ${WORK_DIR}/shard_${i} --format csv
    --out ${WORK_DIR}/shard_${i}.csv --quiet)
endforeach()

# 2. compact(merge(shards)) vs merge(compact(shards)) byte-equality.
foreach(i RANGE 2)
  file(COPY ${WORK_DIR}/shard_${i} DESTINATION ${WORK_DIR}/compacted)
  run_checked(${ADDM_CACHE} compact ${WORK_DIR}/compacted/shard_${i} --quiet)
endforeach()
run_checked(${ADDM_MERGE} --quiet --cache-into ${WORK_DIR}/merged_a
  --cache ${WORK_DIR}/compacted/shard_0 --cache ${WORK_DIR}/compacted/shard_1
  --cache ${WORK_DIR}/compacted/shard_2)
run_checked(${ADDM_MERGE} --quiet --cache-into ${WORK_DIR}/merged_b
  --cache ${WORK_DIR}/shard_0 --cache ${WORK_DIR}/shard_1
  --cache ${WORK_DIR}/shard_2)
run_checked(${ADDM_CACHE} compact ${WORK_DIR}/merged_b --quiet)
compare_dirs(${WORK_DIR}/merged_a ${WORK_DIR}/merged_b
  "merge(compact(shards)) vs compact(merge(shards))")

# 3. stats --json golden on an empty (never-created) directory.
execute_process(COMMAND ${ADDM_CACHE} stats ${WORK_DIR}/does_not_exist --json
  RESULT_VARIABLE rc OUTPUT_FILE ${WORK_DIR}/stats_empty.json ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "addm_cache stats --json failed (rc=${rc})")
endif()
compare_files(${WORK_DIR}/stats_empty.json ${GOLDEN_DIR}/cache_stats_empty.json
  "empty-directory stats JSON")

# 4. verify-checksums: clean -> corrupt -> repair -> clean.
run_checked(${ADDM_CACHE} verify-checksums ${WORK_DIR}/merged_a --quiet)
file(GLOB _entries ${WORK_DIR}/merged_a/*.entry)
list(SORT _entries)
list(GET _entries 0 _victim)
# Overwrite wholesale (entry text contains characters cmake string handling
# would mangle, so no read-modify-write here).
file(WRITE ${_victim} "junk\n")
execute_process(COMMAND ${ADDM_CACHE} verify-checksums ${WORK_DIR}/merged_a --quiet
  RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "verify-checksums missed a corrupted payload (rc=${rc})")
endif()
run_checked(${ADDM_CACHE} compact ${WORK_DIR}/merged_a --quiet)
run_checked(${ADDM_CACHE} verify-checksums ${WORK_DIR}/merged_a --quiet)

# 5. prune --max-entries, then a warm run must reproduce the reference
# report byte-for-byte (the corrupt-then-compacted key re-evaluates too).
run_checked(${ADDM_CACHE} prune ${WORK_DIR}/merged_a --max-entries 7 --quiet)
execute_process(COMMAND ${ADDM_CACHE} stats ${WORK_DIR}/merged_a --json
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT stats_out MATCHES "\"entries\": 7,")
  message(FATAL_ERROR "prune --max-entries 7 did not leave 7 entries:\n${stats_out}")
endif()
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 4 --format csv
  --cache-dir ${WORK_DIR}/merged_a --out ${WORK_DIR}/warm.csv --quiet)
compare_files(${WORK_DIR}/warm.csv ${WORK_DIR}/full.csv
  "pruned-then-warm-started report")

# 6. Online byte budget: report still byte-identical, directory bounded.
run_checked(${ADDM_EXPLORE} --suite ${SUITE} --threads 4 --format csv
  --cache-dir ${WORK_DIR}/budgeted --cache-budget 16k
  --out ${WORK_DIR}/budget.csv --quiet)
compare_files(${WORK_DIR}/budget.csv ${WORK_DIR}/full.csv "budgeted-run report")
execute_process(COMMAND ${ADDM_CACHE} stats ${WORK_DIR}/budgeted --json
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT stats_out MATCHES "\"payload_bytes\": ([0-9]+)")
  message(FATAL_ERROR "cannot read budgeted-cache stats:\n${stats_out}")
endif()
if(CMAKE_MATCH_1 GREATER 16384)
  message(FATAL_ERROR "--cache-budget 16k left ${CMAKE_MATCH_1} payload bytes")
endif()

message(STATUS "cache maintenance OK: compact/merge commute, stats golden, "
  "verify/repair cycle, pruned and budgeted runs reproduce the reference report")
