// Tests for the unified minimize() dispatcher (logic/minimize.hpp): routing
// policy, uniform error paths across backends, equivalence of the default
// path with the historical direct-isop calls, and pinned ("golden") cover
// costs guarding the covers that exploration fingerprints depend on.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "logic/espresso.hpp"
#include "logic/isop.hpp"
#include "logic/minimize.hpp"
#include "logic/qmc.hpp"

namespace addm::logic {
namespace {

TruthTable counter_bit(int n, int k) {
  const std::uint64_t len = std::uint64_t{1} << n;
  TruthTable f(n);
  for (std::uint64_t s = 0; s < len; ++s)
    if ((((s + 1) % len) >> k) & 1) f.set(s, true);
  return f;
}

TruthTable seeded_random(int n, std::uint32_t seed, int one_in) {
  std::mt19937 rng(seed);
  TruthTable f(n);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m)
    if (rng() % one_in == 0) f.set(m, true);
  return f;
}

TEST(Minimize, DefaultOptionsReproduceIsopCubeForCube) {
  // The determinism contract hinges on this: with default MinimizeOptions,
  // every synthesized cover is byte-identical to the pre-dispatcher
  // logic::isop output, so default exploration fingerprints stay pinned.
  std::mt19937 rng(1);
  for (int n = 3; n <= 9; ++n) {
    TruthTable lower(n), dc(n);
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
      const auto r = rng() % 4;
      if (r == 0) lower.set(m, true);
      else if (r == 1) dc.set(m, true);
    }
    const TruthTable upper = lower | dc;
    const Cover via_dispatcher = minimize(lower, upper);
    const Cover direct = isop(lower, upper);
    ASSERT_EQ(via_dispatcher.cubes.size(), direct.cubes.size()) << "n=" << n;
    for (std::size_t i = 0; i < direct.cubes.size(); ++i)
      EXPECT_EQ(via_dispatcher.cubes[i], direct.cubes[i]) << "n=" << n;
  }
}

TEST(Minimize, RoutingPolicy) {
  MinimizeOptions o;
  EXPECT_EQ(selected_minimizer(4, o), MinimizerAlgo::Isop);
  EXPECT_EQ(selected_minimizer(20, o), MinimizerAlgo::Isop);

  o.algo = MinimizerAlgo::Exact;
  EXPECT_EQ(selected_minimizer(4, o), MinimizerAlgo::Exact);

  o.algo = MinimizerAlgo::Espresso;
  EXPECT_EQ(selected_minimizer(2, o), MinimizerAlgo::Espresso);

  o.algo = MinimizerAlgo::Auto;
  EXPECT_EQ(selected_minimizer(kDefaultHeuristicMinVars - 1, o), MinimizerAlgo::Isop);
  EXPECT_EQ(selected_minimizer(kDefaultHeuristicMinVars, o), MinimizerAlgo::Espresso);
  o.heuristic_min_vars = 3;
  EXPECT_EQ(selected_minimizer(2, o), MinimizerAlgo::Isop);
  EXPECT_EQ(selected_minimizer(3, o), MinimizerAlgo::Espresso);
}

TEST(Minimize, MinimizerNames) {
  EXPECT_STREQ(minimizer_name(MinimizerAlgo::Isop), "isop");
  EXPECT_STREQ(minimizer_name(MinimizerAlgo::Exact), "exact");
  EXPECT_STREQ(minimizer_name(MinimizerAlgo::Espresso), "espresso");
  EXPECT_STREQ(minimizer_name(MinimizerAlgo::Auto), "auto");
}

TEST(Minimize, AllBackendsProduceValidCovers) {
  const TruthTable lower = seeded_random(7, 11, 4);
  const TruthTable upper = lower | seeded_random(7, 12, 4);
  for (MinimizerAlgo algo : {MinimizerAlgo::Isop, MinimizerAlgo::Exact,
                             MinimizerAlgo::Espresso, MinimizerAlgo::Auto}) {
    MinimizeOptions o;
    o.algo = algo;
    const Cover c = minimize(lower, upper, o);
    const TruthTable got = c.to_truth_table(7);
    EXPECT_TRUE(lower.implies(got)) << minimizer_name(algo);
    EXPECT_TRUE(got.implies(upper)) << minimizer_name(algo);
  }
}

TEST(Minimize, UniformErrorPathsAcrossBackends) {
  const TruthTable three = TruthTable::var(3, 0);
  const TruthTable four = TruthTable::var(4, 0);
  for (MinimizerAlgo algo : {MinimizerAlgo::Isop, MinimizerAlgo::Exact,
                             MinimizerAlgo::Espresso, MinimizerAlgo::Auto}) {
    MinimizeOptions o;
    o.algo = algo;
    // Mismatched variable counts.
    EXPECT_THROW(minimize(three, four, o), std::invalid_argument)
        << minimizer_name(algo);
    // Lower bound escaping the upper bound.
    EXPECT_THROW(minimize(TruthTable::ones(3), three, o), std::invalid_argument)
        << minimizer_name(algo);
  }
  // The exact backend's own capacity limit still surfaces.
  EXPECT_THROW(prime_implicants(TruthTable::ones(13), TruthTable::ones(13)),
               std::invalid_argument);
  // Backends reject the same bad bounds when called directly, too.
  EXPECT_THROW(isop(TruthTable::ones(3), three), std::invalid_argument);
  EXPECT_THROW(espresso(TruthTable::ones(3), three), std::invalid_argument);
}

TEST(Minimize, GoldenCoverCosts) {
  // Pinned costs of the default (isop) path on a fixed function set.  These
  // covers feed netlists, metrics, and ultimately the pinned exploration
  // fingerprints — a change here means persisted caches and golden reports
  // go stale, which must be deliberate, never accidental.
  struct GoldenEntry {
    int bit;
    int cubes;
    int literals;
  };
  const GoldenEntry counter6[] = {{0, 1, 1}, {1, 2, 4}, {2, 3, 7}};
  for (const auto& g : counter6) {
    const Cover c = minimize(counter_bit(6, g.bit));
    EXPECT_EQ(c.num_cubes(), g.cubes) << "bit " << g.bit;
    EXPECT_EQ(c.num_literals(), g.literals) << "bit " << g.bit;
  }

  std::mt19937 rng(2002);
  const int rand7_cubes[] = {23, 26, 26};
  const int rand7_lits[] = {132, 151, 155};
  for (int t = 0; t < 3; ++t) {
    TruthTable f(7);
    for (std::uint64_t m = 0; m < 128; ++m)
      if (rng() % 3 == 0) f.set(m, true);
    const Cover c = minimize(f);
    EXPECT_EQ(c.num_cubes(), rand7_cubes[t]) << "trial " << t;
    EXPECT_EQ(c.num_literals(), rand7_lits[t]) << "trial " << t;
  }

  std::mt19937 rng2(317);
  TruthTable lower(8), dc(8);
  for (std::uint64_t m = 0; m < 256; ++m) {
    const auto r = rng2() % 4;
    if (r == 0) lower.set(m, true);
    else if (r == 1) dc.set(m, true);
  }
  const Cover c = minimize(lower, lower | dc);
  EXPECT_EQ(c.num_cubes(), 35);
  EXPECT_EQ(c.num_literals(), 215);
}

TEST(Minimize, ExactBackendNeverBeatenByHeuristics) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const TruthTable f = seeded_random(6, 100 + trial, 5);
    MinimizeOptions exact_opt;
    exact_opt.algo = MinimizerAlgo::Exact;
    const int exact = minimize(f, exact_opt).num_cubes();
    MinimizeOptions esp_opt;
    esp_opt.algo = MinimizerAlgo::Espresso;
    EXPECT_LE(exact, minimize(f, esp_opt).num_cubes());
    EXPECT_LE(exact, minimize(f).num_cubes());
  }
}

}  // namespace
}  // namespace addm::logic
