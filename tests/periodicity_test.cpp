// Tests for exact periodicity compression: factorization shapes, streaming
// memory behavior (lock/unlock), batch==streaming agreement, and affine
// loop-nest recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "seq/analysis.hpp"
#include "seq/periodicity.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {
namespace {

AddressTrace make(std::vector<std::uint32_t> a, ArrayGeometry g = {8, 8},
                  std::string name = {}) {
  return AddressTrace(g, std::move(a), std::move(name));
}

std::vector<std::uint32_t> tile(const std::vector<std::uint32_t>& period,
                                std::size_t repeats, std::size_t tail = 0) {
  std::vector<std::uint32_t> out;
  for (std::size_t r = 0; r < repeats; ++r)
    out.insert(out.end(), period.begin(), period.end());
  out.insert(out.end(), period.begin(),
             period.begin() + static_cast<std::ptrdiff_t>(tail));
  return out;
}

TEST(Periodicity, PurePeriodicTrace) {
  const std::vector<std::uint32_t> period{0, 1, 2, 3, 8, 9};
  const auto t = make(tile(period, 7), {8, 8}, "pure");
  const CompressedTrace ct = compress_periodic(t);
  EXPECT_TRUE(ct.pure());
  EXPECT_TRUE(ct.compressed());
  EXPECT_EQ(ct.period, period);
  EXPECT_EQ(ct.repeats, 7u);
  EXPECT_EQ(ct.tail, 0u);
  EXPECT_EQ(ct.length(), t.length());
  const AddressTrace back = ct.expand();
  EXPECT_EQ(back.linear(), t.linear());
  EXPECT_EQ(back.geometry(), t.geometry());
  EXPECT_EQ(back.name(), t.name());
}

TEST(Periodicity, PartialTail) {
  const std::vector<std::uint32_t> period{5, 6, 7};
  const auto t = make(tile(period, 4, 2));
  const CompressedTrace ct = compress_periodic(t);
  EXPECT_EQ(ct.period, period);
  EXPECT_EQ(ct.repeats, 4u);
  EXPECT_EQ(ct.tail, 2u);
  EXPECT_EQ(ct.suffix(), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_FALSE(ct.pure());
  EXPECT_EQ(ct.expand().linear(), t.linear());
}

TEST(Periodicity, WarmupPrefixIsTrimmed) {
  // 63 0 1 0 1 ... has global period == length, but trimming one element
  // exposes period 2; the prefix search must find the cheaper split.
  std::vector<std::uint32_t> a{63};
  const auto body = tile({0, 1}, 10);
  a.insert(a.end(), body.begin(), body.end());
  const CompressedTrace ct = compress_periodic(make(a));
  EXPECT_EQ(ct.prefix, (std::vector<std::uint32_t>{63}));
  EXPECT_EQ(ct.period, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(ct.repeats, 10u);
  EXPECT_EQ(ct.stored(), 3u);
  EXPECT_EQ(ct.expand().linear(), a);
}

TEST(Periodicity, AperiodicTraceIsCanonicalUncompressed) {
  const std::vector<std::uint32_t> a{3, 1, 4, 1, 5, 9, 2, 6};
  const CompressedTrace ct = compress_periodic(make(a));
  EXPECT_TRUE(ct.prefix.empty());
  EXPECT_EQ(ct.period, a);
  EXPECT_EQ(ct.repeats, 1u);
  EXPECT_EQ(ct.tail, 0u);
  EXPECT_FALSE(ct.compressed());
  EXPECT_EQ(ct.expand().linear(), a);
}

TEST(Periodicity, EmptyTrace) {
  const CompressedTrace ct = compress_periodic(AddressTrace({4, 4}, {}, "e"));
  EXPECT_EQ(ct.length(), 0u);
  EXPECT_EQ(ct.repeats, 0u);
  EXPECT_TRUE(ct.expand().empty());
}

TEST(Periodicity, ConstantTraceCompressesToOneElement) {
  const CompressedTrace ct = compress_periodic(make(std::vector<std::uint32_t>(500, 7)));
  EXPECT_EQ(ct.period, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(ct.repeats, 500u);
  EXPECT_EQ(ct.stored(), 1u);
}

TEST(Periodicity, PeriodMatchesSmallestPeriodOnPureTraces) {
  // The factorization's period length must agree with seq::smallest_period
  // for whole-multiple traces.
  const std::vector<std::uint32_t> period{2, 4, 4, 6};
  const auto a = tile(period, 6);
  const CompressedTrace ct = compress_periodic(make(a));
  EXPECT_EQ(ct.period.size(), smallest_period(a));
}

TEST(StreamingCompressor, LocksToPeriodMemory) {
  const std::vector<std::uint32_t> period{0, 1, 2, 3, 8, 9, 10, 11};
  StreamingCompressor sc;
  for (std::size_t r = 0; r < 1000; ++r)
    for (std::uint32_t v : period) sc.push(v);
  EXPECT_TRUE(sc.locked());
  // The memory claim: after locking, only one period is held, no matter how
  // long the stream runs.
  EXPECT_EQ(sc.buffered(), period.size());
  EXPECT_EQ(sc.count(), 8000u);
  const CompressedTrace ct = sc.finish({8, 8});
  EXPECT_EQ(ct.period, period);
  EXPECT_EQ(ct.repeats, 1000u);
}

TEST(StreamingCompressor, UnlocksOnMismatchWithoutLosingData) {
  StreamingCompressor sc;
  std::vector<std::uint32_t> fed;
  const auto feed = [&](std::uint32_t v) {
    sc.push(v);
    fed.push_back(v);
  };
  for (std::size_t r = 0; r < 50; ++r)
    for (std::uint32_t v : {1u, 2u, 3u}) feed(v);
  ASSERT_TRUE(sc.locked());
  feed(9);  // break the period mid-stream
  for (std::uint32_t v : {1u, 2u, 3u, 5u}) feed(v);
  const CompressedTrace ct = sc.finish({8, 8});
  EXPECT_EQ(ct.expand().linear(), fed);
}

TEST(StreamingCompressor, FinishIsNonDestructive) {
  StreamingCompressor sc;
  for (std::uint32_t v : tile({4, 5}, 3)) sc.push(v);
  const CompressedTrace first = sc.finish({8, 8});
  EXPECT_EQ(first.repeats, 3u);
  for (std::uint32_t v : {4u, 5u}) sc.push(v);
  const CompressedTrace second = sc.finish({8, 8});
  EXPECT_EQ(second.repeats, 4u);
  EXPECT_EQ(second.period, first.period);
}

TEST(StreamingCompressor, AgreesWithBatchOnArbitraryInput) {
  // compress_periodic is defined as the streaming compressor fed in order,
  // so any divergence here is a determinism bug.
  const auto t = zigzag({8, 8});
  StreamingCompressor sc;
  for (std::uint32_t v : t.linear()) sc.push(v);
  const CompressedTrace a = sc.finish(t.geometry(), t.name());
  const CompressedTrace b = compress_periodic(t);
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.repeats, b.repeats);
  EXPECT_EQ(a.tail, b.tail);
}

TEST(RecoverLoopNest, RasterPeriodBecomesTwoLoops) {
  // An 8x4 raster pass repeated 5 times: pass x row x col with the affine
  // access row=o, col=j.
  std::vector<std::uint32_t> period;
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::uint32_t c = 0; c < 8; ++c) period.push_back(r * 8 + c);
  CompressedTrace ct;
  ct.geometry = {8, 4};
  ct.period = period;
  ct.repeats = 5;
  const auto rec = recover_loop_nest(ct);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->nest.loops().size(), 3u);
  EXPECT_EQ(rec->nest.loops()[0].name, "pass");
  EXPECT_EQ(rec->nest.iterations(), ct.length());
  EXPECT_EQ(rec->nest.trace(rec->access, ct.geometry).linear(),
            ct.expand().linear());
}

TEST(RecoverLoopNest, StridedPeriodBecomesOneLoop) {
  // Stride-5 sweep over a 5x5 array: linear in one induction variable.
  std::vector<std::uint32_t> period;
  for (std::uint32_t i = 0; i < 5; ++i) period.push_back(i * 5);
  CompressedTrace ct;
  ct.geometry = {5, 5};
  ct.period = period;
  ct.repeats = 3;
  const auto rec = recover_loop_nest(ct);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->nest.loops().size(), 2u);  // pass + i
  EXPECT_EQ(rec->nest.trace(rec->access, ct.geometry).linear(),
            ct.expand().linear());
}

TEST(RecoverLoopNest, SinglePassOmitsPassLoop) {
  CompressedTrace ct;
  ct.geometry = {8, 8};
  ct.period = {0, 1, 2, 3};
  ct.repeats = 1;
  const auto rec = recover_loop_nest(ct);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->nest.loops().size(), 1u);
  EXPECT_EQ(rec->nest.trace(rec->access, ct.geometry).linear(),
            ct.expand().linear());
}

TEST(RecoverLoopNest, RejectsNonAffineAndImpure) {
  CompressedTrace zig;
  zig.geometry = {8, 8};
  zig.period = zigzag({8, 8}).linear();  // not affine in any 1/2 loops
  zig.repeats = 2;
  EXPECT_FALSE(recover_loop_nest(zig).has_value());

  CompressedTrace impure;
  impure.geometry = {8, 8};
  impure.prefix = {63};
  impure.period = {0, 1};
  impure.repeats = 4;
  EXPECT_FALSE(recover_loop_nest(impure).has_value());
}

TEST(RecoverLoopNest, RecoversGeneratedLoopNestPrograms) {
  // Feed the trace of a known affine program through compression + recovery
  // and require the recovered nest to reproduce it exactly.
  const auto prog = raster_program({16, 8});
  const auto one_pass = prog.nest.trace(prog.access, prog.geometry);
  const auto t = make(tile(one_pass.linear(), 6), prog.geometry);
  const CompressedTrace ct = compress_periodic(t);
  ASSERT_TRUE(ct.pure());
  EXPECT_EQ(ct.repeats, 6u);
  const auto rec = recover_loop_nest(ct);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->nest.trace(rec->access, ct.geometry).linear(), t.linear());
}

}  // namespace
}  // namespace addm::seq
