// Tests for the self-checking Verilog testbench emitter.
#include <gtest/gtest.h>

#include "codegen/testbench.hpp"
#include "core/srag_mapper.hpp"

namespace addm::codegen {
namespace {

core::SragConfig demo_config() {
  core::SragConfig cfg;
  cfg.registers = {{2, 0, 1}};
  cfg.div_count = 1;
  cfg.pass_count = 3;
  cfg.num_select_lines = 3;
  return cfg;
}

TEST(TestbenchGen, StructureAndExpectations) {
  const std::vector<std::uint32_t> expected{2, 0, 1, 2, 0, 1};
  const std::string tb = srag_verilog_testbench(demo_config(), expected, "rowgen");
  EXPECT_NE(tb.find("module rowgen_tb;"), std::string::npos);
  EXPECT_NE(tb.find("rowgen dut (.clk(clk), .next(next), .reset(reset)"),
            std::string::npos);
  EXPECT_NE(tb.find(".sel_0(sel_0)"), std::string::npos);
  EXPECT_NE(tb.find(".sel_2(sel_2)"), std::string::npos);
  // One-hot expectation literals, MSB-first binary strings.
  EXPECT_NE(tb.find("expected[0] = 3'b100;"), std::string::npos);  // address 2
  EXPECT_NE(tb.find("expected[1] = 3'b001;"), std::string::npos);  // address 0
  EXPECT_NE(tb.find("expected[5] = 3'b010;"), std::string::npos);  // address 1
  EXPECT_NE(tb.find("$finish;"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
}

TEST(TestbenchGen, Deterministic) {
  const std::vector<std::uint32_t> expected{2, 0, 1};
  EXPECT_EQ(srag_verilog_testbench(demo_config(), expected, "m"),
            srag_verilog_testbench(demo_config(), expected, "m"));
}

TEST(TestbenchGen, ValidatesArguments) {
  EXPECT_THROW(srag_verilog_testbench(demo_config(), {}, "m"), std::invalid_argument);
  const std::vector<std::uint32_t> bad{7};
  EXPECT_THROW(srag_verilog_testbench(demo_config(), bad, "m"), std::invalid_argument);
}

TEST(TestbenchGen, EndToEndFromMapper) {
  const std::vector<std::uint32_t> I{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const auto r = core::map_sequence(I, 4);
  ASSERT_TRUE(r.ok());
  const std::string tb = srag_verilog_testbench(*r.config, I, "rowgen");
  EXPECT_NE(tb.find("expected[15]"), std::string::npos);
  EXPECT_EQ(tb.find("expected[16]"), std::string::npos);
}

}  // namespace
}  // namespace addm::codegen
