// Tests for the worker pool behind the batch explorer: completion, exception
// propagation, reuse across waves, and parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace addm::core {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForOnSingleThreadRunsInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared once reported; the pool stays usable.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

TEST(SplitThreads, ProductNeverExceedsTheBudget) {
  for (std::size_t total : {1u, 2u, 3u, 4u, 7u, 8u, 16u, 64u}) {
    for (std::size_t inner : {1u, 2u, 3u, 4u, 8u, 100u}) {
      const ThreadSplit s = split_threads(total, inner);
      EXPECT_GE(s.outer, 1u);
      EXPECT_GE(s.inner, 1u);
      EXPECT_LE(s.outer * s.inner, total) << total << "/" << inner;
      EXPECT_LE(s.inner, inner) << "inner level must not exceed its request";
    }
  }
}

TEST(SplitThreads, InnerRequestIsCappedAtTheBudget) {
  const ThreadSplit s = split_threads(4, 100);
  EXPECT_EQ(s.inner, 4u);
  EXPECT_EQ(s.outer, 1u);
}

TEST(SplitThreads, SerialInnerGivesTheWholeBudgetToTraces) {
  const ThreadSplit s = split_threads(8, 1);
  EXPECT_EQ(s.outer, 8u);
  EXPECT_EQ(s.inner, 1u);
}

TEST(SplitThreads, EvenSplit) {
  const ThreadSplit s = split_threads(8, 2);
  EXPECT_EQ(s.outer, 4u);
  EXPECT_EQ(s.inner, 2u);
}

TEST(SplitThreads, ZeroMeansHardwareForEitherLevel) {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const ThreadSplit all_inner = split_threads(0, 0);
  EXPECT_EQ(all_inner.inner, hw);
  EXPECT_EQ(all_inner.outer, 1u);
  const ThreadSplit outer_only = split_threads(0, 1);
  EXPECT_EQ(outer_only.outer, hw);
}

TEST(ThreadPool, NestedDistinctPoolsDoNotDeadlock) {
  // The two-level scheduler pattern: an outer pool task constructs its own
  // inner pool and parallel_fors over it.  Distinct pools, so the no-nesting
  // rule is respected; this must complete and cover every (i, j) pair.
  ThreadPool outer(2);
  std::atomic<int> count{0};
  outer.parallel_for(4, [&](std::size_t) {
    ThreadPool inner(2);
    inner.parallel_for(3, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 12);
}

}  // namespace
}  // namespace addm::core
