// Tests for the worker pool behind the batch explorer: completion, exception
// propagation, reuse across waves, and parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace addm::core {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForOnSingleThreadRunsInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared once reported; the pool stays usable.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

}  // namespace
}  // namespace addm::core
