// Tests for the batch design-space explorer: parity with the sequential
// explorer, memoization behavior, thread-count independence of the report,
// and error isolation.
#include <gtest/gtest.h>

#include <sstream>

#include "core/batch_explorer.hpp"
#include "core/fingerprint.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

std::vector<seq::AddressTrace> small_suite() { return seq::standard_suite({8, 8}); }

bool points_equal(const std::vector<DesignPoint>& a, const std::vector<DesignPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].architecture != b[i].architecture || a[i].feasible != b[i].feasible ||
        a[i].note != b[i].note)
      return false;
    if (a[i].metrics.area_units != b[i].metrics.area_units ||
        a[i].metrics.delay_ns != b[i].metrics.delay_ns ||
        a[i].metrics.cells != b[i].metrics.cells ||
        a[i].metrics.flipflops != b[i].metrics.flipflops)
      return false;
  }
  return true;
}

TEST(BatchExplorer, MatchesSequentialExploreGenerators) {
  const auto traces = small_suite();
  BatchOptions opt;
  opt.threads = 4;
  BatchExplorer batch(opt);
  const BatchResult result = batch.run(traces);

  ASSERT_EQ(result.entries.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const BatchEntry& e = result.entries[i];
    EXPECT_EQ(e.name, traces[i].name());
    EXPECT_TRUE(e.error.empty()) << e.error;
    const auto expected = explore_generators(traces[i], opt.explore);
    EXPECT_TRUE(points_equal(e.points, expected)) << traces[i].name();
    EXPECT_EQ(e.pareto, pareto_front(expected)) << traces[i].name();
  }
}

TEST(BatchExplorer, EntriesKeepInputOrderAndMetadata) {
  const auto traces = small_suite();
  BatchExplorer batch(BatchOptions{});
  const BatchResult result = batch.run(traces);
  ASSERT_EQ(result.traces, traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(result.entries[i].name, traces[i].name());
    EXPECT_EQ(result.entries[i].geometry, traces[i].geometry());
    EXPECT_EQ(result.entries[i].trace_length, traces[i].length());
    EXPECT_EQ(result.entries[i].trace_hash, trace_fingerprint(traces[i]));
  }
}

TEST(BatchExplorer, MemoizesDuplicateTraces) {
  // Three copies of the same pattern under different names: one evaluation,
  // two hits, identical points.
  auto t = seq::transpose_read({8, 8});
  std::vector<seq::AddressTrace> traces;
  for (int i = 0; i < 3; ++i) {
    auto copy = t;
    copy.set_name("copy" + std::to_string(i));
    traces.push_back(std::move(copy));
  }
  BatchOptions opt;
  opt.threads = 4;
  BatchExplorer batch(opt);
  const BatchResult result = batch.run(traces);
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_EQ(result.cache_hits, 2u);
  EXPECT_EQ(batch.cache_size(), 1u);
  EXPECT_TRUE(points_equal(result.entries[0].points, result.entries[1].points));
  EXPECT_TRUE(points_equal(result.entries[0].points, result.entries[2].points));
  // Names still come from the inputs, not the cache.
  EXPECT_EQ(result.entries[2].name, "copy2");
}

TEST(BatchExplorer, CachePersistsAcrossRuns) {
  const auto traces = small_suite();
  BatchExplorer batch(BatchOptions{});
  const BatchResult first = batch.run(traces);
  const std::size_t unique = first.evaluations;
  EXPECT_GT(unique, 0u);
  EXPECT_EQ(batch.cache_size(), unique);

  const BatchResult second = batch.run(traces);
  EXPECT_EQ(second.evaluations, 0u);
  EXPECT_EQ(second.cache_hits, traces.size());
  EXPECT_EQ(batch_report_csv(first), batch_report_csv(second));

  batch.clear_cache();
  EXPECT_EQ(batch.cache_size(), 0u);
  const BatchResult third = batch.run(traces);
  EXPECT_EQ(third.evaluations, unique);
}

TEST(BatchExplorer, MemoizationCanBeDisabled) {
  auto t = seq::incremental({8, 8});
  std::vector<seq::AddressTrace> traces{t, t};
  BatchOptions opt;
  opt.memoize = false;
  BatchExplorer batch(opt);
  const BatchResult result = batch.run(traces);
  EXPECT_EQ(result.evaluations, 2u);
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_EQ(batch.cache_size(), 0u);
  EXPECT_TRUE(points_equal(result.entries[0].points, result.entries[1].points));
}

TEST(BatchExplorer, ReportsIdenticalAcrossThreadCounts) {
  const auto traces = small_suite();
  std::string csv1, json1;
  for (std::size_t threads : {1u, 2u, 5u, 8u}) {
    BatchOptions opt;
    opt.threads = threads;
    BatchExplorer batch(opt);
    const BatchResult result = batch.run(traces);
    const std::string csv = batch_report_csv(result);
    const std::string json = batch_report_json(result);
    if (threads == 1) {
      csv1 = csv;
      json1 = json;
    } else {
      EXPECT_EQ(csv, csv1) << threads << " threads";
      EXPECT_EQ(json, json1) << threads << " threads";
    }
  }
}

TEST(BatchExplorer, StatsDeterministicAcrossThreadCounts) {
  const auto traces = seq::scaled_suite({8, 8}, 2);
  std::size_t evals1 = 0, hits1 = 0;
  for (std::size_t threads : {1u, 4u}) {
    BatchOptions opt;
    opt.threads = threads;
    BatchExplorer batch(opt);
    const BatchResult result = batch.run(traces);
    if (threads == 1) {
      evals1 = result.evaluations;
      hits1 = result.cache_hits;
    } else {
      EXPECT_EQ(result.evaluations, evals1);
      EXPECT_EQ(result.cache_hits, hits1);
    }
  }
}

TEST(BatchExplorer, ReportsCoverEveryTraceAndParetoPoints) {
  const auto traces = small_suite();
  BatchExplorer batch(BatchOptions{});
  const BatchResult result = batch.run(traces);
  const std::string csv = batch_report_csv(result);
  const std::string json = batch_report_json(result);
  for (const auto& t : traces) {
    EXPECT_NE(csv.find(t.name()), std::string::npos) << t.name();
    EXPECT_NE(json.find("\"" + t.name() + "\""), std::string::npos) << t.name();
  }
  // Header shape and at least one pareto marker.
  EXPECT_EQ(csv.rfind("trace,width,height,length,trace_hash,architecture", 0), 0u);
  EXPECT_NE(csv.find(",yes,yes,"), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

TEST(BatchExplorer, ReportsContainOnlyInputDeterminedData) {
  // The shard/merge and disk-cache determinism contracts require that
  // evaluation and cache-hit counters never enter a serialized report: a
  // warm rerun (different counters) must reproduce a cold run's bytes.
  const auto traces = small_suite();
  BatchExplorer batch(BatchOptions{});
  const BatchResult cold = batch.run(traces);
  const BatchResult warm = batch.run(traces);
  EXPECT_EQ(cold.evaluations > 0, true);
  EXPECT_EQ(warm.evaluations, 0u);
  EXPECT_EQ(batch_report_json(cold), batch_report_json(warm));
  EXPECT_EQ(batch_report_csv(cold), batch_report_csv(warm));
  const std::string json = batch_report_json(cold);
  EXPECT_EQ(json.find("evaluations"), std::string::npos);
  EXPECT_EQ(json.find("cache_hits"), std::string::npos);
  EXPECT_NE(json.find("\"summary\": {\"traces\": " + std::to_string(traces.size())),
            std::string::npos);
}

TEST(BatchExplorer, OptionsChangeMissesTheCache) {
  // Same trace, different options => different cache key, so a fresh
  // BatchExplorer with other options re-evaluates rather than reusing.
  auto t = seq::incremental({8, 8});
  BatchOptions a;
  a.explore.include_fsm = true;
  BatchOptions b = a;
  b.explore.include_fsm = false;
  BatchExplorer ea(a), eb(b);
  const auto ra = ea.run({t});
  const auto rb = eb.run({t});
  EXPECT_NE(ra.entries[0].points.size(), rb.entries[0].points.size());
  EXPECT_NE(options_fingerprint(a.explore), options_fingerprint(b.explore));
}

}  // namespace
}  // namespace addm::core
