// In-process end-to-end tests for the addm_serve daemon (serve/server.hpp):
// a real Server on a loopback socket, driven by the real ServeClient.
//
// The load-bearing assertions:
//  * Byte-equality: the served report body equals the offline
//    BatchExplorer/report-renderer output for the same traces and options —
//    cold, memo-warm, across option sets, and in both wire modes.
//  * Robustness: garbage bytes, hostile frames, and mid-stream disconnects
//    cost at most one connection, never the daemon.
//  * Lifecycle: admin shutdown and --max-requests both drain cleanly to
//    exit code 0, flushing pending cache state.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/eval_cache.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace addm::serve {
namespace {

// One daemon on an ephemeral loopback port, its accept loop on a thread.
struct TestServer {
  ExploreService service;
  Server server;
  std::thread thread;
  int exit_code = -1;

  explicit TestServer(ServiceOptions so = {}, ServerOptions vo = {})
      : service(std::move(so)), server(service, [&vo] {
          vo.unix_path.clear();
          vo.tcp_port = 0;
          vo.quiet = true;
          return vo;
        }()) {
    std::string error;
    EXPECT_TRUE(server.start(error)) << error;
    thread = std::thread([this] { exit_code = server.run(); });
  }

  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }

  ServeClient connect(bool json = false) {
    ServeClient c;
    c.set_json_mode(json);
    std::string error;
    EXPECT_TRUE(c.connect_tcp("127.0.0.1", server.bound_port(), error)) << error;
    return c;
  }
};

// The offline reference: what addm_explore would print for the same traces
// and options (the BatchExplorer determinism contract makes one local run
// a valid stand-in for the CLI).
std::string offline_report(const std::vector<seq::AddressTrace>& traces,
                           const core::ExploreOptions& explore,
                           bool json = false) {
  core::BatchOptions opt;
  opt.explore = explore;
  core::BatchExplorer explorer(opt);
  const core::BatchResult result = explorer.run(traces);
  return json ? core::batch_report_json(result) : core::batch_report_csv(result);
}

ExploreRequest suite_request(std::size_t scales = 1) {
  ExploreRequest req;
  req.suite_scales = scales;
  return req;
}

// Raw socket for hostile-input tests (the real client refuses to send
// malformed bytes, so these speak socket directly).
struct RawConn {
  int fd = -1;
  explicit RawConn(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send_bytes(std::string_view data) {
    ASSERT_EQ(::send(fd, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }
  // Signals end-of-requests; the server replies to what it has read, sees
  // EOF, and closes — which is what unblocks drain() on keep-alive errors.
  void half_close() { ::shutdown(fd, SHUT_WR); }
  // Reads until the peer closes; returns everything received.
  std::string drain() {
    std::string out;
    char tmp[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
      if (n <= 0) break;
      out.append(tmp, static_cast<std::size_t>(n));
    }
    return out;
  }
};

TEST(ServeServer, ServedReportMatchesOfflineRunByteForByte) {
  TestServer ts;
  ServeClient client = ts.connect();

  ServeClient::Result result;
  std::string error;
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.code << ": " << result.error.message;

  const auto traces = seq::scaled_suite({8, 8}, 1);
  EXPECT_EQ(result.body, offline_report(traces, {}));
  EXPECT_EQ(result.summary.traces, traces.size());
  EXPECT_EQ(result.summary.errors, 0u);
}

TEST(ServeServer, WarmMemoServesRepeatsWithoutReevaluating) {
  TestServer ts;
  ServeClient c1 = ts.connect();
  ServeClient::Result first, second;
  std::string error;
  ASSERT_TRUE(c1.explore(suite_request(), first, error)) << error;
  ASSERT_TRUE(first.ok);
  EXPECT_GT(first.summary.evaluations, 0u);

  // A fresh connection hits the same shared memo table.
  ServeClient c2 = ts.connect();
  ASSERT_TRUE(c2.explore(suite_request(), second, error)) << error;
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.summary.evaluations, 0u);
  EXPECT_EQ(second.summary.cache_hits, second.summary.traces);
  EXPECT_EQ(second.body, first.body);
}

TEST(ServeServer, PerRequestOptionsCoexistAndMatchOffline) {
  TestServer ts;
  ServeClient client = ts.connect();
  std::string error;

  ExploreRequest no_fsm = suite_request();
  no_fsm.options.emplace_back("no-fsm", "");
  ExploreRequest json_req = suite_request();
  json_req.format = "json";

  ServeClient::Result a, b, c;
  ASSERT_TRUE(client.explore(no_fsm, a, error)) << error;
  ASSERT_TRUE(client.explore(json_req, b, error)) << error;
  ASSERT_TRUE(client.explore(no_fsm, c, error)) << error;
  ASSERT_TRUE(a.ok && b.ok && c.ok);

  const auto traces = seq::scaled_suite({8, 8}, 1);
  core::ExploreOptions opt_no_fsm;
  opt_no_fsm.include_fsm = false;
  EXPECT_EQ(a.body, offline_report(traces, opt_no_fsm));
  EXPECT_EQ(b.body, offline_report(traces, {}, /*json=*/true));
  // Option sets share the memo keyed by (trace, options): the repeat of
  // the no-fsm request is served entirely from memory.
  EXPECT_EQ(c.summary.evaluations, 0u);
  EXPECT_EQ(c.body, a.body);
}

TEST(ServeServer, InlineAndPathTracesFollowCliNaming) {
  const std::string dir = testing::TempDir() + "serve_inline_traces";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/transpose_case.trace";
  const auto trace = [] {
    auto t = seq::transpose_read({4, 4});
    t.set_name("");  // force the file-stem naming rule
    return t;
  }();
  seq::write_trace_file(path, trace);

  TestServer ts;
  ServeClient client = ts.connect();
  std::string error;

  ExploreRequest req;
  TraceSource by_path;
  by_path.kind = TraceSource::Kind::kPath;
  by_path.name = path;
  req.traces.push_back(by_path);
  TraceSource by_inline;
  by_inline.kind = TraceSource::Kind::kInline;
  by_inline.name = "transpose_case";
  by_inline.data = seq::write_trace_string(trace);
  req.traces.push_back(by_inline);

  ServeClient::Result result;
  ASSERT_TRUE(client.explore(req, result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.message;

  auto named = trace;
  named.set_name("transpose_case");
  EXPECT_EQ(result.body, offline_report({named, named}, {}));
}

TEST(ServeServer, JsonModeProducesIdenticalReports) {
  TestServer ts;
  ServeClient binary = ts.connect(false);
  ServeClient json = ts.connect(true);
  std::string error;

  ServeClient::Result a, b;
  ASSERT_TRUE(binary.explore(suite_request(), a, error)) << error;
  ASSERT_TRUE(json.explore(suite_request(), b, error)) << error;
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.body, b.body);

  std::string banner;
  ASSERT_TRUE(json.ping(banner, error)) << error;
  EXPECT_EQ(banner, std::string(ts.service.banner()));
}

TEST(ServeServer, BadRequestsGetFramedErrorsAndConnectionSurvives) {
  TestServer ts;
  ServeClient client = ts.connect();
  std::string error;

  ExploreRequest empty;  // no traces: rejected at parse time
  ServeClient::Result result;
  ASSERT_TRUE(client.explore(empty, result, error)) << error;
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, "bad-request");

  ExploreRequest missing = suite_request(0);
  TraceSource t;
  t.kind = TraceSource::Kind::kPath;
  t.name = testing::TempDir() + "does_not_exist.trace";
  missing.traces.push_back(t);
  ASSERT_TRUE(client.explore(missing, result, error)) << error;
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, "io");

  // Same connection still serves good requests afterwards.
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  EXPECT_TRUE(result.ok);
}

TEST(ServeServer, GarbageAndDisconnectsNeverKillTheDaemon) {
  TestServer ts;
  {
    RawConn garbage(ts.server.bound_port());
    garbage.send_bytes("total nonsense\n\x01\x02\x03");
    garbage.half_close();
    // JSON mode (first byte not 'A'): one error line per junk line.
    const std::string reply = garbage.drain();
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  }
  {
    RawConn truncated(ts.server.bound_port());
    const std::string frame = encode_frame(kPing, "");
    truncated.send_bytes(frame.substr(0, 7));  // mid-header disconnect
  }
  {
    RawConn hostile(ts.server.bound_port());
    std::string frame = encode_frame(kExplore, "");
    frame[8] = static_cast<char>(0xff);  // oversized length field
    frame[9] = static_cast<char>(0xff);
    frame[10] = static_cast<char>(0xff);
    frame[11] = static_cast<char>(0x7f);
    hostile.send_bytes(frame);
    const std::string reply = hostile.drain();
    Frame f;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(reply, f, consumed), DecodeStatus::kFrame);
    EXPECT_EQ(f.type, kError);
    ErrorInfo info;
    ASSERT_TRUE(parse_error(f.payload, info));
    EXPECT_EQ(info.code, "malformed-frame");
  }
  {
    RawConn reply_type(ts.server.bound_port());
    reply_type.send_bytes(encode_frame(kChunk, "client must not send this"));
    reply_type.half_close();
    const std::string reply = reply_type.drain();
    Frame f;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(reply, f, consumed), DecodeStatus::kFrame);
    EXPECT_EQ(f.type, kError);
  }

  // After all of the above the daemon still serves real work.
  ServeClient client = ts.connect();
  std::string banner, error;
  ASSERT_TRUE(client.ping(banner, error)) << error;
  ServeClient::Result result;
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  EXPECT_TRUE(result.ok);
}

TEST(ServeServer, AdminFlushCompactStatsAgainstCacheDir) {
  const std::string cache_dir = testing::TempDir() + "serve_admin_cache";
  std::filesystem::remove_all(cache_dir);
  ServiceOptions so;
  so.cache_dir = cache_dir;
  so.flush_entries = 0;  // nothing reaches disk until flushed explicitly
  TestServer ts(so);
  ServeClient client = ts.connect();
  std::string error;

  ServeClient::Result result;
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  ASSERT_TRUE(result.ok);

  ASSERT_TRUE(client.admin("flush", result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.message;
  EXPECT_NE(result.body.find("flushed 7 entries"), std::string::npos)
      << result.body;

  ASSERT_TRUE(client.admin("compact", result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.message;
  EXPECT_NE(result.body.find("7 kept"), std::string::npos) << result.body;

  ASSERT_TRUE(client.admin("stats", result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.message;
  core::EvalCacheDir cache(cache_dir);
  EXPECT_EQ(result.body, core::eval_cache_stats_json(cache.stats()));

  ASSERT_TRUE(client.admin("prune 4 0", result, error)) << error;
  ASSERT_TRUE(result.ok) << result.error.message;
  EXPECT_EQ(cache.read_records().size(), 4u);

  // Validation failures are framed errors, not crashes.
  ASSERT_TRUE(client.admin("prune", result, error)) << error;
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(client.admin("rewind", result, error)) << error;
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, "bad-request");
}

TEST(ServeServer, AdminWithoutCacheDirIsRejected) {
  TestServer ts;
  ServeClient client = ts.connect();
  std::string error;
  ServeClient::Result result;
  ASSERT_TRUE(client.admin("compact", result, error)) << error;
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, "bad-request");
  // flush stays a harmless no-op without a cache directory.
  ASSERT_TRUE(client.admin("flush", result, error)) << error;
  EXPECT_TRUE(result.ok);
}

TEST(ServeServer, ShutdownCommandDrainsToExitZero) {
  const std::string cache_dir = testing::TempDir() + "serve_shutdown_cache";
  std::filesystem::remove_all(cache_dir);
  ServiceOptions so;
  so.cache_dir = cache_dir;
  so.flush_entries = 0;
  TestServer ts(so);
  ServeClient client = ts.connect();
  std::string error;

  ServeClient::Result result;
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  ASSERT_TRUE(result.ok);

  ASSERT_TRUE(client.admin("shutdown", result, error)) << error;
  EXPECT_TRUE(result.ok);
  ts.thread.join();
  EXPECT_EQ(ts.exit_code, 0);

  // The shutdown flush persisted the pending entries (the 9-trace suite
  // dedupes to 7 unique memo keys).
  EXPECT_EQ(core::EvalCacheDir(cache_dir).read_records().size(), 7u);
}

TEST(ServeServer, MaxRequestsDrainsToExitZero) {
  ServerOptions vo;
  vo.max_requests = 2;
  TestServer ts({}, vo);
  ServeClient client = ts.connect();
  std::string error;
  ServeClient::Result result;
  ASSERT_TRUE(client.explore(suite_request(), result, error)) << error;
  ASSERT_TRUE(result.ok);
  ServeClient second = ts.connect();
  ASSERT_TRUE(second.explore(suite_request(), result, error)) << error;
  ASSERT_TRUE(result.ok);
  ts.thread.join();
  EXPECT_EQ(ts.exit_code, 0);
}

TEST(ServeServer, ConcurrentClientsShareTheMemoSafely) {
  ServerOptions vo;
  vo.request_threads = 4;
  TestServer ts({}, vo);

  // Identical requests race on the shared memo table; different-option
  // requests race on distinct keys.  Every reply must match the offline
  // reference — this test doubles as the TSan workload for the serve path.
  const auto traces = seq::scaled_suite({8, 8}, 1);
  const std::string expect_default = offline_report(traces, {});
  core::ExploreOptions no_fsm_opt;
  no_fsm_opt.include_fsm = false;
  const std::string expect_no_fsm = offline_report(traces, no_fsm_opt);

  std::vector<std::thread> workers;
  std::vector<std::string> bodies(8);
  for (int i = 0; i < 8; ++i) {
    workers.emplace_back([&ts, &bodies, i] {
      ServeClient c = ts.connect();
      ExploreRequest req = suite_request();
      if (i % 2 == 1) req.options.emplace_back("no-fsm", "");
      ServeClient::Result result;
      std::string error;
      if (c.explore(req, result, error) && result.ok) bodies[i] = result.body;
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(bodies[i], i % 2 == 0 ? expect_default : expect_no_fsm)
        << "client " << i;
}

}  // namespace
}  // namespace addm::serve
