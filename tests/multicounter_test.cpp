// Tests for the multi-counter SRAG extension: the paper's PassCnt
// counter-example becomes mappable, behavioral and gate-level agree, and the
// plain mapper's successes are preserved.
#include <gtest/gtest.h>

#include "core/multicounter.hpp"
#include "core/srag_mapper.hpp"
#include "seq/workloads.hpp"
#include "sim/simulator.hpp"

namespace addm::core {
namespace {

using V = std::vector<std::uint32_t>;

TEST(MultiSragConfig, Validation) {
  MultiSragConfig cfg;
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg.registers = {{0, 1}, {2, 3}};
  cfg.pass_counts = {4};  // size mismatch
  cfg.num_select_lines = 4;
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg.pass_counts = {4, 3};  // 3 not a multiple of 2
  EXPECT_THROW(cfg.check(), std::invalid_argument);
  cfg.pass_counts = {4, 2};
  EXPECT_NO_THROW(cfg.check());
}

TEST(MultiSragModel, PerRegisterIterationCounts) {
  MultiSragConfig cfg;
  cfg.registers = {{5, 1, 4, 0}, {3, 7, 6, 2}};
  cfg.div_count = 1;
  cfg.pass_counts = {12, 8};  // 3 loops of S0, 2 loops of S1
  cfg.num_select_lines = 8;
  MultiSragModel m(cfg);
  // Exactly the paper's PassCnt-violating sequence.
  EXPECT_EQ(m.generate(20),
            (V{5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2}));
}

TEST(MultiMapper, PaperPassCntViolationNowMaps) {
  const V I{5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2};
  ASSERT_FALSE(map_sequence(I, 8).ok());  // single-counter SRAG cannot
  const MultiMapResult r = map_sequence_multicounter(I, 8);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.config->pass_counts, (V{12, 8}));
  MultiSragModel m(*r.config);
  EXPECT_EQ(m.generate(I.size()), I);
}

TEST(MultiMapper, StillRejectsDivCntViolation) {
  const V I{5, 5, 5, 1, 1};
  const MultiMapResult r = map_sequence_multicounter(I, 8);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::NonUniformDivCount);
}

TEST(MultiMapper, StillRejectsUnorderableSequences) {
  const MultiMapResult r = map_sequence_multicounter(V{1, 2, 3, 4, 3, 2, 1, 4}, 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure, MapFailure::GroupingFailed);
}

TEST(MultiMapper, AgreesWithPlainMapperWhenUniform) {
  const V I{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const MapResult plain = map_sequence(I, 4);
  const MultiMapResult multi = map_sequence_multicounter(I, 4);
  ASSERT_TRUE(plain.ok() && multi.ok());
  EXPECT_EQ(multi.config->registers, plain.config->registers);
  EXPECT_EQ(multi.config->div_count, plain.config->div_count);
  for (std::uint32_t pc : multi.config->pass_counts)
    EXPECT_EQ(pc, plain.config->pass_count);
}

struct MultiElabCase {
  const char* name;
  MultiSragConfig cfg;
};

std::vector<MultiElabCase> elaboration_cases() {
  std::vector<MultiElabCase> cases;
  {
    MultiSragConfig c;
    c.registers = {{5, 1, 4, 0}, {3, 7, 6, 2}};
    c.div_count = 1;
    c.pass_counts = {12, 8};
    c.num_select_lines = 8;
    cases.push_back({"paper_12_8", c});
  }
  {
    MultiSragConfig c;
    c.registers = {{0, 1}, {2, 3}, {4}};
    c.div_count = 2;
    c.pass_counts = {4, 2, 3};
    c.num_select_lines = 5;
    cases.push_back({"three_regs_mixed", c});
  }
  {
    MultiSragConfig c;  // degenerate: every register passes immediately
    c.registers = {{0}, {1}, {2}};
    c.div_count = 1;
    c.pass_counts = {1, 1, 1};
    c.num_select_lines = 3;
    cases.push_back({"all_pass_through", c});
  }
  return cases;
}

class MultiSragElabTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiSragElabTest, NetlistMatchesBehavioralModel) {
  const auto cases = elaboration_cases();
  const auto& tc = cases[GetParam()];
  netlist::Netlist nl = elaborate_multi_srag(tc.cfg);
  ASSERT_TRUE(nl.validate().empty()) << tc.name;

  sim::Simulator s(nl);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);

  MultiSragModel model(tc.cfg);
  std::size_t period = 0;
  for (std::size_t i = 0; i < tc.cfg.num_registers(); ++i)
    period += tc.cfg.pass_counts[i];
  const std::size_t steps = 3 * period * tc.cfg.div_count + 8;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto hot = s.hot_index("sel");
    ASSERT_TRUE(hot.has_value()) << tc.name << " cycle " << i << ": not one-hot";
    ASSERT_EQ(*hot, model.current()) << tc.name << " cycle " << i;
    s.step();
    model.pulse();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, MultiSragElabTest, ::testing::Range<std::size_t>(0, 3));

TEST(MultiMapper, MappableWorkloadsStillMap) {
  // The multi-counter mapper must be a strict generalization over workloads.
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 16;
  p.mb_width = p.mb_height = 4;
  p.m = 0;
  const auto trace = seq::motion_estimation_read(p);
  const auto rows = trace.rows();
  const auto r = map_sequence_multicounter(rows, 16);
  ASSERT_TRUE(r.ok()) << r.detail;
  MultiSragModel m(*r.config);
  EXPECT_EQ(m.generate(rows.size()), rows);
}

TEST(MultiMapper, UnequalBlockRevisitsBecomeMappable) {
  // A sequence with per-group iteration counts 2 and 1 — unmappable for the
  // single-PassCnt SRAG, fine for the extension.
  const V I{0, 1, 0, 1, 2, 3};
  ASSERT_FALSE(map_sequence(I, 4).ok());
  const MultiMapResult r = map_sequence_multicounter(I, 4);
  ASSERT_TRUE(r.ok()) << r.detail;
  MultiSragModel m(*r.config);
  EXPECT_EQ(m.generate(6), I);
}

}  // namespace
}  // namespace addm::core
