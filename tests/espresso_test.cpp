// Exhaustive and differential tests for the Espresso-style heuristic
// minimizer (logic/espresso.hpp).
//
// The centerpiece is brute force: EVERY completely specified function of up
// to 4 variables (2 + 4 + 16 + 256 + 65,536 tables) is minimized and the
// cover certified against the defining contract — exact equivalence with
// the input and irredundancy.  Randomized incompletely specified functions
// extend the check to n = 10, and minimize_exact bounds the heuristic's
// quality on functions small enough for exact covering.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>

#include "logic/espresso.hpp"
#include "logic/isop.hpp"
#include "logic/qmc.hpp"

namespace addm::logic {
namespace {

/// Canonical order espresso promises its covers in.
bool canonically_sorted(const Cover& c) {
  return std::is_sorted(c.cubes.begin(), c.cubes.end(),
                        [](const Cube& a, const Cube& b) {
                          if (a.mask != b.mask) return a.mask < b.mask;
                          return a.polarity < b.polarity;
                        });
}

/// Dense truth table for function index `bits` over n variables (bit m of
/// `bits` is f(m)).
TruthTable table_from_bits(int n, std::uint64_t bits) {
  TruthTable t(n);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m)
    if ((bits >> m) & 1) t.set(m, true);
  return t;
}

/// Random table with each minterm on with probability num/den.
TruthTable random_table(int n, std::mt19937& rng, int num, int den) {
  TruthTable t(n);
  std::uniform_int_distribution<int> d(0, den - 1);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m)
    if (d(rng) < num) t.set(m, true);
  return t;
}

TEST(Espresso, ExhaustiveAllFunctionsUpTo4Vars) {
  for (int n = 0; n <= 4; ++n) {
    const std::uint64_t num_functions = std::uint64_t{1} << (1 << n);
    for (std::uint64_t bits = 0; bits < num_functions; ++bits) {
      const TruthTable f = table_from_bits(n, bits);
      const Cover c = espresso(f);
      ASSERT_EQ(c.to_truth_table(n), f)
          << "n=" << n << " bits=" << bits << " cover=" << c.to_string();
      ASSERT_TRUE(is_irredundant(c, f, n))
          << "n=" << n << " bits=" << bits << " cover=" << c.to_string();
      ASSERT_TRUE(canonically_sorted(c)) << "n=" << n << " bits=" << bits;
    }
  }
}

TEST(Espresso, RandomIncompletelySpecifiedUpTo10Vars) {
  std::mt19937 rng(20020308);
  for (int n = 5; n <= 10; ++n) {
    for (int trial = 0; trial < 8; ++trial) {
      const TruthTable lower = random_table(n, rng, 1, 4);
      const TruthTable dc = random_table(n, rng, 1, 4);
      const TruthTable upper = lower | dc;
      const Cover c = espresso(lower, upper);
      const TruthTable got = c.to_truth_table(n);
      // L <= C <= U: every onset minterm covered, nothing outside U touched.
      ASSERT_TRUE(lower.implies(got)) << "n=" << n << " trial=" << trial;
      ASSERT_TRUE(got.implies(upper)) << "n=" << n << " trial=" << trial;
      ASSERT_TRUE(is_irredundant(c, lower, n)) << "n=" << n << " trial=" << trial;
      ASSERT_TRUE(canonically_sorted(c));
    }
  }
}

TEST(Espresso, CubeCountWithinBoundedFactorOfExact) {
  // Sparse random functions keep the exact branch-and-bound fast; the
  // heuristic must stay within 4/3 of the minimum cube count (+1 slack for
  // tiny covers where one extra cube is a large ratio).
  std::mt19937 rng(42);
  for (int n = 5; n <= 8; ++n) {
    for (int trial = 0; trial < 6; ++trial) {
      const TruthTable f = random_table(n, rng, 1, 8);
      const int exact = minimize_exact(f).num_cubes();
      const int heur = espresso(f).num_cubes();
      ASSERT_GE(heur, exact);
      ASSERT_LE(heur * 3, exact * 4 + 3)
          << "n=" << n << " trial=" << trial << " exact=" << exact
          << " espresso=" << heur;
    }
  }
}

TEST(Espresso, MatchesIsopCoverFunctionOnStructuredFunctions) {
  // The counter-style functions FSM synthesis feeds the minimizer.
  for (int n = 4; n <= 8; ++n) {
    const std::uint64_t len = std::uint64_t{1} << n;
    for (int k = 0; k < n; ++k) {
      TruthTable f(n);
      for (std::uint64_t s = 0; s < len; ++s)
        if ((((s + 1) % len) >> k) & 1) f.set(s, true);
      const Cover c = espresso(f);
      EXPECT_EQ(c.to_truth_table(n), f);
      EXPECT_TRUE(is_irredundant(c, f, n));
    }
  }
}

TEST(Espresso, DeterministicAcrossRepeatedCalls) {
  std::mt19937 rng(7);
  const TruthTable lower = random_table(9, rng, 1, 3);
  const TruthTable upper = lower | random_table(9, rng, 1, 3);
  const Cover a = espresso(lower, upper);
  const Cover b = espresso(lower, upper);
  ASSERT_EQ(a.cubes.size(), b.cubes.size());
  for (std::size_t i = 0; i < a.cubes.size(); ++i) EXPECT_EQ(a.cubes[i], b.cubes[i]);
}

TEST(Espresso, ConstantAndDegenerateFunctions) {
  EXPECT_EQ(espresso(TruthTable::zeros(5)).num_cubes(), 0);
  const Cover ones = espresso(TruthTable::ones(5));
  ASSERT_EQ(ones.num_cubes(), 1);
  EXPECT_EQ(ones.cubes[0].num_literals(), 0);
  // Lower zero, upper anything: the empty cover is minimal.
  EXPECT_EQ(espresso(TruthTable::zeros(5), TruthTable::var(5, 2)).num_cubes(), 0);
  // Upper all-ones with a nonempty lower: the universe cube.
  const Cover u = espresso(TruthTable::var(5, 1), TruthTable::ones(5));
  ASSERT_EQ(u.num_cubes(), 1);
  EXPECT_EQ(u.cubes[0].num_literals(), 0);
}

TEST(Espresso, RejectsBadArguments) {
  EXPECT_THROW(espresso(TruthTable::zeros(3), TruthTable::zeros(4)),
               std::invalid_argument);
  EXPECT_THROW(espresso(TruthTable::ones(3), TruthTable::var(3, 0)),
               std::invalid_argument);
}

TEST(CoverTautology, BasicCases) {
  EXPECT_FALSE(cover_tautology({}, 3));
  EXPECT_TRUE(cover_tautology({Cube::universe()}, 3));
  // x0 + x0' is a tautology; x0 + x1 is not.
  EXPECT_TRUE(cover_tautology({{0b1, 0b1}, {0b1, 0b0}}, 3));
  EXPECT_FALSE(cover_tautology({{0b1, 0b1}, {0b10, 0b10}}, 3));
  // All four minterms of two variables as cubes: tautology over any n that
  // only uses those two variables.
  EXPECT_TRUE(cover_tautology(
      {{0b11, 0b00}, {0b11, 0b01}, {0b11, 0b10}, {0b11, 0b11}}, 2));
}

TEST(CoverTautology, AgreesWithDenseEvaluationOnRandomCovers) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 6) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Cube> cubes;
    const int count = 1 + static_cast<int>(dist(rng) % 12);
    for (int i = 0; i < count; ++i) {
      Cube c;
      c.mask = dist(rng);
      c.polarity = dist(rng) & c.mask;
      cubes.push_back(c);
    }
    Cover cov;
    cov.cubes = cubes;
    const bool dense = cov.to_truth_table(6).is_ones();
    EXPECT_EQ(cover_tautology(cubes, 6), dense) << "trial " << trial;
  }
}

TEST(CubeContainment, AgreesWithDenseEvaluation) {
  std::mt19937 rng(123);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 5) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Cube> cubes;
    const int count = 1 + static_cast<int>(dist(rng) % 8);
    for (int i = 0; i < count; ++i) {
      Cube c;
      c.mask = dist(rng);
      c.polarity = dist(rng) & c.mask;
      cubes.push_back(c);
    }
    Cube probe;
    probe.mask = dist(rng);
    probe.polarity = dist(rng) & probe.mask;
    Cover cov;
    cov.cubes = cubes;
    const TruthTable covered = cov.to_truth_table(5);
    bool dense = true;
    for (std::uint64_t m = 0; m < 32; ++m)
      if (probe.covers(m) && !covered.get(m)) {
        dense = false;
        break;
      }
    EXPECT_EQ(cube_contained_in_cover(probe, cubes, 5), dense) << "trial " << trial;
  }
}

}  // namespace
}  // namespace addm::logic
