// Tests for drive strengths and the gate-sizing pass.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "netlist/builder.hpp"
#include "seq/workloads.hpp"
#include "tech/library.hpp"
#include "tech/sizing.hpp"
#include "tech/sta.hpp"

namespace addm::tech {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(DriveStrength, FactorsAreMonotonic) {
  EXPECT_LT(Library::drive_area_factor(1), Library::drive_area_factor(2));
  EXPECT_LT(Library::drive_area_factor(2), Library::drive_area_factor(4));
  EXPECT_GT(Library::drive_slope_factor(1), Library::drive_slope_factor(2));
  EXPECT_GT(Library::drive_slope_factor(2), Library::drive_slope_factor(4));
  EXPECT_LE(Library::drive_intrinsic_factor(1), Library::drive_intrinsic_factor(4));
}

TEST(DriveStrength, SetCellDriveValidates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.inv(a));
  nl.set_cell_drive(0, 4);
  EXPECT_EQ(nl.cell(0).drive, 4);
  EXPECT_THROW(nl.set_cell_drive(0, 3), std::invalid_argument);
  EXPECT_THROW(nl.set_cell_drive(9, 2), std::out_of_range);
}

TEST(DriveStrength, UpsizingLoadedGateReducesDelay) {
  const auto lib = Library::generic_180nm();
  Netlist nl;
  NetlistBuilder b(nl);
  b.set_sharing(false);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId hub = b.and2(a, c);
  for (int i = 0; i < 30; ++i)
    b.output("y" + std::to_string(i), b.and2(hub, b.input("l" + std::to_string(i))));
  const double before = analyze_timing(nl, lib).critical_path_ns;
  nl.set_cell_drive(*nl.driver_of(hub), 4);
  const double after = analyze_timing(nl, lib).critical_path_ns;
  EXPECT_LT(after, before);
}

TEST(DriveStrength, UpsizingIncreasesArea) {
  const auto lib = Library::generic_180nm();
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.inv(a));
  const double a1 = analyze_area(nl, lib).total;
  nl.set_cell_drive(0, 4);
  const double a4 = analyze_area(nl, lib).total;
  EXPECT_NEAR(a4, a1 * Library::drive_area_factor(4), 1e-9);
}

TEST(Sizing, LoadBasedRuleUpsizesHubs) {
  const auto lib = Library::generic_180nm();
  Netlist nl;
  NetlistBuilder b(nl);
  b.set_sharing(false);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId hub = b.and2(a, c);  // will drive 12 loads
  for (int i = 0; i < 12; ++i)
    b.output("y" + std::to_string(i), b.and2(hub, b.input("l" + std::to_string(i))));
  const auto stats = size_gates(nl, lib);
  EXPECT_GE(stats.upsized_x4, 1u);
  EXPECT_EQ(nl.cell(*nl.driver_of(hub)).drive, 4);
}

TEST(Sizing, NeverWorsensDelay) {
  const auto lib = Library::generic_180nm();
  auto build = core::build_srag_2d_for_trace(seq::incremental({32, 32}));
  insert_buffers(build.netlist);
  const double before = analyze_timing(build.netlist, lib).critical_path_ns;
  const auto stats = size_gates(build.netlist, lib);
  EXPECT_LE(stats.delay_after_ns, before + 1e-9);
  EXPECT_NEAR(stats.delay_before_ns, before, 1e-9);
}

TEST(Sizing, ImprovesBufferedSragDelay) {
  const auto lib = Library::generic_180nm();
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 64;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  auto build = core::build_srag_2d_for_trace(seq::motion_estimation_read(p));
  insert_buffers(build.netlist);
  const auto stats = size_gates(build.netlist, lib);
  EXPECT_LT(stats.delay_after_ns, stats.delay_before_ns);
}

TEST(Sizing, RespectsRepairBudget) {
  const auto lib = Library::generic_180nm();
  auto build = core::build_srag_2d_for_trace(seq::incremental({16, 16}));
  insert_buffers(build.netlist);
  SizingOptions opt;
  opt.max_repair_rounds = 0;  // load-based stage only
  const auto stats = size_gates(build.netlist, lib, opt);
  EXPECT_EQ(stats.repair_rounds, 0);
}

}  // namespace
}  // namespace addm::tech
