#!/usr/bin/env bash
# End-to-end smoke test for the addm_serve daemon and addm_client.
#
#   serve_smoke.sh ADDM_SERVE ADDM_CLIENT ADDM_EXPLORE ADDM_CACHE WORK_DIR
#
# Starts a real daemon on a temp unix socket with a shared cache dir, then
# checks the whole contract from outside the process:
#   - served reports are byte-identical to offline addm_explore for two
#     option sets and both output formats (cold AND warm/memo-served),
#   - path traces, inline traces (--send-trace), and the JSON-lines wire
#     mode all match their offline equivalents,
#   - admin stats/flush/compact work and leave a directory that
#     addm_cache verify-checksums calls clean,
#   - SIGTERM drains and exits 0,
#   - the TCP transport (--listen/--port-file) serves the same bytes.
set -u

# The script cds into WORK, so resolve the tool paths first.
SERVE=$(readlink -f "$1"); CLIENT=$(readlink -f "$2")
EXPLORE=$(readlink -f "$3"); CACHE=$(readlink -f "$4"); WORK=$5

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

rm -rf "$WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot enter $WORK"

# Unix socket paths must stay under sun_path (~108 bytes); the build tree
# can be deep, so put the socket in a private temp dir instead.
SOCK_DIR=$(mktemp -d) || fail "mktemp -d"
SOCK="$SOCK_DIR/smoke.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null
  rm -rf "$SOCK_DIR"
}
trap cleanup EXIT

wait_for_ping() {
  # The daemon binds before it prints anything; poll until ping succeeds.
  for _ in $(seq 1 100); do
    if "$CLIENT" "$@" ping >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# ---- offline references ---------------------------------------------------
"$EXPLORE" --suite 2 --quiet --out ref_default.csv || fail "offline default"
"$EXPLORE" --suite 2 --quiet --no-fsm --minimizer auto --out ref_nofsm.csv \
  || fail "offline no-fsm"
"$EXPLORE" --suite 2 --quiet --format json --out ref_default.json \
  || fail "offline json"

# ---- daemon on a unix socket with a shared cache --------------------------
"$SERVE" --socket "$SOCK" --cache-dir cache --quiet &
DAEMON_PID=$!
wait_for_ping --socket "$SOCK" || fail "daemon never answered ping"

# Cold request, then the same request again (memo-served): both must be
# byte-identical to offline addm_explore.
"$CLIENT" --socket "$SOCK" --suite 2 --quiet --out got_default.csv \
  || fail "client default request"
cmp ref_default.csv got_default.csv || fail "cold served CSV != offline CSV"
"$CLIENT" --socket "$SOCK" --suite 2 --quiet --out got_warm.csv \
  || fail "client warm request"
cmp ref_default.csv got_warm.csv || fail "warm served CSV != offline CSV"

# A different option set and the JSON report format.
"$CLIENT" --socket "$SOCK" --suite 2 --quiet --no-fsm --minimizer auto \
  --out got_nofsm.csv || fail "client no-fsm request"
cmp ref_nofsm.csv got_nofsm.csv || fail "served no-fsm CSV != offline CSV"
"$CLIENT" --socket "$SOCK" --suite 2 --quiet --format json \
  --out got_default.json || fail "client json-format request"
cmp ref_default.json got_default.json || fail "served JSON != offline JSON"

# ---- path and inline traces ----------------------------------------------
"$(dirname "$SERVE")/addm_trace_gen" --out-dir traces --suite 1 >/dev/null 2>&1 \
  || fail "trace_gen"
ONE_TRACE=$(ls traces/*.trace | head -1)
"$EXPLORE" --trace "$ONE_TRACE" --quiet --out ref_trace.csv \
  || fail "offline trace"
"$CLIENT" --socket "$SOCK" --trace "$ONE_TRACE" --quiet --out got_trace.csv \
  || fail "client path trace"
cmp ref_trace.csv got_trace.csv || fail "served path-trace CSV != offline"
"$CLIENT" --socket "$SOCK" --send-trace "$ONE_TRACE" --quiet \
  --out got_inline.csv || fail "client inline trace"
cmp ref_trace.csv got_inline.csv || fail "served inline-trace CSV != offline"

# ---- JSON-lines wire mode -------------------------------------------------
"$CLIENT" --socket "$SOCK" --json --suite 2 --quiet --out got_jsonwire.csv \
  || fail "client json wire mode"
cmp ref_default.csv got_jsonwire.csv || fail "JSON wire mode CSV != offline"
"$CLIENT" --socket "$SOCK" --json ping >/dev/null || fail "json ping"

# ---- admin: flush, stats, compact; then offline verification --------------
"$CLIENT" --socket "$SOCK" admin flush >/dev/null || fail "admin flush"
"$CLIENT" --socket "$SOCK" admin stats > stats.json || fail "admin stats"
grep -q '"entries"' stats.json || fail "admin stats is not the stats JSON"
"$CLIENT" --socket "$SOCK" admin compact >/dev/null || fail "admin compact"
"$CLIENT" --socket "$SOCK" admin prune --max-entries 1000 >/dev/null \
  || fail "admin prune"

# A bad admin command must fail the client (exit 1) but not the daemon.
if "$CLIENT" --socket "$SOCK" admin no-such-command >/dev/null 2>&1; then
  fail "unknown admin command unexpectedly succeeded"
fi
wait_for_ping --socket "$SOCK" || fail "daemon died after bad admin command"

# ---- clean SIGTERM drain --------------------------------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "daemon exit code $RC after SIGTERM (want 0)"
DAEMON_PID=""
[ -S "$SOCK" ] && fail "daemon left its socket file behind"

# The flushed cache must be clean, and warm-start an offline run.
"$CACHE" verify-checksums cache --quiet || fail "cache verify-checksums"
"$EXPLORE" --suite 2 --cache-dir cache --quiet --out warm_offline.csv \
  || fail "offline warm run"
cmp ref_default.csv warm_offline.csv || fail "offline warm CSV != reference"

# ---- TCP transport --------------------------------------------------------
"$SERVE" --listen 0 --port-file port.txt --quiet --max-requests 3 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -s port.txt ] && break; sleep 0.1; done
[ -s port.txt ] || fail "daemon never wrote its port file"
PORT=$(cat port.txt)
wait_for_ping --connect "$PORT" || fail "tcp daemon never answered ping"
"$CLIENT" --connect "$PORT" --suite 2 --quiet --out got_tcp.csv \
  || fail "client tcp request"
cmp ref_default.csv got_tcp.csv || fail "TCP served CSV != offline CSV"
# Third request hits --max-requests; the daemon then drains and exits 0.
"$CLIENT" --connect "$PORT" ping >/dev/null || fail "tcp ping"
wait "$DAEMON_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "tcp daemon exit code $RC after --max-requests"
DAEMON_PID=""

echo "serve_smoke: PASS"
