// Tests for the persistent evaluation cache: serialization round trips,
// corruption tolerance (bad index lines, truncated entries, stale versions),
// concurrent writers, merge, and the BatchExplorer disk integration.  The
// robustness contract under test: damaged cache content degrades to cache
// misses — never crashes, never wrong results.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "core/batch_explorer.hpp"
#include "core/eval_cache.hpp"
#include "core/fingerprint.hpp"
#include "seq/workloads.hpp"

namespace addm::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "addm_eval_cache" / name;
  fs::remove_all(dir);
  fs::create_directories(dir.parent_path());
  return dir.string();
}

EvalCacheEntry sample_entry(std::uint64_t trace_hash = 0x1111,
                            std::uint64_t options_hash = 0x2222) {
  EvalCacheEntry e;
  e.key = {trace_hash, options_hash};
  DesignPoint a;
  a.architecture = "SRAG";
  a.feasible = true;
  a.note = "row: 3 regs/9 ffs dC=1 pC=2; col: 3 regs/9 ffs dC=1 pC=2";
  a.metrics.area_units = 123.456;
  a.metrics.delay_ns = -0.25;
  a.metrics.clk_to_out_ns = 1e-300;  // subnormal-adjacent: bit-exact round trip
  a.metrics.reg_to_reg_ns = 0.1;     // not exactly representable
  a.metrics.cells = 42;
  a.metrics.flipflops = 18;
  a.metrics.buffers_added = 3;
  DesignPoint b;
  b.architecture = "FSM-binary";
  b.feasible = false;
  b.note = "weird \"quoted\" 100% note,\nwith newline";
  DesignPoint c;
  c.architecture = "CntAG-flat";
  c.feasible = true;
  c.note = "";  // empty strings must survive the round trip
  e.points = {a, b, c};
  e.pareto = {0, 2};
  return e;
}

bool entries_equal(const EvalCacheEntry& x, const EvalCacheEntry& y) {
  if (!(x.key == y.key) || x.pareto != y.pareto || x.points.size() != y.points.size())
    return false;
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    const DesignPoint& p = x.points[i];
    const DesignPoint& q = y.points[i];
    if (p.architecture != q.architecture || p.feasible != q.feasible ||
        p.note != q.note || p.metrics.area_units != q.metrics.area_units ||
        p.metrics.delay_ns != q.metrics.delay_ns ||
        p.metrics.clk_to_out_ns != q.metrics.clk_to_out_ns ||
        p.metrics.reg_to_reg_ns != q.metrics.reg_to_reg_ns ||
        p.metrics.cells != q.metrics.cells ||
        p.metrics.flipflops != q.metrics.flipflops ||
        p.metrics.buffers_added != q.metrics.buffers_added)
      return false;
  }
  return true;
}

TEST(EvalCacheFormat, SerializeParseRoundTrip) {
  const EvalCacheEntry e = sample_entry();
  const std::string text = serialize_eval_entry(e);
  EvalCacheEntry back;
  ASSERT_TRUE(parse_eval_entry(text, back));
  EXPECT_TRUE(entries_equal(e, back));
  // Canonical: serializing the parsed entry reproduces the bytes.
  EXPECT_EQ(serialize_eval_entry(back), text);
}

TEST(EvalCacheFormat, ParseRejectsDamage) {
  const std::string text = serialize_eval_entry(sample_entry());
  EvalCacheEntry out;

  EXPECT_FALSE(parse_eval_entry("", out));
  EXPECT_FALSE(parse_eval_entry("\n", out));  // regression: used to read OOB
  EXPECT_FALSE(parse_eval_entry("x", out));
  EXPECT_FALSE(parse_eval_entry("garbage\n", out));

  // Any truncation fails (checksum line missing or payload cut short).
  for (std::size_t cut : {text.size() - 1, text.size() / 2, std::size_t{5}})
    EXPECT_FALSE(parse_eval_entry(text.substr(0, cut), out)) << "cut=" << cut;

  // A single flipped byte in the payload fails the checksum.
  std::string flipped = text;
  flipped[text.size() / 3] ^= 0x01;
  EXPECT_FALSE(parse_eval_entry(flipped, out));

  // A future format version is rejected even with a valid checksum.
  EvalCacheEntry e = sample_entry();
  std::string future = serialize_eval_entry(e);
  future.replace(future.find(" 1\n"), 3, " 2\n");
  EXPECT_FALSE(parse_eval_entry(future, out));
}

TEST(EvalCacheDirTest, StoreLoadAndFilter) {
  EvalCacheDir cache(fresh_dir("store_load"));
  const EvalCacheEntry a = sample_entry(0xaaa, 0x100);
  const EvalCacheEntry b = sample_entry(0xbbb, 0x100);
  const EvalCacheEntry c = sample_entry(0xccc, 0x200);
  EXPECT_TRUE(cache.store(a));
  EXPECT_TRUE(cache.store(b));
  EXPECT_TRUE(cache.store(c));
  EXPECT_TRUE(cache.store(b));  // duplicate store is harmless

  EvalCacheLoadStats stats;
  const auto all = cache.load_all(&stats);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  // Sorted by key regardless of store order.
  EXPECT_TRUE(entries_equal(all[0], a));
  EXPECT_TRUE(entries_equal(all[1], b));
  EXPECT_TRUE(entries_equal(all[2], c));

  const auto matching = cache.load_matching(0x100);
  ASSERT_EQ(matching.size(), 2u);
  EXPECT_TRUE(entries_equal(matching[0], a));
  EXPECT_TRUE(entries_equal(matching[1], b));
  EXPECT_TRUE(cache.load_matching(0x999).empty());
}

TEST(EvalCacheDirTest, MissingDirectoryLoadsNothing) {
  EvalCacheDir cache(fresh_dir("never_created") + "/nope");
  EvalCacheLoadStats stats;
  EXPECT_TRUE(cache.load_all(&stats).empty());
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(EvalCacheDirTest, CorruptedIndexLinesAreSkipped) {
  const std::string dir = fresh_dir("bad_index");
  EvalCacheDir cache(dir);
  ASSERT_TRUE(cache.store(sample_entry(0xaaa, 0x100)));
  {
    std::ofstream out(fs::path(dir) / "index.txt", std::ios::app);
    out << "entry nothex nothex\n";
    out << "torn entry 0000000000000aaa 00000000000\n";
    out << "entry 0000000000000bbb 0000000000000100\n";  // valid line, no file
  }
  EvalCacheLoadStats stats;
  const auto all = cache.load_all(&stats);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.skipped, 3u);
}

TEST(EvalCacheDirTest, TruncatedAndCorruptEntryFilesAreSkipped) {
  const std::string dir = fresh_dir("bad_entry");
  EvalCacheDir cache(dir);
  const EvalCacheEntry keep = sample_entry(0xaaa, 0x100);
  const EvalCacheEntry hurt = sample_entry(0xbbb, 0x100);
  ASSERT_TRUE(cache.store(keep));
  ASSERT_TRUE(cache.store(hurt));

  const fs::path victim =
      fs::path(dir) / "0000000000000bbb-0000000000000100.entry";
  ASSERT_TRUE(fs::exists(victim));
  // Truncate to half size, as if the writer died mid-write without the
  // atomic rename (or the disk lost the tail).
  std::string text;
  {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  { std::ofstream(victim, std::ios::binary | std::ios::trunc) << text.substr(0, text.size() / 2); }

  EvalCacheLoadStats stats;
  auto all = cache.load_all(&stats);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(entries_equal(all[0], keep));
  EXPECT_EQ(stats.skipped, 1u);

  // A bit flip (checksum mismatch) is also just a miss.
  std::string flipped = text;
  flipped[flipped.size() / 2] ^= 0x40;
  { std::ofstream(victim, std::ios::binary | std::ios::trunc) << flipped; }
  all = cache.load_all(&stats);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(EvalCacheDirTest, VanishedOrNonFilePayloadDegradesToMiss) {
  // Regression: the hit path must stat before reading.  A payload file that
  // vanished — or worse, was replaced by a directory — used to surface a
  // stream read error; it must be an ordinary miss on every load API.
  const std::string dir = fresh_dir("vanished_payload");
  EvalCacheDir cache(dir);
  const EvalCacheEntry keep = sample_entry(0xaaa, 0x100);
  const EvalCacheEntry gone = sample_entry(0xbbb, 0x100);
  ASSERT_TRUE(cache.store(keep));
  ASSERT_TRUE(cache.store(gone));

  const fs::path victim = fs::path(dir) / "0000000000000bbb-0000000000000100.entry";
  ASSERT_TRUE(fs::remove(victim));
  fs::create_directories(victim);  // now a directory under the payload name

  EvalCacheEntry out;
  EXPECT_FALSE(cache.load_entry(gone.key, out));
  EXPECT_TRUE(cache.load_entry(keep.key, out));

  EvalCacheLoadStats stats;
  const auto all = cache.load_all(&stats);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(entries_equal(all[0], keep));
  EXPECT_EQ(stats.skipped, 1u);

  // The batch layer sees the same miss and recovers by re-evaluating.
  const std::string batch_dir = fresh_dir("vanished_batch");
  const auto traces = seq::standard_suite({8, 8});
  BatchOptions opt;
  opt.threads = 2;
  opt.cache_dir = batch_dir;
  const BatchResult cold = BatchExplorer(opt).run(traces);
  bool replaced_one = false;
  for (const auto& f : fs::directory_iterator(batch_dir)) {
    if (f.path().extension() != ".entry" || replaced_one) continue;
    fs::remove(f.path());
    fs::create_directories(f.path());
    replaced_one = true;
  }
  ASSERT_TRUE(replaced_one);
  const BatchResult redone = BatchExplorer(opt).run(traces);
  EXPECT_EQ(redone.evaluations, 1u);
  EXPECT_EQ(batch_report_csv(redone), batch_report_csv(cold));
}

TEST(EvalCacheDirTest, StaleIndexVersionReadsAsEmpty) {
  const std::string dir = fresh_dir("stale_version");
  EvalCacheDir cache(dir);
  ASSERT_TRUE(cache.store(sample_entry()));
  // Rewrite the header to a future version; everything becomes unreachable
  // (but nothing throws, and the files are left alone).
  std::string index;
  {
    std::ifstream in(fs::path(dir) / "index.txt");
    std::ostringstream os;
    os << in.rdbuf();
    index = os.str();
  }
  index.replace(index.find("addm-eval-cache 2"), 17, "addm-eval-cache 9");
  { std::ofstream(fs::path(dir) / "index.txt", std::ios::trunc) << index; }

  EvalCacheLoadStats stats;
  EXPECT_TRUE(cache.load_all(&stats).empty());
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_GE(stats.skipped, 1u);

  // Writers refuse the mismatched index too: appending would "store"
  // entries no reader of this version could ever see.
  EXPECT_FALSE(cache.store(sample_entry(0xddd, 0x300)));
}

TEST(EvalCacheDirTest, MergeCopiesOnlyMissingEntries) {
  const std::string src = fresh_dir("merge_src");
  const std::string dst = fresh_dir("merge_dst");
  EvalCacheDir src_cache(src), dst_cache(dst);
  ASSERT_TRUE(src_cache.store(sample_entry(0xaaa, 0x100)));
  ASSERT_TRUE(src_cache.store(sample_entry(0xbbb, 0x100)));
  ASSERT_TRUE(dst_cache.store(sample_entry(0xbbb, 0x100)));  // already present

  EXPECT_EQ(EvalCacheDir::merge(dst, src).copied, 1u);
  EXPECT_EQ(dst_cache.load_all().size(), 2u);
  // Idempotent: a second merge copies nothing.
  EXPECT_EQ(EvalCacheDir::merge(dst, src).copied, 0u);
  // Merging into a brand-new dir copies everything.
  const std::string dst2 = fresh_dir("merge_dst2");
  const auto full = EvalCacheDir::merge(dst2, src);
  EXPECT_EQ(full.copied, 2u);
  EXPECT_EQ(full.failed, 0u);
}

TEST(EvalCacheDirTest, MergeReportsUnwritableDestination) {
  const std::string src = fresh_dir("merge_fail_src");
  EvalCacheDir src_cache(src);
  ASSERT_TRUE(src_cache.store(sample_entry(0xaaa, 0x100)));
  ASSERT_TRUE(src_cache.store(sample_entry(0xbbb, 0x100)));
  // A destination nested under a regular file can never be created, for any
  // user (permission-based setups are invisible to root).
  const std::string blocker = fresh_dir("merge_fail_blocker");
  fs::create_directories(blocker);
  { std::ofstream(fs::path(blocker) / "file") << "x"; }
  const auto stats =
      EvalCacheDir::merge((fs::path(blocker) / "file" / "dst").string(), src);
  EXPECT_EQ(stats.copied, 0u);
  EXPECT_EQ(stats.failed, 2u);
}

TEST(EvalCacheDirTest, ConcurrentWritersAndReadersStaySane) {
  // Two writer threads with independent handles (standing in for two
  // processes: the on-disk protocol is identical) plus a reader hammering
  // load_all.  Nothing may crash, and every stored entry must be loadable
  // afterwards.
  const std::string dir = fresh_dir("concurrent");
  constexpr int kPerWriter = 24;
  auto writer = [&](std::uint64_t salt) {
    EvalCacheDir cache(dir);
    for (int i = 0; i < kPerWriter; ++i)
      cache.store(sample_entry(salt * 1000 + static_cast<std::uint64_t>(i), 0x42));
  };
  std::thread w1(writer, 1), w2(writer, 2);
  {
    EvalCacheDir cache(dir);
    for (int i = 0; i < 50; ++i) {
      const auto partial = cache.load_all();
      EXPECT_LE(partial.size(), 2u * kPerWriter);
    }
  }
  w1.join();
  w2.join();
  EvalCacheLoadStats stats;
  const auto all = EvalCacheDir(dir).load_all(&stats);
  EXPECT_EQ(all.size(), 2u * kPerWriter);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(EvalCacheBatch, SecondExplorerIsServedEntirelyFromDisk) {
  const std::string dir = fresh_dir("batch_warm");
  const auto traces = seq::standard_suite({8, 8});

  BatchOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir;

  BatchExplorer cold(opt);
  const BatchResult first = cold.run(traces);
  EXPECT_GT(first.evaluations, 0u);
  EXPECT_EQ(first.disk_hits, 0u);
  EXPECT_EQ(first.disk_entries_stored, first.evaluations);

  BatchExplorer warm(opt);
  const BatchResult second = warm.run(traces);
  EXPECT_EQ(second.evaluations, 0u);
  EXPECT_EQ(second.cache_hits, 0u);
  EXPECT_EQ(second.disk_hits, traces.size());
  EXPECT_EQ(second.disk_entries_loaded, first.disk_entries_stored);
  EXPECT_EQ(second.disk_entries_stored, 0u);

  // The disk round trip must not perturb a single byte of the reports.
  EXPECT_EQ(batch_report_csv(first), batch_report_csv(second));
  EXPECT_EQ(batch_report_json(first), batch_report_json(second));
}

TEST(EvalCacheBatch, DifferentOptionsMissTheDiskCache) {
  const std::string dir = fresh_dir("batch_opts");
  const auto traces = seq::standard_suite({8, 8});
  BatchOptions a;
  a.threads = 2;
  a.cache_dir = dir;
  BatchExplorer(a).run(traces);

  BatchOptions b = a;
  b.explore.include_fsm = false;
  BatchExplorer other(b);
  const BatchResult result = other.run(traces);
  EXPECT_EQ(result.disk_hits, 0u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(EvalCacheBatch, CorruptedCacheDegradesToReevaluation) {
  const std::string dir = fresh_dir("batch_corrupt");
  const auto traces = seq::standard_suite({8, 8});
  BatchOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir;
  const BatchResult clean = BatchExplorer(opt).run(traces);

  // Vandalize every entry file; keep the index.
  for (const auto& f : fs::directory_iterator(dir)) {
    if (f.path().extension() != ".entry") continue;
    std::ofstream(f.path(), std::ios::binary | std::ios::trunc) << "junk";
  }

  BatchExplorer recover(opt);
  const BatchResult redone = recover.run(traces);
  EXPECT_EQ(redone.disk_hits, 0u);
  EXPECT_EQ(redone.evaluations, clean.evaluations);
  EXPECT_EQ(batch_report_csv(redone), batch_report_csv(clean));

  // And the re-run healed the cache: a third explorer is disk-warm again.
  const BatchResult healed = BatchExplorer(opt).run(traces);
  EXPECT_EQ(healed.evaluations, 0u);
  EXPECT_EQ(healed.disk_hits, traces.size());
}

TEST(EvalCacheBatch, FilteredRunNeverPoisonsAFullRunsCache) {
  // An --archs subset produces a different (smaller) point vector for the
  // same trace, so it must live under a different cache key: a full-options
  // run after a filtered one must see zero disk hits, and vice versa.
  const std::string dir = fresh_dir("batch_archs");
  const auto traces = seq::standard_suite({8, 8});

  BatchOptions filtered;
  filtered.threads = 2;
  filtered.cache_dir = dir;
  filtered.explore.archs = {"SRAG", "CntAG-flat"};
  const BatchResult f = BatchExplorer(filtered).run(traces);
  EXPECT_GT(f.disk_entries_stored, 0u);

  BatchOptions full;
  full.threads = 2;
  full.cache_dir = dir;
  BatchExplorer full_explorer(full);
  const BatchResult cold = full_explorer.run(traces);
  EXPECT_EQ(cold.disk_hits, 0u);
  EXPECT_EQ(cold.disk_entries_loaded, 0u);
  EXPECT_GT(cold.evaluations, 0u);
  const std::size_t full_points = generator_names().size();
  for (const auto& e : cold.entries) EXPECT_EQ(e.points.size(), full_points);

  // Both option sets now coexist in one directory; each rerun is warm.
  const BatchResult warm_full = BatchExplorer(full).run(traces);
  EXPECT_EQ(warm_full.evaluations, 0u);
  EXPECT_EQ(warm_full.disk_hits, traces.size());
  const BatchResult warm_filtered = BatchExplorer(filtered).run(traces);
  EXPECT_EQ(warm_filtered.evaluations, 0u);
  EXPECT_EQ(warm_filtered.disk_hits, traces.size());
  EXPECT_EQ(batch_report_csv(warm_filtered), batch_report_csv(f));
}

TEST(EvalCacheBatch, CacheDirectoryBytesIndependentOfThreadSplit) {
  // Entry files are canonical and the flush is sorted by cache key, so two
  // cold runs with different thread splits must write byte-identical
  // directories — the property the arch_determinism ctest entry enforces
  // end-to-end through the CLI.  Duplicated traces are the hard case: with
  // threads > 1 even the evaluation *owner* of a duplicated key is a race,
  // so any schedule-derived flush order would leak into index.txt.
  auto traces = seq::standard_suite({8, 8});
  traces.push_back(traces[0]);
  traces.insert(traces.begin(), traces[2]);
  auto populate = [&](const std::string& name, std::size_t threads,
                      std::size_t arch_threads) {
    const std::string dir = fresh_dir(name);
    BatchOptions opt;
    opt.threads = threads;
    opt.explore.arch_threads = arch_threads;
    opt.cache_dir = dir;
    BatchExplorer(opt).run(traces);
    std::map<std::string, std::string> files;
    for (const auto& f : fs::directory_iterator(dir)) {
      std::ifstream in(f.path(), std::ios::binary);
      std::ostringstream body;
      body << in.rdbuf();
      files[f.path().filename().string()] = body.str();
    }
    return files;
  };
  const auto reference = populate("split_ref", 1, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(populate("split_a", 4, 1), reference);
  EXPECT_EQ(populate("split_b", 4, 2), reference);
  EXPECT_EQ(populate("split_c", 1, 8), reference);
}

}  // namespace
}  // namespace addm::core
