// Tests for the banked (distributed) ADDM extension: partitioning,
// bank-select legality, corruption accounting, and interconnect estimates.
#include <gtest/gtest.h>

#include "memory/banked_addm.hpp"

namespace addm::memory {
namespace {

std::vector<std::uint8_t> one_hot(std::size_t n, std::size_t hot) {
  std::vector<std::uint8_t> v(n, 0);
  v[hot] = 1;
  return v;
}

TEST(BankedAddm, PartitioningByColumnRange) {
  BankedAddm m({8, 4}, 2);  // two 4-wide banks
  EXPECT_EQ(m.num_banks(), 2u);
  EXPECT_EQ(m.bank_geometry(), (seq::ArrayGeometry{4, 4}));
  EXPECT_EQ(m.bank_of(0), 0u);
  EXPECT_EQ(m.bank_of(5), 1u);   // row 0, col 5
  EXPECT_EQ(m.local_col(5), 1u);
  EXPECT_EQ(m.bank_of(11), 0u);  // row 1, col 3
}

TEST(BankedAddm, ReadWriteThroughBankSelect) {
  BankedAddm m({8, 4}, 2);
  // Write (row 2, col 6): bank 1, local col 2.
  m.write(one_hot(2, 1), one_hot(4, 2), one_hot(4, 2), 99);
  EXPECT_EQ(m.cell(2, 6), 99u);
  EXPECT_EQ(m.read(one_hot(2, 1), one_hot(4, 2), one_hot(4, 2)), 99u);
  // The twin cell in bank 0 is untouched.
  EXPECT_EQ(m.cell(2, 2), 0u);
  EXPECT_EQ(m.violation_count(), 0u);
}

TEST(BankedAddm, BankSelectViolationsDetected) {
  BankedAddm m({8, 4}, 2);
  std::vector<std::uint8_t> both(2, 1);
  m.write(both, one_hot(4, 0), one_hot(4, 0), 7);
  EXPECT_EQ(m.violation_count(), 1u);
  std::vector<std::uint8_t> none(2, 0);
  (void)m.read(none, one_hot(4, 0), one_hot(4, 0));
  EXPECT_EQ(m.violation_count(), 2u);
}

TEST(BankedAddm, InnerTwoHotViolationsPropagate) {
  BankedAddm m({8, 4}, 2);
  std::vector<std::uint8_t> two_rows(4, 0);
  two_rows[0] = two_rows[2] = 1;
  m.write(one_hot(2, 0), two_rows, one_hot(4, 1), 5);
  EXPECT_EQ(m.violation_count(), 1u);
  EXPECT_EQ(m.cell(0, 1), 5u);
  EXPECT_EQ(m.cell(2, 1), 5u);  // corrupted, as the flat model does
}

TEST(BankedAddm, RejectsBadConfiguration) {
  EXPECT_THROW(BankedAddm({8, 4}, 0), std::invalid_argument);
  EXPECT_THROW(BankedAddm({8, 4}, 3), std::invalid_argument);  // 3 does not divide 8
  BankedAddm m({8, 4}, 2);
  EXPECT_THROW(m.write(one_hot(3, 0), one_hot(4, 0), one_hot(4, 0), 1),
               std::invalid_argument);
}

TEST(BankedAddm, InterconnectMaxLineShrinksWithBanking) {
  const seq::ArrayGeometry g{64, 64};
  const auto mono = BankedAddm::monolithic_cost(g);
  const auto banked4 = BankedAddm(g, 4).interconnect_cost();
  const auto banked8 = BankedAddm(g, 8).interconnect_cost();
  // Total wire length is conserved; the worst single line shrinks.
  EXPECT_DOUBLE_EQ(mono.wire_length_units, banked4.wire_length_units);
  EXPECT_GT(banked4.select_wires, mono.select_wires);  // replicated RS bundles
  EXPECT_LE(banked4.max_line_length_units, mono.max_line_length_units);
  EXPECT_LE(banked8.max_line_length_units, banked4.max_line_length_units);
}

TEST(BankedAddm, SingleBankMatchesMonolithic) {
  const seq::ArrayGeometry g{16, 16};
  BankedAddm m(g, 1);
  const auto c = m.interconnect_cost();
  const auto mono = BankedAddm::monolithic_cost(g);
  EXPECT_EQ(c.select_wires, mono.select_wires);
  EXPECT_DOUBLE_EQ(c.max_line_length_units, mono.max_line_length_units);
}

}  // namespace
}  // namespace addm::memory
