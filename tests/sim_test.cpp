// Unit tests for the cycle simulator: gate semantics, flip-flop variants,
// bus helpers, hot-line queries and toggle counting.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/simulator.hpp"

namespace addm::sim {
namespace {

using netlist::CellType;
using netlist::kConst0;
using netlist::kConst1;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(Simulator, CombinationalGateSemantics) {
  Netlist nl;
  NetlistBuilder b(nl);
  b.set_sharing(false);  // keep one cell per operator even for equal inputs
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  b.output("inv", b.inv(a));
  b.output("and", b.and2(a, c));
  b.output("or", b.or2(a, c));
  b.output("xor", b.xor2(a, c));
  b.output("nand", b.nand2(a, c));
  b.output("nor", b.nor2(a, c));
  b.output("xnor", b.xnor2(a, c));

  Simulator s(nl);
  for (int av = 0; av <= 1; ++av)
    for (int cv = 0; cv <= 1; ++cv) {
      s.set("a", av);
      s.set("c", cv);
      s.eval();
      EXPECT_EQ(s.get("inv"), !av);
      EXPECT_EQ(s.get("and"), av && cv);
      EXPECT_EQ(s.get("or"), av || cv);
      EXPECT_EQ(s.get("xor"), av != cv);
      EXPECT_EQ(s.get("nand"), !(av && cv));
      EXPECT_EQ(s.get("nor"), !(av || cv));
      EXPECT_EQ(s.get("xnor"), av == cv);
    }
}

TEST(Simulator, MuxSemantics) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId sel = b.input("sel");
  const NetId d0 = b.input("d0");
  const NetId d1 = b.input("d1");
  b.output("y", b.mux2(sel, d0, d1));
  Simulator s(nl);
  s.set("d0", false);
  s.set("d1", true);
  s.set("sel", false);
  s.eval();
  EXPECT_FALSE(s.get("y"));
  s.set("sel", true);
  s.eval();
  EXPECT_TRUE(s.get("y"));
}

TEST(Simulator, DffBasic) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  b.output("q", b.dff(d));
  Simulator s(nl);
  EXPECT_FALSE(s.get("q"));  // powers up at 0
  s.set("d", true);
  s.step();
  EXPECT_TRUE(s.get("q"));
  s.set("d", false);
  s.step();
  EXPECT_FALSE(s.get("q"));
}

TEST(Simulator, DffResetAndSetVariants) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId r = b.input("r");
  b.output("qr", b.dff_r(d, r));
  b.output("qs", b.dff_s(d, r));
  Simulator s(nl);
  s.set("d", true);
  s.set("r", false);
  s.step();
  EXPECT_TRUE(s.get("qr"));
  EXPECT_TRUE(s.get("qs"));
  s.set("r", true);  // reset dominates d
  s.step();
  EXPECT_FALSE(s.get("qr"));
  EXPECT_TRUE(s.get("qs"));
  s.set("d", false);
  s.step();
  EXPECT_FALSE(s.get("qr"));
  EXPECT_TRUE(s.get("qs"));  // set forces 1
}

TEST(Simulator, DffEnableHolds) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId e = b.input("e");
  b.output("q", b.dff_e(d, e));
  Simulator s(nl);
  s.set("d", true);
  s.set("e", false);
  s.step();
  EXPECT_FALSE(s.get("q"));  // held
  s.set("e", true);
  s.step();
  EXPECT_TRUE(s.get("q"));
  s.set("d", false);
  s.set("e", false);
  s.step();
  EXPECT_TRUE(s.get("q"));  // held again
}

TEST(Simulator, DffErResetDominatesEnable) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId e = b.input("e");
  const NetId r = b.input("r");
  b.output("q", b.dff_er(d, e, r));
  Simulator s(nl);
  s.set("d", true);
  s.set("e", true);
  s.set("r", false);
  s.step();
  EXPECT_TRUE(s.get("q"));
  s.set("e", false);
  s.set("r", true);  // reset fires even with enable low
  s.step();
  EXPECT_FALSE(s.get("q"));
}

TEST(Simulator, DffEsSetDominatesEnable) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId e = b.input("e");
  const NetId st = b.input("s");
  b.output("q", b.dff_es(d, e, st));
  Simulator s(nl);
  s.set("d", false);
  s.set("e", false);
  s.set("s", true);
  s.step();
  EXPECT_TRUE(s.get("q"));
}

TEST(Simulator, ToggleFlopDividesByTwo) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);
  Simulator s(nl);
  bool expect = false;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(s.get("q"), expect);
    s.step();
    expect = !expect;
  }
}

TEST(Simulator, BusHelpers) {
  Netlist nl;
  NetlistBuilder b(nl);
  const auto in = b.input_bus("d", 4);
  std::vector<NetId> qs;
  for (auto n : in) qs.push_back(b.dff(n));
  b.output_bus("q", qs);
  Simulator s(nl);
  s.set_bus("d", 0b1010);
  s.step();
  EXPECT_EQ(s.get_bus("q"), 0b1010u);
  EXPECT_THROW(s.set_bus("nope", 1), std::invalid_argument);
  EXPECT_THROW((void)s.get_bus("nope"), std::invalid_argument);
}

TEST(Simulator, HotIndexDetectsSingleAndMultiple) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  b.output("sel[0]", a);
  b.output("sel[1]", b.inv(a));
  b.output("sel[2]", kConst0);
  Simulator s(nl);
  s.set("a", true);
  s.eval();
  EXPECT_EQ(s.hot_index("sel"), 0u);
  EXPECT_EQ(s.hot_count("sel"), 1u);

  Netlist nl2;
  NetlistBuilder b2(nl2);
  b2.output("sel[0]", kConst1);
  b2.output("sel[1]", kConst1);
  Simulator s2(nl2);
  s2.eval();
  EXPECT_FALSE(s2.hot_index("sel").has_value());  // two-hot violation
  EXPECT_EQ(s2.hot_count("sel"), 2u);
}

TEST(Simulator, PowerOnResetClearsState) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  b.output("q", b.dff(d));
  Simulator s(nl);
  s.set("d", true);
  s.step();
  EXPECT_TRUE(s.get("q"));
  s.power_on_reset();
  EXPECT_FALSE(s.get("q"));
  EXPECT_EQ(s.cycles(), 0u);
}

TEST(Simulator, ToggleCounting) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);
  Simulator s(nl);
  s.enable_toggle_counting();
  s.run(10);
  EXPECT_EQ(s.toggles()[q], 10u);  // toggles every cycle
}

TEST(Simulator, SetBusRejectsValueWiderThanBus) {
  Netlist nl;
  NetlistBuilder b(nl);
  b.output_bus("q", b.input_bus("d", 4));
  Simulator s(nl);
  s.set_bus("d", 0b1111);  // widest value that fits
  s.eval();
  EXPECT_EQ(s.get_bus("q"), 0b1111u);
  // Bits above the bus width used to be dropped silently.
  EXPECT_THROW(s.set_bus("d", 0b10000), std::invalid_argument);
  try {
    s.set_bus("d", 0x100);
    FAIL() << "expected overflow rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4-bit"), std::string::npos) << e.what();
  }
  // The rejected calls must not have disturbed the bus.
  s.eval();
  EXPECT_EQ(s.get_bus("q"), 0b1111u);
}

TEST(Simulator, PowerOnResetRestartsToggleCounters) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = nl.new_net();
  nl.add_cell(CellType::Dff, {b.inv(q)}, q);
  nl.add_output("q", q);
  Simulator s(nl);
  s.enable_toggle_counting();
  s.run(10);
  EXPECT_EQ(s.toggles()[q], 10u);
  // Counts used to leak across power_on_reset, inflating later estimates.
  s.power_on_reset();
  EXPECT_EQ(s.toggles()[q], 0u);
  s.run(4);
  EXPECT_EQ(s.toggles()[q], 4u);
}

TEST(Simulator, RejectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.new_net();
  const NetId y = nl.new_net();
  nl.add_cell(CellType::Inv, {a}, y);
  nl.add_cell(CellType::Inv, {y}, a);
  EXPECT_THROW(Simulator s(nl), std::invalid_argument);
}

TEST(Simulator, SetInputRejectsNonInput) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.inv(a);
  b.output("y", y);
  Simulator s(nl);
  EXPECT_THROW(s.set_input(y, true), std::invalid_argument);
  EXPECT_THROW(s.set("zz", true), std::invalid_argument);
}

}  // namespace
}  // namespace addm::sim
