// Tests for the SRAdGen emitters: structural Verilog/VHDL shape checks,
// determinism, identifier sanitization and the behavioral SRAG VHDL.
#include <gtest/gtest.h>

#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "netlist/builder.hpp"

namespace addm::codegen {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

Netlist small_design() {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId rst = b.input("rst");
  const NetId x = b.xor2(a, c);
  const NetId q = b.dff_r(x, rst);
  b.output("y[0]", b.mux2(a, x, q));
  b.output("y[1]", b.nand2(q, c));
  return nl;
}

core::SragConfig figure5_config() {
  core::SragConfig cfg;
  cfg.registers = {{5, 1, 4, 0}, {3, 7, 6, 2}};
  cfg.div_count = 2;
  cfg.pass_count = 8;
  cfg.num_select_lines = 8;
  return cfg;
}

TEST(Sanitize, FlattensBusIndices) {
  EXPECT_EQ(sanitize_identifier("sel[3]"), "sel_3");
  EXPECT_EQ(sanitize_identifier("plain"), "plain");
  EXPECT_EQ(sanitize_identifier("a[0][1]"), "a_0_1");
}

TEST(Verilog, ModuleShape) {
  const std::string v = to_verilog(small_design(), "small");
  EXPECT_NE(v.find("module small"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire y_0"), std::string::npos);
  EXPECT_NE(v.find("output wire y_1"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("?"), std::string::npos);   // the mux
  EXPECT_EQ(v.find("y[0]"), std::string::npos);  // no raw bus names leak
}

TEST(Verilog, Deterministic) {
  EXPECT_EQ(to_verilog(small_design(), "m"), to_verilog(small_design(), "m"));
}

TEST(Verilog, EmitsAllDffVariants) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId d = b.input("d");
  const NetId e = b.input("e");
  const NetId r = b.input("r");
  b.output("q0", b.dff(d));
  b.output("q1", b.dff_r(d, r));
  b.output("q2", b.dff_s(d, r));
  b.output("q3", b.dff_e(d, e));
  b.output("q4", b.dff_er(d, e, r));
  b.output("q5", b.dff_es(d, e, r));
  const std::string v = to_verilog(nl, "ffs");
  EXPECT_NE(v.find("<= 1'b0"), std::string::npos);
  EXPECT_NE(v.find("<= 1'b1"), std::string::npos);
  // Six always blocks, one per flop.
  std::size_t count = 0;
  for (std::size_t pos = v.find("always @"); pos != std::string::npos;
       pos = v.find("always @", pos + 1))
    ++count;
  EXPECT_EQ(count, 6u);
}

TEST(Vhdl, EntityShape) {
  const std::string v = to_structural_vhdl(small_design(), "small");
  EXPECT_NE(v.find("entity small is"), std::string::npos);
  EXPECT_NE(v.find("architecture rtl of small"), std::string::npos);
  EXPECT_NE(v.find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("y_0 : out std_logic"), std::string::npos);
  EXPECT_NE(v.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(v.find("end architecture rtl;"), std::string::npos);
}

TEST(Vhdl, Deterministic) {
  EXPECT_EQ(to_structural_vhdl(small_design(), "m"),
            to_structural_vhdl(small_design(), "m"));
}

TEST(Vhdl, StructuralFromElaboratedSrag) {
  const auto nl = core::elaborate_srag(figure5_config());
  const std::string v = to_structural_vhdl(nl, "srag");
  EXPECT_NE(v.find("entity srag is"), std::string::npos);
  EXPECT_NE(v.find("next_i : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("sel_7 : out std_logic"), std::string::npos);
}

TEST(BehavioralVhdl, ContainsArchitectureParameters) {
  const std::string v = srag_to_behavioral_vhdl(figure5_config(), "srag_fig5");
  EXPECT_NE(v.find("entity srag_fig5 is"), std::string::npos);
  // Both shift registers declared with their lengths.
  EXPECT_NE(v.find("signal s0 : std_logic_vector(3 downto 0)"), std::string::npos);
  EXPECT_NE(v.find("signal s1 : std_logic_vector(3 downto 0)"), std::string::npos);
  // DivCnt compares against dC-1, PassCnt against pC-1.
  EXPECT_NE(v.find("div_cnt = 1"), std::string::npos);
  EXPECT_NE(v.find("pass_cnt = 7"), std::string::npos);
  // Token seed after reset.
  EXPECT_NE(v.find("s0(0) <= '1';"), std::string::npos);
  // Select mapping: line 5 is flip-flop (0,0), line 2 is (1,3).
  EXPECT_NE(v.find("sel(5) <= s0(0);"), std::string::npos);
  EXPECT_NE(v.find("sel(2) <= s1(3);"), std::string::npos);
  EXPECT_NE(v.find("-- registers=2 flipflops=8 dC=2 pC=8"), std::string::npos);
}

TEST(BehavioralVhdl, MappedWorkloadEmits) {
  // End-to-end SRAdGen flow: sequence -> mapping -> VHDL.
  const std::vector<std::uint32_t> I{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const auto r = core::map_sequence(I, 4);
  ASSERT_TRUE(r.ok());
  const std::string v = srag_to_behavioral_vhdl(*r.config, "rowgen");
  EXPECT_NE(v.find("entity rowgen is"), std::string::npos);
  EXPECT_NE(v.find("sel   : out std_logic_vector(3 downto 0)"), std::string::npos);
}

TEST(BehavioralVhdl, RejectsInvalidConfig) {
  core::SragConfig bad;
  EXPECT_THROW(srag_to_behavioral_vhdl(bad, "x"), std::invalid_argument);
}

}  // namespace
}  // namespace addm::codegen
