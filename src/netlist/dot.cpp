#include "netlist/dot.hpp"

#include <sstream>

namespace addm::netlist {

std::string to_dot(const Netlist& nl, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    os << "  pi" << nl.inputs()[i] << " [shape=ellipse,label=\"" << nl.input_name(i)
       << "\"];\n";
  for (std::size_t i = 0; i < nl.cells().size(); ++i) {
    const Cell& c = nl.cell(i);
    os << "  c" << i << " [shape=box,label=\"" << cell_name(c.type) << "\"];\n";
  }
  auto src_node = [&](NetId n) -> std::string {
    if (n == kConst0) return "const0";
    if (n == kConst1) return "const1";
    if (nl.is_primary_input(n)) return "pi" + std::to_string(n);
    if (auto d = nl.driver_of(n)) return "c" + std::to_string(*d);
    return "undriven" + std::to_string(n);
  };
  bool used_c0 = false, used_c1 = false;
  for (std::size_t i = 0; i < nl.cells().size(); ++i) {
    for (NetId in : nl.cell(i).inputs) {
      used_c0 |= (in == kConst0);
      used_c1 |= (in == kConst1);
      os << "  " << src_node(in) << " -> c" << i << ";\n";
    }
  }
  if (used_c0) os << "  const0 [shape=plaintext,label=\"0\"];\n";
  if (used_c1) os << "  const1 [shape=plaintext,label=\"1\"];\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    os << "  po" << i << " [shape=ellipse,label=\"" << nl.output_name(i) << "\"];\n";
    os << "  " << src_node(nl.outputs()[i]) << " -> po" << i << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace addm::netlist
