// Cell types for the gate-level netlist substrate.
//
// The cell set mirrors a small 0.18um-class standard-cell library: simple
// combinational gates, a 2:1 mux, and D flip-flop variants with synchronous
// reset/set and clock-enable. All sequential cells share one implicit clock.
#pragma once

#include <cstdint>
#include <string_view>

namespace addm::netlist {

/// Identifier of a net (wire). Net 0 and net 1 are the constant-0 and
/// constant-1 nets and are pre-created in every Netlist.
using NetId = std::uint32_t;

inline constexpr NetId kConst0 = 0;
inline constexpr NetId kConst1 = 1;
inline constexpr NetId kInvalidNet = 0xFFFFFFFFu;

/// Standard-cell types.
///
/// Input-pin conventions (order of Cell::inputs):
///  - Inv/Buf:            {a}
///  - 2-input gates:      {a, b}
///  - Mux2:               {sel, d0, d1}    out = sel ? d1 : d0
///  - Dff:                {d}
///  - DffR:               {d, rst}         rst==1 -> next state 0
///  - DffS:               {d, set}         set==1 -> next state 1
///  - DffE:               {d, en}          en==0  -> hold
///  - DffER:              {d, en, rst}     rst dominant, then enable
///  - DffES:              {d, en, set}     set dominant, then enable
enum class CellType : std::uint8_t {
  Inv,
  Buf,
  Nand2,
  Nor2,
  And2,
  Or2,
  Xor2,
  Xnor2,
  Mux2,
  Dff,
  DffR,
  DffS,
  DffE,
  DffER,
  DffES,
};

inline constexpr int kNumCellTypes = static_cast<int>(CellType::DffES) + 1;

/// Static per-type metadata.
struct CellTraits {
  std::string_view name;  ///< mnemonic, stable across releases (used by codegen)
  int num_inputs;         ///< exact arity of Cell::inputs
  bool sequential;        ///< true for flip-flop variants
  bool commutative;       ///< inputs may be sorted for structural hashing
};

constexpr CellTraits traits(CellType t) {
  switch (t) {
    case CellType::Inv:   return {"INV", 1, false, false};
    case CellType::Buf:   return {"BUF", 1, false, false};
    case CellType::Nand2: return {"NAND2", 2, false, true};
    case CellType::Nor2:  return {"NOR2", 2, false, true};
    case CellType::And2:  return {"AND2", 2, false, true};
    case CellType::Or2:   return {"OR2", 2, false, true};
    case CellType::Xor2:  return {"XOR2", 2, false, true};
    case CellType::Xnor2: return {"XNOR2", 2, false, true};
    case CellType::Mux2:  return {"MUX2", 3, false, false};
    case CellType::Dff:   return {"DFF", 1, true, false};
    case CellType::DffR:  return {"DFFR", 2, true, false};
    case CellType::DffS:  return {"DFFS", 2, true, false};
    case CellType::DffE:  return {"DFFE", 2, true, false};
    case CellType::DffER: return {"DFFER", 3, true, false};
    case CellType::DffES: return {"DFFES", 3, true, false};
  }
  return {"?", 0, false, false};
}

constexpr bool is_sequential(CellType t) { return traits(t).sequential; }
constexpr std::string_view cell_name(CellType t) { return traits(t).name; }

}  // namespace addm::netlist
