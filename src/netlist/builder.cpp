#include "netlist/builder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace addm::netlist {

std::vector<NetId> NetlistBuilder::input_bus(const std::string& name, int bits) {
  std::vector<NetId> nets;
  nets.reserve(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    nets.push_back(input(name + "[" + std::to_string(i) + "]"));
  return nets;
}

void NetlistBuilder::output_bus(const std::string& name, std::span<const NetId> nets) {
  for (std::size_t i = 0; i < nets.size(); ++i)
    output(name + "[" + std::to_string(i) + "]", nets[i]);
}

NetId NetlistBuilder::emit(CellType type, std::vector<NetId> inputs) {
  Key key{type};
  if (traits(type).commutative && inputs.size() == 2 && inputs[0] > inputs[1])
    std::swap(inputs[0], inputs[1]);
  if (!inputs.empty()) key.a = inputs[0];
  if (inputs.size() > 1) key.b = inputs[1];
  if (inputs.size() > 2) key.c = inputs[2];

  const bool cacheable = sharing_ && !is_sequential(type);
  if (cacheable) {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  const NetId out = nl_->new_net();
  nl_->add_cell(type, std::move(inputs), out);
  if (cacheable) cache_.emplace(key, out);
  return out;
}

NetId NetlistBuilder::inv(NetId a) {
  if (a == kConst0) return kConst1;
  if (a == kConst1) return kConst0;
  if (auto it = inv_of_.find(a); it != inv_of_.end()) return it->second;
  const NetId out = emit(CellType::Inv, {a});
  inv_of_.emplace(a, out);
  inv_of_.emplace(out, a);
  return out;
}

NetId NetlistBuilder::buf(NetId a) {
  // Buffers are only inserted explicitly (fanout repair); never folded here.
  return emit(CellType::Buf, {a});
}

NetId NetlistBuilder::and2(NetId a, NetId b) {
  if (a == kConst0 || b == kConst0) return kConst0;
  if (a == kConst1) return b;
  if (b == kConst1) return a;
  if (a == b) return a;
  if (auto it = inv_of_.find(a); it != inv_of_.end() && it->second == b) return kConst0;
  return emit(CellType::And2, {a, b});
}

NetId NetlistBuilder::or2(NetId a, NetId b) {
  if (a == kConst1 || b == kConst1) return kConst1;
  if (a == kConst0) return b;
  if (b == kConst0) return a;
  if (a == b) return a;
  if (auto it = inv_of_.find(a); it != inv_of_.end() && it->second == b) return kConst1;
  return emit(CellType::Or2, {a, b});
}

NetId NetlistBuilder::nand2(NetId a, NetId b) {
  if (a == kConst0 || b == kConst0) return kConst1;
  if (a == kConst1) return inv(b);
  if (b == kConst1) return inv(a);
  if (a == b) return inv(a);
  return emit(CellType::Nand2, {a, b});
}

NetId NetlistBuilder::nor2(NetId a, NetId b) {
  if (a == kConst1 || b == kConst1) return kConst0;
  if (a == kConst0) return inv(b);
  if (b == kConst0) return inv(a);
  if (a == b) return inv(a);
  return emit(CellType::Nor2, {a, b});
}

NetId NetlistBuilder::xor2(NetId a, NetId b) {
  if (a == b) return kConst0;
  if (a == kConst0) return b;
  if (b == kConst0) return a;
  if (a == kConst1) return inv(b);
  if (b == kConst1) return inv(a);
  if (auto it = inv_of_.find(a); it != inv_of_.end() && it->second == b) return kConst1;
  return emit(CellType::Xor2, {a, b});
}

NetId NetlistBuilder::xnor2(NetId a, NetId b) {
  if (a == b) return kConst1;
  if (a == kConst0) return inv(b);
  if (b == kConst0) return inv(a);
  if (a == kConst1) return b;
  if (b == kConst1) return a;
  if (auto it = inv_of_.find(a); it != inv_of_.end() && it->second == b) return kConst0;
  return emit(CellType::Xnor2, {a, b});
}

NetId NetlistBuilder::mux2(NetId sel, NetId d0, NetId d1) {
  if (sel == kConst0) return d0;
  if (sel == kConst1) return d1;
  if (d0 == d1) return d0;
  if (d0 == kConst0 && d1 == kConst1) return sel;
  if (d0 == kConst1 && d1 == kConst0) return inv(sel);
  if (d0 == kConst0) return and2(sel, d1);
  if (d0 == kConst1) return or2(inv(sel), d1);
  if (d1 == kConst0) return and2(inv(sel), d0);
  if (d1 == kConst1) return or2(sel, d0);
  return emit(CellType::Mux2, {sel, d0, d1});
}

NetId NetlistBuilder::dff(NetId d) { return emit(CellType::Dff, {d}); }
NetId NetlistBuilder::dff_r(NetId d, NetId rst) { return emit(CellType::DffR, {d, rst}); }
NetId NetlistBuilder::dff_s(NetId d, NetId set) { return emit(CellType::DffS, {d, set}); }
NetId NetlistBuilder::dff_e(NetId d, NetId en) { return emit(CellType::DffE, {d, en}); }
NetId NetlistBuilder::dff_er(NetId d, NetId en, NetId rst) {
  return emit(CellType::DffER, {d, en, rst});
}
NetId NetlistBuilder::dff_es(NetId d, NetId en, NetId set) {
  return emit(CellType::DffES, {d, en, set});
}

NetId NetlistBuilder::reduce_tree(CellType op, std::span<const NetId> xs, NetId identity) {
  if (xs.empty()) return identity;
  std::vector<NetId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      switch (op) {
        case CellType::And2: next.push_back(and2(level[i], level[i + 1])); break;
        case CellType::Or2:  next.push_back(or2(level[i], level[i + 1])); break;
        case CellType::Xor2: next.push_back(xor2(level[i], level[i + 1])); break;
        default: throw std::logic_error("reduce_tree: unsupported op");
      }
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

NetId NetlistBuilder::and_tree(std::span<const NetId> xs) {
  return reduce_tree(CellType::And2, xs, kConst1);
}
NetId NetlistBuilder::or_tree(std::span<const NetId> xs) {
  return reduce_tree(CellType::Or2, xs, kConst0);
}
NetId NetlistBuilder::xor_tree(std::span<const NetId> xs) {
  return reduce_tree(CellType::Xor2, xs, kConst0);
}

std::vector<NetId> NetlistBuilder::constant_word(std::uint64_t value, int bits) const {
  std::vector<NetId> word(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) word[static_cast<std::size_t>(i)] = (value >> i) & 1 ? kConst1 : kConst0;
  return word;
}

std::vector<NetId> NetlistBuilder::mux2_word(NetId sel, std::span<const NetId> d0,
                                             std::span<const NetId> d1) {
  assert(d0.size() == d1.size());
  std::vector<NetId> out(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i) out[i] = mux2(sel, d0[i], d1[i]);
  return out;
}

NetId NetlistBuilder::equals_const(std::span<const NetId> word, std::uint64_t value) {
  std::vector<NetId> lits;
  lits.reserve(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    lits.push_back((value >> i) & 1 ? word[i] : inv(word[i]));
  return and_tree(lits);
}

}  // namespace addm::netlist
