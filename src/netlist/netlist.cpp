#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace addm::netlist {
namespace {
// driver_ encoding per net.
constexpr NetId kDrvNone = 0;
constexpr NetId kDrvPrimaryInput = 1;
constexpr NetId kDrvConst = 2;
constexpr NetId kDrvCellBase = 3;  // cell index i stored as i + kDrvCellBase
}  // namespace

Netlist::Netlist() {
  // Nets 0 and 1 are the constant nets.
  num_nets_ = 2;
  driver_ = {kDrvConst, kDrvConst};
}

NetId Netlist::new_net() {
  driver_.push_back(kDrvNone);
  return static_cast<NetId>(num_nets_++);
}

NetId Netlist::add_input(std::string name) {
  const NetId n = new_net();
  driver_[n] = kDrvPrimaryInput;
  input_nets_.push_back(n);
  input_names_.push_back(std::move(name));
  return n;
}

void Netlist::bind_input(std::string name, NetId net) {
  if (net >= num_nets_) throw std::out_of_range("bind_input: unknown net");
  if (net == kConst0 || net == kConst1)
    throw std::invalid_argument("bind_input: cannot bind a constant net");
  if (driver_[net] != kDrvNone)
    throw std::invalid_argument("bind_input: net already driven");
  driver_[net] = kDrvPrimaryInput;
  input_nets_.push_back(net);
  input_names_.push_back(std::move(name));
}

void Netlist::add_output(std::string name, NetId net) {
  if (net >= num_nets_) throw std::out_of_range("add_output: unknown net");
  output_nets_.push_back(net);
  output_names_.push_back(std::move(name));
}

std::size_t Netlist::add_cell(CellType type, std::vector<NetId> inputs, NetId output) {
  const CellTraits t = traits(type);
  if (static_cast<int>(inputs.size()) != t.num_inputs)
    throw std::invalid_argument("add_cell: arity mismatch for " + std::string(t.name));
  for (NetId in : inputs)
    if (in >= num_nets_) throw std::out_of_range("add_cell: unknown input net");
  if (output >= num_nets_) throw std::out_of_range("add_cell: unknown output net");
  const std::size_t idx = cells_.size();
  cells_.push_back(Cell{type, std::move(inputs), output});
  // Record the driver; duplicates are reported by validate() rather than
  // thrown here so that analysis tools can inspect malformed netlists.
  if (driver_[output] == kDrvNone)
    driver_[output] = static_cast<NetId>(idx) + kDrvCellBase;
  return idx;
}

void Netlist::set_cell_input(std::size_t cell, int pin, NetId net) {
  if (cell >= cells_.size()) throw std::out_of_range("set_cell_input: bad cell");
  if (pin < 0 || static_cast<std::size_t>(pin) >= cells_[cell].inputs.size())
    throw std::out_of_range("set_cell_input: bad pin");
  if (net >= num_nets_) throw std::out_of_range("set_cell_input: unknown net");
  cells_[cell].inputs[static_cast<std::size_t>(pin)] = net;
}

void Netlist::set_cell_drive(std::size_t cell, int drive) {
  if (cell >= cells_.size()) throw std::out_of_range("set_cell_drive: bad cell");
  if (drive != 1 && drive != 2 && drive != 4)
    throw std::invalid_argument("set_cell_drive: drive must be 1, 2 or 4");
  cells_[cell].drive = static_cast<std::uint8_t>(drive);
}

void Netlist::set_output_net(std::size_t index, NetId net) {
  if (index >= output_nets_.size()) throw std::out_of_range("set_output_net: bad index");
  if (net >= num_nets_) throw std::out_of_range("set_output_net: unknown net");
  output_nets_[index] = net;
}

std::optional<NetId> Netlist::find_input(std::string_view name) const {
  for (std::size_t i = 0; i < input_names_.size(); ++i)
    if (input_names_[i] == name) return input_nets_[i];
  return std::nullopt;
}

std::optional<NetId> Netlist::find_output(std::string_view name) const {
  for (std::size_t i = 0; i < output_names_.size(); ++i)
    if (output_names_[i] == name) return output_nets_[i];
  return std::nullopt;
}

std::optional<std::size_t> Netlist::driver_of(NetId net) const {
  if (net >= num_nets_) return std::nullopt;
  const NetId d = driver_[net];
  if (d >= kDrvCellBase) return d - kDrvCellBase;
  return std::nullopt;
}

bool Netlist::is_primary_input(NetId net) const {
  return net < num_nets_ && driver_[net] == kDrvPrimaryInput;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_nets = num_nets_;
  s.num_cells = cells_.size();
  for (const Cell& c : cells_) {
    ++s.count[static_cast<int>(c.type)];
    if (is_sequential(c.type))
      ++s.num_seq;
    else
      ++s.num_comb;
  }
  return s;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> fo(num_nets_, 0);
  for (const Cell& c : cells_)
    for (NetId in : c.inputs) ++fo[in];
  for (NetId out : output_nets_) ++fo[out];
  return fo;
}

std::optional<std::vector<std::size_t>> Netlist::topo_order() const {
  // Kahn's algorithm over combinational cells only. A combinational cell
  // depends on another combinational cell when it reads its output net;
  // flip-flop outputs, PIs and constants are sources.
  std::vector<std::size_t> order;
  order.reserve(cells_.size());

  std::vector<std::uint32_t> pending(cells_.size(), 0);
  // users[cell] = combinational cells reading this cell's output.
  std::vector<std::vector<std::size_t>> users(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (is_sequential(c.type)) continue;
    for (NetId in : c.inputs) {
      const auto drv = driver_of(in);
      if (drv && !is_sequential(cells_[*drv].type)) {
        users[*drv].push_back(i);
        ++pending[i];
      }
    }
  }

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (!is_sequential(cells_[i].type) && pending[i] == 0) ready.push_back(i);

  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    order.push_back(i);
    for (std::size_t u : users[i])
      if (--pending[u] == 0) ready.push_back(u);
  }

  std::size_t num_comb = 0;
  for (const Cell& c : cells_)
    if (!is_sequential(c.type)) ++num_comb;
  if (order.size() != num_comb) return std::nullopt;  // combinational loop
  return order;
}

std::size_t Netlist::sweep_dead_cells() {
  // Mark nets reachable backwards from primary outputs.
  std::vector<char> live_net(num_nets_, 0);
  std::vector<NetId> work;
  auto mark = [&](NetId n) {
    if (!live_net[n]) {
      live_net[n] = 1;
      work.push_back(n);
    }
  };
  for (NetId out : output_nets_) mark(out);
  while (!work.empty()) {
    const NetId n = work.back();
    work.pop_back();
    const auto drv = driver_of(n);
    if (!drv) continue;
    for (NetId in : cells_[*drv].inputs) mark(in);
  }

  std::vector<Cell> kept;
  kept.reserve(cells_.size());
  std::size_t removed = 0;
  for (Cell& c : cells_) {
    if (live_net[c.output]) {
      kept.push_back(std::move(c));
    } else {
      driver_[c.output] = kDrvNone;
      ++removed;
    }
  }
  cells_ = std::move(kept);
  // Re-number the surviving drivers.
  for (std::size_t i = 0; i < cells_.size(); ++i)
    driver_[cells_[i].output] = static_cast<NetId>(i) + kDrvCellBase;
  return removed;
}

std::vector<ValidationIssue> Netlist::validate() const {
  std::vector<ValidationIssue> issues;
  auto report = [&](ValidationIssue::Kind k, std::string detail) {
    issues.push_back(ValidationIssue{k, std::move(detail)});
  };

  // Recompute drivers to catch multiple-driver conflicts that add_cell saw.
  std::vector<int> drivers(num_nets_, 0);
  drivers[kConst0] = drivers[kConst1] = 1;
  for (NetId n : input_nets_) ++drivers[n];
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (static_cast<int>(c.inputs.size()) != traits(c.type).num_inputs)
      report(ValidationIssue::Kind::BadArity,
             "cell " + std::to_string(i) + " (" + std::string(cell_name(c.type)) + ")");
    if (c.output == kConst0 || c.output == kConst1)
      report(ValidationIssue::Kind::ConstantDriven, "cell " + std::to_string(i));
    ++drivers[c.output];
  }
  for (NetId n = 0; n < num_nets_; ++n) {
    if (drivers[n] > 1)
      report(ValidationIssue::Kind::MultipleDrivers, "net " + std::to_string(n));
  }

  auto check_read = [&](NetId n, const std::string& where) {
    if (drivers[n] == 0)
      report(ValidationIssue::Kind::UndrivenNet, "net " + std::to_string(n) + " read by " + where);
  };
  for (std::size_t i = 0; i < cells_.size(); ++i)
    for (NetId in : cells_[i].inputs) check_read(in, "cell " + std::to_string(i));
  for (std::size_t i = 0; i < output_nets_.size(); ++i)
    check_read(output_nets_[i], "output " + output_names_[i]);

  if (!topo_order())
    report(ValidationIssue::Kind::CombinationalLoop, "combinational cycle detected");
  return issues;
}

}  // namespace addm::netlist
