// Netlist: a flat gate-level circuit over the cell set in cell.hpp.
//
// A Netlist owns nets and cell instances. Nets are dense integer ids; nets 0
// and 1 are the constant-0/1 nets. Primary inputs and outputs carry names so
// code generators and testbenches can address them symbolically. All
// flip-flops are clocked by one implicit global clock.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"

namespace addm::netlist {

/// One cell instance. `inputs.size()` always equals traits(type).num_inputs.
struct Cell {
  CellType type;
  std::vector<NetId> inputs;
  NetId output = kInvalidNet;
  /// Drive strength (X1/X2/X4). Functionally irrelevant; the technology
  /// layer scales area up and output load sensitivity down with it.
  std::uint8_t drive = 1;
};

/// Per-cell-type instance counts plus totals; produced by Netlist::stats().
struct NetlistStats {
  std::size_t count[kNumCellTypes] = {};
  std::size_t num_cells = 0;
  std::size_t num_seq = 0;
  std::size_t num_comb = 0;
  std::size_t num_nets = 0;

  std::size_t of(CellType t) const { return count[static_cast<int>(t)]; }
};

/// Problems detected by Netlist::validate().
struct ValidationIssue {
  enum class Kind {
    UndrivenNet,        ///< a cell input or PO reads a net nothing drives
    MultipleDrivers,    ///< two drivers (cells/PIs) on one net
    CombinationalLoop,  ///< cycle through combinational cells
    BadArity,           ///< cell input count does not match its type
    ConstantDriven,     ///< a cell drives the constant-0/1 net
  };
  Kind kind;
  std::string detail;
};

class Netlist {
 public:
  Netlist();

  // --- construction (normally via NetlistBuilder) -------------------------
  NetId new_net();
  /// Creates a named primary input and returns its net.
  NetId add_input(std::string name);
  /// Marks an existing, undriven net as a named primary input (used by the
  /// netlist reader, which pre-creates all nets).
  void bind_input(std::string name, NetId net);
  /// Marks an existing net as a named primary output.
  void add_output(std::string name, NetId net);
  /// Adds a cell; inputs must match the arity of `type`. Returns cell index.
  std::size_t add_cell(CellType type, std::vector<NetId> inputs, NetId output);

  /// Rewires one input pin of an existing cell (used by netlist transforms
  /// such as buffer-tree insertion).
  void set_cell_input(std::size_t cell, int pin, NetId net);
  /// Sets a cell's drive strength; must be 1, 2 or 4.
  void set_cell_drive(std::size_t cell, int drive);
  /// Re-binds a primary output to a different net.
  void set_output_net(std::size_t index, NetId net);

  // --- access --------------------------------------------------------------
  std::size_t num_nets() const { return num_nets_; }
  std::span<const Cell> cells() const { return cells_; }
  const Cell& cell(std::size_t i) const { return cells_[i]; }

  std::span<const NetId> inputs() const { return input_nets_; }
  std::span<const NetId> outputs() const { return output_nets_; }
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }
  /// Net of the primary input/output with the given name, if any.
  std::optional<NetId> find_input(std::string_view name) const;
  std::optional<NetId> find_output(std::string_view name) const;

  /// Index of the cell driving `net`, if a cell drives it.
  std::optional<std::size_t> driver_of(NetId net) const;
  bool is_primary_input(NetId net) const;

  // --- analysis -------------------------------------------------------------
  NetlistStats stats() const;

  /// Number of cell-input pins plus primary-output bindings reading each net.
  std::vector<std::uint32_t> fanout_counts() const;

  /// Indices of combinational cells in dependency order (inputs before
  /// users). Sequential cell outputs and PIs are sources. Empty optional if a
  /// combinational loop exists.
  std::optional<std::vector<std::size_t>> topo_order() const;

  /// Full structural check; empty result means the netlist is well-formed.
  std::vector<ValidationIssue> validate() const;

  /// Removes cells whose outputs cannot reach any primary output (directly
  /// or through other cells). Returns the number of cells removed. Net ids
  /// are preserved (removed cells simply leave their output nets undriven
  /// and unread). Mirrors the dead-logic sweep of a synthesis flow.
  std::size_t sweep_dead_cells();

 private:
  std::size_t num_nets_ = 0;
  std::vector<Cell> cells_;
  std::vector<NetId> driver_;  // per net: cell index + 2, 1 for PI, 0 for none
  std::vector<NetId> input_nets_;
  std::vector<std::string> input_names_;
  std::vector<NetId> output_nets_;
  std::vector<std::string> output_names_;
};

}  // namespace addm::netlist
