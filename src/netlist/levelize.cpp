#include "netlist/levelize.hpp"

#include <algorithm>

namespace addm::netlist {

std::size_t Levelization::max_net_level() const {
  std::uint32_t m = 0;
  for (std::uint32_t l : net_level) m = std::max(m, l);
  return m;
}

std::optional<Levelization> levelize(const Netlist& nl) {
  const auto order = nl.topo_order();
  if (!order) return std::nullopt;

  Levelization lev;
  lev.net_level.assign(nl.num_nets(), 0);

  auto flat_op = [](const Cell& c) {
    FlatOp op;
    op.type = c.type;
    for (int p = 0; p < 3; ++p)
      op.in[p] = p < static_cast<int>(c.inputs.size()) ? c.inputs[p] : kConst0;
    op.out = c.output;
    return op;
  };

  // Net levels: topo order guarantees every input of a combinational cell is
  // final when the cell is visited.  Sequential outputs stay at level 0.
  std::uint32_t max_level = 0;
  for (std::size_t ci : *order) {
    const Cell& c = nl.cell(ci);
    std::uint32_t l = 0;
    for (NetId in : c.inputs) l = std::max(l, lev.net_level[in]);
    lev.net_level[c.output] = l + 1;
    max_level = std::max(max_level, l + 1);
  }

  // Bucket combinational cells by their output level, then lay the buckets
  // out level-major.  Cell-index order within a bucket (not topo-visit
  // order, which depends on Kahn's ready-stack schedule) keeps the stream a
  // pure function of the netlist.
  std::vector<std::vector<std::size_t>> buckets(max_level);
  for (std::size_t ci : *order)
    buckets[lev.net_level[nl.cell(ci).output] - 1].push_back(ci);

  lev.comb.reserve(order->size());
  lev.level_begin.reserve(max_level + 1);
  lev.level_begin.push_back(0);
  for (std::vector<std::size_t>& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end());
    for (std::size_t ci : bucket) lev.comb.push_back(flat_op(nl.cell(ci)));
    lev.level_begin.push_back(lev.comb.size());
  }

  for (std::size_t ci = 0; ci < nl.cells().size(); ++ci)
    if (is_sequential(nl.cell(ci).type)) lev.seq.push_back(flat_op(nl.cell(ci)));

  return lev;
}

}  // namespace addm::netlist
