// Text serialization for netlists.
//
// A simple line-oriented format ('#' comments), stable across releases, for
// exchanging netlists between tools and for golden-file testing:
//
//   netlist v1
//   nets <count>
//   input <net> <name>
//   output <net> <name>
//   cell <TYPE> [xDRIVE] -> <out> <in0> [in1 [in2]]
//
// Net ids are preserved exactly (including the constant nets 0/1), so a
// round trip reproduces the netlist verbatim.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace addm::netlist {

void write_netlist(std::ostream& out, const Netlist& nl);
std::string write_netlist_string(const Netlist& nl);

/// Throws std::invalid_argument with a line-numbered message on malformed
/// input (unknown cell type, bad arity, undeclared nets, ...).
Netlist read_netlist(std::istream& in);
Netlist read_netlist_string(const std::string& text);

}  // namespace addm::netlist
