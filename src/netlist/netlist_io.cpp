#include "netlist/netlist_io.hpp"

#include <sstream>
#include <stdexcept>

namespace addm::netlist {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("netlist parse error at line " + std::to_string(line) +
                              ": " + what);
}

CellType type_from_name(const std::string& name, std::size_t line) {
  for (int t = 0; t < kNumCellTypes; ++t) {
    const auto ct = static_cast<CellType>(t);
    if (cell_name(ct) == name) return ct;
  }
  fail(line, "unknown cell type '" + name + "'");
}

}  // namespace

void write_netlist(std::ostream& out, const Netlist& nl) {
  out << "netlist v1\n";
  out << "nets " << nl.num_nets() << "\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    out << "input " << nl.inputs()[i] << " " << nl.input_name(i) << "\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    out << "output " << nl.outputs()[i] << " " << nl.output_name(i) << "\n";
  for (const Cell& c : nl.cells()) {
    out << "cell " << cell_name(c.type);
    if (c.drive != 1) out << " x" << static_cast<int>(c.drive);
    out << " -> " << c.output;
    for (NetId in : c.inputs) out << " " << in;
    out << "\n";
  }
}

std::string write_netlist_string(const Netlist& nl) {
  std::ostringstream os;
  write_netlist(os, nl);
  return os.str();
}

Netlist read_netlist(std::istream& in) {
  Netlist nl;
  std::size_t declared_nets = 0;
  bool have_header = false, have_nets = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;

    if (tok == "netlist") {
      std::string version;
      if (!(ls >> version) || version != "v1") fail(line_no, "unsupported version");
      have_header = true;
      continue;
    }
    if (!have_header) fail(line_no, "missing 'netlist v1' header");

    if (tok == "nets") {
      if (!(ls >> declared_nets) || declared_nets < 2) fail(line_no, "bad net count");
      while (nl.num_nets() < declared_nets) nl.new_net();
      have_nets = true;
      continue;
    }
    if (!have_nets) fail(line_no, "missing 'nets' declaration");

    if (tok == "input" || tok == "output") {
      NetId net;
      std::string name;
      if (!(ls >> net >> name)) fail(line_no, "expected '<net> <name>'");
      if (net >= declared_nets) fail(line_no, "net out of range");
      if (tok == "input") {
        try {
          nl.bind_input(name, net);
        } catch (const std::exception& e) {
          fail(line_no, e.what());
        }
      } else {
        nl.add_output(name, net);
      }
      continue;
    }
    if (tok == "cell") {
      std::string type_name;
      if (!(ls >> type_name)) fail(line_no, "missing cell type");
      const CellType type = type_from_name(type_name, line_no);
      std::string next_tok;
      if (!(ls >> next_tok)) fail(line_no, "truncated cell line");
      int drive = 1;
      if (next_tok.size() == 2 && next_tok[0] == 'x') {
        drive = next_tok[1] - '0';
        if (!(ls >> next_tok)) fail(line_no, "truncated cell line");
      }
      if (next_tok != "->") fail(line_no, "expected '->'");
      NetId out_net;
      if (!(ls >> out_net)) fail(line_no, "missing output net");
      std::vector<NetId> inputs;
      NetId in_net;
      while (ls >> in_net) {
        if (in_net >= declared_nets) fail(line_no, "input net out of range");
        inputs.push_back(in_net);
      }
      if (out_net >= declared_nets) fail(line_no, "output net out of range");
      try {
        const std::size_t idx = nl.add_cell(type, std::move(inputs), out_net);
        if (drive != 1) nl.set_cell_drive(idx, drive);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
      continue;
    }
    fail(line_no, "unknown directive '" + tok + "'");
  }
  if (!have_header) throw std::invalid_argument("netlist parse error: empty input");
  return nl;
}

Netlist read_netlist_string(const std::string& text) {
  std::istringstream in(text);
  return read_netlist(in);
}

}  // namespace addm::netlist
