// Graphviz DOT export for small netlists (documentation and debugging).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace addm::netlist {

/// Renders the netlist as a DOT digraph. Cells become boxes labelled with
/// their type; primary inputs/outputs become ellipses labelled with their
/// port names. Intended for small circuits (examples, docs).
std::string to_dot(const Netlist& nl, const std::string& graph_name = "netlist");

}  // namespace addm::netlist
