// NetlistBuilder: convenience layer for constructing well-formed netlists.
//
// The builder provides one method per cell type plus word-level helpers
// (balanced gate trees, constants). By default it performs:
//  * constant folding   (AND2(x,0) -> const0, MUX2(s,d,d) -> d, ...)
//  * structural hashing (identical (type, inputs) tuples share one cell)
//  * inverter pairing   (INV(INV(x)) -> x, AND2(x, INV(x)) -> const0)
//
// Structural hashing can be disabled (`set_sharing(false)`) to model a
// sharing-free "flat" synthesis style; this is the knob behind the
// bench_ablation_sharing experiment.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace addm::netlist {

class NetlistBuilder {
 public:
  /// The builder mutates `nl`, which must outlive it.
  explicit NetlistBuilder(Netlist& nl) : nl_(&nl) {}

  Netlist& netlist() { return *nl_; }
  const Netlist& netlist() const { return *nl_; }

  /// Enables/disables structural hashing (constant folding always applies).
  void set_sharing(bool on) { sharing_ = on; }
  bool sharing() const { return sharing_; }

  // --- ports ---------------------------------------------------------------
  NetId input(std::string name) { return nl_->add_input(std::move(name)); }
  /// Declares one input per bit; names are "<name>[i]", LSB first.
  std::vector<NetId> input_bus(const std::string& name, int bits);
  void output(std::string name, NetId n) { nl_->add_output(std::move(name), n); }
  void output_bus(const std::string& name, std::span<const NetId> nets);

  // --- combinational primitives ---------------------------------------------
  NetId inv(NetId a);
  NetId buf(NetId a);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  /// out = sel ? d1 : d0
  NetId mux2(NetId sel, NetId d0, NetId d1);

  // --- sequential primitives -------------------------------------------------
  NetId dff(NetId d);
  NetId dff_r(NetId d, NetId rst);            ///< rst==1: next state 0
  NetId dff_s(NetId d, NetId set);            ///< set==1: next state 1
  NetId dff_e(NetId d, NetId en);             ///< en==0: hold
  NetId dff_er(NetId d, NetId en, NetId rst); ///< reset dominant over enable
  NetId dff_es(NetId d, NetId en, NetId set); ///< set dominant over enable

  // --- word-level helpers -----------------------------------------------------
  /// Balanced reduction trees; empty spans yield the operation's identity.
  NetId and_tree(std::span<const NetId> xs);
  NetId or_tree(std::span<const NetId> xs);
  NetId xor_tree(std::span<const NetId> xs);

  /// Constant word, LSB first.
  std::vector<NetId> constant_word(std::uint64_t value, int bits) const;

  /// out = sel ? d1 : d0, element-wise (d0.size()==d1.size()).
  std::vector<NetId> mux2_word(NetId sel, std::span<const NetId> d0,
                               std::span<const NetId> d1);

  /// 1 iff word equals the constant `value` (LSB-first word).
  NetId equals_const(std::span<const NetId> word, std::uint64_t value);

 private:
  NetId emit(CellType type, std::vector<NetId> inputs);
  NetId reduce_tree(CellType op, std::span<const NetId> xs, NetId identity);

  struct Key {
    CellType type;
    NetId a = kInvalidNet, b = kInvalidNet, c = kInvalidNet;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = static_cast<std::size_t>(k.type);
      auto mix = [&h](NetId n) { h = h * 1000003u + n + 0x9e3779b9u; };
      mix(k.a); mix(k.b); mix(k.c);
      return h;
    }
  };

  Netlist* nl_;
  bool sharing_ = true;
  std::unordered_map<Key, NetId, KeyHash> cache_;
  std::unordered_map<NetId, NetId> inv_of_;  // both directions, for pairing
};

}  // namespace addm::netlist
