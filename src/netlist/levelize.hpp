// Levelization: assigns every net a combinational depth and flattens the
// netlist into a compact, cache-friendly instruction stream.
//
// Level 0 holds the evaluation sources — constants, primary inputs and
// flip-flop outputs; a combinational cell's output sits one level above the
// deepest of its inputs.  Grouping the flat ops level-major (and, within a
// level, in cell-index order) makes the encoding deterministic and gives a
// word-parallel evaluator a single linear pass with no pointer chasing:
// every op reads nets whose values are already final.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"

namespace addm::netlist {

/// One flat instruction: `out = type(in[0..arity))`.  Unused input slots are
/// tied to kConst0 so an evaluator may load all three unconditionally.
struct FlatOp {
  CellType type;
  NetId in[3];
  NetId out;
};

/// The levelized form of a netlist.  Pure data: building it never mutates
/// the source netlist, and equal netlists levelize identically.
struct Levelization {
  /// Combinational ops, level-major; within a level, in cell-index order.
  std::vector<FlatOp> comb;
  /// comb[level_begin[l] .. level_begin[l+1]) are the ops of level l+1
  /// (level 0 has no ops — it is the sources).  Size num_levels()+1.
  std::vector<std::size_t> level_begin;
  /// Flip-flop ops in cell-index order; `in` uses the cell.hpp pin
  /// conventions ({d}, {d,rst}, {d,en,rst}, ...), `out` is the Q net.
  std::vector<FlatOp> seq;
  /// Per-net combinational depth (sources at 0), indexed by NetId.
  std::vector<std::uint32_t> net_level;

  std::size_t num_levels() const {
    return level_begin.empty() ? 0 : level_begin.size() - 1;
  }
  std::size_t max_net_level() const;
};

/// Levelizes `nl`.  Empty optional if the netlist has a combinational loop
/// (the same condition under which Netlist::topo_order fails).
std::optional<Levelization> levelize(const Netlist& nl);

}  // namespace addm::netlist
