// Request execution for the addm_serve daemon: one ExploreService owns the
// process-wide warm state — a BatchExplorer whose in-memory memo table is
// shared by every request — and the cache-directory lifecycle.
//
// Determinism contract: explore() produces a report body byte-identical to
// the offline `addm_explore` run with the same inputs and options.  That
// holds because the service reuses the exact CLI building blocks — the same
// suite constructor, the same suite-then-files list order, the same
// file-stem naming rule, the same BatchExplorer and report renderers — and
// because the BatchExplorer contract already guarantees reports independent
// of cache warmth and thread counts.  tests/serve_smoke.sh byte-compares
// the two paths in CI.
//
// Cache lifecycle: the explorer runs in deferred-flush mode, so request
// threads never write the cache directory — newly computed entries and
// warm-start hit counts accumulate in memory until the flush policy
// (`flush_entries`), an admin `flush`, or shutdown persists them through
// the single serialized writer.  Admin maintenance (compact/prune) takes
// the same maintenance mutex and flushes first, so the eval-cache rule
// "compact/prune assume no concurrent writer" holds inside a daemon that
// is concurrently *reading* the directory (readers tolerate rewrites by
// contract: a deleted or rewritten entry degrades to a miss, never a wrong
// hit — tests/cache_concurrency_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "core/batch_explorer.hpp"
#include "serve/protocol.hpp"

namespace addm::serve {

/// Daemon-side execution knobs (the request protocol carries none of
/// these: scheduling and cache lifecycle belong to the operator).
struct ServiceOptions {
  /// Total worker-thread budget per request run (0 = hardware).  Each
  /// concurrent request builds its pool against this budget, so the
  /// operator bounds oversubscription via the server's request threads.
  std::size_t threads = 0;
  /// Persistent evaluation cache directory; empty = memo table only.
  std::string cache_dir;
  /// On-disk payload-byte budget enforced after each flush (0 = none).
  std::uint64_t cache_budget_bytes = 0;
  /// Flush to disk once this many entries are pending (0 = only on admin
  /// flush / shutdown; 1 = after every request that computed something).
  std::size_t flush_entries = 16;
};

/// The daemon's brain: protocol-level requests in, report bytes out.
/// Thread-safe: explore() may run concurrently with itself and with
/// admin(); see the serialization story above.
class ExploreService {
 public:
  explicit ExploreService(ServiceOptions opt);

  /// Outcome of one explore request.  On !ok, `error` explains and the
  /// other fields are empty.
  struct ExploreOutcome {
    bool ok = false;
    ErrorInfo error;
    std::string report;      ///< full report body (CSV or JSON)
    ExploreSummary summary;  ///< out-of-band counters for the kDone frame
  };
  ExploreOutcome explore(const ExploreRequest& req);

  /// Outcome of one admin command.  `shutdown` asks the server to begin
  /// its drain after replying.
  struct AdminOutcome {
    bool ok = false;
    ErrorInfo error;
    std::string output;  ///< human/machine text for the kAdminDone payload
    bool shutdown = false;
  };
  /// Commands: "stats", "compact", "prune MAX_ENTRIES MAX_BYTES" (0 =
  /// unlimited, at least one non-zero), "flush", "shutdown".
  AdminOutcome admin(std::string_view command);

  /// Persists all pending cache state (shutdown path and admin "flush").
  core::BatchExplorer::FlushStats flush();

  /// Requests served so far (explore + admin + ping, successful or not) —
  /// the server's --max-requests counter.
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Answers a ping: counts toward --max-requests like every other
  /// answered protocol interaction, and returns the banner.
  const char* ping() {
    requests_.fetch_add(1, std::memory_order_relaxed);
    return banner();
  }

  const ServiceOptions& options() const { return opt_; }
  const char* banner() const { return "addm_serve protocol 1"; }

 private:
  ServiceOptions opt_;
  core::BatchExplorer explorer_;
  /// Serializes flush-vs-maintenance so compact/prune never observe a
  /// concurrent writer (request threads only ever queue in memory).
  std::mutex maintenance_mu_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace addm::serve
