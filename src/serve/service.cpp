#include "serve/service.hpp"

#include <exception>
#include <filesystem>
#include <utility>
#include <vector>

#include "core/eval_cache.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

namespace addm::serve {

namespace {

core::BatchOptions batch_options(const ServiceOptions& s) {
  core::BatchOptions b;
  b.threads = s.threads;
  b.memoize = true;
  b.cache_dir = s.cache_dir;
  b.cache_budget_bytes = s.cache_budget_bytes;
  b.defer_disk_flush = true;
  return b;
}

// Strict non-negative decimal, mirroring the protocol's parser (the admin
// grammar is part of the wire protocol too).
bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

std::string maintenance_summary(const core::EvalCacheDir::MaintenanceStats& m) {
  std::string out;
  out += std::to_string(m.kept) + " kept (" + std::to_string(m.bytes_kept) +
         " bytes), " + std::to_string(m.dropped) + " dropped, " +
         std::to_string(m.adopted) + " adopted, " + std::to_string(m.evicted) +
         " evicted, " + std::to_string(m.files_removed) + " files removed\n";
  return out;
}

}  // namespace

ExploreService::ExploreService(ServiceOptions opt)
    : opt_(std::move(opt)), explorer_(batch_options(opt_)) {}

ExploreService::ExploreOutcome ExploreService::explore(
    const ExploreRequest& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ExploreOutcome out;

  core::ExploreOptions explore_opt;
  if (!build_explore_options(req, explore_opt, out.error.message)) {
    out.error.code = "bad-request";
    return out;
  }

  // Trace-list construction mirrors addm_explore exactly: suite traces
  // first, then request traces in order, file-stem naming for unnamed file
  // traces.  This ordering is what makes the served report byte-comparable
  // to the offline run.
  std::vector<seq::AddressTrace> traces;
  try {
    if (req.suite_scales > 0) {
      std::vector<seq::AddressTrace> suite =
          seq::scaled_suite(req.suite_base, req.suite_scales);
      for (auto& t : suite) traces.push_back(std::move(t));
    }
    for (const TraceSource& src : req.traces) {
      if (src.kind == TraceSource::Kind::kPath) {
        seq::AddressTrace t = seq::read_trace_file(src.name);
        if (t.name().empty())
          t.set_name(std::filesystem::path(src.name).stem().string());
        traces.push_back(std::move(t));
      } else {
        seq::AddressTrace t = seq::read_trace_string(src.data);
        if (t.name().empty() && !src.name.empty()) t.set_name(src.name);
        traces.push_back(std::move(t));
      }
    }
  } catch (const std::exception& e) {
    out.error.code = "io";
    out.error.message = e.what();
    return out;
  }

  core::BatchResult result;
  try {
    result = explorer_.run(traces, explore_opt);
  } catch (const std::exception& e) {
    out.error.code = "explore-failed";
    out.error.message = e.what();
    return out;
  }

  out.report = req.format == "json" ? core::batch_report_json(result)
                                    : core::batch_report_csv(result);
  out.summary.traces = result.traces;
  out.summary.evaluations = result.evaluations;
  out.summary.cache_hits = result.cache_hits;
  out.summary.disk_hits = result.disk_hits;
  for (const auto& e : result.entries)
    if (!e.error.empty()) ++out.summary.errors;
  out.ok = true;

  // Flush policy: opportunistic, after replying would be nicer latency-wise
  // but flushing here keeps the "reply sent => results durable-eligible"
  // ordering simple; the flush itself is bounded by pending volume.
  if (opt_.flush_entries > 0 &&
      explorer_.pending_flush() >= opt_.flush_entries) {
    std::lock_guard<std::mutex> lk(maintenance_mu_);
    explorer_.flush_disk();
  }
  return out;
}

core::BatchExplorer::FlushStats ExploreService::flush() {
  std::lock_guard<std::mutex> lk(maintenance_mu_);
  return explorer_.flush_disk();
}

ExploreService::AdminOutcome ExploreService::admin(std::string_view command) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  AdminOutcome out;

  const std::size_t sp = std::min(command.find(' '), command.size());
  const std::string_view verb = command.substr(0, sp);
  const std::string_view args =
      sp < command.size() ? command.substr(sp + 1) : std::string_view{};

  auto need_cache_dir = [&]() {
    if (!opt_.cache_dir.empty()) return true;
    out.error.code = "bad-request";
    out.error.message = "daemon runs without --cache-dir";
    return false;
  };

  if (verb == "flush") {
    const auto stats = flush();
    out.output = "flushed " + std::to_string(stats.stored) + " entries, " +
                 std::to_string(stats.evicted) + " evicted\n";
    out.ok = true;
    return out;
  }

  if (verb == "shutdown") {
    out.output = "shutting down\n";
    out.ok = true;
    out.shutdown = true;
    return out;
  }

  if (verb == "stats") {
    if (!need_cache_dir()) return out;
    // A stats probe should see pending work, so flush first — it is an
    // admin request, maintenance-grade latency is fine.
    {
      std::lock_guard<std::mutex> lk(maintenance_mu_);
      explorer_.flush_disk();
      core::EvalCacheDir cache(opt_.cache_dir);
      out.output = core::eval_cache_stats_json(cache.stats());
    }
    out.ok = true;
    return out;
  }

  if (verb == "compact" || verb == "prune") {
    if (!need_cache_dir()) return out;
    std::uint64_t max_entries = UINT64_MAX;
    std::uint64_t max_bytes = UINT64_MAX;
    if (verb == "prune") {
      const std::size_t sp2 = args.find(' ');
      std::uint64_t e = 0, b = 0;
      if (sp2 == std::string_view::npos || !parse_u64(args.substr(0, sp2), e) ||
          !parse_u64(args.substr(sp2 + 1), b) || (e == 0 && b == 0)) {
        out.error.code = "bad-request";
        out.error.message =
            "prune expects MAX_ENTRIES MAX_BYTES (0 = unlimited, not both)";
        return out;
      }
      if (e != 0) max_entries = e;
      if (b != 0) max_bytes = b;
    } else if (!args.empty()) {
      out.error.code = "bad-request";
      out.error.message = "compact takes no arguments";
      return out;
    }
    core::EvalCacheDir::MaintenanceStats m;
    {
      // Flush-then-maintain under one lock: pending entries are persisted
      // first so maintenance sees them, and no flush can start while the
      // directory is being rewritten ("no concurrent writer").
      std::lock_guard<std::mutex> lk(maintenance_mu_);
      explorer_.flush_disk();
      core::EvalCacheDir cache(opt_.cache_dir);
      m = verb == "compact" ? cache.compact() : cache.prune(max_entries, max_bytes);
    }
    if (!m.ok) {
      out.error.code = "maintenance-failed";
      out.error.message = "cache maintenance failed on " + opt_.cache_dir;
      return out;
    }
    out.output = maintenance_summary(m);
    out.ok = true;
    return out;
  }

  out.error.code = "bad-request";
  out.error.message = "unknown admin command '" + std::string(verb) +
                      "' (stats, compact, prune, flush, shutdown)";
  return out;
}

}  // namespace addm::serve
