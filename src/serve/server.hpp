// Socket front-end of the addm_serve daemon: accepts local connections,
// detects the protocol mode per connection (binary framing vs JSON lines),
// and dispatches requests onto a worker pool backed by one shared
// ExploreService.
//
// Lifecycle contract (the part CI leans on):
//  * start() binds and listens — Unix-domain socket by default, with
//    stale-socket recovery (a leftover path that refuses connections is
//    unlinked and rebound), or TCP on 127.0.0.1 (port 0 = ephemeral,
//    bound_port() reports the choice).
//  * run() owns the accept loop until request_stop() — which is
//    async-signal-safe (one write to a self-pipe), so SIGINT/SIGTERM
//    handlers may call it directly — or until --max-requests /
//    --idle-timeout trips.  Shutdown drains: the listener closes, idle
//    connections are woken with shutdown(SHUT_RD), in-flight requests run
//    to completion and their replies are written, pending cache state is
//    flushed, and run() returns 0.
//  * Hostile input never takes the daemon down: malformed frames and JSON
//    get framed error replies (or a close), client disconnects mid-stream
//    abort only that connection, and writes use MSG_NOSIGNAL plus a send
//    timeout so a stuck peer cannot wedge a worker forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace addm::serve {

struct ServerOptions {
  /// Unix-domain socket path; used when non-empty (the default transport).
  std::string unix_path;
  /// TCP loopback port when unix_path is empty; 0 = ephemeral.
  int tcp_port = 0;
  /// Concurrent connection workers (each serves one connection at a time).
  std::size_t request_threads = 2;
  /// Stop after this many requests have been served (0 = unlimited).
  std::uint64_t max_requests = 0;
  /// Stop after this many seconds with no connections and no requests
  /// in flight (0 = never).
  double idle_timeout_seconds = 0.0;
  /// Suppress the stderr lifecycle log lines.
  bool quiet = false;
};

class Server {
 public:
  Server(ExploreService& service, ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens.  Returns false with `error` set on failure
  /// (address in use by a live daemon, permission, bad path).
  bool start(std::string& error);

  /// Port actually bound (TCP mode; -1 for Unix sockets).
  int bound_port() const { return bound_port_; }

  /// Accept/dispatch loop; blocks until a stop condition, then drains and
  /// returns the process exit code (0 on a clean drain).
  int run();

  /// Initiates shutdown.  Async-signal-safe.
  void request_stop();

 private:
  struct Conn;
  void handle_connection(int fd);
  void serve_binary(Conn& c);
  void serve_json(Conn& c);
  bool dispatch_frame(Conn& c, const Frame& frame);
  void note_activity();
  void close_listener();

  ExploreService& service_;
  ServerOptions opt_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int bound_port_ = -1;
  bool unlink_on_close_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> last_activity_ms_{0};
  std::atomic<std::size_t> active_conns_{0};
  /// Live connection fds, for the drain's SHUT_RD wakeup.
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
};

}  // namespace addm::serve
