#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/thread_pool.hpp"

namespace addm::serve {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Full write with MSG_NOSIGNAL: a peer that disappeared mid-reply must
// surface as a return value on this connection, never as SIGPIPE to the
// daemon.  The socket carries a send timeout (set at accept), so a peer
// that stops reading cannot wedge a worker forever either.
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Report bodies can exceed a sensible single write; kChunk slices keep the
// peer's buffer requirements flat and let it stream the body to disk.
constexpr std::size_t kChunkBytes = 1u << 20;

}  // namespace

struct Server::Conn {
  int fd = -1;
  bool write_failed = false;
  bool send(std::string_view bytes) {
    if (write_failed) return false;
    if (!write_all(fd, bytes)) write_failed = true;
    return !write_failed;
  }
};

Server::Server(ExploreService& service, ServerOptions opt)
    : service_(service), opt_(std::move(opt)) {}

Server::~Server() {
  close_listener();
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (unlink_on_close_ && !opt_.unix_path.empty()) {
    ::unlink(opt_.unix_path.c_str());
    unlink_on_close_ = false;
  }
}

bool Server::start(std::string& error) {
  if (::pipe(stop_pipe_) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }

  if (!opt_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof addr.sun_path) {
      error = "socket path too long: " + opt_.unix_path;
      return false;
    }
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(), sizeof addr.sun_path - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno != EADDRINUSE) {
        error = "bind " + opt_.unix_path + ": " + std::strerror(errno);
        return false;
      }
      // Stale-socket recovery: a path left behind by a dead daemon accepts
      // no connections; a live daemon does.  Only the former is unlinked.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        error = opt_.unix_path + ": a daemon is already listening";
        return false;
      }
      ::unlink(opt_.unix_path.c_str());
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        error = "bind " + opt_.unix_path + ": " + std::strerror(errno);
        return false;
      }
    }
    unlink_on_close_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "bind 127.0.0.1:" + std::to_string(opt_.tcp_port) + ": " +
              std::strerror(errno);
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      bound_port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 64) != 0) {
    error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  if (!opt_.quiet) {
    if (!opt_.unix_path.empty())
      std::fprintf(stderr, "addm_serve: listening on %s\n", opt_.unix_path.c_str());
    else
      std::fprintf(stderr, "addm_serve: listening on 127.0.0.1:%d\n", bound_port_);
  }
  return true;
}

void Server::request_stop() {
  // Async-signal-safe: one lock-free store plus one write(2).
  stopping_.store(true, std::memory_order_relaxed);
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
}

void Server::note_activity() {
  last_activity_ms_.store(now_ms(), std::memory_order_relaxed);
}

int Server::run() {
  core::ThreadPool pool(opt_.request_threads == 0 ? 1 : opt_.request_threads);
  note_activity();

  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        timeval tv{60, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        {
          std::lock_guard<std::mutex> lk(conns_mu_);
          conn_fds_.push_back(fd);
        }
        active_conns_.fetch_add(1, std::memory_order_relaxed);
        note_activity();
        pool.submit([this, fd] { handle_connection(fd); });
      }
    }

    if (opt_.max_requests != 0 &&
        service_.requests_served() >= opt_.max_requests)
      break;

    if (opt_.idle_timeout_seconds > 0 &&
        active_conns_.load(std::memory_order_relaxed) == 0 &&
        pool.busy() == 0) {
      const std::uint64_t idle_ms =
          now_ms() - last_activity_ms_.load(std::memory_order_relaxed);
      if (idle_ms >= static_cast<std::uint64_t>(opt_.idle_timeout_seconds * 1000.0)) {
        if (!opt_.quiet)
          std::fprintf(stderr, "addm_serve: idle timeout, draining\n");
        break;
      }
    }
  }

  // Drain: no new connections, wake idle readers, let in-flight requests
  // finish and their replies flush, then persist pending cache state.
  stopping_.store(true, std::memory_order_relaxed);
  close_listener();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  try {
    pool.wait_idle();
  } catch (...) {
    // Connection handlers catch their own failures; nothing should land
    // here, but a drain must never terminate the daemon abnormally.
  }
  const auto flushed = service_.flush();
  if (!opt_.quiet)
    std::fprintf(stderr,
                 "addm_serve: drained after %llu requests (%zu entries flushed)\n",
                 static_cast<unsigned long long>(service_.requests_served()),
                 flushed.stored);
  return 0;
}

void Server::handle_connection(int fd) {
  Conn c;
  c.fd = fd;
  char first = 0;
  const ssize_t peeked = ::recv(fd, &first, 1, MSG_PEEK);
  if (peeked == 1) {
    // Mode selection: the binary framing's magic starts with 'A'; anything
    // else is treated as a JSON line.
    if (first == kFrameMagic[0])
      serve_binary(c);
    else
      serve_json(c);
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_[i] = conn_fds_.back();
        conn_fds_.pop_back();
        break;
      }
    }
  }
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  note_activity();
}

void Server::serve_binary(Conn& c) {
  std::string buf;
  char tmp[64 * 1024];
  for (;;) {
    while (!buf.empty()) {
      Frame frame;
      std::size_t consumed = 0;
      std::string why;
      const DecodeStatus st = decode_frame(buf, frame, consumed, &why);
      if (st == DecodeStatus::kNeedMore) break;
      if (st == DecodeStatus::kMalformed) {
        // One framed diagnosis, then close: after garbage there is no
        // trustworthy frame boundary left to resynchronize on.
        c.send(encode_frame(kError, encode_error({"malformed-frame", why})));
        return;
      }
      buf.erase(0, consumed);
      if (!dispatch_frame(c, frame)) return;
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    const ssize_t n = ::recv(c.fd, tmp, sizeof tmp, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // EOF (including the drain's SHUT_RD) or error
    }
    buf.append(tmp, static_cast<std::size_t>(n));
    note_activity();
  }
}

bool Server::dispatch_frame(Conn& c, const Frame& frame) {
  bool keep = true;
  switch (frame.type) {
    case kPing:
      keep = c.send(encode_frame(kPong, service_.ping()));
      break;
    case kAdmin: {
      std::string command = frame.payload;
      while (!command.empty() &&
             (command.back() == '\n' || command.back() == '\r'))
        command.pop_back();
      const auto out = service_.admin(command);
      if (out.ok)
        keep = c.send(encode_frame(kAdminDone, out.output));
      else
        keep = c.send(encode_frame(kError, encode_error(out.error)));
      if (out.shutdown) {
        request_stop();
        keep = false;
      }
      break;
    }
    case kExplore: {
      ExploreRequest req;
      std::string why;
      if (!parse_explore_request(frame.payload, req, why)) {
        keep = c.send(encode_frame(kError, encode_error({"bad-request", why})));
        break;
      }
      const auto out = service_.explore(req);
      if (!out.ok) {
        keep = c.send(encode_frame(kError, encode_error(out.error)));
        break;
      }
      std::string_view body = out.report;
      while (!body.empty() && keep) {
        const std::size_t n = std::min(body.size(), kChunkBytes);
        keep = c.send(encode_frame(kChunk, body.substr(0, n)));
        body.remove_prefix(n);
      }
      if (keep) keep = c.send(encode_frame(kDone, encode_done(out.summary)));
      break;
    }
    default:
      keep = c.send(encode_frame(
          kError, encode_error({"unsupported",
                                "unexpected frame type " +
                                    std::to_string(frame.type)})));
      break;
  }
  if (opt_.max_requests != 0 && service_.requests_served() >= opt_.max_requests) {
    request_stop();
    keep = false;
  }
  return keep;
}

void Server::serve_json(Conn& c) {
  std::string buf;
  char tmp[64 * 1024];
  for (;;) {
    std::size_t eol;
    while ((eol = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      note_activity();

      JsonRequest req;
      std::string why;
      if (!parse_json_request(line, req, why)) {
        if (!c.send(json_error_reply({"bad-request", why}))) return;
        continue;
      }
      bool keep = true;
      switch (req.kind) {
        case JsonRequestKind::kPing:
          keep = c.send(json_pong_reply(service_.ping()));
          break;
        case JsonRequestKind::kAdmin: {
          const auto out = service_.admin(req.admin_command);
          keep = c.send(out.ok ? json_admin_reply(out.output)
                               : json_error_reply(out.error));
          if (out.shutdown) {
            request_stop();
            keep = false;
          }
          break;
        }
        case JsonRequestKind::kExplore: {
          const auto out = service_.explore(req.explore);
          keep = c.send(out.ok ? json_explore_reply(out.report, out.summary)
                               : json_error_reply(out.error));
          break;
        }
      }
      if (opt_.max_requests != 0 &&
          service_.requests_served() >= opt_.max_requests) {
        request_stop();
        keep = false;
      }
      if (!keep) return;
    }
    if (buf.size() > kMaxFramePayload) {
      c.send(json_error_reply(
          {"bad-request", "request line exceeds the 64 MiB cap"}));
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    const ssize_t n = ::recv(c.fd, tmp, sizeof tmp, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    buf.append(tmp, static_cast<std::size_t>(n));
  }
}

}  // namespace addm::serve
