#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace addm::serve {

namespace {

// JSON reply decoding shared by all three request kinds.
bool decode_json_reply(const std::string& line, ServeClient::Result& out,
                       std::string& transport_error) {
  JsonValue root;
  std::string why;
  if (!parse_json(line, root, why) || root.type != JsonValue::Type::kObject) {
    transport_error = "malformed reply line: " + why;
    return false;
  }
  const JsonValue* ok = root.find("ok");
  if (!ok || ok->type != JsonValue::Type::kBool) {
    transport_error = "reply missing \"ok\" field";
    return false;
  }
  if (!ok->boolean) {
    out.ok = false;
    if (const JsonValue* code = root.find("code"))
      out.error.code = code->string;
    if (const JsonValue* msg = root.find("message"))
      out.error.message = msg->string;
    if (out.error.code.empty()) out.error.code = "error";
    return true;
  }
  out.ok = true;
  for (const char* key : {"report", "output", "pong"})
    if (const JsonValue* v = root.find(key))
      if (v->type == JsonValue::Type::kString) out.body = v->string;
  auto num = [&](const char* key, std::uint64_t& dst) {
    if (const JsonValue* v = root.find(key)) v->as_u64(dst);
  };
  num("traces", out.summary.traces);
  num("evaluations", out.summary.evaluations);
  num("cache_hits", out.summary.cache_hits);
  num("disk_hits", out.summary.disk_hits);
  num("errors", out.summary.errors);
  return true;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServeClient::connect_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    error = "socket path too long: " + path;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool ServeClient::connect_tcp(const std::string& host, int port,
                              std::string& error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad IPv4 address: " + host;
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = "connect " + host + ":" + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool ServeClient::send_all(std::string_view data, std::string& error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool ServeClient::read_frame(Frame& out, std::string& error) {
  char tmp[64 * 1024];
  for (;;) {
    std::size_t consumed = 0;
    std::string why;
    const DecodeStatus st = decode_frame(rbuf_, out, consumed, &why);
    if (st == DecodeStatus::kFrame) {
      rbuf_.erase(0, consumed);
      return true;
    }
    if (st == DecodeStatus::kMalformed) {
      error = "malformed reply frame: " + why;
      return false;
    }
    const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
    if (n == 0) {
      error = "server closed the connection mid-reply";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    rbuf_.append(tmp, static_cast<std::size_t>(n));
  }
}

bool ServeClient::read_json_line(std::string& out, std::string& error) {
  char tmp[64 * 1024];
  for (;;) {
    const std::size_t eol = rbuf_.find('\n');
    if (eol != std::string::npos) {
      out = rbuf_.substr(0, eol);
      rbuf_.erase(0, eol + 1);
      return true;
    }
    const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
    if (n == 0) {
      error = "server closed the connection mid-reply";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    rbuf_.append(tmp, static_cast<std::size_t>(n));
  }
}

bool ServeClient::explore(const ExploreRequest& req, Result& out,
                          std::string& transport_error) {
  out = Result{};
  if (fd_ < 0) {
    transport_error = "not connected";
    return false;
  }
  if (json_mode_) {
    if (!send_all(json_explore_request(req), transport_error)) return false;
    std::string line;
    if (!read_json_line(line, transport_error)) return false;
    return decode_json_reply(line, out, transport_error);
  }
  if (!send_all(encode_frame(kExplore, encode_explore_request(req)),
                transport_error))
    return false;
  for (;;) {
    Frame f;
    if (!read_frame(f, transport_error)) return false;
    switch (f.type) {
      case kChunk:
        out.body += f.payload;
        break;
      case kDone:
        if (!parse_done(f.payload, out.summary)) {
          transport_error = "malformed done summary";
          return false;
        }
        out.ok = true;
        return true;
      case kError:
        parse_error(f.payload, out.error);
        if (out.error.code.empty()) out.error.code = "error";
        out.ok = false;
        return true;
      default:
        transport_error =
            "unexpected reply frame type " + std::to_string(f.type);
        return false;
    }
  }
}

bool ServeClient::admin(std::string_view command, Result& out,
                        std::string& transport_error) {
  out = Result{};
  if (fd_ < 0) {
    transport_error = "not connected";
    return false;
  }
  if (json_mode_) {
    if (!send_all(json_admin_request(command), transport_error)) return false;
    std::string line;
    if (!read_json_line(line, transport_error)) return false;
    return decode_json_reply(line, out, transport_error);
  }
  if (!send_all(encode_frame(kAdmin, command), transport_error)) return false;
  Frame f;
  if (!read_frame(f, transport_error)) return false;
  if (f.type == kAdminDone) {
    out.ok = true;
    out.body = f.payload;
    return true;
  }
  if (f.type == kError) {
    parse_error(f.payload, out.error);
    if (out.error.code.empty()) out.error.code = "error";
    out.ok = false;
    return true;
  }
  transport_error = "unexpected reply frame type " + std::to_string(f.type);
  return false;
}

bool ServeClient::ping(std::string& banner, std::string& transport_error) {
  if (fd_ < 0) {
    transport_error = "not connected";
    return false;
  }
  if (json_mode_) {
    if (!send_all(json_ping_request(), transport_error)) return false;
    std::string line;
    if (!read_json_line(line, transport_error)) return false;
    Result r;
    if (!decode_json_reply(line, r, transport_error)) return false;
    if (!r.ok) {
      transport_error = "ping failed: " + r.error.code;
      return false;
    }
    banner = r.body;
    return true;
  }
  if (!send_all(encode_frame(kPing, ""), transport_error)) return false;
  Frame f;
  if (!read_frame(f, transport_error)) return false;
  if (f.type != kPong) {
    transport_error = "unexpected reply frame type " + std::to_string(f.type);
    return false;
  }
  banner = f.payload;
  return true;
}

}  // namespace addm::serve
