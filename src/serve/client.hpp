// Client side of the addm_serve protocol: one blocking connection, one
// request/reply exchange per call.  Used by tools/addm_client, the
// serve-throughput benchmark, and the in-process server tests.
//
// Two transports (Unix-domain path or TCP loopback) × two wire modes
// (binary framing, default; JSON lines via set_json_mode) — the reply is
// identical either way because both modes are views of the same request
// model (serve/protocol.hpp).
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "serve/protocol.hpp"

namespace addm::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept { *this = std::move(other); }
  ServeClient& operator=(ServeClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      json_mode_ = other.json_mode_;
      rbuf_ = std::move(other.rbuf_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Closes the connection (destructor does this too).
  void close();

  /// Connects over a Unix-domain socket / TCP loopback.  Returns false
  /// with `error` on failure; the client is then unusable.
  bool connect_unix(const std::string& path, std::string& error);
  bool connect_tcp(const std::string& host, int port, std::string& error);

  /// Switches this connection to the JSON-lines fallback mode.  Must be
  /// called before the first request (the server locks the mode onto the
  /// first byte it sees).
  void set_json_mode(bool on) { json_mode_ = on; }

  bool connected() const { return fd_ >= 0; }

  /// Result of one request.  On ok, `body` is the full report (explore) or
  /// the command output (admin); on !ok, `error` carries the server's
  /// framed error.  Transport failures are reported separately through the
  /// bool return + `transport_error`.
  struct Result {
    bool ok = false;
    ErrorInfo error;
    std::string body;
    ExploreSummary summary;  ///< explore only
  };

  /// Runs one explore request to completion (streams every kChunk into
  /// `out.body`).  Returns false only on a transport/protocol failure.
  bool explore(const ExploreRequest& req, Result& out,
               std::string& transport_error);

  /// Runs one admin command ("stats", "compact", "prune E B", "flush",
  /// "shutdown").
  bool admin(std::string_view command, Result& out,
             std::string& transport_error);

  /// Liveness probe; fills `banner` from the kPong payload.
  bool ping(std::string& banner, std::string& transport_error);

 private:
  bool send_all(std::string_view data, std::string& error);
  bool read_frame(Frame& out, std::string& error);
  bool read_json_line(std::string& out, std::string& error);

  int fd_ = -1;
  bool json_mode_ = false;
  std::string rbuf_;
};

}  // namespace addm::serve
