// Wire protocol for the addm_serve exploration daemon.
//
// Two client-selectable modes share one socket:
//
//  * Binary framing (default, used by addm_client): every message is a
//    12-byte header — magic "ADSV", version byte, type byte, two reserved
//    zero bytes, and a little-endian u32 payload length — followed by the
//    payload.  The first byte a client sends ('A') selects this mode.
//  * JSON lines (fallback for scripting without the client binary): one
//    request object per '\n'-terminated line, one reply object per line.
//    Any first byte other than 'A' selects this mode.
//
// The full grammar (frame types, payload formats, error codes, versioning
// rules) is specified in docs/serve-protocol.md; this header is the single
// in-tree implementation of it, shared by the server, the client, and the
// protocol fuzz tests.
//
// Robustness contract: decode_frame and the request parsers never throw and
// never over-read — arbitrary bytes produce kNeedMore (prefix of a valid
// frame), kMalformed (never a valid frame), or a decoded frame whose payload
// parser reports a structured error.  The daemon maps malformation to a
// framed kError reply (or a JSON error line) and carries on; it must never
// crash or hang on hostile input (tests/serve_protocol_test.cpp fuzzes
// exactly this boundary).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::serve {

/// Protocol version carried in every binary frame header.  A frame
/// carrying any other version is malformed — the server replies kError
/// ("malformed-frame", "unsupported protocol version") and closes; bump
/// only on incompatible grammar changes (see docs/serve-protocol.md).
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Frame header magic — also the mode-selection byte ('A').
inline constexpr char kFrameMagic[4] = {'A', 'D', 'S', 'V'};

/// Fixed header size preceding every binary payload.
inline constexpr std::size_t kFrameHeaderSize = 12;

/// Hard payload cap.  Anything longer is malformed by definition: the
/// decoder rejects the header before buffering the payload, so a hostile
/// length field cannot make the daemon allocate unbounded memory.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Frame types.  Requests are < 16, replies >= 16; unknown types decode
/// fine (length framing is type-independent) and are answered with kError
/// "unsupported".
enum FrameType : std::uint8_t {
  kExplore = 1,    ///< explore request (payload: request grammar below)
  kAdmin = 2,      ///< admin request (payload: one command line)
  kPing = 3,       ///< liveness probe (payload ignored)
  kChunk = 16,     ///< one slice of a report body, in order
  kDone = 17,      ///< end of a successful explore (payload: summary)
  kError = 18,     ///< failure (payload: code line + message)
  kPong = 19,      ///< ping reply (payload: server banner)
  kAdminDone = 20, ///< successful admin reply (payload: command output)
};

/// One decoded frame.
struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

enum class DecodeStatus {
  kFrame,     ///< one complete frame decoded; `consumed` bytes used
  kNeedMore,  ///< buffer holds a valid prefix; read more and retry
  kMalformed, ///< buffer can never become a valid frame
};

/// Encodes one frame (header + payload).  Payloads above kMaxFramePayload
/// are truncated-by-contract: callers must split report bodies into kChunk
/// frames instead (the server does); encode asserts nothing and clamps
/// never — oversized input is a programming error upstream.
std::string encode_frame(std::uint8_t type, std::string_view payload);

/// Attempts to decode one frame from the front of `buf`.  On kFrame,
/// `consumed` is the total bytes to drop from the buffer.  On kMalformed,
/// `error` (when non-null) receives a one-line diagnosis.  Never throws.
DecodeStatus decode_frame(std::string_view buf, Frame& out,
                          std::size_t& consumed, std::string* error = nullptr);

/// One trace input of an explore request.
struct TraceSource {
  enum class Kind { kPath, kInline };
  Kind kind = Kind::kPath;
  /// kPath: filesystem path the *server* reads (trust model: the daemon
  /// serves local clients only).  kInline: fallback name applied when the
  /// inline text carries no name (mirrors addm_explore's file-stem rule).
  std::string name;
  /// kInline only: the trace file bytes (seq/trace_io text format).
  std::string data;
};

/// One explore request — the daemon-side mirror of an addm_explore
/// invocation.  Defaults match the CLI defaults exactly, which is what
/// makes served reports byte-comparable to offline runs.
struct ExploreRequest {
  std::string format = "csv";  ///< "csv" or "json"
  std::size_t suite_scales = 0;  ///< 0 = no suite traces
  seq::ArrayGeometry suite_base{8, 8};
  /// Raw option key/values in request order, validated but not yet applied
  /// (apply with build_explore_options).  Keys mirror addm_explore flags:
  /// archs, no-fsm, max-fsm-states, max-fanout, minimizer,
  /// espresso-threshold, verify-front, compress-periodic.
  std::vector<std::pair<std::string, std::string>> options;
  /// Suite traces come first, then these, in order — same list-construction
  /// rule as the CLI.
  std::vector<TraceSource> traces;
};

/// Serializes a request into the kExplore payload grammar
/// (docs/serve-protocol.md):
///   format csv|json
///   suite SCALES WxH
///   option KEY[ VALUE]
///   trace path PATH
///   trace inline NBYTES NAME   (NBYTES raw bytes follow, then '\n')
std::string encode_explore_request(const ExploreRequest& req);

/// Parses the kExplore payload grammar.  Returns false with a one-line
/// `error` on any malformation (unknown directive, bad counts, truncated
/// inline data, invalid option key/value, no traces selected).  Never
/// throws.
bool parse_explore_request(std::string_view payload, ExploreRequest& out,
                           std::string& error);

/// Applies one validated option key/value onto `opt`, mirroring the
/// corresponding addm_explore flag (same validation limits, same rejection
/// cases).  Returns false with `error` set on an unknown key or bad value.
bool apply_explore_option(core::ExploreOptions& opt, std::string_view key,
                          std::string_view value, std::string& error);

/// Applies every option of `req` onto a default-constructed ExploreOptions.
/// The result of a request with no options is bit-for-bit the CLI default —
/// the pinned-fingerprint property the serve_smoke test enforces.
bool build_explore_options(const ExploreRequest& req, core::ExploreOptions& opt,
                           std::string& error);

/// Summary carried by the kDone frame: the out-of-band counters the CLI
/// prints to stderr.  Never part of the report body.
struct ExploreSummary {
  std::uint64_t traces = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t errors = 0;  ///< per-trace exploration errors in the report
};

std::string encode_done(const ExploreSummary& s);
bool parse_done(std::string_view payload, ExploreSummary& out);

/// Structured failure carried by kError frames: a stable machine-readable
/// code (docs/serve-protocol.md lists them) plus a human message.
struct ErrorInfo {
  std::string code;     ///< e.g. "bad-request", "io", "explore-failed"
  std::string message;
};

std::string encode_error(const ErrorInfo& e);
bool parse_error(std::string_view payload, ErrorInfo& out);

// ---------------------------------------------------------------------------
// JSON-lines fallback.
//
// The repo deliberately has no external JSON dependency, so the fallback
// mode ships its own minimal parser: UTF-8-agnostic (strings are byte
// strings; \uXXXX escapes outside ASCII are rejected), numbers as doubles,
// depth-capped, never throwing.  It exists for protocol input only — report
// *output* JSON is produced by the existing deterministic renderers.

/// Parsed JSON value.  Tag + the one active member; inactive members stay
/// empty.  Object member order is preserved (first occurrence wins on
/// duplicate keys).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Number extraction as an exact non-negative integer; false when the
  /// value is not a number, negative, fractional, or above 2^53.
  bool as_u64(std::uint64_t& out) const;
};

/// Parses one complete JSON document from `text` (leading/trailing ASCII
/// whitespace tolerated, nothing else after the value).  Returns false with
/// `error` on malformation or nesting deeper than 32 levels.  Never throws.
bool parse_json(std::string_view text, JsonValue& out, std::string& error);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).  Control bytes become \u00XX.
std::string json_escape(std::string_view s);

/// Kind of a parsed JSON-lines request.
enum class JsonRequestKind { kExplore, kAdmin, kPing };

/// One parsed JSON-lines request: {"op":"explore"|"admin"|"ping", ...}.
/// Explore requests fill `explore` (same structure, same option validation
/// as the binary grammar — one request model, two encodings); admin
/// requests fill `admin_command` with the same one-line command the binary
/// kAdmin payload carries.
struct JsonRequest {
  JsonRequestKind kind = JsonRequestKind::kPing;
  ExploreRequest explore;
  std::string admin_command;
};

/// Parses one request line.  Returns false with `error` on malformed JSON,
/// an unknown "op", or invalid request fields.
bool parse_json_request(std::string_view line, JsonRequest& out,
                        std::string& error);

/// Request-line builders (client side of the fallback mode) — each returns
/// one complete line including the trailing '\n'.  Round-trip property:
/// parse_json_request(json_explore_request(r)) reproduces `r`.
std::string json_explore_request(const ExploreRequest& req);
std::string json_admin_request(std::string_view command);
std::string json_ping_request();

/// Reply-line builders — each returns one complete line including the
/// trailing '\n'.
std::string json_explore_reply(std::string_view report, const ExploreSummary& s);
std::string json_admin_reply(std::string_view output);
std::string json_pong_reply(std::string_view banner);
std::string json_error_reply(const ErrorInfo& e);

}  // namespace addm::serve
