#include "serve/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace addm::serve {

namespace {

// Strict non-negative decimal (no sign, no suffix, no leading junk).
bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

// "WxH" with positive dimensions — the CLI's --base grammar.
bool parse_geometry_sv(std::string_view s, seq::ArrayGeometry& g) {
  const std::size_t x = s.find('x');
  if (x == std::string_view::npos) return false;
  std::uint64_t w = 0, h = 0;
  if (!parse_u64(s.substr(0, x), w) || !parse_u64(s.substr(x + 1), h))
    return false;
  if (w == 0 || h == 0) return false;
  g.width = static_cast<std::size_t>(w);
  g.height = static_cast<std::size_t>(h);
  return true;
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void set_error(std::string* error, const char* msg) {
  if (error) *error = msg;
}

}  // namespace

std::string encode_frame(std::uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');
  out.push_back('\0');
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

DecodeStatus decode_frame(std::string_view buf, Frame& out,
                          std::size_t& consumed, std::string* error) {
  consumed = 0;
  if (buf.empty()) return DecodeStatus::kNeedMore;
  // Magic is checked byte-by-byte so a wrong prefix is malformed as soon as
  // it can be, not after 12 bytes arrive.
  const std::size_t magic_avail = std::min(buf.size(), sizeof kFrameMagic);
  if (std::memcmp(buf.data(), kFrameMagic, magic_avail) != 0) {
    set_error(error, "bad frame magic");
    return DecodeStatus::kMalformed;
  }
  if (buf.size() >= 5 &&
      static_cast<std::uint8_t>(buf[4]) != kProtocolVersion) {
    set_error(error, "unsupported protocol version");
    return DecodeStatus::kMalformed;
  }
  if (buf.size() >= 8 && (buf[6] != '\0' || buf[7] != '\0')) {
    set_error(error, "nonzero reserved header bytes");
    return DecodeStatus::kMalformed;
  }
  if (buf.size() < kFrameHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint32_t length = get_u32le(buf.data() + 8);
  if (length > kMaxFramePayload) {
    set_error(error, "frame payload exceeds 64 MiB cap");
    return DecodeStatus::kMalformed;
  }
  if (buf.size() < kFrameHeaderSize + length) return DecodeStatus::kNeedMore;
  out.type = static_cast<std::uint8_t>(buf[5]);
  out.payload.assign(buf.data() + kFrameHeaderSize, length);
  consumed = kFrameHeaderSize + length;
  return DecodeStatus::kFrame;
}

// ---------------------------------------------------------------------------
// Explore request grammar.

std::string encode_explore_request(const ExploreRequest& req) {
  std::string out = "format " + req.format + "\n";
  if (req.suite_scales > 0) {
    out += "suite " + std::to_string(req.suite_scales) + " " +
           std::to_string(req.suite_base.width) + "x" +
           std::to_string(req.suite_base.height) + "\n";
  }
  for (const auto& [key, value] : req.options) {
    out += "option " + key;
    if (!value.empty()) out += " " + value;
    out += "\n";
  }
  for (const TraceSource& t : req.traces) {
    if (t.kind == TraceSource::Kind::kPath) {
      out += "trace path " + t.name + "\n";
    } else {
      out += "trace inline " + std::to_string(t.data.size()) + " " + t.name +
             "\n";
      out += t.data;
      out += "\n";
    }
  }
  return out;
}

bool apply_explore_option(core::ExploreOptions& opt, std::string_view key,
                          std::string_view value, std::string& error) {
  auto flag = [&](bool& ok) {
    ok = value.empty();
    if (!ok) error = "option '" + std::string(key) + "' takes no value";
    return ok;
  };
  auto need_value = [&]() {
    if (!value.empty()) return true;
    error = "option '" + std::string(key) + "' requires a value";
    return false;
  };
  if (key == "no-fsm") {
    bool ok;
    if (!flag(ok)) return false;
    opt.include_fsm = false;
    return true;
  }
  if (key == "verify-front") {
    bool ok;
    if (!flag(ok)) return false;
    opt.verify_front = true;
    return true;
  }
  if (key == "compress-periodic") {
    bool ok;
    if (!flag(ok)) return false;
    opt.compress_periodic = true;
    return true;
  }
  if (key == "max-fsm-states") {
    std::uint64_t v = 0;
    if (!need_value() || !parse_u64(value, v)) {
      if (error.empty()) error = "max-fsm-states expects a number";
      return false;
    }
    opt.max_fsm_states = static_cast<std::size_t>(v);
    return true;
  }
  if (key == "max-fanout") {
    std::uint64_t v = 0;
    if (!need_value() || !parse_u64(value, v) || v == 0 || v > INT32_MAX) {
      if (error.empty()) error = "max-fanout expects a positive number";
      return false;
    }
    opt.max_fanout = static_cast<int>(v);
    return true;
  }
  if (key == "espresso-threshold") {
    std::uint64_t v = 0;
    if (!need_value() || !parse_u64(value, v) || v == 0 || v > 24) {
      if (error.empty()) error = "espresso-threshold expects 1..24";
      return false;
    }
    opt.minimize.heuristic_min_vars = static_cast<int>(v);
    return true;
  }
  if (key == "minimizer") {
    if (!need_value()) return false;
    using logic::MinimizerAlgo;
    if (value == "isop") opt.minimize.algo = MinimizerAlgo::Isop;
    else if (value == "exact") opt.minimize.algo = MinimizerAlgo::Exact;
    else if (value == "espresso") opt.minimize.algo = MinimizerAlgo::Espresso;
    else if (value == "auto") opt.minimize.algo = MinimizerAlgo::Auto;
    else {
      error = "minimizer must be isop, exact, espresso or auto";
      return false;
    }
    return true;
  }
  if (key == "archs") {
    if (!need_value()) return false;
    const std::vector<std::string> known = core::generator_names();
    std::size_t added = 0;
    std::size_t pos = 0;
    while (pos <= value.size()) {
      const std::size_t comma = std::min(value.find(',', pos), value.size());
      const std::string name(value.substr(pos, comma - pos));
      pos = comma + 1;
      if (name.empty()) continue;
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        error = "archs: unknown architecture '" + name + "'";
        return false;
      }
      opt.archs.push_back(name);
      ++added;
    }
    if (added == 0) {
      error = "archs expects a comma-separated list of names";
      return false;
    }
    return true;
  }
  error = "unknown option '" + std::string(key) + "'";
  return false;
}

bool build_explore_options(const ExploreRequest& req, core::ExploreOptions& opt,
                           std::string& error) {
  opt = core::ExploreOptions{};
  for (const auto& [key, value] : req.options)
    if (!apply_explore_option(opt, key, value, error)) return false;
  return true;
}

bool parse_explore_request(std::string_view payload, ExploreRequest& out,
                           std::string& error) {
  out = ExploreRequest{};
  bool saw_format = false;
  bool saw_suite = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    const std::size_t sp = std::min(line.find(' '), line.size());
    const std::string_view word = line.substr(0, sp);
    const std::string_view rest =
        sp < line.size() ? line.substr(sp + 1) : std::string_view{};

    if (word == "format") {
      if (saw_format) {
        error = "duplicate format directive";
        return false;
      }
      if (rest != "csv" && rest != "json") {
        error = "format must be csv or json";
        return false;
      }
      out.format = std::string(rest);
      saw_format = true;
    } else if (word == "suite") {
      if (saw_suite) {
        error = "duplicate suite directive";
        return false;
      }
      const std::size_t sp2 = rest.find(' ');
      if (sp2 == std::string_view::npos) {
        error = "suite expects SCALES WxH";
        return false;
      }
      std::uint64_t scales = 0;
      if (!parse_u64(rest.substr(0, sp2), scales) || scales == 0) {
        error = "suite expects a positive scale count";
        return false;
      }
      if (!parse_geometry_sv(rest.substr(sp2 + 1), out.suite_base)) {
        error = "suite expects a WxH base geometry (e.g. 8x8)";
        return false;
      }
      out.suite_scales = static_cast<std::size_t>(scales);
      saw_suite = true;
    } else if (word == "option") {
      if (rest.empty()) {
        error = "option expects KEY [VALUE]";
        return false;
      }
      const std::size_t sp2 = std::min(rest.find(' '), rest.size());
      const std::string key(rest.substr(0, sp2));
      const std::string value(
          sp2 < rest.size() ? rest.substr(sp2 + 1) : std::string_view{});
      // Validate eagerly against a scratch options object so a bad request
      // fails at parse time, before any trace I/O.
      core::ExploreOptions scratch;
      if (!apply_explore_option(scratch, key, value, error)) return false;
      out.options.emplace_back(key, value);
    } else if (word == "trace") {
      const std::size_t sp2 = std::min(rest.find(' '), rest.size());
      const std::string_view kind = rest.substr(0, sp2);
      const std::string_view args =
          sp2 < rest.size() ? rest.substr(sp2 + 1) : std::string_view{};
      if (kind == "path") {
        if (args.empty()) {
          error = "trace path expects a file path";
          return false;
        }
        TraceSource t;
        t.kind = TraceSource::Kind::kPath;
        t.name = std::string(args);
        out.traces.push_back(std::move(t));
      } else if (kind == "inline") {
        const std::size_t sp3 = std::min(args.find(' '), args.size());
        std::uint64_t nbytes = 0;
        if (!parse_u64(args.substr(0, sp3), nbytes) ||
            nbytes > kMaxFramePayload) {
          error = "trace inline expects NBYTES NAME";
          return false;
        }
        TraceSource t;
        t.kind = TraceSource::Kind::kInline;
        if (sp3 < args.size()) t.name = std::string(args.substr(sp3 + 1));
        // pos can be payload.size() + 1 when this directive line had no
        // trailing newline, so guard the subtraction against underflow.
        if (pos > payload.size() || payload.size() - pos < nbytes) {
          error = "truncated inline trace data";
          return false;
        }
        t.data.assign(payload.data() + pos, nbytes);
        pos += nbytes;
        // The raw bytes are terminated by one mandatory newline so the
        // line scanner resynchronizes even when the data lacks one.
        if (pos >= payload.size() || payload[pos] != '\n') {
          error = "inline trace data missing terminator";
          return false;
        }
        ++pos;
        out.traces.push_back(std::move(t));
      } else {
        error = "trace expects 'path' or 'inline'";
        return false;
      }
    } else {
      error = "unknown directive '" + std::string(word) + "'";
      return false;
    }
  }
  if (out.suite_scales == 0 && out.traces.empty()) {
    error = "no input traces (use suite or trace directives)";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Done / error payloads.

std::string encode_done(const ExploreSummary& s) {
  std::string out;
  out += "traces " + std::to_string(s.traces) + "\n";
  out += "evaluations " + std::to_string(s.evaluations) + "\n";
  out += "cache_hits " + std::to_string(s.cache_hits) + "\n";
  out += "disk_hits " + std::to_string(s.disk_hits) + "\n";
  out += "errors " + std::to_string(s.errors) + "\n";
  return out;
}

bool parse_done(std::string_view payload, ExploreSummary& out) {
  out = ExploreSummary{};
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) return false;
    std::uint64_t v = 0;
    if (!parse_u64(line.substr(sp + 1), v)) return false;
    const std::string_view key = line.substr(0, sp);
    if (key == "traces") out.traces = v;
    else if (key == "evaluations") out.evaluations = v;
    else if (key == "cache_hits") out.cache_hits = v;
    else if (key == "disk_hits") out.disk_hits = v;
    else if (key == "errors") out.errors = v;
    // Unknown keys are ignored: summaries may grow fields.
  }
  return true;
}

std::string encode_error(const ErrorInfo& e) {
  return e.code + "\n" + e.message;
}

bool parse_error(std::string_view payload, ErrorInfo& out) {
  const std::size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) {
    out.code = std::string(payload);
    out.message.clear();
  } else {
    out.code = std::string(payload.substr(0, eol));
    out.message = std::string(payload.substr(eol + 1));
  }
  return !out.code.empty();
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (fallback request mode only).

namespace {

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const char* msg) {
    if (error->empty())
      *error = std::string(msg) + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 32) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool parse_bool(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (text[pos] == 't') {
      out.boolean = true;
      return literal("true");
    }
    out.boolean = false;
    return literal("false");
  }

  bool parse_null(JsonValue& out) {
    out.type = JsonValue::Type::kNull;
    return literal("null");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty())
      return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  bool hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos;  // opening quote
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control byte in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp > 0x7f) return fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(cp));
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      JsonValue elem;
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      // First occurrence wins on duplicate keys (find() scans in order).
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

bool JsonValue::as_u64(std::uint64_t& out) const {
  if (type != Type::kNumber) return false;
  if (number < 0 || number > 9007199254740992.0) return false;  // 2^53
  const std::uint64_t v = static_cast<std::uint64_t>(number);
  if (static_cast<double>(v) != number) return false;
  out = v;
  return true;
}

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  error.clear();
  JsonParser p{text, 0, &error};
  if (!p.parse_value(out, 0)) return false;
  p.skip_ws();
  if (p.pos != text.size()) {
    error = "trailing bytes after JSON value";
    return false;
  }
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

// Converts one "options" object member to the shared key/value form and
// validates it exactly like the binary grammar does.
bool json_option(const std::string& key, const JsonValue& v,
                 ExploreRequest& req, std::string& error) {
  std::string value;
  switch (v.type) {
    case JsonValue::Type::kBool:
      if (!v.boolean) {
        error = "option '" + key + "': flag options must be true or omitted";
        return false;
      }
      break;  // flag: empty value
    case JsonValue::Type::kNumber: {
      std::uint64_t n = 0;
      if (!v.as_u64(n)) {
        error = "option '" + key + "': expected a non-negative integer";
        return false;
      }
      value = std::to_string(n);
      break;
    }
    case JsonValue::Type::kString:
      value = v.string;
      break;
    case JsonValue::Type::kArray: {
      // archs-style lists may be given as an array of strings.
      for (const JsonValue& e : v.array) {
        if (e.type != JsonValue::Type::kString) {
          error = "option '" + key + "': array elements must be strings";
          return false;
        }
        if (!value.empty()) value += ",";
        value += e.string;
      }
      break;
    }
    default:
      error = "option '" + key + "': unsupported value type";
      return false;
  }
  core::ExploreOptions scratch;
  if (!apply_explore_option(scratch, key, value, error)) return false;
  req.options.emplace_back(key, value);
  return true;
}

}  // namespace

bool parse_json_request(std::string_view line, JsonRequest& out,
                        std::string& error) {
  out = JsonRequest{};
  JsonValue root;
  if (!parse_json(line, root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  const JsonValue* op = root.find("op");
  if (!op || op->type != JsonValue::Type::kString) {
    error = "request needs a string \"op\" field";
    return false;
  }
  if (op->string == "ping") {
    out.kind = JsonRequestKind::kPing;
    return true;
  }
  if (op->string == "admin") {
    out.kind = JsonRequestKind::kAdmin;
    const JsonValue* cmd = root.find("command");
    if (!cmd || cmd->type != JsonValue::Type::kString || cmd->string.empty()) {
      error = "admin request needs a non-empty string \"command\"";
      return false;
    }
    out.admin_command = cmd->string;
    return true;
  }
  if (op->string != "explore") {
    error = "unknown op '" + op->string + "'";
    return false;
  }
  out.kind = JsonRequestKind::kExplore;
  ExploreRequest& req = out.explore;

  if (const JsonValue* fmt = root.find("format")) {
    if (fmt->type != JsonValue::Type::kString ||
        (fmt->string != "csv" && fmt->string != "json")) {
      error = "format must be \"csv\" or \"json\"";
      return false;
    }
    req.format = fmt->string;
  }
  if (const JsonValue* suite = root.find("suite")) {
    if (suite->type != JsonValue::Type::kObject) {
      error = "suite must be an object {\"scales\":N,\"base\":\"WxH\"}";
      return false;
    }
    const JsonValue* scales = suite->find("scales");
    std::uint64_t n = 0;
    if (!scales || !scales->as_u64(n) || n == 0) {
      error = "suite.scales must be a positive integer";
      return false;
    }
    req.suite_scales = static_cast<std::size_t>(n);
    if (const JsonValue* base = suite->find("base")) {
      if (base->type != JsonValue::Type::kString ||
          !parse_geometry_sv(base->string, req.suite_base)) {
        error = "suite.base must be \"WxH\" (e.g. \"8x8\")";
        return false;
      }
    }
  }
  if (const JsonValue* options = root.find("options")) {
    if (options->type != JsonValue::Type::kObject) {
      error = "options must be an object";
      return false;
    }
    for (const auto& [key, value] : options->object)
      if (!json_option(key, value, req, error)) return false;
  }
  if (const JsonValue* traces = root.find("traces")) {
    if (traces->type != JsonValue::Type::kArray) {
      error = "traces must be an array";
      return false;
    }
    for (const JsonValue& t : traces->array) {
      if (t.type != JsonValue::Type::kObject) {
        error = "each trace must be an object";
        return false;
      }
      const JsonValue* path = t.find("path");
      const JsonValue* inline_data = t.find("inline");
      if ((path != nullptr) == (inline_data != nullptr)) {
        error = "each trace needs exactly one of \"path\" or \"inline\"";
        return false;
      }
      TraceSource src;
      if (path) {
        if (path->type != JsonValue::Type::kString || path->string.empty()) {
          error = "trace path must be a non-empty string";
          return false;
        }
        src.kind = TraceSource::Kind::kPath;
        src.name = path->string;
      } else {
        if (inline_data->type != JsonValue::Type::kString) {
          error = "inline trace data must be a string";
          return false;
        }
        src.kind = TraceSource::Kind::kInline;
        src.data = inline_data->string;
        if (const JsonValue* name = t.find("name")) {
          if (name->type != JsonValue::Type::kString) {
            error = "trace name must be a string";
            return false;
          }
          src.name = name->string;
        }
      }
      req.traces.push_back(std::move(src));
    }
  }
  if (req.suite_scales == 0 && req.traces.empty()) {
    error = "no input traces (use suite or traces)";
    return false;
  }
  return true;
}

std::string json_explore_request(const ExploreRequest& req) {
  std::string out = "{\"op\":\"explore\",\"format\":\"" +
                    json_escape(req.format) + "\"";
  if (req.suite_scales > 0) {
    out += ",\"suite\":{\"scales\":" + std::to_string(req.suite_scales) +
           ",\"base\":\"" + std::to_string(req.suite_base.width) + "x" +
           std::to_string(req.suite_base.height) + "\"}";
  }
  if (!req.options.empty()) {
    out += ",\"options\":{";
    bool first = true;
    for (const auto& [key, value] : req.options) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(key) + "\":";
      // Flags serialize as true; valued options as strings (the option
      // applier parses numeric values from strings either way).
      out += value.empty() ? "true" : "\"" + json_escape(value) + "\"";
    }
    out += "}";
  }
  if (!req.traces.empty()) {
    out += ",\"traces\":[";
    bool first = true;
    for (const TraceSource& t : req.traces) {
      if (!first) out += ",";
      first = false;
      if (t.kind == TraceSource::Kind::kPath) {
        out += "{\"path\":\"" + json_escape(t.name) + "\"}";
      } else {
        out += "{\"inline\":\"" + json_escape(t.data) + "\"";
        if (!t.name.empty()) out += ",\"name\":\"" + json_escape(t.name) + "\"";
        out += "}";
      }
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

std::string json_admin_request(std::string_view command) {
  return "{\"op\":\"admin\",\"command\":\"" + json_escape(command) + "\"}\n";
}

std::string json_ping_request() { return "{\"op\":\"ping\"}\n"; }

std::string json_explore_reply(std::string_view report,
                               const ExploreSummary& s) {
  std::string out = "{\"ok\":true,\"report\":\"";
  out += json_escape(report);
  out += "\",\"traces\":" + std::to_string(s.traces);
  out += ",\"evaluations\":" + std::to_string(s.evaluations);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"disk_hits\":" + std::to_string(s.disk_hits);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += "}\n";
  return out;
}

std::string json_admin_reply(std::string_view output) {
  return "{\"ok\":true,\"output\":\"" + json_escape(output) + "\"}\n";
}

std::string json_pong_reply(std::string_view banner) {
  return "{\"ok\":true,\"pong\":\"" + json_escape(banner) + "\"}\n";
}

std::string json_error_reply(const ErrorInfo& e) {
  return "{\"ok\":false,\"code\":\"" + json_escape(e.code) +
         "\",\"message\":\"" + json_escape(e.message) + "\"}\n";
}

}  // namespace addm::serve
