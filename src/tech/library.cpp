#include "tech/library.hpp"

namespace addm::tech {

using netlist::CellType;

Library Library::generic_180nm() {
  // Calibration notes:
  //  * Areas follow typical 0.18um standard-cell footprints (NAND2 ~= 10
  //    units, DFF ~= 4.7x NAND2, enable/reset variants larger). With these
  //    values a 256-stage token ring comes out near 12k cell units, matching
  //    the magnitude of the paper's Figure 4.
  //  * Intrinsic delays / slopes give gate stages of 50-120ps and flip-flop
  //    clk-to-Q near 300ps, so address-generator critical paths land in the
  //    0.5-3ns band the paper reports.
  Library lib;
  lib.params(CellType::Inv)   = {6.6, 0.030, 0.0080, 0.0, 0.0};
  lib.params(CellType::Buf)   = {9.9, 0.055, 0.0045, 0.0, 0.0};
  lib.params(CellType::Nand2) = {9.9, 0.045, 0.0110, 0.0, 0.0};
  lib.params(CellType::Nor2)  = {9.9, 0.055, 0.0130, 0.0, 0.0};
  lib.params(CellType::And2)  = {13.2, 0.072, 0.0095, 0.0, 0.0};
  lib.params(CellType::Or2)   = {13.2, 0.080, 0.0095, 0.0, 0.0};
  lib.params(CellType::Xor2)  = {23.1, 0.105, 0.0120, 0.0, 0.0};
  lib.params(CellType::Xnor2) = {23.1, 0.105, 0.0120, 0.0, 0.0};
  lib.params(CellType::Mux2)  = {23.1, 0.095, 0.0105, 0.0, 0.0};
  lib.params(CellType::Dff)   = {46.2, 0.0, 0.0100, 0.28, 0.12};
  lib.params(CellType::DffR)  = {52.8, 0.0, 0.0100, 0.30, 0.14};
  lib.params(CellType::DffS)  = {52.8, 0.0, 0.0100, 0.30, 0.14};
  lib.params(CellType::DffE)  = {59.4, 0.0, 0.0100, 0.31, 0.15};
  lib.params(CellType::DffER) = {66.0, 0.0, 0.0100, 0.33, 0.16};
  lib.params(CellType::DffES) = {66.0, 0.0, 0.0100, 0.33, 0.16};
  lib.wire_delay_per_fanout = 0.0035;
  lib.energy_per_area_toggle = 0.0021;  // pJ per cell-unit per output toggle
  return lib;
}

}  // namespace addm::tech
