// Technology library: per-cell area and timing for a generic 0.18um-class
// standard-cell process.
//
// The paper's numbers come from Synopsys Design Compiler on a 0.18um CMOS
// library; we substitute a calibrated generic library (see DESIGN.md, section
// 2). Areas are in "cell units" (um^2-like); delays in nanoseconds with a
// linear fanout-load model:
//
//    stage delay = intrinsic + (slope + wire_delay_per_fanout) * fanout
//
// where `fanout` is the number of pins reading the driven net. Flip-flops
// additionally have a clock-to-Q delay (launch) and a setup time (capture).
#pragma once

#include <array>

#include "netlist/cell.hpp"

namespace addm::tech {

/// Timing/area data for one cell type.
struct CellParams {
  double area = 0.0;       ///< cell units (um^2-like)
  double intrinsic = 0.0;  ///< ns, input-to-output for combinational cells
  double slope = 0.0;      ///< ns per fanout load on the output
  double clk_to_q = 0.0;   ///< ns, flip-flops only
  double setup = 0.0;      ///< ns, flip-flops only (applies to D/EN/RST pins)
};

/// A complete library: one CellParams per CellType plus global constants.
class Library {
 public:
  /// The default calibrated 0.18um-like library used by all experiments.
  static Library generic_180nm();

  const CellParams& params(netlist::CellType t) const {
    return params_[static_cast<int>(t)];
  }
  CellParams& params(netlist::CellType t) { return params_[static_cast<int>(t)]; }

  /// Extra per-fanout wire delay added to every stage (ns/load). Models the
  /// estimated-wire-load tables a 2002 synthesis flow would use.
  double wire_delay_per_fanout = 0.0;

  /// Drive-strength derating (X1/X2/X4). Stronger variants are larger,
  /// marginally slower unloaded, and far less load-sensitive.
  static double drive_area_factor(int drive) {
    return drive == 4 ? 2.1 : drive == 2 ? 1.4 : 1.0;
  }
  static double drive_slope_factor(int drive) {
    return drive == 4 ? 0.30 : drive == 2 ? 0.55 : 1.0;
  }
  static double drive_intrinsic_factor(int drive) {
    return drive == 4 ? 1.12 : drive == 2 ? 1.05 : 1.0;
  }

  /// Switching energy scale: pJ per (cell-unit of driver area) per toggle.
  /// Used by the activity-based power estimate.
  double energy_per_area_toggle = 0.0;

 private:
  std::array<CellParams, netlist::kNumCellTypes> params_{};
};

}  // namespace addm::tech
