// Max-fanout buffer-tree insertion.
//
// High-fanout control nets (shift-register enables, counter bits feeding
// decoders) dominate address-generator delay at large array sizes; a real
// synthesis flow repairs them with buffer trees. This pass rewires every net
// whose fanout exceeds `max_fanout` through a balanced tree of BUF cells so
// that no net (original or inserted) drives more than `max_fanout` pins.
#pragma once

#include "netlist/netlist.hpp"

namespace addm::tech {

struct BufferingStats {
  std::size_t nets_repaired = 0;
  std::size_t buffers_added = 0;
  int max_tree_depth = 0;  ///< deepest inserted buffer chain
};

/// Default fanout bound used by all experiments (typical of 0.18um flows).
inline constexpr int kDefaultMaxFanout = 12;

/// Inserts buffer trees in place. `max_fanout` must be >= 2.
BufferingStats insert_buffers(netlist::Netlist& nl, int max_fanout = kDefaultMaxFanout);

}  // namespace addm::tech
