#include "tech/buffering.hpp"

#include <stdexcept>
#include <vector>

namespace addm::tech {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

// One pin reading a net: either a cell input pin or a primary-output slot.
struct Sink {
  bool is_po;
  std::size_t index;  // cell index or PO index
  int pin;            // pin number for cells
};

void rewire(Netlist& nl, const Sink& s, NetId net) {
  if (s.is_po)
    nl.set_output_net(s.index, net);
  else
    nl.set_cell_input(s.index, s.pin, net);
}

}  // namespace

BufferingStats insert_buffers(Netlist& nl, int max_fanout) {
  if (max_fanout < 2) throw std::invalid_argument("insert_buffers: max_fanout < 2");
  BufferingStats stats;

  const std::size_t original_nets = nl.num_nets();
  const std::size_t original_cells = nl.cells().size();

  // Snapshot sinks per net before any rewiring.
  std::vector<std::vector<Sink>> sinks(original_nets);
  for (std::size_t ci = 0; ci < original_cells; ++ci) {
    const auto& inputs = nl.cell(ci).inputs;
    for (std::size_t pin = 0; pin < inputs.size(); ++pin)
      sinks[inputs[pin]].push_back(Sink{false, ci, static_cast<int>(pin)});
  }
  for (std::size_t oi = 0; oi < nl.outputs().size(); ++oi)
    sinks[nl.outputs()[oi]].push_back(Sink{true, oi, 0});

  const auto group_size = static_cast<std::size_t>(max_fanout);
  for (NetId net = 2; net < original_nets; ++net) {  // skip constant nets
    if (sinks[net].size() <= group_size) continue;
    ++stats.nets_repaired;

    // Bottom-up tree construction. Each round groups the current sink list
    // into chunks of `max_fanout`; every chunk is fed by a new BUF whose
    // input pin joins the next round.
    std::vector<Sink> level = std::move(sinks[net]);
    int depth = 0;
    while (level.size() > group_size) {
      ++depth;
      std::vector<Sink> next;
      next.reserve((level.size() + group_size - 1) / group_size);
      for (std::size_t start = 0; start < level.size(); start += group_size) {
        const NetId buf_out = nl.new_net();
        // Temporarily drive the buffer from the root; the final round may
        // rewire its input to a higher-level buffer.
        const std::size_t buf_cell = nl.add_cell(CellType::Buf, {net}, buf_out);
        ++stats.buffers_added;
        const std::size_t end = std::min(start + group_size, level.size());
        for (std::size_t i = start; i < end; ++i) rewire(nl, level[i], buf_out);
        next.push_back(Sink{false, buf_cell, 0});
      }
      level = std::move(next);
    }
    // `level` (<= max_fanout entries) stays connected to the root net.
    for (const Sink& s : level) rewire(nl, s, net);
    stats.max_tree_depth = std::max(stats.max_tree_depth, depth);
  }
  return stats;
}

}  // namespace addm::tech
