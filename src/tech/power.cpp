#include "tech/power.hpp"

#include <stdexcept>

namespace addm::tech {

using netlist::Netlist;
using netlist::NetId;

PowerReport estimate_power(const Netlist& nl, const Library& lib,
                           std::span<const std::uint64_t> toggles, double sim_time_ns) {
  if (toggles.size() < nl.num_nets())
    throw std::invalid_argument("estimate_power: toggle vector too small");
  if (sim_time_ns <= 0.0) throw std::invalid_argument("estimate_power: non-positive time");

  constexpr double kLoadWeightAreaUnits = 2.0;  // effective area per fanout pin
  const auto fanout = nl.fanout_counts();

  PowerReport r;
  for (const netlist::Cell& c : nl.cells()) {
    const NetId out = c.output;
    const std::uint64_t t = toggles[out];
    if (t == 0) continue;
    const double eff_area =
        lib.params(c.type).area * Library::drive_area_factor(c.drive) +
        kLoadWeightAreaUnits * static_cast<double>(fanout[out]);
    r.total_energy_pj += lib.energy_per_area_toggle * eff_area * static_cast<double>(t);
    r.total_toggles += t;
  }
  // Primary-input toggles charge the loads they drive (driver area ~ 0).
  for (NetId n : nl.inputs()) {
    const std::uint64_t t = toggles[n];
    if (t == 0) continue;
    r.total_energy_pj += lib.energy_per_area_toggle * kLoadWeightAreaUnits *
                         static_cast<double>(fanout[n]) * static_cast<double>(t);
    r.total_toggles += t;
  }
  r.avg_power_mw = r.total_energy_pj / sim_time_ns;
  return r;
}

}  // namespace addm::tech
