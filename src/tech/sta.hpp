// Static timing analysis over a netlist + library.
//
// Arrival times propagate through the combinational network in topological
// order with the linear fanout-load model from library.hpp. Four path groups
// are reported; the paper's per-generator "delay" figures correspond to
// `critical_path_ns` (the minimum clock period the generator supports, i.e.
// what Design Compiler reports as the design's critical path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "tech/library.hpp"

namespace addm::tech {

/// Timing summary. All values in ns; groups with no paths report 0.
struct TimingReport {
  double critical_path_ns = 0.0;    ///< max of the four groups below
  double reg_to_reg_ns = 0.0;       ///< clk-to-Q + logic + setup
  double clk_to_output_ns = 0.0;    ///< clk-to-Q + logic to a primary output
  double input_to_reg_ns = 0.0;     ///< primary input + logic + setup
  double input_to_output_ns = 0.0;  ///< pure combinational feed-through
  /// Nets along the overall critical path, endpoint last.
  std::vector<netlist::NetId> critical_nets;
};

/// Per-type and total area.
struct AreaReport {
  double total = 0.0;
  double by_type[netlist::kNumCellTypes] = {};
  std::size_t cells = 0;

  double of(netlist::CellType t) const { return by_type[static_cast<int>(t)]; }
};

/// Runs STA. Throws std::invalid_argument on a combinational loop.
TimingReport analyze_timing(const netlist::Netlist& nl, const Library& lib);

/// Sums cell areas.
AreaReport analyze_area(const netlist::Netlist& nl, const Library& lib);

/// Human-readable one-line summary ("area=... cells crit=...ns (reg->reg ...)").
std::string summarize(const TimingReport& t, const AreaReport& a);

}  // namespace addm::tech
