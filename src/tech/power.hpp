// Activity-based dynamic power estimation (the paper lists power as future
// work; we provide the study as an extension experiment).
//
// Energy model: each output toggle of a cell dissipates energy proportional
// to the driving cell's area plus the capacitive load it switches:
//
//   E_toggle(net) = k * (area(driver) + load_weight * fanout(net))   [pJ]
//
// with k = Library::energy_per_area_toggle. Toggle counts come from the
// cycle simulator. Power = total energy / simulated time.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/netlist.hpp"
#include "tech/library.hpp"

namespace addm::tech {

struct PowerReport {
  double total_energy_pj = 0.0;
  double avg_power_mw = 0.0;  ///< pJ/ns == mW
  std::uint64_t total_toggles = 0;
};

/// `toggles[net]` = number of value changes observed on that net;
/// `sim_time_ns` = cycles simulated * clock period.
PowerReport estimate_power(const netlist::Netlist& nl, const Library& lib,
                           std::span<const std::uint64_t> toggles, double sim_time_ns);

}  // namespace addm::tech
