// Gate sizing: assigns X1/X2/X4 drive strengths.
//
// Two stages, mirroring a timing-driven synthesis flow:
//  1. Load-based rule: cells driving more pins than the X1/X2 comfort
//     thresholds are upsized so heavily loaded stages stop dominating.
//  2. Critical-path repair: iteratively upsize the cells along the current
//     critical path (one step each) while the critical path keeps improving.
//
// Sizing trades area for delay; bench_ablation_sizing quantifies the trade
// on the paper's generators.
#pragma once

#include "netlist/netlist.hpp"
#include "tech/library.hpp"

namespace addm::tech {

struct SizingOptions {
  int x2_fanout_threshold = 5;  ///< fanout above this -> at least X2
  int x4_fanout_threshold = 9;  ///< fanout above this -> X4
  int max_repair_rounds = 8;    ///< critical-path upsizing iterations
  double min_gain_ns = 1e-4;    ///< stop when a round improves less than this
};

struct SizingStats {
  std::size_t upsized_x2 = 0;
  std::size_t upsized_x4 = 0;
  int repair_rounds = 0;
  double delay_before_ns = 0.0;
  double delay_after_ns = 0.0;
};

/// Sizes gates in place. The netlist must be loop-free (STA runs inside).
SizingStats size_gates(netlist::Netlist& nl, const Library& lib,
                       const SizingOptions& opt = {});

}  // namespace addm::tech
