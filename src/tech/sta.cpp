#include "tech/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace addm::tech {

using netlist::Cell;
using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {
constexpr double kNoPath = -std::numeric_limits<double>::infinity();

struct Arrival {
  double from_reg = kNoPath;  // paths launched at a flip-flop Q
  double from_pi = kNoPath;   // paths launched at a primary input
  NetId pred = netlist::kInvalidNet;

  double combined() const { return std::max(from_reg, from_pi); }
};
}  // namespace

TimingReport analyze_timing(const Netlist& nl, const Library& lib) {
  const auto order = nl.topo_order();
  if (!order) throw std::invalid_argument("analyze_timing: combinational loop");
  const auto fanout = nl.fanout_counts();
  const double wire = lib.wire_delay_per_fanout;

  auto load_delay = [&](const Cell& c, NetId out) {
    const double slope =
        lib.params(c.type).slope * Library::drive_slope_factor(c.drive);
    return (slope + wire) * static_cast<double>(fanout[out]);
  };

  std::vector<Arrival> arr(nl.num_nets());
  for (NetId n : nl.inputs()) arr[n].from_pi = 0.0;
  // Launch points: flip-flop outputs.
  for (const Cell& c : nl.cells()) {
    if (!is_sequential(c.type)) continue;
    const CellParams& p = lib.params(c.type);
    arr[c.output].from_reg =
        p.clk_to_q * Library::drive_intrinsic_factor(c.drive) + load_delay(c, c.output);
  }
  // Propagate through combinational cells in dependency order.
  for (std::size_t ci : *order) {
    const Cell& c = nl.cell(ci);
    const CellParams& p = lib.params(c.type);
    Arrival& out = arr[c.output];
    for (NetId in : c.inputs) {
      const Arrival& a = arr[in];
      const double stage = p.intrinsic * Library::drive_intrinsic_factor(c.drive) +
                           load_delay(c, c.output);
      if (a.from_reg != kNoPath && a.from_reg + stage > out.from_reg) {
        out.from_reg = a.from_reg + stage;
        if (a.combined() >= out.combined() - stage) out.pred = in;
      }
      if (a.from_pi != kNoPath && a.from_pi + stage > out.from_pi) {
        out.from_pi = a.from_pi + stage;
        if (a.combined() >= out.combined() - stage) out.pred = in;
      }
    }
  }

  TimingReport r;
  NetId worst_end = netlist::kInvalidNet;
  double worst = kNoPath;
  auto consider = [&](double v, double& slot, NetId endpoint) {
    if (v == kNoPath) return;
    slot = std::max(slot, v);
    if (v > worst) {
      worst = v;
      worst_end = endpoint;
    }
  };

  // Capture points: flip-flop data/enable/reset pins.
  for (const Cell& c : nl.cells()) {
    if (!is_sequential(c.type)) continue;
    const double setup = lib.params(c.type).setup;
    for (NetId in : c.inputs) {
      if (arr[in].from_reg != kNoPath)
        consider(arr[in].from_reg + setup, r.reg_to_reg_ns, in);
      if (arr[in].from_pi != kNoPath)
        consider(arr[in].from_pi + setup, r.input_to_reg_ns, in);
    }
  }
  // Primary outputs.
  for (NetId out : nl.outputs()) {
    if (arr[out].from_reg != kNoPath) consider(arr[out].from_reg, r.clk_to_output_ns, out);
    if (arr[out].from_pi != kNoPath) consider(arr[out].from_pi, r.input_to_output_ns, out);
  }

  r.critical_path_ns = std::max({r.reg_to_reg_ns, r.clk_to_output_ns, r.input_to_reg_ns,
                                 r.input_to_output_ns, 0.0});
  // Trace the critical path back through predecessor nets.
  for (NetId n = worst_end; n != netlist::kInvalidNet;) {
    r.critical_nets.push_back(n);
    n = arr[n].pred;
    if (r.critical_nets.size() > nl.num_nets()) break;  // defensive
  }
  std::reverse(r.critical_nets.begin(), r.critical_nets.end());
  return r;
}

AreaReport analyze_area(const Netlist& nl, const Library& lib) {
  AreaReport a;
  for (const Cell& c : nl.cells()) {
    const double cell_area =
        lib.params(c.type).area * Library::drive_area_factor(c.drive);
    a.total += cell_area;
    a.by_type[static_cast<int>(c.type)] += cell_area;
    ++a.cells;
  }
  return a;
}

std::string summarize(const TimingReport& t, const AreaReport& a) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "area=" << a.total << " units (" << a.cells << " cells), crit="
     << t.critical_path_ns << " ns (reg2reg=" << t.reg_to_reg_ns
     << ", clk2out=" << t.clk_to_output_ns << ", in2reg=" << t.input_to_reg_ns << ")";
  return os.str();
}

}  // namespace addm::tech
