#include "tech/sizing.hpp"

#include "tech/sta.hpp"

namespace addm::tech {

using netlist::Netlist;
using netlist::NetId;

SizingStats size_gates(Netlist& nl, const Library& lib, const SizingOptions& opt) {
  SizingStats stats;
  stats.delay_before_ns = analyze_timing(nl, lib).critical_path_ns;

  // Stage 1: load-based assignment.
  const auto fanout = nl.fanout_counts();
  for (std::size_t ci = 0; ci < nl.cells().size(); ++ci) {
    const auto fo = static_cast<int>(fanout[nl.cell(ci).output]);
    if (fo > opt.x4_fanout_threshold) {
      nl.set_cell_drive(ci, 4);
      ++stats.upsized_x4;
    } else if (fo > opt.x2_fanout_threshold) {
      nl.set_cell_drive(ci, 2);
      ++stats.upsized_x2;
    }
  }

  // Stage 2: critical-path repair.
  double current = analyze_timing(nl, lib).critical_path_ns;
  for (int round = 0; round < opt.max_repair_rounds; ++round) {
    const TimingReport t = analyze_timing(nl, lib);
    // Upsize every cell driving a net on the critical path by one step.
    std::vector<std::size_t> touched;
    for (NetId n : t.critical_nets) {
      const auto drv = nl.driver_of(n);
      if (!drv) continue;
      const int d = nl.cell(*drv).drive;
      if (d >= 4) continue;
      nl.set_cell_drive(*drv, d == 1 ? 2 : 4);
      touched.push_back(*drv);
    }
    if (touched.empty()) break;
    const double after = analyze_timing(nl, lib).critical_path_ns;
    if (current - after < opt.min_gain_ns) {
      // No real gain: revert this round and stop.
      for (std::size_t ci : touched) {
        const int d = nl.cell(ci).drive;
        nl.set_cell_drive(ci, d == 4 ? 2 : 1);
      }
      break;
    }
    current = after;
    ++stats.repair_rounds;
  }
  stats.delay_after_ns = analyze_timing(nl, lib).critical_path_ns;
  return stats;
}

}  // namespace addm::tech
