// Sequence analysis helpers used by the SRAG mapping procedure (Section 5)
// and by tests/benches.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace addm::seq {

/// Lengths of maximal runs of equal consecutive elements — the paper's
/// division-count set D for a sequence I.
std::vector<std::uint32_t> run_lengths(std::span<const std::uint32_t> seq);

/// True if all elements are equal (and the span is non-empty).
bool all_equal(std::span<const std::uint32_t> xs);

/// Collapses each run of equal consecutive elements to one element — the
/// paper's reduced sequence R.
std::vector<std::uint32_t> collapse_runs(std::span<const std::uint32_t> seq);

/// Elements in order of first appearance — the paper's unique sequence U.
std::vector<std::uint32_t> unique_in_order(std::span<const std::uint32_t> seq);

/// occurrences[k] = how often unique element k appears (the paper's O);
/// first_pos[k] = index of its first appearance (the paper's Z).
struct OccurrenceInfo {
  std::vector<std::uint32_t> occurrences;
  std::vector<std::uint32_t> first_pos;
};
OccurrenceInfo occurrence_info(std::span<const std::uint32_t> reduced,
                               std::span<const std::uint32_t> unique);

/// Smallest p such that seq[i] == seq[i+p] for all i (seq.size() if aperiodic).
std::size_t smallest_period(std::span<const std::uint32_t> seq);

/// True if seq visits each of 0..n-1 exactly once.
bool is_permutation_of_range(std::span<const std::uint32_t> seq, std::uint32_t n);

}  // namespace addm::seq
