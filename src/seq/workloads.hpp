// Workload generators: the address sequences the paper evaluates plus a few
// classic image-processing patterns used by the extension experiments.
//
// All generators return linear-address traces over a row-major array; the
// mapping procedure splits them into RowAS/ColAS itself.
#pragma once

#include "seq/trace.hpp"

namespace addm::seq {

/// Parameters of the block-matching motion-estimation kernel (Figure 7).
struct MotionEstimationParams {
  std::size_t img_width = 0;
  std::size_t img_height = 0;
  std::size_t mb_width = 0;   ///< macroblock width (divides img_width)
  std::size_t mb_height = 0;  ///< macroblock height (divides img_height)
  int m = 0;                  ///< search range; the paper's example uses m=0

  void check() const;  ///< throws std::invalid_argument on bad parameters
};

/// Read sequence of new_img produced by the Figure-7 loop nest. With m==0 the
/// i/j search loops degenerate to a single pass (the paper's Table 1 data);
/// with m>0 each block is re-scanned (2m)^2 times, which the SRAG absorbs in
/// its pass count.
AddressTrace motion_estimation_read(const MotionEstimationParams& p);

/// Write (production) sequence of new_img: the paper assumes incremental
/// LinAS 0,1,...,N-1 — identical to FIFO order.
AddressTrace incremental(ArrayGeometry g);
inline AddressTrace fifo(ArrayGeometry g) { return incremental(g); }

/// Separable-DCT access: each `block x block` tile (raster order over tiles)
/// is read column-by-column — the transposed pass of a separable transform
/// on a row-major array. This is our concretization of the paper's "dct"
/// sequence (see DESIGN.md).
AddressTrace dct_block_column_read(ArrayGeometry g, std::size_t block = 8);

/// Zoom-by-two source reads: producing a 2x-scaled output in raster order
/// reads source pixel (r/2, c/2) for every output pixel (r, c). The trace
/// addresses the source array of geometry `g`.
AddressTrace zoom_by_two_read(ArrayGeometry g);

/// Column-major scan (array transpose read).
AddressTrace transpose_read(ArrayGeometry g);

/// Raster scan of each `bw x bh` block, blocks in raster order (the
/// generalized Table-1 pattern).
AddressTrace block_raster(ArrayGeometry g, std::size_t bw, std::size_t bh);

/// Every `stride`-th element, wrapping until all are visited (gcd(stride,
/// size) must be 1 for full coverage; not enforced).
AddressTrace strided(ArrayGeometry g, std::size_t stride);

/// JPEG-style zigzag scan over the whole array (anti-diagonals, alternating
/// direction). Deliberately SRAG-hostile: its row/column sequences have
/// irregular run structure, so it exercises the mapper's rejection paths and
/// the explorer's fallback to CntAG.
AddressTrace zigzag(ArrayGeometry g);

/// Each address repeated `repeat` times consecutively.
AddressTrace repeat_each(const AddressTrace& t, std::size_t repeat);

/// The standard workload suite: one instance of every generator above on the
/// given geometry (motion estimation uses a macroblock tiling derived from
/// `g`; block patterns use blocks that divide the geometry). Trace names are
/// suffixed with "_<width>x<height>" so suites over several geometries can
/// be mixed in one batch without name collisions.
///
/// Requires an even width/height of at least 4 so every pattern applies;
/// throws std::invalid_argument otherwise.
std::vector<AddressTrace> standard_suite(ArrayGeometry g);

/// standard_suite over `scales` doubling geometries starting at `base`
/// (base, then 2x width, then 2x height, alternating) — the batch
/// explorer's stock multi-trace workload.
std::vector<AddressTrace> scaled_suite(ArrayGeometry base, std::size_t scales);

}  // namespace addm::seq
