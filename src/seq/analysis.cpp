#include "seq/analysis.hpp"

#include <unordered_map>
#include <unordered_set>

namespace addm::seq {

std::vector<std::uint32_t> run_lengths(std::span<const std::uint32_t> seq) {
  std::vector<std::uint32_t> d;
  std::size_t i = 0;
  while (i < seq.size()) {
    std::size_t j = i + 1;
    while (j < seq.size() && seq[j] == seq[i]) ++j;
    d.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
  return d;
}

bool all_equal(std::span<const std::uint32_t> xs) {
  if (xs.empty()) return false;
  for (std::uint32_t x : xs)
    if (x != xs.front()) return false;
  return true;
}

std::vector<std::uint32_t> collapse_runs(std::span<const std::uint32_t> seq) {
  std::vector<std::uint32_t> r;
  for (std::size_t i = 0; i < seq.size(); ++i)
    if (i == 0 || seq[i] != seq[i - 1]) r.push_back(seq[i]);
  return r;
}

std::vector<std::uint32_t> unique_in_order(std::span<const std::uint32_t> seq) {
  std::vector<std::uint32_t> u;
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t x : seq)
    if (seen.insert(x).second) u.push_back(x);
  return u;
}

OccurrenceInfo occurrence_info(std::span<const std::uint32_t> reduced,
                               std::span<const std::uint32_t> unique) {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t k = 0; k < unique.size(); ++k) index.emplace(unique[k], k);
  OccurrenceInfo info;
  info.occurrences.assign(unique.size(), 0);
  info.first_pos.assign(unique.size(), 0);
  std::vector<bool> seen(unique.size(), false);
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    const auto it = index.find(reduced[i]);
    if (it == index.end()) continue;  // element not in `unique`; caller's bug
    const std::size_t k = it->second;
    ++info.occurrences[k];
    if (!seen[k]) {
      seen[k] = true;
      info.first_pos[k] = static_cast<std::uint32_t>(i);
    }
  }
  return info;
}

std::size_t smallest_period(std::span<const std::uint32_t> seq) {
  for (std::size_t p = 1; p < seq.size(); ++p) {
    bool ok = true;
    for (std::size_t i = 0; i + p < seq.size(); ++i)
      if (seq[i] != seq[i + p]) {
        ok = false;
        break;
      }
    if (ok) return p;
  }
  return seq.size();
}

bool is_permutation_of_range(std::span<const std::uint32_t> seq, std::uint32_t n) {
  if (seq.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (std::uint32_t x : seq) {
    if (x >= n || seen[x]) return false;
    seen[x] = true;
  }
  return true;
}

}  // namespace addm::seq
