// Address traces: linear address sequences over a 2-D memory array.
//
// Following Section 5 of the paper, arrays are row-major mapped:
//   linear = row * width + col,   RA = row,   CA = col.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace addm::seq {

/// Dimensions of the 2-D memory cell array (width = img_width = columns).
struct ArrayGeometry {
  std::size_t width = 0;
  std::size_t height = 0;

  std::size_t size() const { return width * height; }
  bool operator==(const ArrayGeometry&) const = default;
};

/// An ordered sequence of linear addresses into a fixed geometry.
class AddressTrace {
 public:
  AddressTrace() = default;
  /// Throws std::invalid_argument if any address is outside the array.
  AddressTrace(ArrayGeometry geom, std::vector<std::uint32_t> linear,
               std::string name = {});

  const ArrayGeometry& geometry() const { return geom_; }
  const std::string& name() const { return name_; }
  /// Renames in place (e.g. to disambiguate suite variants); addresses and
  /// geometry — and thus the trace fingerprint — are unaffected.
  void set_name(std::string name) { name_ = std::move(name); }
  std::size_t length() const { return linear_.size(); }
  bool empty() const { return linear_.empty(); }

  const std::vector<std::uint32_t>& linear() const { return linear_; }
  /// Row address sequence (RowAS).
  std::vector<std::uint32_t> rows() const;
  /// Column address sequence (ColAS).
  std::vector<std::uint32_t> cols() const;

  std::uint32_t row_of(std::uint32_t a) const { return a / static_cast<std::uint32_t>(geom_.width); }
  std::uint32_t col_of(std::uint32_t a) const { return a % static_cast<std::uint32_t>(geom_.width); }

 private:
  ArrayGeometry geom_;
  std::vector<std::uint32_t> linear_;
  std::string name_;
};

}  // namespace addm::seq
