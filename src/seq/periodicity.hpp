// Exact periodicity compression for address traces.
//
// Real recorded traces come from loop nests (Figure 7), so they are
// overwhelmingly periodic: a short warm-up prefix followed by many passes of
// one period.  This module factors a trace into
//
//     prefix + repeats x period + suffix
//
// where the suffix is a partial pass (the first `tail` elements of the
// period), and the factorization is *exact*: expand() reproduces the input
// byte for byte, always — compression is lossless structure recovery, never
// approximation.  Exploration layers that understand the factorization
// (core/explorer's ExploreOptions::compress_periodic) can then evaluate one
// period instead of the whole trace, making cost scale with the period
// rather than the trace length.
//
// Two entry points share one implementation:
//  * compress_periodic(trace)  — batch, for materialized traces;
//  * StreamingCompressor       — push() one address at a time.  Once a
//    period has been observed twice it holds only the period (O(period)
//    memory) and verifies subsequent addresses against it in O(1); an
//    aperiodic stream degrades to buffering everything, which is the
//    information-theoretic floor for exact compression.
//
// When the period is an affine loop-nest enumeration, recover_loop_nest
// reconstructs the seq::LoopNest + AffineAccess formulation (one or two
// counted loops, plus an outer pass loop), re-deriving the declarative
// program a raw recorded stream came from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "seq/loopnest.hpp"
#include "seq/trace.hpp"

namespace addm::seq {

/// Exact factorization prefix + repeats x period + suffix of an address
/// sequence.  The suffix is not stored: it is the first `tail` elements of
/// `period` (tail < period.size() whenever period is non-empty).  An
/// incompressible trace is represented canonically as repeats == 1 with an
/// empty prefix and zero tail; an empty trace has repeats == 0.
struct CompressedTrace {
  ArrayGeometry geometry;
  std::string name;
  std::vector<std::uint32_t> prefix;
  std::vector<std::uint32_t> period;
  std::size_t repeats = 0;  ///< full passes over `period`
  std::size_t tail = 0;     ///< length of the partial final pass

  /// Length of the trace this factorization expands to.
  std::size_t length() const {
    return prefix.size() + repeats * period.size() + tail;
  }
  /// Elements actually stored — the compression cost.
  std::size_t stored() const { return prefix.size() + period.size(); }
  /// True when the whole trace is whole passes of the period (no prefix, no
  /// partial tail) — the only shape a cyclic generator reproduces exactly.
  bool pure() const { return prefix.empty() && tail == 0; }
  /// True when the factorization actually saves anything.
  bool compressed() const { return repeats >= 2; }
  /// The partial final pass, materialized (first `tail` period elements).
  std::vector<std::uint32_t> suffix() const {
    return {period.begin(), period.begin() + static_cast<std::ptrdiff_t>(tail)};
  }

  /// Exact reconstruction of the original trace (geometry and name
  /// included).  expand() of compress_periodic(t) equals t for every t —
  /// the property tests enforce this byte for byte.
  AddressTrace expand() const;
};

/// Online exact compressor.  Feed addresses with push(), then finish().
///
/// Internally this is an incremental smallest-period computation (KMP
/// failure function): while the stream is still aperiodic the whole prefix
/// is buffered ("growing" mode); as soon as the smallest period p of the
/// data seen so far has been observed at least twice, the buffer shrinks to
/// one period ("locked" mode, O(p) memory) and each further address costs
/// one comparison.  A mismatch while locked falls back to growing mode by
/// re-expanding the (exactly known) prefix — correctness is never at risk,
/// only memory.  finish() additionally searches for the cheapest
/// prefix-trimmed factorization when the stream never locked, so warm-up
/// accesses ahead of a periodic kernel do not defeat compression.
class StreamingCompressor {
 public:
  void push(std::uint32_t addr);
  /// Addresses pushed so far.
  std::size_t count() const { return count_; }
  /// Elements currently buffered — O(period) in locked mode; the memory
  /// claim the tests pin.
  std::size_t buffered() const { return buf_.size(); }
  /// True once the compressor holds only one period.
  bool locked() const { return locked_; }

  /// Produces the factorization of everything pushed so far.  The
  /// compressor is left in a valid state (more pushes may follow, and a
  /// later finish() reflects them).
  CompressedTrace finish(ArrayGeometry geometry, std::string name = {}) const;

 private:
  std::vector<std::uint32_t> buf_;   ///< growing: whole prefix; locked: one period
  std::vector<std::size_t> fail_;    ///< KMP failure function (growing mode only)
  std::size_t count_ = 0;
  bool locked_ = false;

  void relock_if_profitable();
};

/// Batch factorization: feeds `trace` through a StreamingCompressor.  Exact
/// for every input; O(length) time, O(length) transient memory.
CompressedTrace compress_periodic(const AddressTrace& trace);

/// A period re-expressed as counted loops + affine row/column access.
struct RecoveredNest {
  LoopNest nest;
  AffineAccess access;
};

/// Attempts to express a *pure* factorization (ct.pure()) as a loop nest:
/// one or two counted loops enumerating the period — rows and columns must
/// both be affine in the induction variables — wrapped in an outer pass
/// loop when repeats >= 2.  On success, nest.trace(access, ct.geometry)
/// equals ct.expand() exactly (property-tested).  Returns nullopt for
/// impure factorizations, empty traces, and periods with no affine
/// 1- or 2-level decomposition.
std::optional<RecoveredNest> recover_loop_nest(const CompressedTrace& ct);

}  // namespace addm::seq
