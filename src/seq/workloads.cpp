#include "seq/workloads.hpp"
#include <algorithm>

#include <iterator>
#include <numeric>
#include <stdexcept>

namespace addm::seq {

namespace {
std::uint32_t lin(const ArrayGeometry& g, std::size_t row, std::size_t col) {
  return static_cast<std::uint32_t>(row * g.width + col);
}
}  // namespace

void MotionEstimationParams::check() const {
  if (img_width == 0 || img_height == 0 || mb_width == 0 || mb_height == 0)
    throw std::invalid_argument("MotionEstimationParams: zero dimension");
  if (img_width % mb_width != 0 || img_height % mb_height != 0)
    throw std::invalid_argument("MotionEstimationParams: macroblock must tile the image");
  if (m < 0) throw std::invalid_argument("MotionEstimationParams: negative search range");
}

AddressTrace motion_estimation_read(const MotionEstimationParams& p) {
  p.check();
  const ArrayGeometry g{p.img_width, p.img_height};
  // With m==0 the search loops of Figure 7 run zero times syntactically, but
  // the paper's Table 1 corresponds to a single residual pass (i=j=0).
  const std::size_t search_iters = p.m == 0 ? 1 : 4 * static_cast<std::size_t>(p.m) *
                                                      static_cast<std::size_t>(p.m);
  std::vector<std::uint32_t> a;
  a.reserve(g.size() * search_iters);
  for (std::size_t gg = 0; gg < p.img_height / p.mb_height; ++gg)
    for (std::size_t hh = 0; hh < p.img_width / p.mb_width; ++hh)
      for (std::size_t it = 0; it < search_iters; ++it)
        for (std::size_t k = 0; k < p.mb_height; ++k)
          for (std::size_t l = 0; l < p.mb_width; ++l)
            a.push_back(lin(g, gg * p.mb_height + k, hh * p.mb_width + l));
  return AddressTrace(g, std::move(a), "motion_est");
}

AddressTrace incremental(ArrayGeometry g) {
  std::vector<std::uint32_t> a(g.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint32_t>(i);
  return AddressTrace(g, std::move(a), "incremental");
}

AddressTrace dct_block_column_read(ArrayGeometry g, std::size_t block) {
  if (block == 0 || g.width % block != 0 || g.height % block != 0)
    throw std::invalid_argument("dct_block_column_read: block must tile the array");
  std::vector<std::uint32_t> a;
  a.reserve(g.size());
  for (std::size_t bg = 0; bg < g.height / block; ++bg)
    for (std::size_t bh = 0; bh < g.width / block; ++bh)
      for (std::size_t c = 0; c < block; ++c)
        for (std::size_t r = 0; r < block; ++r)
          a.push_back(lin(g, bg * block + r, bh * block + c));
  return AddressTrace(g, std::move(a), "dct");
}

AddressTrace zoom_by_two_read(ArrayGeometry g) {
  std::vector<std::uint32_t> a;
  a.reserve(4 * g.size());
  for (std::size_t r = 0; r < 2 * g.height; ++r)
    for (std::size_t c = 0; c < 2 * g.width; ++c) a.push_back(lin(g, r / 2, c / 2));
  return AddressTrace(g, std::move(a), "zoombytwo");
}

AddressTrace transpose_read(ArrayGeometry g) {
  std::vector<std::uint32_t> a;
  a.reserve(g.size());
  for (std::size_t c = 0; c < g.width; ++c)
    for (std::size_t r = 0; r < g.height; ++r) a.push_back(lin(g, r, c));
  return AddressTrace(g, std::move(a), "transpose");
}

AddressTrace block_raster(ArrayGeometry g, std::size_t bw, std::size_t bh) {
  if (bw == 0 || bh == 0 || g.width % bw != 0 || g.height % bh != 0)
    throw std::invalid_argument("block_raster: block must tile the array");
  std::vector<std::uint32_t> a;
  a.reserve(g.size());
  for (std::size_t bg = 0; bg < g.height / bh; ++bg)
    for (std::size_t bb = 0; bb < g.width / bw; ++bb)
      for (std::size_t r = 0; r < bh; ++r)
        for (std::size_t c = 0; c < bw; ++c)
          a.push_back(lin(g, bg * bh + r, bb * bw + c));
  return AddressTrace(g, std::move(a), "block_raster");
}

AddressTrace strided(ArrayGeometry g, std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("strided: zero stride");
  std::vector<std::uint32_t> a;
  a.reserve(g.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    a.push_back(static_cast<std::uint32_t>(pos));
    pos = (pos + stride) % g.size();
  }
  return AddressTrace(g, std::move(a), "strided");
}

AddressTrace zigzag(ArrayGeometry g) {
  std::vector<std::uint32_t> a;
  a.reserve(g.size());
  const long h = static_cast<long>(g.height), w = static_cast<long>(g.width);
  for (long d = 0; d < h + w - 1; ++d) {
    // Anti-diagonal d covers cells with row+col == d; direction alternates.
    std::vector<std::uint32_t> diag;
    for (long r = std::max(0L, d - w + 1); r <= std::min(d, h - 1); ++r)
      diag.push_back(lin(g, static_cast<std::size_t>(r), static_cast<std::size_t>(d - r)));
    if (d % 2 == 0) std::reverse(diag.begin(), diag.end());  // upward on even
    a.insert(a.end(), diag.begin(), diag.end());
  }
  return AddressTrace(g, std::move(a), "zigzag");
}

AddressTrace repeat_each(const AddressTrace& t, std::size_t repeat) {
  if (repeat == 0) throw std::invalid_argument("repeat_each: zero repeat");
  std::vector<std::uint32_t> a;
  a.reserve(t.length() * repeat);
  for (std::uint32_t x : t.linear())
    for (std::size_t r = 0; r < repeat; ++r) a.push_back(x);
  return AddressTrace(t.geometry(), std::move(a), t.name() + "_x" + std::to_string(repeat));
}

std::vector<AddressTrace> standard_suite(ArrayGeometry g) {
  if (g.width < 4 || g.height < 4 || g.width % 2 != 0 || g.height % 2 != 0)
    throw std::invalid_argument(
        "standard_suite: geometry must be even and at least 4x4");
  const std::string suffix =
      "_" + std::to_string(g.width) + "x" + std::to_string(g.height);

  std::vector<AddressTrace> suite;
  MotionEstimationParams me;
  me.img_width = g.width;
  me.img_height = g.height;
  me.mb_width = g.width / 2;
  me.mb_height = g.height / 2;
  me.m = 0;
  suite.push_back(motion_estimation_read(me));
  suite.push_back(incremental(g));
  // Largest power-of-two block that tiles both dimensions, capped at 8 (the
  // JPEG/DCT block size the paper's workloads assume).
  std::size_t block = 1;
  while (block < 8 && g.width % (2 * block) == 0 && g.height % (2 * block) == 0)
    block *= 2;
  suite.push_back(dct_block_column_read(g, block));
  suite.push_back(zoom_by_two_read(g));
  suite.push_back(transpose_read(g));
  suite.push_back(block_raster(g, g.width / 2, g.height / 2));
  // Smallest stride > width that is coprime with the array size, so the
  // strided pattern visits every address exactly once.
  std::size_t stride = g.width + 1;
  while (std::gcd(stride, g.size()) != 1) ++stride;
  suite.push_back(strided(g, stride));
  suite.push_back(zigzag(g));
  suite.push_back(repeat_each(incremental(g), 2));

  for (AddressTrace& t : suite) t.set_name(t.name() + suffix);
  return suite;
}

std::vector<AddressTrace> scaled_suite(ArrayGeometry base, std::size_t scales) {
  std::vector<AddressTrace> all;
  ArrayGeometry g = base;
  for (std::size_t s = 0; s < scales; ++s) {
    auto suite = standard_suite(g);
    std::move(suite.begin(), suite.end(), std::back_inserter(all));
    if (s % 2 == 0)
      g.width *= 2;
    else
      g.height *= 2;
  }
  return all;
}

}  // namespace addm::seq
