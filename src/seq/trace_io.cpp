#include "seq/trace_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace addm::seq {

namespace {
[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("trace parse error at line " + std::to_string(line) + ": " +
                              what);
}
}  // namespace

AddressTrace read_trace(std::istream& in) {
  ArrayGeometry geom{};
  bool have_geometry = false;
  std::string trace_name;
  std::vector<std::uint32_t> addrs;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank / comment-only line

    if (first == "geometry") {
      if (have_geometry) fail(line_no, "duplicate geometry");
      if (!(ls >> geom.width >> geom.height) || geom.width == 0 || geom.height == 0)
        fail(line_no, "expected 'geometry <width> <height>' with positive sizes");
      have_geometry = true;
      std::string extra;
      if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
      continue;
    }
    if (first == "name") {
      if (!(ls >> trace_name)) fail(line_no, "expected 'name <identifier>'");
      continue;
    }

    // Otherwise the whole line is addresses (first is the first of them).
    if (!have_geometry) fail(line_no, "addresses before the geometry directive");
    std::istringstream as(line);
    std::string tok;
    while (as >> tok) {
      // std::stoul accepts a sign and wraps negatives into huge unsigned
      // values, which would surface as a misleading "outside the array"
      // error for "-1"; an address token must be bare digits.
      if (!std::isdigit(static_cast<unsigned char>(tok[0])))
        fail(line_no, "not an address: '" + tok + "'");
      std::size_t used = 0;
      unsigned long v = 0;
      try {
        v = std::stoul(tok, &used, 10);
      } catch (const std::exception&) {
        fail(line_no, "not an address: '" + tok + "'");
      }
      if (used != tok.size()) fail(line_no, "not an address: '" + tok + "'");
      if (v >= geom.size())
        fail(line_no, "address " + tok + " outside the " + std::to_string(geom.width) +
                          "x" + std::to_string(geom.height) + " array");
      addrs.push_back(static_cast<std::uint32_t>(v));
    }
  }
  if (!have_geometry) throw std::invalid_argument("trace parse error: missing geometry");
  if (addrs.empty()) throw std::invalid_argument("trace parse error: no addresses");
  return AddressTrace(geom, std::move(addrs), std::move(trace_name));
}

AddressTrace read_trace_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

void write_trace(std::ostream& out, const AddressTrace& trace) {
  out << "# addm address trace (" << trace.length() << " accesses)\n";
  out << "geometry " << trace.geometry().width << " " << trace.geometry().height << "\n";
  if (!trace.name().empty()) out << "name " << trace.name() << "\n";
  const auto& a = trace.linear();
  for (std::size_t i = 0; i < a.size(); ++i)
    out << a[i] << (((i + 1) % 16 == 0 || i + 1 == a.size()) ? "\n" : " ");
}

std::string write_trace_string(const AddressTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

AddressTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace_file(const std::string& path, const AddressTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace addm::seq
