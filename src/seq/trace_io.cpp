#include "seq/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "seq/stream_io.hpp"

namespace addm::seq {

AddressTrace read_trace(std::istream& in) {
  // One pass over each line through the grammar shared with TraceReader
  // (seq/stream_io.hpp) — the historical implementation tokenized every
  // line twice through two istringstreams.
  detail::TraceLineParser parser;
  std::vector<std::uint32_t> addrs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) parser.line(line, ++line_no, addrs);
  parser.finish(!addrs.empty());
  return AddressTrace(parser.geometry(), std::move(addrs), parser.name());
}

AddressTrace read_trace_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

void write_trace(std::ostream& out, const AddressTrace& trace) {
  out << "# addm address trace (" << trace.length() << " accesses)\n";
  out << "geometry " << trace.geometry().width << " " << trace.geometry().height << "\n";
  if (!trace.name().empty()) out << "name " << trace.name() << "\n";
  const auto& a = trace.linear();
  for (std::size_t i = 0; i < a.size(); ++i)
    out << a[i] << (((i + 1) % 16 == 0 || i + 1 == a.size()) ? "\n" : " ");
}

std::string write_trace_string(const AddressTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

AddressTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace_file(const std::string& path, const AddressTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace addm::seq
