#include "seq/stream_io.hpp"

#include <cctype>
#include <climits>
#include <fstream>
#include <istream>
#include <optional>
#include <stdexcept>
#include <utility>

namespace addm::seq {

namespace detail {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("trace parse error at line " + std::to_string(line) + ": " +
                              what);
}

bool is_ws(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

void skip_ws(std::string_view s, std::size_t& pos) {
  while (pos < s.size() && is_ws(s[pos])) ++pos;
}

// Next whitespace-delimited token, or empty at end of line (mirrors
// `istringstream >> std::string`).
std::string_view next_token(std::string_view s, std::size_t& pos) {
  skip_ws(s, pos);
  const std::size_t start = pos;
  while (pos < s.size() && !is_ws(s[pos])) ++pos;
  return s.substr(start, pos - start);
}

// Emulates `istream >> std::size_t`: optional sign, base-10 digits,
// negative values wrap modulo 2^64, out-of-range digits fail the
// extraction.  Faithfulness here is what keeps the geometry directive's
// accepted grammar (and its error messages for inputs like "geometry 4x4")
// bit-identical to the istringstream-based reader this replaces.
std::optional<std::size_t> extract_size(std::string_view s, std::size_t& pos) {
  skip_ws(s, pos);
  bool negative = false;
  if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
    negative = s[pos] == '-';
    ++pos;
  }
  unsigned long long v = 0;
  bool any = false, overflow = false;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    any = true;
    const unsigned d = static_cast<unsigned>(s[pos] - '0');
    if (v > (ULLONG_MAX - d) / 10) overflow = true;
    v = v * 10 + d;
    ++pos;
  }
  if (!any || overflow) return std::nullopt;
  if (negative) v = 0ULL - v;
  return static_cast<std::size_t>(v);
}

}  // namespace

LineSplitter::LineSplitter(std::istream& in, std::size_t chunk_bytes)
    : in_(in), chunk_(chunk_bytes < 1 ? 1 : chunk_bytes) {}

bool LineSplitter::refill() {
  if (eof_) return false;
  buf_.resize(chunk_);
  in_.read(buf_.data(), static_cast<std::streamsize>(chunk_));
  buf_.resize(static_cast<std::size_t>(in_.gcount()));
  pos_ = 0;
  if (buf_.empty()) {
    eof_ = true;
    return false;
  }
  return true;
}

bool LineSplitter::fetch() {
  pending_.clear();
  for (;;) {
    if (pos_ >= buf_.size()) {
      if (!refill()) {
        if (pending_.empty()) return false;
        line_ = pending_;  // final line without a trailing '\n'
        return true;
      }
    }
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
      pending_.append(buf_, pos_, buf_.size() - pos_);
      pos_ = buf_.size();
      continue;
    }
    if (pending_.empty()) {
      line_ = std::string_view(buf_).substr(pos_, nl - pos_);
    } else {
      pending_.append(buf_, pos_, nl - pos_);
      line_ = pending_;
    }
    pos_ = nl + 1;
    return true;
  }
}

void TraceLineParser::line(std::string_view text, std::size_t line_no,
                           std::vector<std::uint32_t>& out) {
  if (const auto hash = text.find('#'); hash != std::string_view::npos)
    text = text.substr(0, hash);

  std::size_t pos = 0;
  const std::string_view first = next_token(text, pos);
  if (first.empty()) return;  // blank / comment-only line

  if (first == "geometry") {
    if (have_geometry_) fail(line_no, "duplicate geometry");
    const auto w = extract_size(text, pos);
    const auto h = w ? extract_size(text, pos) : std::nullopt;
    if (!w || !h || *w == 0 || *h == 0)
      fail(line_no, "expected 'geometry <width> <height>' with positive sizes");
    const std::string_view extra = next_token(text, pos);
    if (!extra.empty()) fail(line_no, "trailing token '" + std::string(extra) + "'");
    geom_ = {*w, *h};
    have_geometry_ = true;
    return;
  }
  if (first == "name") {
    if (have_name_) fail(line_no, "duplicate name");
    const std::string_view value = next_token(text, pos);
    if (value.empty()) fail(line_no, "expected 'name <identifier>'");
    const std::string_view extra = next_token(text, pos);
    if (!extra.empty()) fail(line_no, "trailing token '" + std::string(extra) + "'");
    name_ = std::string(value);
    have_name_ = true;
    return;
  }

  // Otherwise the whole line is addresses (first is the first of them).
  if (!have_geometry_) fail(line_no, "addresses before the geometry directive");
  pos = 0;
  for (;;) {
    const std::string_view tok = next_token(text, pos);
    if (tok.empty()) break;
    // A sign would wrap through unsigned conversion and surface as a
    // misleading "outside the array" error; an address token must be bare
    // digits (and fit in unsigned long, matching the historical std::stoul
    // behavior).
    bool digits = std::isdigit(static_cast<unsigned char>(tok[0])) != 0;
    unsigned long v = 0;
    bool overflow = false;
    for (std::size_t i = 0; digits && i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
        digits = false;
        break;
      }
      const unsigned d = static_cast<unsigned>(tok[i] - '0');
      if (v > (ULONG_MAX - d) / 10) overflow = true;
      v = v * 10 + d;
    }
    if (!digits || overflow) fail(line_no, "not an address: '" + std::string(tok) + "'");
    if (v >= geom_.size())
      fail(line_no, "address " + std::string(tok) + " outside the " +
                        std::to_string(geom_.width) + "x" + std::to_string(geom_.height) +
                        " array");
    out.push_back(static_cast<std::uint32_t>(v));
  }
}

void TraceLineParser::finish(bool any_addresses) const {
  if (!have_geometry_) throw std::invalid_argument("trace parse error: missing geometry");
  if (!any_addresses) throw std::invalid_argument("trace parse error: no addresses");
}

}  // namespace detail

TraceReader::TraceReader(std::istream& in, std::size_t chunk_bytes)
    : lines_(in, chunk_bytes) {}

bool TraceReader::next(std::uint32_t& addr) {
  while (queue_pos_ >= queue_.size()) {
    queue_.clear();
    queue_pos_ = 0;
    if (!lines_.fetch()) {
      parser_.finish(delivered_ > 0);
      return false;
    }
    parser_.line(lines_.line(), ++line_no_, queue_);
  }
  addr = queue_[queue_pos_++];
  ++delivered_;
  return true;
}

AddressTrace TraceReader::read_all() {
  std::vector<std::uint32_t> addrs;
  std::uint32_t a = 0;
  while (next(a)) addrs.push_back(a);
  return AddressTrace(geometry(), std::move(addrs), name());
}

CompressedTrace read_trace_compressed(std::istream& in, std::size_t chunk_bytes) {
  TraceReader reader(in, chunk_bytes);
  StreamingCompressor sc;
  std::uint32_t a = 0;
  while (reader.next(a)) sc.push(a);
  return sc.finish(reader.geometry(), reader.name());
}

CompressedTrace read_trace_compressed_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace_compressed(in);
}

namespace {

[[noreturn]] void import_fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("lackey import error at line " + std::to_string(line) +
                              ": " + what);
}

bool is_hex(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

AddressTrace import_lackey(std::istream& in, const LackeyImportOptions& opt) {
  if (opt.geometry.width == 0 || opt.geometry.height == 0)
    throw std::invalid_argument("lackey import: geometry must be positive");
  if (opt.word_bytes == 0)
    throw std::invalid_argument("lackey import: word size must be positive");
  if (opt.kinds.empty() ||
      opt.kinds.find_first_not_of("ILSM") != std::string::npos)
    throw std::invalid_argument(
        "lackey import: kinds must be a non-empty subset of \"ILSM\"");

  detail::LineSplitter lines(in, TraceReader::kDefaultChunkBytes);
  std::vector<std::uint32_t> addrs;
  std::uint64_t base = opt.base;
  bool have_base = !opt.auto_base;
  std::size_t line_no = 0;

  while (lines.fetch()) {
    ++line_no;
    const std::string_view text = lines.line();
    std::size_t pos = 0;
    detail::skip_ws(text, pos);
    if (pos >= text.size()) continue;                               // blank
    if (text.substr(pos, 2) == "==") continue;                      // valgrind chatter
    const char marker = text[pos];
    if (marker != 'I' && marker != 'L' && marker != 'S' && marker != 'M')
      import_fail(line_no,
                  "unrecognized line '" + std::string(text.substr(pos)) + "'");
    ++pos;
    detail::skip_ws(text, pos);
    const std::size_t addr_start = pos;
    if (text.substr(pos, 2) == "0x" || text.substr(pos, 2) == "0X") pos += 2;
    std::uint64_t addr = 0;
    bool any = false, overflow = false;
    while (pos < text.size() && is_hex(text[pos])) {
      any = true;
      if (addr >> 60) overflow = true;
      addr = addr * 16 +
             static_cast<std::uint64_t>(
                 std::isdigit(static_cast<unsigned char>(text[pos]))
                     ? text[pos] - '0'
                     : std::tolower(static_cast<unsigned char>(text[pos])) - 'a' + 10);
      ++pos;
    }
    const std::string addr_text(text.substr(addr_start, pos - addr_start));
    if (!any || overflow)
      import_fail(line_no, "expected hex address after '" + std::string(1, marker) + "'");
    if (pos >= text.size() || text[pos] != ',')
      import_fail(line_no, "expected ',<size>' after address " + addr_text);
    ++pos;
    bool size_digits = false;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      size_digits = true;
      ++pos;
    }
    if (!size_digits)
      import_fail(line_no, "expected ',<size>' after address " + addr_text);
    detail::skip_ws(text, pos);
    if (pos < text.size())
      import_fail(line_no, "trailing token '" + std::string(text.substr(pos)) + "'");

    if (opt.kinds.find(marker) == std::string::npos) continue;
    if (!have_base) {
      base = addr;
      have_base = true;
    }
    if (addr < base)
      import_fail(line_no, "address " + addr_text + " below the base address (use --base)");
    const std::uint64_t word = (addr - base) / opt.word_bytes;
    if (word >= opt.geometry.size())
      import_fail(line_no, "address " + addr_text + " maps to word " +
                               std::to_string(word) + " outside the " +
                               std::to_string(opt.geometry.width) + "x" +
                               std::to_string(opt.geometry.height) + " array");
    addrs.push_back(static_cast<std::uint32_t>(word));
  }
  if (addrs.empty())
    throw std::invalid_argument("lackey import error: no matching accesses");
  return AddressTrace(opt.geometry, std::move(addrs), opt.name);
}

AddressTrace import_lackey_file(const std::string& path,
                                const LackeyImportOptions& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open lackey log: " + path);
  return import_lackey(in, opt);
}

}  // namespace addm::seq
