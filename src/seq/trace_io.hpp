// Text serialization for address traces.
//
// Format (line oriented, '#' starts a comment):
//
//   # optional comments
//   geometry <width> <height>
//   name <identifier>          (optional)
//   <addr> <addr> ...          (any number of lines of linear addresses)
//
// Each directive may appear at most once and takes exactly its operands.
// Used by the sradgen tool and for exchanging traces with external
// profilers/simulators. For incremental / constant-memory reading of the
// same format see seq/stream_io.hpp.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/trace.hpp"

namespace addm::seq {

/// Parses a trace; throws std::invalid_argument with a line-numbered message
/// on malformed input.
AddressTrace read_trace(std::istream& in);
AddressTrace read_trace_string(const std::string& text);

/// Writes the trace in the format above (16 addresses per line).
void write_trace(std::ostream& out, const AddressTrace& trace);
std::string write_trace_string(const AddressTrace& trace);

/// File convenience wrappers. Throw std::runtime_error when the file cannot
/// be opened (message includes the path); parse errors propagate as
/// std::invalid_argument from read_trace.
AddressTrace read_trace_file(const std::string& path);
void write_trace_file(const std::string& path, const AddressTrace& trace);

}  // namespace addm::seq
