#include "seq/periodicity.hpp"

#include <stdexcept>
#include <utility>

namespace addm::seq {
namespace {

// KMP failure function: fail[i] = length of the longest proper border of
// s[0..i].  Shared by the batch rebuild (after an unlock) and the reversed
// prefix-trim scan in finish().
std::vector<std::size_t> failure_function(const std::vector<std::uint32_t>& s) {
  std::vector<std::size_t> fail(s.size(), 0);
  for (std::size_t i = 1; i < s.size(); ++i) {
    std::size_t k = fail[i - 1];
    while (k > 0 && s[i] != s[k]) k = fail[k - 1];
    if (s[i] == s[k]) ++k;
    fail[i] = k;
  }
  return fail;
}

}  // namespace

AddressTrace CompressedTrace::expand() const {
  if (tail > period.size() || (period.empty() && (repeats != 0 || tail != 0)))
    throw std::invalid_argument("malformed compressed trace");
  std::vector<std::uint32_t> linear;
  linear.reserve(length());
  linear.insert(linear.end(), prefix.begin(), prefix.end());
  for (std::size_t r = 0; r < repeats; ++r)
    linear.insert(linear.end(), period.begin(), period.end());
  linear.insert(linear.end(), period.begin(),
                period.begin() + static_cast<std::ptrdiff_t>(tail));
  return AddressTrace(geometry, std::move(linear), name);
}

void StreamingCompressor::push(std::uint32_t addr) {
  if (locked_) {
    const std::size_t p = buf_.size();
    if (buf_[count_ % p] == addr) {
      ++count_;
      return;
    }
    // Period broken: the stream so far is exactly known (cyclic expansion of
    // the locked period), so rebuild the growing-mode state and continue.
    std::vector<std::uint32_t> full;
    full.reserve(count_ + 1);
    for (std::size_t i = 0; i < count_; ++i) full.push_back(buf_[i % p]);
    buf_ = std::move(full);
    fail_ = failure_function(buf_);
    locked_ = false;
  }
  buf_.push_back(addr);
  ++count_;
  const std::size_t i = buf_.size() - 1;
  if (i == 0) {
    fail_.push_back(0);
  } else {
    std::size_t k = fail_[i - 1];
    while (k > 0 && buf_[i] != buf_[k]) k = fail_[k - 1];
    if (buf_[i] == buf_[k]) ++k;
    fail_.push_back(k);
  }
  relock_if_profitable();
}

void StreamingCompressor::relock_if_profitable() {
  const std::size_t n = buf_.size();
  if (n == 0) return;
  const std::size_t p = n - fail_[n - 1];
  // Lock once the smallest period has been observed at least twice: from
  // here on, only the period is kept and the smallest period of any
  // consistent extension is provably still p (periods are monotone
  // non-decreasing under extension and p keeps matching).
  if (2 * p <= n) {
    buf_.resize(p);
    buf_.shrink_to_fit();
    fail_.clear();
    fail_.shrink_to_fit();
    locked_ = true;
  }
}

CompressedTrace StreamingCompressor::finish(ArrayGeometry geometry,
                                            std::string name) const {
  CompressedTrace ct;
  ct.geometry = geometry;
  ct.name = std::move(name);
  if (count_ == 0) return ct;

  if (locked_) {
    const std::size_t p = buf_.size();
    ct.period = buf_;
    ct.repeats = count_ / p;
    ct.tail = count_ % p;
    return ct;
  }

  // Growing mode: the whole stream is buffered.  Search every prefix split
  // q for the cheapest exact factorization; the smallest period of the
  // suffix s[q..n) equals the smallest period of the corresponding prefix
  // of the reversed stream (periodicity is reversal-invariant), so one
  // failure-function pass over the reversal prices all splits.
  const std::size_t n = buf_.size();
  std::vector<std::uint32_t> rev(buf_.rbegin(), buf_.rend());
  const std::vector<std::size_t> fail_rev = failure_function(rev);
  std::size_t best_q = 0;
  std::size_t best_p = n - fail_rev[n - 1];  // q == 0: global smallest period
  for (std::size_t q = 1; q < n; ++q) {
    const std::size_t m = n - q;
    const std::size_t p = m - fail_rev[m - 1];
    if (q + p < best_q + best_p) {
      best_q = q;
      best_p = p;
    }
  }
  if (best_q + best_p == n) {
    // No savings anywhere: canonical uncompressed form.
    ct.period = buf_;
    ct.repeats = 1;
    ct.tail = 0;
    return ct;
  }
  ct.prefix.assign(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(best_q));
  ct.period.assign(buf_.begin() + static_cast<std::ptrdiff_t>(best_q),
                   buf_.begin() + static_cast<std::ptrdiff_t>(best_q + best_p));
  ct.repeats = (n - best_q) / best_p;
  ct.tail = (n - best_q) % best_p;
  return ct;
}

CompressedTrace compress_periodic(const AddressTrace& trace) {
  StreamingCompressor sc;
  for (std::uint32_t a : trace.linear()) sc.push(a);
  return sc.finish(trace.geometry(), trace.name());
}

namespace {

// Verifies vals[i] == vals[0] + d1*i over one counted dimension, or
// vals[o*inner + j] == vals[0] + d1*o + d2*j over two.  Coefficients are
// forced by the first elements, so recovery is a pure check.
bool affine1(const std::vector<long>& vals, long& offset, long& d) {
  offset = vals[0];
  d = vals.size() > 1 ? vals[1] - vals[0] : 0;
  for (std::size_t i = 0; i < vals.size(); ++i)
    if (vals[i] != offset + d * static_cast<long>(i)) return false;
  return true;
}

bool affine2(const std::vector<long>& vals, std::size_t inner, long& offset,
             long& d_outer, long& d_inner) {
  offset = vals[0];
  d_inner = inner > 1 ? vals[1] - vals[0] : 0;
  d_outer = vals[inner] - vals[0];
  const std::size_t outer = vals.size() / inner;
  for (std::size_t o = 0; o < outer; ++o)
    for (std::size_t j = 0; j < inner; ++j)
      if (vals[o * inner + j] !=
          offset + d_outer * static_cast<long>(o) + d_inner * static_cast<long>(j))
        return false;
  return true;
}

}  // namespace

std::optional<RecoveredNest> recover_loop_nest(const CompressedTrace& ct) {
  if (!ct.pure() || ct.period.empty() || ct.repeats == 0) return std::nullopt;
  const std::size_t n = ct.period.size();
  std::vector<long> rows(n), cols(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i] = static_cast<long>(ct.period[i] / ct.geometry.width);
    cols[i] = static_cast<long>(ct.period[i] % ct.geometry.width);
  }

  RecoveredNest out;
  const bool multi_pass = ct.repeats >= 2;
  if (multi_pass) {
    out.nest.add("pass", 0, static_cast<long>(ct.repeats));
    out.access.row_coeffs.push_back(0);
    out.access.col_coeffs.push_back(0);
  }

  long r0 = 0, c0 = 0, dr = 0, dc = 0;
  if (affine1(rows, r0, dr) && affine1(cols, c0, dc)) {
    out.nest.add("i", 0, static_cast<long>(n));
    out.access.row_coeffs.push_back(dr);
    out.access.col_coeffs.push_back(dc);
    out.access.row_offset = r0;
    out.access.col_offset = c0;
    return out;
  }

  // Two-level: split the period into outer x inner with both dimensions
  // affine.  Largest inner (most raster-like) divisor wins; the order is
  // fixed so recovery is deterministic.
  for (std::size_t inner = n / 2; inner >= 2; --inner) {
    if (n % inner != 0) continue;
    long dro = 0, drj = 0, dco = 0, dcj = 0;
    if (!affine2(rows, inner, r0, dro, drj)) continue;
    if (!affine2(cols, inner, c0, dco, dcj)) continue;
    out.nest.add("o", 0, static_cast<long>(n / inner));
    out.nest.add("j", 0, static_cast<long>(inner));
    out.access.row_coeffs.push_back(dro);
    out.access.row_coeffs.push_back(drj);
    out.access.col_coeffs.push_back(dco);
    out.access.col_coeffs.push_back(dcj);
    out.access.row_offset = r0;
    out.access.col_offset = c0;
    return out;
  }
  return std::nullopt;
}

}  // namespace addm::seq
