// Affine loop-nest front end.
//
// The paper's address sequences come from loop nests over 2-D arrays
// (Figure 7's block-matching kernel). This module models such programs
// directly: a nest of counted loops plus an affine access function
//
//    row = sum_i cr[i] * iv[i] + r0,    col = sum_i cc[i] * iv[i] + c0
//
// and enumerates the resulting address trace. Workload generators built by
// hand in workloads.hpp can be cross-checked against their loop-nest
// formulation (the tests do exactly that), and new access patterns can be
// described declaratively instead of writing another generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/trace.hpp"
#include "seq/workloads.hpp"

namespace addm::seq {

/// One counted loop: iterates value = lower, lower+step, ... while < upper
/// (or > upper for negative steps). Must execute at least one iteration.
struct Loop {
  std::string name;
  long lower = 0;
  long upper = 0;  ///< exclusive bound
  long step = 1;

  /// Number of iterations; throws std::invalid_argument if zero or the loop
  /// diverges (step of the wrong sign).
  std::size_t trip_count() const;
};

/// Affine access function over the loop induction variables (outermost
/// first). Coefficient vectors may be shorter than the nest; missing
/// entries are zero.
struct AffineAccess {
  std::vector<long> row_coeffs;
  std::vector<long> col_coeffs;
  long row_offset = 0;
  long col_offset = 0;

  long row(const std::vector<long>& ivs) const;
  long col(const std::vector<long>& ivs) const;
};

class LoopNest {
 public:
  LoopNest() = default;
  explicit LoopNest(std::vector<Loop> loops) : loops_(std::move(loops)) {}

  LoopNest& add(std::string name, long lower, long upper, long step = 1);

  const std::vector<Loop>& loops() const { return loops_; }
  /// Product of trip counts.
  std::size_t iterations() const;

  /// Enumerates the nest (outermost slowest) and evaluates `access` at every
  /// iteration. Throws std::invalid_argument if any access leaves `geom` or
  /// goes negative.
  AddressTrace trace(const AffineAccess& access, ArrayGeometry geom,
                     std::string name = {}) const;

 private:
  std::vector<Loop> loops_;
};

/// The Figure-7 new_img read as a loop nest + affine access (used by tests
/// to cross-check the hand-written generator).
struct LoopNestProgram {
  LoopNest nest;
  AffineAccess access;
  ArrayGeometry geometry;
};
LoopNestProgram motion_estimation_program(const MotionEstimationParams& p);

/// Raster scan and block-column (DCT) programs for the same purpose.
LoopNestProgram raster_program(ArrayGeometry g);
LoopNestProgram dct_block_column_program(ArrayGeometry g, std::size_t block);

}  // namespace addm::seq
