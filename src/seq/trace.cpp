#include "seq/trace.hpp"

#include <stdexcept>

namespace addm::seq {

AddressTrace::AddressTrace(ArrayGeometry geom, std::vector<std::uint32_t> linear,
                           std::string name)
    : geom_(geom), linear_(std::move(linear)), name_(std::move(name)) {
  if (geom_.width == 0 || geom_.height == 0)
    throw std::invalid_argument("AddressTrace: degenerate geometry");
  for (std::uint32_t a : linear_)
    if (a >= geom_.size())
      throw std::invalid_argument("AddressTrace: address " + std::to_string(a) +
                                  " outside array of " + std::to_string(geom_.size()));
}

std::vector<std::uint32_t> AddressTrace::rows() const {
  std::vector<std::uint32_t> r;
  r.reserve(linear_.size());
  for (std::uint32_t a : linear_) r.push_back(row_of(a));
  return r;
}

std::vector<std::uint32_t> AddressTrace::cols() const {
  std::vector<std::uint32_t> c;
  c.reserve(linear_.size());
  for (std::uint32_t a : linear_) c.push_back(col_of(a));
  return c;
}

}  // namespace addm::seq
