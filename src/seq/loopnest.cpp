#include "seq/loopnest.hpp"

#include <stdexcept>

#include "seq/workloads.hpp"

namespace addm::seq {

std::size_t Loop::trip_count() const {
  if (step == 0) throw std::invalid_argument("Loop '" + name + "': zero step");
  if (step > 0) {
    if (lower >= upper)
      throw std::invalid_argument("Loop '" + name + "': empty ascending range");
    return static_cast<std::size_t>((upper - lower + step - 1) / step);
  }
  if (lower <= upper)
    throw std::invalid_argument("Loop '" + name + "': empty descending range");
  return static_cast<std::size_t>((lower - upper + (-step) - 1) / (-step));
}

namespace {
long dot(const std::vector<long>& coeffs, const std::vector<long>& ivs, long offset) {
  long v = offset;
  for (std::size_t i = 0; i < coeffs.size() && i < ivs.size(); ++i)
    v += coeffs[i] * ivs[i];
  return v;
}
}  // namespace

long AffineAccess::row(const std::vector<long>& ivs) const {
  return dot(row_coeffs, ivs, row_offset);
}

long AffineAccess::col(const std::vector<long>& ivs) const {
  return dot(col_coeffs, ivs, col_offset);
}

LoopNest& LoopNest::add(std::string name, long lower, long upper, long step) {
  loops_.push_back(Loop{std::move(name), lower, upper, step});
  return *this;
}

std::size_t LoopNest::iterations() const {
  std::size_t n = 1;
  for (const Loop& l : loops_) n *= l.trip_count();
  return n;
}

AddressTrace LoopNest::trace(const AffineAccess& access, ArrayGeometry geom,
                             std::string name) const {
  if (loops_.empty()) throw std::invalid_argument("LoopNest::trace: empty nest");
  for (const Loop& l : loops_) (void)l.trip_count();  // validate all bounds

  std::vector<std::uint32_t> addrs;
  addrs.reserve(iterations());
  std::vector<long> ivs(loops_.size());
  for (std::size_t i = 0; i < loops_.size(); ++i) ivs[i] = loops_[i].lower;

  const auto in_range = [](long v, long limit) { return v >= 0 && v < limit; };
  for (;;) {
    const long r = access.row(ivs);
    const long c = access.col(ivs);
    if (!in_range(r, static_cast<long>(geom.height)) ||
        !in_range(c, static_cast<long>(geom.width)))
      throw std::invalid_argument("LoopNest::trace: access (" + std::to_string(r) + "," +
                                  std::to_string(c) + ") outside the array");
    addrs.push_back(static_cast<std::uint32_t>(r * static_cast<long>(geom.width) + c));

    // Odometer increment, innermost fastest.
    std::size_t level = loops_.size();
    while (level > 0) {
      const std::size_t i = level - 1;
      ivs[i] += loops_[i].step;
      const bool done = loops_[i].step > 0 ? ivs[i] >= loops_[i].upper
                                           : ivs[i] <= loops_[i].upper;
      if (!done) break;
      ivs[i] = loops_[i].lower;
      --level;
    }
    if (level == 0) break;
  }
  return AddressTrace(geom, std::move(addrs), std::move(name));
}

LoopNestProgram motion_estimation_program(const MotionEstimationParams& p) {
  p.check();
  LoopNestProgram prog;
  prog.geometry = {p.img_width, p.img_height};
  const long gh = static_cast<long>(p.img_height / p.mb_height);
  const long gw = static_cast<long>(p.img_width / p.mb_width);
  prog.nest.add("g", 0, gh)
      .add("h", 0, gw);
  if (p.m > 0) {
    prog.nest.add("i", -p.m, p.m).add("j", -p.m, p.m);
  }
  prog.nest.add("k", 0, static_cast<long>(p.mb_height))
      .add("l", 0, static_cast<long>(p.mb_width));
  // row = g*mb_height + k; col = h*mb_width + l. The i/j search loops do not
  // appear in new_img's access function (coefficients 0).
  const std::size_t nl = prog.nest.loops().size();
  prog.access.row_coeffs.assign(nl, 0);
  prog.access.col_coeffs.assign(nl, 0);
  prog.access.row_coeffs[0] = static_cast<long>(p.mb_height);
  prog.access.col_coeffs[1] = static_cast<long>(p.mb_width);
  prog.access.row_coeffs[nl - 2] = 1;  // k
  prog.access.col_coeffs[nl - 1] = 1;  // l
  return prog;
}

LoopNestProgram raster_program(ArrayGeometry g) {
  LoopNestProgram prog;
  prog.geometry = g;
  prog.nest.add("r", 0, static_cast<long>(g.height))
      .add("c", 0, static_cast<long>(g.width));
  prog.access.row_coeffs = {1, 0};
  prog.access.col_coeffs = {0, 1};
  return prog;
}

LoopNestProgram dct_block_column_program(ArrayGeometry g, std::size_t block) {
  if (block == 0 || g.width % block != 0 || g.height % block != 0)
    throw std::invalid_argument("dct_block_column_program: block must tile the array");
  LoopNestProgram prog;
  prog.geometry = g;
  prog.nest.add("bg", 0, static_cast<long>(g.height / block))
      .add("bh", 0, static_cast<long>(g.width / block))
      .add("c", 0, static_cast<long>(block))
      .add("r", 0, static_cast<long>(block));
  const long bl = static_cast<long>(block);
  prog.access.row_coeffs = {bl, 0, 0, 1};
  prog.access.col_coeffs = {0, bl, 1, 0};
  return prog;
}

}  // namespace addm::seq
