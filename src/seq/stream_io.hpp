// Streaming trace ingestion.
//
// seq/trace_io.hpp materializes a whole trace per call, which is fine for
// the synthetic suites but not for million-access recorded logs.  This
// module reads the same text format incrementally:
//
//  * TraceReader — pull one address at a time from a chunked, single-pass
//    tokenizer (no per-line istringstream, no whole-file buffer; memory is
//    one I/O chunk plus the longest line).  Grammar and error messages are
//    identical to read_trace — both are built on the same line parser and a
//    randomized differential test holds them equal.
//  * read_trace_compressed — TraceReader feeding a
//    seq::StreamingCompressor, so a periodic million-access file is read in
//    O(period) memory and returned already factored.
//  * import_lackey — converts valgrind/lackey-style recorded memory logs
//    ("I/L/S/M hexaddr,size" lines) into address traces over a declared
//    array geometry, the entry point for real recorded workloads
//    (tools/addm_trace_import wraps it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "seq/periodicity.hpp"
#include "seq/trace.hpp"

namespace addm::seq {

namespace detail {

/// Splits an istream into '\n'-terminated lines, reading in fixed-size
/// chunks.  Lines that fit inside one chunk are returned as views into the
/// chunk buffer (zero copy); only chunk-spanning lines are assembled in a
/// carry buffer.  Matches std::getline line semantics exactly: '\r' stays
/// in the line, a final unterminated line is returned, a trailing '\n'
/// does not produce an empty last line.
class LineSplitter {
 public:
  explicit LineSplitter(std::istream& in, std::size_t chunk_bytes);

  /// Fetches the next line into line(); false at end of input.
  bool fetch();
  std::string_view line() const { return line_; }

 private:
  bool refill();

  std::istream& in_;
  std::size_t chunk_;
  std::string buf_;
  std::size_t pos_ = 0;
  std::string pending_;
  std::string_view line_;
  bool eof_ = false;
};

/// The trace-format line grammar, shared verbatim by read_trace and
/// TraceReader so the two readers cannot drift apart.  Stateful: remembers
/// the geometry/name directives seen so far.
class TraceLineParser {
 public:
  /// Parses one line (no trailing '\n'), appending any addresses to `out`.
  /// Throws std::invalid_argument with the historical line-numbered
  /// messages on malformed input.
  void line(std::string_view text, std::size_t line_no,
            std::vector<std::uint32_t>& out);

  /// End-of-input validation (missing geometry / no addresses), given
  /// whether any address was produced.
  void finish(bool any_addresses) const;

  bool have_geometry() const { return have_geometry_; }
  const ArrayGeometry& geometry() const { return geom_; }
  const std::string& name() const { return name_; }

 private:
  ArrayGeometry geom_{};
  bool have_geometry_ = false;
  bool have_name_ = false;
  std::string name_;
};

}  // namespace detail

/// Incremental reader for the trace text format (see seq/trace_io.hpp).
///
/// Pull addresses with next(); geometry() is valid as soon as next() has
/// returned true (addresses cannot precede the directive), name() and the
/// end-of-input validation are final once next() has returned false.
/// next() throws std::invalid_argument on malformed input — including, on
/// exhaustion, the "missing geometry" / "no addresses" checks read_trace
/// performs — with messages identical to read_trace.
class TraceReader {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  /// `chunk_bytes` tunes I/O granularity (tests shrink it to exercise
  /// chunk-boundary handling); values below 1 are clamped to 1.
  explicit TraceReader(std::istream& in,
                       std::size_t chunk_bytes = kDefaultChunkBytes);

  /// Stores the next address and returns true, or returns false at a valid
  /// end of input.
  bool next(std::uint32_t& addr);

  const ArrayGeometry& geometry() const { return parser_.geometry(); }
  const std::string& name() const { return parser_.name(); }
  /// Addresses returned by next() so far.
  std::size_t delivered() const { return delivered_; }

  /// Drains the remaining stream into a materialized trace — the streaming
  /// equivalent of read_trace (differential-tested identical).
  AddressTrace read_all();

 private:
  detail::LineSplitter lines_;
  detail::TraceLineParser parser_;
  std::vector<std::uint32_t> queue_;
  std::size_t queue_pos_ = 0;
  std::size_t line_no_ = 0;
  std::size_t delivered_ = 0;
};

/// Reads a trace file/stream through TraceReader + StreamingCompressor:
/// peak memory is one chunk + one line + the compressor state (O(period)
/// on periodic input) instead of the full trace.  The factorization is
/// exactly compress_periodic(read_trace(...)) without ever materializing
/// the trace.  File errors match read_trace_file.
CompressedTrace read_trace_compressed(
    std::istream& in, std::size_t chunk_bytes = TraceReader::kDefaultChunkBytes);
CompressedTrace read_trace_compressed_file(const std::string& path);

/// Import options for valgrind/lackey-style memory logs.
struct LackeyImportOptions {
  ArrayGeometry geometry;      ///< required: target array shape
  std::string kinds = "LSM";   ///< which markers to keep (subset of "ILSM")
  bool auto_base = true;       ///< base = first selected access's address
  std::uint64_t base = 0;      ///< explicit base when !auto_base
  std::uint32_t word_bytes = 4;  ///< bytes per array word
  std::string name;            ///< trace name for the result
};

/// Parses a lackey-style log: lines of the form
///
///   I  0023c10,3        (instruction fetch)
///    L 04025cb0,8       (load)     S .. (store)     M .. (modify)
///
/// with hex addresses ("0x" prefix optional).  Blank lines and `==pid==`
/// chatter are skipped; anything else malformed throws std::invalid_argument
/// with a line-numbered "lackey import error".  Selected accesses map to
/// linear = (addr - base) / word_bytes, which must land inside
/// opt.geometry; sub-word accesses fold onto their containing word.
/// Throws if no access matches opt.kinds.
AddressTrace import_lackey(std::istream& in, const LackeyImportOptions& opt);
AddressTrace import_lackey_file(const std::string& path,
                                const LackeyImportOptions& opt);

}  // namespace addm::seq
