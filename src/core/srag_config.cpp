#include "core/srag_config.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace addm::core {

std::size_t SragConfig::num_flipflops() const {
  std::size_t n = 0;
  for (const auto& r : registers) n += r.size();
  return n;
}

void SragConfig::check() const {
  if (registers.empty()) throw std::invalid_argument("SragConfig: no shift registers");
  if (div_count < 1) throw std::invalid_argument("SragConfig: div_count < 1");
  if (pass_count < 1) throw std::invalid_argument("SragConfig: pass_count < 1");
  std::unordered_set<std::uint32_t> seen;
  for (const auto& reg : registers) {
    if (reg.empty()) throw std::invalid_argument("SragConfig: empty shift register");
    for (std::uint32_t line : reg) {
      if (line >= num_select_lines)
        throw std::invalid_argument("SragConfig: select line out of range");
      if (!seen.insert(line).second)
        throw std::invalid_argument("SragConfig: select line mapped twice");
    }
  }
  for (const auto& reg : registers)
    if (pass_count % reg.size() != 0)
      throw std::invalid_argument(
          "SragConfig: pass_count must be a multiple of every register length");
}

namespace {
std::string join(const std::vector<std::uint32_t>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ",";
    os << v[i];
  }
  return os.str();
}
}  // namespace

std::string MappingParameters::to_string() const {
  std::ostringstream os;
  os << "I  = " << join(I) << "\n";
  os << "D  = " << join(D) << "\n";
  os << "R  = " << join(R) << "\n";
  os << "U  = " << join(U) << "\n";
  os << "O  = " << join(O) << "\n";
  os << "Z  = " << join(Z) << "\n";
  os << "S  = ";
  for (std::size_t i = 0; i < S.size(); ++i) {
    if (i) os << ";";
    os << "(" << join(S[i]) << ")";
  }
  os << "\n";
  os << "P  = " << join(P) << "\n";
  os << "dC = " << dC << "\n";
  os << "pC = " << pC << "\n";
  return os.str();
}

}  // namespace addm::core
