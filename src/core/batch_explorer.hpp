// Batch design-space exploration: run explore_generators over a whole suite
// of address traces concurrently, aggregate per-trace Pareto fronts, and
// memoize repeated (trace, options) evaluations — in memory within one
// process, and optionally on disk across processes (core/eval_cache).
//
// Determinism contract: for a fixed input trace list and options, the
// BatchResult entries — and therefore batch_report_csv / batch_report_json —
// are byte-identical regardless of thread count (outer `threads` and inner
// `explore.arch_threads` alike), scheduling, or cache state (cold,
// memo-warm, or disk-warm); newly flushed cache directories are likewise
// byte-identical (entries are canonical and the index is written in cache-
// key order).  Entries are ordered by input position; nothing schedule- or
// cache-dependent (timings, worker ids, hit counts) enters the serialized
// reports.  Cache statistics live only in BatchResult
// fields: they are deterministic for a fixed input and cache state, but a
// warm disk cache turns evaluations into disk_hits, so they are *not* part
// of any report.  This is what makes sharded runs mergeable byte-for-byte
// (see tools/addm_merge and docs/cache-format.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::core {

/// Configuration for one BatchExplorer.  Value type; copying is cheap
/// relative to an exploration.
struct BatchOptions {
  /// Per-trace exploration knobs.  `explore.arch_threads` requests the
  /// inner (per-trace candidate) parallelism level; run() feeds it and
  /// `threads` through split_threads (core/thread_pool) so outer × inner
  /// workers never exceed the `threads` budget.
  ExploreOptions explore;
  /// TOTAL worker-thread budget across both scheduling levels (traces ×
  /// architectures); 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Reuse results across identical (trace, options) pairs, including across
  /// successive run() calls on the same BatchExplorer.
  bool memoize = true;
  /// When non-empty, the directory of a persistent evaluation cache
  /// (core/eval_cache).  Each run() probes the store for exactly the input
  /// traces' (trace, options) keys — O(inputs), not O(cache size) — and
  /// flushes newly computed results back on completion.  Multiple
  /// concurrent processes may share one directory.  Requires `memoize`;
  /// ignored when memoization is disabled.
  std::string cache_dir;
  /// When non-zero, an on-disk size budget (total payload bytes) enforced
  /// after each flush by pruning the cache directory in the deterministic
  /// eviction order of EvalCacheDir::prune, so a bounded directory stays
  /// bounded across runs.  Lifecycle-only: it never affects results and is
  /// not fingerprinted.  Requires `cache_dir`.
  std::uint64_t cache_budget_bytes = 0;
  /// Daemon mode: when true, run() never writes the cache directory itself.
  /// Newly computed results and warm-start hit counts accumulate in memory
  /// (pending_flush() reports how many) until flush_disk() persists them —
  /// one serialized writer, which is what lets a long-lived process run
  /// explorations concurrently while honoring the eval-cache maintenance
  /// contract ("compact/prune assume no concurrent writer").  Requires
  /// `cache_dir`; without one the flag is inert.
  bool defer_disk_flush = false;
};

/// Per-trace exploration outcome, in input order.  Plain value type: every
/// field is a pure function of the input trace and ExploreOptions.
struct BatchEntry {
  std::string name;             ///< trace name (or "trace<N>" when unnamed)
  seq::ArrayGeometry geometry;
  std::size_t trace_length = 0;
  std::uint64_t trace_hash = 0;  ///< trace_fingerprint of the input
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;  ///< indices into `points`
  std::string error;  ///< non-empty iff exploration threw for this trace
};

/// Result of one run().  `entries` (and reports built from them) depend only
/// on the inputs; the counters additionally depend on cache state and are
/// therefore reported out-of-band (stderr in the CLI), never serialized.
struct BatchResult {
  std::vector<BatchEntry> entries;  ///< one per input trace, input order
  std::size_t traces = 0;
  std::size_t evaluations = 0;  ///< explorations actually executed
  std::size_t cache_hits = 0;   ///< traces served from the in-memory memo table
  std::size_t disk_hits = 0;    ///< traces served from entries loaded off disk
  std::size_t disk_entries_loaded = 0;  ///< options-matching entries warm-started
  std::size_t disk_entries_stored = 0;  ///< new entries flushed to disk this run
  std::size_t disk_entries_evicted = 0;  ///< entries pruned by cache_budget_bytes
  double wall_seconds = 0.0;    ///< not part of any serialized report
};

/// Concurrent, memoizing driver around explore_generators.  One instance
/// owns one in-memory memo table (and, when configured, one handle to a
/// persistent cache directory).
class BatchExplorer {
 public:
  explicit BatchExplorer(BatchOptions opt = {});
  ~BatchExplorer();
  BatchExplorer(const BatchExplorer&) = delete;
  BatchExplorer& operator=(const BatchExplorer&) = delete;

  const BatchOptions& options() const { return opt_; }

  /// Explores every trace with `options().explore`.  With a cache_dir
  /// configured, every run() probes the store for the input keys it does
  /// not already hold in memory and flushes newly computed results; disk
  /// I/O errors degrade to cache misses or unsaved entries, never failures.
  ///
  /// Concurrency: run() may be called from several threads at once — the
  /// memo table is shared (two racing identical traces evaluate once), and
  /// this process's disk writes are serialized internally.  Each concurrent
  /// run() builds its own worker pool against the full `threads` budget, so
  /// the caller owns not oversubscribing across simultaneous runs (the
  /// serve daemon bounds this with its request-thread count).
  BatchResult run(const std::vector<seq::AddressTrace>& traces);

  /// run() with per-call exploration options — the serve daemon's path,
  /// where every request carries its own ExploreOptions but all requests
  /// share one memo table.  Results for different option sets coexist in
  /// the memo keyed by (trace, options) fingerprints, exactly like the
  /// persistent cache.  `explore.arch_threads` is split against
  /// `options().threads` as usual.
  BatchResult run(const std::vector<seq::AddressTrace>& traces,
                  const ExploreOptions& explore);

  /// Outcome of one flush_disk() call.
  struct FlushStats {
    std::size_t stored = 0;   ///< pending entries persisted this call
    std::size_t evicted = 0;  ///< entries pruned by cache_budget_bytes
  };

  /// Persists everything accumulated under `defer_disk_flush`: stores the
  /// pending entry batch, credits pending warm-start hits, and — when
  /// cache_budget_bytes is set — prunes the directory back under budget.
  /// Serialized against itself (one writer at a time) and safe to call
  /// concurrently with run()s; a no-op without a cache_dir or pending work.
  FlushStats flush_disk();

  /// Entries computed but not yet persisted (only grows when
  /// defer_disk_flush is set).
  std::size_t pending_flush() const;

  /// Number of keys in the in-memory memo table (disk-loaded included).
  std::size_t cache_size() const;
  /// Drops the in-memory memo table.  The persistent cache directory is
  /// untouched; the next run() warm-starts from it again.  Not safe
  /// concurrently with run().
  void clear_cache();

 private:
  struct Impl;
  BatchOptions opt_;
  Impl* impl_;
};

/// CSV report: header + one row per (trace, design point). Fixed numeric
/// formatting; fields containing separators are quoted. Byte-identical for
/// identical BatchResult entries, independent of threads and cache state.
std::string batch_report_csv(const BatchResult& result);

/// JSON report mirroring the CSV plus a summary object. Deterministic field
/// order and formatting; contains only input-determined data (no cache or
/// evaluation counters), so shard reports merge byte-stably.
std::string batch_report_json(const BatchResult& result);

}  // namespace addm::core
