// Batch design-space exploration: run explore_generators over a whole suite
// of address traces concurrently, aggregate per-trace Pareto fronts, and
// memoize repeated (trace, options) evaluations.
//
// Determinism contract: for a fixed input trace list and options, the
// BatchResult entries — and therefore batch_report_csv / batch_report_json —
// are byte-identical regardless of thread count or scheduling. Entries are
// ordered by input position; nothing schedule-dependent (timings, worker
// ids) enters the report. Cache statistics are deterministic too: duplicate
// traces are evaluated exactly once however the workers interleave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::core {

struct BatchOptions {
  ExploreOptions explore;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Reuse results across identical (trace, options) pairs, including across
  /// successive run() calls on the same BatchExplorer.
  bool memoize = true;
};

struct BatchEntry {
  std::string name;             ///< trace name (or "trace<N>" when unnamed)
  seq::ArrayGeometry geometry;
  std::size_t trace_length = 0;
  std::uint64_t trace_hash = 0;  ///< trace_fingerprint of the input
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;  ///< indices into `points`
  std::string error;  ///< non-empty iff exploration threw for this trace
};

struct BatchResult {
  std::vector<BatchEntry> entries;  ///< one per input trace, input order
  std::size_t traces = 0;
  std::size_t evaluations = 0;  ///< explorations actually executed
  std::size_t cache_hits = 0;   ///< traces served from the memo table
  double wall_seconds = 0.0;    ///< not part of any serialized report
};

class BatchExplorer {
 public:
  explicit BatchExplorer(BatchOptions opt = {});
  ~BatchExplorer();
  BatchExplorer(const BatchExplorer&) = delete;
  BatchExplorer& operator=(const BatchExplorer&) = delete;

  const BatchOptions& options() const { return opt_; }

  /// Explores every trace. Thread-safe with respect to the internal cache;
  /// not reentrant (one run() at a time per BatchExplorer).
  BatchResult run(const std::vector<seq::AddressTrace>& traces);

  std::size_t cache_size() const;
  void clear_cache();

 private:
  struct Impl;
  BatchOptions opt_;
  Impl* impl_;
};

/// CSV report: header + one row per (trace, design point). Fixed numeric
/// formatting; fields containing separators are quoted. Byte-identical for
/// identical BatchResult entries.
std::string batch_report_csv(const BatchResult& result);

/// JSON report mirroring the CSV plus a summary object (trace counts,
/// evaluations, cache hits). Deterministic field order and formatting.
std::string batch_report_json(const BatchResult& result);

}  // namespace addm::core
