#include "core/srag_mapper.hpp"

#include <algorithm>
#include <numeric>

#include "core/srag_model.hpp"
#include "seq/analysis.hpp"

namespace addm::core {

std::string to_string(MapFailure f) {
  switch (f) {
    case MapFailure::EmptySequence: return "empty sequence";
    case MapFailure::NonUniformDivCount: return "DivCnt restriction violated";
    case MapFailure::NonUniformPassCount: return "PassCnt restriction violated";
    case MapFailure::GroupingFailed: return "grouping verification failed";
  }
  return "?";
}

SequenceAnalysis analyze_sequence(std::span<const std::uint32_t> seq) {
  SequenceAnalysis res;
  res.params.I.assign(seq.begin(), seq.end());
  if (seq.empty()) {
    res.failure = MapFailure::EmptySequence;
    res.detail = "cannot map an empty address sequence";
    return res;
  }

  // Step 1: division counts D; the DivCnt restriction requires uniformity.
  res.params.D = seq::run_lengths(seq);
  if (!seq::all_equal(res.params.D)) {
    res.failure = MapFailure::NonUniformDivCount;
    const auto [mn, mx] = std::minmax_element(res.params.D.begin(), res.params.D.end());
    res.detail = "repetition lengths vary between " + std::to_string(*mn) + " and " +
                 std::to_string(*mx) + "; a single DivCnt cannot divide them uniformly";
    return res;
  }
  res.params.dC = res.params.D.front();

  // Step 2: reduced sequence R (runs collapsed to single elements).
  res.params.R = seq::collapse_runs(seq);

  // The procedure of Section 5 implicitly treats its input as one period of
  // the repetitive sequence ("for a repetitive address sequence of length
  // N..."). When the caller hands us several periods (e.g. the full ColAS of
  // Table 1 contains its 8-element pattern twice), occurrence counts must be
  // taken over a single period, otherwise the derived pass count pC would
  // make the token linger O-periods-worth of iterations in its first
  // register. The replay verification guards the reduction.
  const std::size_t period = seq::smallest_period(res.params.R);
  const std::span<const std::uint32_t> r1(res.params.R.data(), period);

  // Step 3: unique sequence U in first-appearance order.
  res.params.U = seq::unique_in_order(r1);

  // Step 4: occurrence counts O and first positions Z (over one period).
  const auto occ = seq::occurrence_info(r1, res.params.U);
  res.params.O = occ.occurrences;
  res.params.Z = occ.first_pos;

  // Step 5: initial grouping. Consecutive unique addresses u_k, u_{k+1} join
  // the same shift register when they occur equally often and first appear
  // consecutively in R.
  auto& S = res.params.S;
  S.clear();
  for (std::size_t k = 0; k < res.params.U.size(); ++k) {
    const bool extend = !S.empty() && k > 0 && res.params.O[k] == res.params.O[k - 1] &&
                        res.params.Z[k] == res.params.Z[k - 1] + 1;
    if (extend)
      S.back().push_back(res.params.U[k]);
    else
      S.push_back({res.params.U[k]});
  }

  // Step 6: per-register pass counts P_i = M_i * iterations. All members of
  // a group share one occurrence count by construction of step 5.
  res.params.P.clear();
  {
    std::size_t k = 0;
    for (const auto& group : S) {
      const std::uint32_t iters = res.params.O[k];
      res.params.P.push_back(static_cast<std::uint32_t>(group.size()) * iters);
      k += group.size();
    }
  }
  return res;
}

MapResult map_sequence(std::span<const std::uint32_t> seq, std::uint32_t num_select_lines) {
  MapResult res;
  {
    SequenceAnalysis analysis = analyze_sequence(seq);
    res.params = std::move(analysis.params);
    if (analysis.failure) {
      res.failure = analysis.failure;
      res.detail = std::move(analysis.detail);
      return res;
    }
  }
  auto& S = res.params.S;

  if (!seq::all_equal(res.params.P)) {
    // Repair pass (beyond the paper's procedure, guarded by the replay
    // verification below): the greedy grouping of step 5 can over-merge —
    // two whole registers traversed once each look exactly like one twice-
    // as-long register, inflating that group's P. Splitting every oversized
    // group down to the gcd of the pass counts restores uniformity when the
    // sequence allows it; genuinely non-uniform iteration counts (the
    // paper's 12-vs-8 counter-example) still fail because the required
    // sub-register length is fractional.
    std::uint32_t target = 0;
    for (std::uint32_t p : res.params.P) target = std::gcd(target, p);
    bool repaired = target > 0;
    std::vector<std::vector<std::uint32_t>> split;
    std::size_t k = 0;
    for (std::size_t g = 0; g < S.size() && repaired; ++g) {
      const std::uint32_t iters = res.params.O[k];
      k += S[g].size();
      if (target % iters != 0) {
        repaired = false;
        break;
      }
      const std::uint32_t sub_len = target / iters;
      if (sub_len == 0 || S[g].size() % sub_len != 0) {
        repaired = false;
        break;
      }
      for (std::size_t start = 0; start < S[g].size(); start += sub_len)
        split.emplace_back(S[g].begin() + static_cast<long>(start),
                           S[g].begin() + static_cast<long>(start + sub_len));
    }
    if (!repaired) {
      res.failure = MapFailure::NonUniformPassCount;
      res.detail = "per-register pass counts differ (" +
                   std::to_string(res.params.P.front()) + " vs others); a single PassCnt "
                   "cannot serve all shift registers";
      return res;
    }
    S = std::move(split);
    res.params.P.assign(S.size(), target);
  }
  res.params.pC = res.params.P.front();

  // Assemble the candidate configuration.
  SragConfig cfg;
  cfg.registers = S;
  cfg.div_count = res.params.dC;
  cfg.pass_count = res.params.pC;
  std::uint32_t max_addr = 0;
  for (std::uint32_t a : seq) max_addr = std::max(max_addr, a);
  cfg.num_select_lines = num_select_lines == 0 ? max_addr + 1 : num_select_lines;

  // Verification step: replay the behavioral model against the input. The
  // initial grouping can satisfy both counter restrictions yet still emit the
  // wrong order (the paper's 1,2,3,4,3,2,1,4 example).
  SragModel model(cfg);
  const auto replay = model.generate(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (replay[i] != seq[i]) {
      res.failure = MapFailure::GroupingFailed;
      res.detail = "replay diverges at access " + std::to_string(i) + ": expected " +
                   std::to_string(seq[i]) + ", SRAG would produce " +
                   std::to_string(replay[i]);
      return res;
    }
  }
  res.config = std::move(cfg);
  return res;
}

}  // namespace addm::core
