#include "core/eval_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <string_view>

#include "core/fingerprint.hpp"

namespace addm::core {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kIndexMagic = "addm-eval-cache";
constexpr std::string_view kEntryMagic = "addm-eval-entry";
constexpr const char* kIndexName = "index.txt";

bool parse_hex64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Doubles are stored as their IEEE-754 bit pattern so that a disk round
/// trip is bit-exact and reports built from cached points match reports
/// built from fresh evaluations byte-for-byte.
std::string double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return hex64(bits);
}

bool parse_double_bits(std::string_view s, double& out) {
  std::uint64_t bits;
  if (!parse_hex64(s, bits) || s.size() != 16) return false;
  std::memcpy(&out, &bits, sizeof out);
  return true;
}

/// Strings are quoted and percent-escaped so every serialized field is a
/// single non-empty whitespace-free token ("" encodes the empty string).
std::string quote_field(const std::string& s) {
  std::string q = "\"";
  for (unsigned char c : s) {
    if (c > 0x20 && c < 0x7f && c != '%' && c != '"') {
      q += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "%%%02x", c);
      q += buf;
    }
  }
  q += '"';
  return q;
}

bool unquote_field(std::string_view t, std::string& out) {
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out.clear();
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    const char c = t[i];
    if (c == '%') {
      if (i + 2 >= t.size() - 1) return false;  // need 2 hex chars inside the quotes
      std::uint64_t v = 0;
      if (!parse_hex64(t.substr(i + 1, 2), v)) return false;
      out += static_cast<char>(static_cast<unsigned char>(v));
      i += 2;
    } else if (c == '"' || static_cast<unsigned char>(c) <= 0x20) {
      return false;
    } else {
      out += c;
    }
  }
  return true;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t j = line.find(' ', i);
    if (j == std::string_view::npos) {
      tokens.push_back(line.substr(i));
      break;
    }
    tokens.push_back(line.substr(i, j - i));
    i = j + 1;
  }
  return tokens;
}

std::string entry_filename(const EvalCacheKey& key) {
  return hex64(key.trace_hash) + "-" + hex64(key.options_hash) + ".entry";
}

std::uint64_t payload_checksum(std::string_view payload) {
  Fnv1a64 h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  out = os.str();
  return true;
}

/// Lexicographic key order: load results are sorted so cache contents are a
/// pure function of the key set, independent of index line order.
bool key_less(const EvalCacheKey& a, const EvalCacheKey& b) {
  if (a.trace_hash != b.trace_hash) return a.trace_hash < b.trace_hash;
  return a.options_hash < b.options_hash;
}

/// Reads the index and returns the deduplicated key list (unsorted).  A
/// missing index, a bad magic/version header, or malformed lines yield an
/// empty / reduced list; `skipped` counts tolerated damage.
std::vector<EvalCacheKey> read_index(const fs::path& dir, std::size_t& skipped) {
  std::vector<EvalCacheKey> keys;
  std::ifstream in(dir / kIndexName);
  if (!in) return keys;

  const std::string header = std::string(kIndexMagic) + " " +
                             std::to_string(kEvalCacheFormatVersion);
  std::string line;
  if (!std::getline(in, line)) return keys;
  if (line != header) {
    ++skipped;  // foreign or other-version cache: treat as empty
    return keys;
  }

  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  while (std::getline(in, line)) {
    // Two processes racing on first creation can both append the header;
    // the duplicate is expected noise, not damage.
    if (line == header) continue;
    const auto tokens = split_tokens(line);
    EvalCacheKey key;
    if (tokens.size() != 3 || tokens[0] != "entry" ||
        !parse_hex64(tokens[1], key.trace_hash) || tokens[1].size() != 16 ||
        !parse_hex64(tokens[2], key.options_hash) || tokens[2].size() != 16) {
      if (!line.empty()) ++skipped;
      continue;
    }
    if (!seen.insert({key.trace_hash, key.options_hash}).second) continue;
    keys.push_back(key);
  }
  return keys;
}

std::atomic<unsigned> g_tmp_counter{0};

/// Writes `content` to `path` atomically: unique temp file in the same
/// directory, then rename (atomic on POSIX).  Readers see either the old
/// file or the complete new one, never a prefix.
bool atomic_write(const fs::path& path, const std::string& content) {
  const unsigned seq = g_tmp_counter.fetch_add(1, std::memory_order_relaxed);
  fs::path tmp = path;
  tmp += ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

std::string serialize_eval_entry(const EvalCacheEntry& entry) {
  std::ostringstream os;
  os << kEntryMagic << " " << kEvalCacheFormatVersion << "\n";
  os << "key " << hex64(entry.key.trace_hash) << " " << hex64(entry.key.options_hash)
     << "\n";
  os << "points " << entry.points.size() << "\n";
  for (const DesignPoint& p : entry.points) {
    os << "p " << quote_field(p.architecture) << " " << (p.feasible ? 1 : 0) << " "
       << double_bits(p.metrics.area_units) << " " << double_bits(p.metrics.delay_ns)
       << " " << double_bits(p.metrics.clk_to_out_ns) << " "
       << double_bits(p.metrics.reg_to_reg_ns) << " " << p.metrics.cells << " "
       << p.metrics.flipflops << " " << p.metrics.buffers_added << " "
       << quote_field(p.note) << "\n";
  }
  os << "pareto " << entry.pareto.size();
  for (std::size_t i : entry.pareto) os << " " << i;
  os << "\n";
  std::string payload = os.str();
  payload += "sum " + hex64(payload_checksum(payload)) + "\n";
  return payload;
}

bool parse_eval_entry(const std::string& text, EvalCacheEntry& out) {
  // The checksum line is the last line; everything before it is the payload
  // the checksum covers.  A truncated file fails here.  (size >= 2 keeps
  // the size-2 search start and the sum_line length below from wrapping.)
  if (text.size() < 2 || text.back() != '\n') return false;
  const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
  if (last_nl == std::string::npos) return false;
  const std::string_view payload(text.data(), last_nl + 1);
  const std::string_view sum_line(text.data() + last_nl + 1,
                                  text.size() - last_nl - 2);
  {
    const auto tokens = split_tokens(sum_line);
    std::uint64_t sum = 0;
    if (tokens.size() != 2 || tokens[0] != "sum" || !parse_hex64(tokens[1], sum) ||
        tokens[1].size() != 16 || sum != payload_checksum(payload))
      return false;
  }

  std::istringstream in{std::string(payload)};
  std::string line;

  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    std::uint64_t version = 0;
    if (tokens.size() != 2 || tokens[0] != kEntryMagic ||
        !parse_u64(tokens[1], version) ||
        version != static_cast<std::uint64_t>(kEvalCacheFormatVersion))
      return false;
  }

  EvalCacheEntry entry;
  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    if (tokens.size() != 3 || tokens[0] != "key" ||
        !parse_hex64(tokens[1], entry.key.trace_hash) || tokens[1].size() != 16 ||
        !parse_hex64(tokens[2], entry.key.options_hash) || tokens[2].size() != 16)
      return false;
  }

  std::uint64_t n_points = 0;
  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    if (tokens.size() != 2 || tokens[0] != "points" || !parse_u64(tokens[1], n_points))
      return false;
    if (n_points > (1u << 20)) return false;  // implausible: reject, don't allocate
  }

  entry.points.reserve(n_points);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    if (!std::getline(in, line)) return false;
    const auto tokens = split_tokens(line);
    if (tokens.size() != 11 || tokens[0] != "p") return false;
    DesignPoint p;
    std::uint64_t feasible = 0, cells = 0, ffs = 0, bufs = 0;
    if (!unquote_field(tokens[1], p.architecture) ||
        !parse_u64(tokens[2], feasible) || feasible > 1 ||
        !parse_double_bits(tokens[3], p.metrics.area_units) ||
        !parse_double_bits(tokens[4], p.metrics.delay_ns) ||
        !parse_double_bits(tokens[5], p.metrics.clk_to_out_ns) ||
        !parse_double_bits(tokens[6], p.metrics.reg_to_reg_ns) ||
        !parse_u64(tokens[7], cells) || !parse_u64(tokens[8], ffs) ||
        !parse_u64(tokens[9], bufs) || !unquote_field(tokens[10], p.note))
      return false;
    p.feasible = feasible != 0;
    p.metrics.cells = static_cast<std::size_t>(cells);
    p.metrics.flipflops = static_cast<std::size_t>(ffs);
    p.metrics.buffers_added = static_cast<std::size_t>(bufs);
    entry.points.push_back(std::move(p));
  }

  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    std::uint64_t n_pareto = 0;
    if (tokens.size() < 2 || tokens[0] != "pareto" || !parse_u64(tokens[1], n_pareto) ||
        tokens.size() != 2 + n_pareto)
      return false;
    entry.pareto.reserve(n_pareto);
    for (std::uint64_t i = 0; i < n_pareto; ++i) {
      std::uint64_t idx = 0;
      if (!parse_u64(tokens[2 + i], idx) || idx >= entry.points.size()) return false;
      entry.pareto.push_back(static_cast<std::size_t>(idx));
    }
  }

  if (std::getline(in, line)) return false;  // trailing junk inside the checksum
  out = std::move(entry);
  return true;
}

EvalCacheDir::EvalCacheDir(std::string dir) : dir_(std::move(dir)) {}

std::vector<EvalCacheEntry> EvalCacheDir::load_all(EvalCacheLoadStats* stats) const {
  EvalCacheLoadStats local;
  std::vector<EvalCacheEntry> entries;
  const fs::path dir(dir_);
  std::vector<EvalCacheKey> keys = read_index(dir, local.skipped);
  std::sort(keys.begin(), keys.end(), key_less);
  for (const EvalCacheKey& key : keys) {
    std::string text;
    EvalCacheEntry entry;
    if (!read_file(dir / entry_filename(key), text) || !parse_eval_entry(text, entry) ||
        !(entry.key == key)) {
      ++local.skipped;
      continue;
    }
    ++local.loaded;
    entries.push_back(std::move(entry));
  }
  if (stats) *stats = local;
  return entries;
}

std::vector<EvalCacheEntry> EvalCacheDir::load_matching(
    std::uint64_t options_hash, EvalCacheLoadStats* stats) const {
  EvalCacheLoadStats local;
  std::vector<EvalCacheEntry> entries;
  const fs::path dir(dir_);
  std::vector<EvalCacheKey> keys = read_index(dir, local.skipped);
  std::sort(keys.begin(), keys.end(), key_less);
  for (const EvalCacheKey& key : keys) {
    if (key.options_hash != options_hash) continue;
    std::string text;
    EvalCacheEntry entry;
    if (!read_file(dir / entry_filename(key), text) || !parse_eval_entry(text, entry) ||
        !(entry.key == key)) {
      ++local.skipped;
      continue;
    }
    ++local.loaded;
    entries.push_back(std::move(entry));
  }
  if (stats) *stats = local;
  return entries;
}

bool EvalCacheDir::load_entry(const EvalCacheKey& key, EvalCacheEntry& out) const {
  std::string text;
  EvalCacheEntry entry;
  if (!read_file(fs::path(dir_) / entry_filename(key), text) ||
      !parse_eval_entry(text, entry) || !(entry.key == key))
    return false;
  out = std::move(entry);
  return true;
}

namespace {

bool ensure_dir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  return !ec || fs::is_directory(dir);
}

/// Appends the index line for `key` (preceded by the header when the index
/// does not exist yet).  Header and line go out as single whole-line
/// writes; a line torn by a concurrent writer is skipped on load, and a
/// duplicated header (two processes racing on first creation) is tolerated
/// there too.  Refuses (returns false) when the index carries another
/// version's header: appending there would "store" entries no reader of
/// this version would ever see.  Delete the directory to upgrade.
bool append_index(const fs::path& dir, const EvalCacheKey& key) {
  const fs::path index = dir / kIndexName;
  const std::string header = std::string(kIndexMagic) + " " +
                             std::to_string(kEvalCacheFormatVersion);
  bool fresh = true;
  {
    std::ifstream in(index);
    std::string first;
    if (in && std::getline(in, first)) {
      if (first != header) return false;
      fresh = false;
    }
  }
  std::ofstream out(index, std::ios::app);
  if (!out) return false;
  std::string lines;
  if (fresh) lines += header + "\n";
  lines += "entry " + hex64(key.trace_hash) + " " + hex64(key.options_hash) + "\n";
  out << lines;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

bool EvalCacheDir::store(const EvalCacheEntry& entry) {
  const fs::path dir(dir_);
  if (!ensure_dir(dir)) return false;
  if (!atomic_write(dir / entry_filename(entry.key), serialize_eval_entry(entry)))
    return false;
  return append_index(dir, entry.key);
}

EvalCacheDir::MergeStats EvalCacheDir::merge(const std::string& dst,
                                             const std::string& src) {
  const fs::path src_dir(src);
  const fs::path dst_dir(dst);
  std::size_t skipped = 0;
  std::set<std::pair<std::uint64_t, std::uint64_t>> have;
  for (const EvalCacheKey& key : read_index(dst_dir, skipped))
    have.insert({key.trace_hash, key.options_hash});

  // Stream one entry at a time: validate the source bytes, then copy them
  // verbatim (entry serialization is canonical, so the file content of a
  // valid entry is already exactly what we would write).
  MergeStats stats;
  bool dst_ready = false;
  for (const EvalCacheKey& key : read_index(src_dir, skipped)) {
    if (have.count({key.trace_hash, key.options_hash})) continue;
    std::string text;
    EvalCacheEntry entry;
    if (!read_file(src_dir / entry_filename(key), text) ||
        !parse_eval_entry(text, entry) || !(entry.key == key))
      continue;  // source damage: a plain skip, as on load
    if (!dst_ready) {
      if (!ensure_dir(dst_dir)) {
        ++stats.failed;
        continue;
      }
      dst_ready = true;
    }
    if (atomic_write(dst_dir / entry_filename(key), text) &&
        append_index(dst_dir, key))
      ++stats.copied;
    else
      ++stats.failed;
  }
  return stats;
}

}  // namespace addm::core
