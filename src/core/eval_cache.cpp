#include "core/eval_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <string_view>

#include "core/fingerprint.hpp"

namespace addm::core {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kIndexMagic = "addm-eval-cache";
constexpr std::string_view kEntryMagic = "addm-eval-entry";
constexpr const char* kIndexName = "index.txt";

bool parse_hex64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Doubles are stored as their IEEE-754 bit pattern so that a disk round
/// trip is bit-exact and reports built from cached points match reports
/// built from fresh evaluations byte-for-byte.
std::string double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return hex64(bits);
}

bool parse_double_bits(std::string_view s, double& out) {
  std::uint64_t bits;
  if (!parse_hex64(s, bits) || s.size() != 16) return false;
  std::memcpy(&out, &bits, sizeof out);
  return true;
}

/// Strings are quoted and percent-escaped so every serialized field is a
/// single non-empty whitespace-free token ("" encodes the empty string).
std::string quote_field(const std::string& s) {
  std::string q = "\"";
  for (unsigned char c : s) {
    if (c > 0x20 && c < 0x7f && c != '%' && c != '"') {
      q += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "%%%02x", c);
      q += buf;
    }
  }
  q += '"';
  return q;
}

bool unquote_field(std::string_view t, std::string& out) {
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out.clear();
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    const char c = t[i];
    if (c == '%') {
      if (i + 2 >= t.size() - 1) return false;  // need 2 hex chars inside the quotes
      std::uint64_t v = 0;
      if (!parse_hex64(t.substr(i + 1, 2), v)) return false;
      out += static_cast<char>(static_cast<unsigned char>(v));
      i += 2;
    } else if (c == '"' || static_cast<unsigned char>(c) <= 0x20) {
      return false;
    } else {
      out += c;
    }
  }
  return true;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t j = line.find(' ', i);
    if (j == std::string_view::npos) {
      tokens.push_back(line.substr(i));
      break;
    }
    tokens.push_back(line.substr(i, j - i));
    i = j + 1;
  }
  return tokens;
}

std::string entry_filename(const EvalCacheKey& key) {
  return hex64(key.trace_hash) + "-" + hex64(key.options_hash) + ".entry";
}

/// Inverse of entry_filename: recognizes `<16hex>-<16hex>.entry` names so
/// maintenance can re-adopt payload files whose index lines were lost.
bool parse_entry_filename(const std::string& name, EvalCacheKey& key) {
  if (name.size() != 16 + 1 + 16 + 6) return false;
  if (name[16] != '-' || name.compare(33, 6, ".entry") != 0) return false;
  return parse_hex64(std::string_view(name).substr(0, 16), key.trace_hash) &&
         parse_hex64(std::string_view(name).substr(17, 16), key.options_hash);
}

std::uint64_t payload_checksum(std::string_view payload) {
  Fnv1a64 h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

/// Slurps a payload file, stat-first: anything that is not a plain regular
/// file (vanished entry, payload replaced by a directory or FIFO) degrades
/// to a miss here instead of surfacing a stream read error downstream.
bool read_payload(const fs::path& path, std::string& out) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || ec) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return false;
  out = os.str();
  return true;
}

/// Lexicographic key order: load results are sorted so cache contents are a
/// pure function of the key set, independent of index line order.
bool key_less(const EvalCacheKey& a, const EvalCacheKey& b) {
  if (a.trace_hash != b.trace_hash) return a.trace_hash < b.trace_hash;
  return a.options_hash < b.options_hash;
}

using KeyPair = std::pair<std::uint64_t, std::uint64_t>;

KeyPair to_pair(const EvalCacheKey& k) { return {k.trace_hash, k.options_hash}; }

std::string index_header(int version) {
  return std::string(kIndexMagic) + " " + std::to_string(version);
}

/// Commutative metadata fold: record order must never influence the result
/// (prune determinism under index-line permutation depends on it).
void combine_meta(EvalCacheMeta& into, const EvalCacheMeta& add) {
  into.hits += add.hits;
  if (add.generation != 0 &&
      (into.generation == 0 || add.generation < into.generation))
    into.generation = add.generation;
  into.bytes = std::max(into.bytes, add.bytes);
}

/// Everything one pass over index.txt yields.  `version` is 0 for a missing
/// index, -1 for a malformed first line, else the header's version number
/// (which may be a future one — callers decide how to treat it; keys are
/// only collected for versions this build understands).
struct IndexData {
  int version = 0;
  std::vector<EvalCacheKey> keys;  ///< unique, first-occurrence order
  std::map<KeyPair, EvalCacheMeta> meta;
  std::uint64_t max_generation = 0;
  std::size_t damage = 0;
};

IndexData read_index(const fs::path& dir) {
  IndexData idx;
  std::ifstream in(dir / kIndexName);
  if (!in) return idx;

  std::string line;
  if (!std::getline(in, line)) return idx;  // empty file: treat as missing
  {
    const auto tokens = split_tokens(line);
    std::uint64_t version = 0;
    if (tokens.size() != 2 || tokens[0] != kIndexMagic ||
        !parse_u64(tokens[1], version) || version == 0 ||
        version > static_cast<std::uint64_t>(INT32_MAX)) {
      idx.version = -1;
      ++idx.damage;
      return idx;
    }
    idx.version = static_cast<int>(version);
  }
  if (idx.version > kEvalCacheFormatVersion) {
    // Future format: readers must not guess at its records.
    ++idx.damage;
    return idx;
  }

  // Hit records may precede their entry record only through manual edits;
  // accumulate them separately and credit indexed keys at the end so the
  // fold is line-order independent.
  std::map<KeyPair, std::uint64_t> pending_hits;
  const std::string own_header = index_header(idx.version);
  while (std::getline(in, line)) {
    // Two processes racing on first creation can both append the header;
    // the duplicate is expected noise, not damage.
    if (line == own_header) continue;
    if (line.empty()) continue;
    const auto tokens = split_tokens(line);
    EvalCacheKey key;
    if (tokens.size() >= 3 && tokens[0] == "entry" &&
        parse_hex64(tokens[1], key.trace_hash) && tokens[1].size() == 16 &&
        parse_hex64(tokens[2], key.options_hash) && tokens[2].size() == 16) {
      EvalCacheMeta meta;
      bool ok = tokens.size() == 3;
      if (tokens.size() == 6) {
        ok = parse_u64(tokens[3], meta.generation) &&
             parse_u64(tokens[4], meta.hits) && parse_u64(tokens[5], meta.bytes);
      }
      if (!ok) {
        ++idx.damage;
        continue;
      }
      auto [it, inserted] = idx.meta.try_emplace(to_pair(key), meta);
      if (inserted)
        idx.keys.push_back(key);
      else
        combine_meta(it->second, meta);
      idx.max_generation = std::max(idx.max_generation, meta.generation);
      continue;
    }
    if (tokens.size() == 4 && tokens[0] == "hit" &&
        parse_hex64(tokens[1], key.trace_hash) && tokens[1].size() == 16 &&
        parse_hex64(tokens[2], key.options_hash) && tokens[2].size() == 16) {
      std::uint64_t count = 0;
      if (!parse_u64(tokens[3], count)) {
        ++idx.damage;
        continue;
      }
      pending_hits[to_pair(key)] += count;
      continue;
    }
    ++idx.damage;
  }
  // Hits only ever credit indexed entries; a hit record surviving past its
  // entry (pruned meanwhile) is ignorable noise, not damage.
  for (const auto& [key, count] : pending_hits) {
    auto it = idx.meta.find(key);
    if (it != idx.meta.end()) it->second.hits += count;
  }
  return idx;
}

bool index_readable(const IndexData& idx) {
  return idx.version == 1 || idx.version == kEvalCacheFormatVersion;
}

std::atomic<unsigned> g_tmp_counter{0};

/// Writes `content` to `path` atomically: unique temp file in the same
/// directory, then rename (atomic on POSIX).  Readers see either the old
/// file or the complete new one, never a prefix.
bool atomic_write(const fs::path& path, const std::string& content) {
  const unsigned seq = g_tmp_counter.fetch_add(1, std::memory_order_relaxed);
  fs::path tmp = path;
  tmp += ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string entry_record_line(int version, const EvalCacheKey& key,
                              const EvalCacheMeta& meta) {
  std::string line =
      "entry " + hex64(key.trace_hash) + " " + hex64(key.options_hash);
  if (version >= 2) {
    line += " " + std::to_string(meta.generation) + " " +
            std::to_string(meta.hits) + " " + std::to_string(meta.bytes);
  }
  line += "\n";
  return line;
}

bool ensure_dir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  return !ec || fs::is_directory(dir);
}

/// Appends `lines` (whole index lines) in one write, creating the index
/// with a current-version header when it does not exist yet.  Refuses
/// (returns false) when the index carries a future or unreadable header:
/// appending there would "store" records no reader could trust.
bool append_index_lines(const fs::path& dir, const IndexData& idx,
                        const std::string& lines) {
  const fs::path index = dir / kIndexName;
  if (idx.version < 0 || idx.version > kEvalCacheFormatVersion) return false;
  std::ofstream out(index, std::ios::app);
  if (!out) return false;
  std::string text;
  if (idx.version == 0) text += index_header(kEvalCacheFormatVersion) + "\n";
  text += lines;
  out << text;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

std::string serialize_eval_entry(const EvalCacheEntry& entry) {
  std::ostringstream os;
  os << kEntryMagic << " " << kEvalCacheEntryVersion << "\n";
  os << "key " << hex64(entry.key.trace_hash) << " " << hex64(entry.key.options_hash)
     << "\n";
  os << "points " << entry.points.size() << "\n";
  for (const DesignPoint& p : entry.points) {
    os << "p " << quote_field(p.architecture) << " " << (p.feasible ? 1 : 0) << " "
       << double_bits(p.metrics.area_units) << " " << double_bits(p.metrics.delay_ns)
       << " " << double_bits(p.metrics.clk_to_out_ns) << " "
       << double_bits(p.metrics.reg_to_reg_ns) << " " << p.metrics.cells << " "
       << p.metrics.flipflops << " " << p.metrics.buffers_added << " "
       << quote_field(p.note) << "\n";
  }
  os << "pareto " << entry.pareto.size();
  for (std::size_t i : entry.pareto) os << " " << i;
  os << "\n";
  std::string payload = os.str();
  payload += "sum " + hex64(payload_checksum(payload)) + "\n";
  return payload;
}

bool parse_eval_entry(const std::string& text, EvalCacheEntry& out) {
  // The checksum line is the last line; everything before it is the payload
  // the checksum covers.  A truncated file fails here.  (size >= 2 keeps
  // the size-2 search start and the sum_line length below from wrapping.)
  if (text.size() < 2 || text.back() != '\n') return false;
  const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
  if (last_nl == std::string::npos) return false;
  const std::string_view payload(text.data(), last_nl + 1);
  const std::string_view sum_line(text.data() + last_nl + 1,
                                  text.size() - last_nl - 2);
  {
    const auto tokens = split_tokens(sum_line);
    std::uint64_t sum = 0;
    if (tokens.size() != 2 || tokens[0] != "sum" || !parse_hex64(tokens[1], sum) ||
        tokens[1].size() != 16 || sum != payload_checksum(payload))
      return false;
  }

  std::istringstream in{std::string(payload)};
  std::string line;

  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    std::uint64_t version = 0;
    if (tokens.size() != 2 || tokens[0] != kEntryMagic ||
        !parse_u64(tokens[1], version) ||
        version != static_cast<std::uint64_t>(kEvalCacheEntryVersion))
      return false;
  }

  EvalCacheEntry entry;
  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    if (tokens.size() != 3 || tokens[0] != "key" ||
        !parse_hex64(tokens[1], entry.key.trace_hash) || tokens[1].size() != 16 ||
        !parse_hex64(tokens[2], entry.key.options_hash) || tokens[2].size() != 16)
      return false;
  }

  std::uint64_t n_points = 0;
  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    if (tokens.size() != 2 || tokens[0] != "points" || !parse_u64(tokens[1], n_points))
      return false;
    if (n_points > (1u << 20)) return false;  // implausible: reject, don't allocate
  }

  entry.points.reserve(n_points);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    if (!std::getline(in, line)) return false;
    const auto tokens = split_tokens(line);
    if (tokens.size() != 11 || tokens[0] != "p") return false;
    DesignPoint p;
    std::uint64_t feasible = 0, cells = 0, ffs = 0, bufs = 0;
    if (!unquote_field(tokens[1], p.architecture) ||
        !parse_u64(tokens[2], feasible) || feasible > 1 ||
        !parse_double_bits(tokens[3], p.metrics.area_units) ||
        !parse_double_bits(tokens[4], p.metrics.delay_ns) ||
        !parse_double_bits(tokens[5], p.metrics.clk_to_out_ns) ||
        !parse_double_bits(tokens[6], p.metrics.reg_to_reg_ns) ||
        !parse_u64(tokens[7], cells) || !parse_u64(tokens[8], ffs) ||
        !parse_u64(tokens[9], bufs) || !unquote_field(tokens[10], p.note))
      return false;
    p.feasible = feasible != 0;
    p.metrics.cells = static_cast<std::size_t>(cells);
    p.metrics.flipflops = static_cast<std::size_t>(ffs);
    p.metrics.buffers_added = static_cast<std::size_t>(bufs);
    entry.points.push_back(std::move(p));
  }

  if (!std::getline(in, line)) return false;
  {
    const auto tokens = split_tokens(line);
    std::uint64_t n_pareto = 0;
    if (tokens.size() < 2 || tokens[0] != "pareto" || !parse_u64(tokens[1], n_pareto) ||
        tokens.size() != 2 + n_pareto)
      return false;
    entry.pareto.reserve(n_pareto);
    for (std::uint64_t i = 0; i < n_pareto; ++i) {
      std::uint64_t idx = 0;
      if (!parse_u64(tokens[2 + i], idx) || idx >= entry.points.size()) return false;
      entry.pareto.push_back(static_cast<std::size_t>(idx));
    }
  }

  if (std::getline(in, line)) return false;  // trailing junk inside the checksum
  out = std::move(entry);
  return true;
}

EvalCacheDir::EvalCacheDir(std::string dir) : dir_(std::move(dir)) {}

std::vector<EvalCacheEntry> EvalCacheDir::load_all(EvalCacheLoadStats* stats) const {
  EvalCacheLoadStats local;
  std::vector<EvalCacheEntry> entries;
  const fs::path dir(dir_);
  IndexData idx = read_index(dir);
  local.skipped += idx.damage;
  std::vector<EvalCacheKey> keys =
      index_readable(idx) ? std::move(idx.keys) : std::vector<EvalCacheKey>{};
  std::sort(keys.begin(), keys.end(), key_less);
  for (const EvalCacheKey& key : keys) {
    std::string text;
    EvalCacheEntry entry;
    if (!read_payload(dir / entry_filename(key), text) ||
        !parse_eval_entry(text, entry) || !(entry.key == key)) {
      ++local.skipped;
      continue;
    }
    ++local.loaded;
    entries.push_back(std::move(entry));
  }
  if (stats) *stats = local;
  return entries;
}

std::vector<EvalCacheEntry> EvalCacheDir::load_matching(
    std::uint64_t options_hash, EvalCacheLoadStats* stats) const {
  EvalCacheLoadStats local;
  std::vector<EvalCacheEntry> entries;
  const fs::path dir(dir_);
  IndexData idx = read_index(dir);
  local.skipped += idx.damage;
  std::vector<EvalCacheKey> keys =
      index_readable(idx) ? std::move(idx.keys) : std::vector<EvalCacheKey>{};
  std::sort(keys.begin(), keys.end(), key_less);
  for (const EvalCacheKey& key : keys) {
    if (key.options_hash != options_hash) continue;
    std::string text;
    EvalCacheEntry entry;
    if (!read_payload(dir / entry_filename(key), text) ||
        !parse_eval_entry(text, entry) || !(entry.key == key)) {
      ++local.skipped;
      continue;
    }
    ++local.loaded;
    entries.push_back(std::move(entry));
  }
  if (stats) *stats = local;
  return entries;
}

bool EvalCacheDir::load_entry(const EvalCacheKey& key, EvalCacheEntry& out) const {
  std::string text;
  EvalCacheEntry entry;
  if (!read_payload(fs::path(dir_) / entry_filename(key), text) ||
      !parse_eval_entry(text, entry) || !(entry.key == key))
    return false;
  out = std::move(entry);
  return true;
}

std::vector<EvalCacheRecord> EvalCacheDir::read_records(
    std::size_t* index_damage) const {
  IndexData idx = read_index(fs::path(dir_));
  if (index_damage) *index_damage = idx.damage;
  std::vector<EvalCacheRecord> records;
  if (!index_readable(idx)) return records;
  records.reserve(idx.meta.size());
  for (const auto& [key, meta] : idx.meta)
    records.push_back({{key.first, key.second}, meta});
  return records;  // std::map iteration == key order
}

bool EvalCacheDir::store(const EvalCacheEntry& entry) {
  return store_batch({entry}) == 1;
}

std::size_t EvalCacheDir::store_batch(const std::vector<EvalCacheEntry>& entries) {
  if (entries.empty()) return 0;
  const fs::path dir(dir_);
  if (!ensure_dir(dir)) return 0;
  const IndexData idx = read_index(dir);
  if (idx.version < 0 || idx.version > kEvalCacheFormatVersion) return 0;
  const int record_version = idx.version == 0 ? kEvalCacheFormatVersion : idx.version;

  std::vector<const EvalCacheEntry*> sorted;
  sorted.reserve(entries.size());
  for (const EvalCacheEntry& e : entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const EvalCacheEntry* a, const EvalCacheEntry* b) {
              return key_less(a->key, b->key);
            });

  // One insertion generation for the whole batch: entries flushed together
  // age together, and the assignment is independent of flush scheduling.
  EvalCacheMeta meta;
  meta.generation = idx.max_generation + 1;

  std::string lines;
  std::size_t written = 0;
  for (const EvalCacheEntry* e : sorted) {
    const std::string payload = serialize_eval_entry(*e);
    if (!atomic_write(dir / entry_filename(e->key), payload)) continue;
    meta.bytes = payload.size();
    lines += entry_record_line(record_version, e->key, meta);
    ++written;
  }
  if (written == 0) return 0;
  return append_index_lines(dir, idx, lines) ? written : 0;
}

bool EvalCacheDir::record_hits(
    const std::vector<std::pair<EvalCacheKey, std::uint64_t>>& hits) {
  if (hits.empty()) return true;
  const fs::path dir(dir_);
  const IndexData idx = read_index(dir);
  // Hit records exist only in the v2 grammar; a v1 index keeps working
  // without them (its entries just look cold to prune).
  if (idx.version != kEvalCacheFormatVersion) return false;

  std::vector<std::pair<EvalCacheKey, std::uint64_t>> sorted;
  for (const auto& [key, count] : hits)
    if (count != 0 && idx.meta.count(to_pair(key))) sorted.push_back({key, count});
  if (sorted.empty()) return true;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return key_less(a.first, b.first); });

  std::string lines;
  for (const auto& [key, count] : sorted)
    lines += "hit " + hex64(key.trace_hash) + " " + hex64(key.options_hash) + " " +
             std::to_string(count) + "\n";
  return append_index_lines(dir, idx, lines);
}

namespace {

/// Shared core of compact/prune/merge: reduces `dst` (unioned with `srcs`)
/// to the canonical directory form — validated entries only, combined
/// metadata, key-sorted v2 index written atomically, and no unreferenced
/// files.  See the header contracts of compact() and merge().
struct CanonOut {
  EvalCacheDir::MaintenanceStats m;
  std::size_t copied = 0;  ///< payloads newly written from a source
  std::size_t failed = 0;  ///< destination writes that failed
};

void scan_payload_files(const fs::path& dir,
                        std::map<KeyPair, std::vector<fs::path>>& files) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& e : it) {
    if (!e.is_regular_file(ec) || ec) continue;
    EvalCacheKey key;
    if (!parse_entry_filename(e.path().filename().string(), key)) continue;
    files[to_pair(key)].push_back(e.path());
  }
}

CanonOut canonicalize(const fs::path& dst, const std::vector<fs::path>& srcs,
                      std::uint64_t max_entries, std::uint64_t max_bytes) {
  CanonOut out;
  const bool dst_exists = fs::is_directory(dst);
  if (!dst_exists && srcs.empty()) return out;  // nothing to do, nothing to create

  IndexData didx = dst_exists ? read_index(dst) : IndexData{};
  if (didx.version > kEvalCacheFormatVersion) {
    out.m.ok = false;  // future cache: refuse rather than destroy it
    return out;
  }

  // Record union: dst index, then every source index.  combine_meta is
  // commutative and associative, so the result is independent of source
  // order — the property behind merge/compact commutation.
  std::map<KeyPair, EvalCacheMeta> records = std::move(didx.meta);
  std::set<KeyPair> indexed;
  for (const auto& [key, meta] : records) indexed.insert(key);
  for (const fs::path& src : srcs) {
    IndexData sidx = read_index(src);
    if (!index_readable(sidx)) continue;
    for (const auto& [key, meta] : sidx.meta) {
      auto [it, inserted] = records.try_emplace(key, meta);
      if (!inserted) combine_meta(it->second, meta);
      indexed.insert(key);
    }
  }

  // Payload candidates: dst files first (already in place), then sources.
  // Valid files whose index record was lost (torn index write) are adopted
  // back with default metadata.
  std::map<KeyPair, std::vector<fs::path>> files;
  if (dst_exists) scan_payload_files(dst, files);
  for (const fs::path& src : srcs) scan_payload_files(src, files);
  for (const auto& [key, paths] : files) records.try_emplace(key, EvalCacheMeta{});

  struct Kept {
    EvalCacheKey key;
    EvalCacheMeta meta;
    std::string canonical;
    bool dst_canonical = false;  ///< dst already holds exactly these bytes
    bool from_src = false;       ///< the valid payload came from a source dir
  };
  std::vector<Kept> kept;
  for (const auto& [pair, meta] : records) {
    const EvalCacheKey key{pair.first, pair.second};
    auto fit = files.find(pair);
    Kept k;
    bool valid = false;
    if (fit != files.end()) {
      for (const fs::path& path : fit->second) {
        std::string text;
        EvalCacheEntry entry;
        if (!read_payload(path, text) || !parse_eval_entry(text, entry) ||
            !(entry.key == key))
          continue;
        k.canonical = serialize_eval_entry(entry);
        const bool in_dst = dst_exists && path.parent_path() == dst;
        k.dst_canonical = in_dst && text == k.canonical;
        k.from_src = !in_dst;
        valid = true;
        break;
      }
    }
    if (!valid) {
      ++out.m.dropped;
      continue;
    }
    k.key = key;
    k.meta = meta;
    k.meta.bytes = k.canonical.size();
    if (!indexed.count(pair)) ++out.m.adopted;
    kept.push_back(std::move(k));
  }

  // Budget: evict in ascending (hits, generation, key) order — least-hit
  // first, then oldest generation — until both limits hold.  Evicting from
  // the bottom of a fixed priority order keeps the decision a pure function
  // of the recorded metadata.
  std::uint64_t total_bytes = 0;
  for (const Kept& k : kept) total_bytes += k.meta.bytes;
  if (kept.size() > max_entries || total_bytes > max_bytes) {
    std::vector<std::size_t> order(kept.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const Kept& x = kept[a];
      const Kept& y = kept[b];
      if (x.meta.hits != y.meta.hits) return x.meta.hits < y.meta.hits;
      if (x.meta.generation != y.meta.generation)
        return x.meta.generation < y.meta.generation;
      return key_less(x.key, y.key);
    });
    std::set<std::size_t> evict;
    for (std::size_t i : order) {
      if (kept.size() - evict.size() <= max_entries && total_bytes <= max_bytes)
        break;
      evict.insert(i);
      total_bytes -= kept[i].meta.bytes;
    }
    std::vector<Kept> survivors;
    survivors.reserve(kept.size() - evict.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (evict.count(i))
        ++out.m.evicted;
      else
        survivors.push_back(std::move(kept[i]));
    }
    kept = std::move(survivors);  // still key-sorted: evict only removes
  }

  if (!dst_exists && !ensure_dir(dst)) {
    out.m.ok = false;
    out.failed = kept.size();
    return out;
  }

  // Materialize: write every kept payload whose destination bytes are not
  // already canonical, then atomically replace the index.
  std::set<std::string> referenced;
  std::string index_text = index_header(kEvalCacheFormatVersion) + "\n";
  for (auto it = kept.begin(); it != kept.end();) {
    Kept& k = *it;
    if (!k.dst_canonical &&
        !atomic_write(dst / entry_filename(k.key), k.canonical)) {
      ++out.failed;
      it = kept.erase(it);  // cannot index what was not written
      continue;
    }
    if (k.from_src) ++out.copied;
    referenced.insert(entry_filename(k.key));
    index_text += entry_record_line(kEvalCacheFormatVersion, k.key, k.meta);
    ++out.m.kept;
    out.m.bytes_kept += k.meta.bytes;
    ++it;
  }
  if (!atomic_write(dst / kIndexName, index_text)) {
    out.m.ok = false;
    return out;
  }

  // Cleanup: after a successful rewrite the directory contains exactly the
  // index plus one payload per indexed entry — corrupt payloads, evicted
  // entries, and stale temp files all go.
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dst, ec)) {
    if (!e.is_regular_file(ec) || ec) continue;
    const std::string name = e.path().filename().string();
    if (name == kIndexName || referenced.count(name)) continue;
    std::error_code rm;
    if (fs::remove(e.path(), rm) && !rm) ++out.m.files_removed;
  }
  return out;
}

}  // namespace

EvalCacheDir::MaintenanceStats EvalCacheDir::compact() {
  return canonicalize(fs::path(dir_), {}, UINT64_MAX, UINT64_MAX).m;
}

EvalCacheDir::MaintenanceStats EvalCacheDir::prune(std::uint64_t max_entries,
                                                   std::uint64_t max_bytes) {
  return canonicalize(fs::path(dir_), {}, max_entries, max_bytes).m;
}

EvalCacheDir::DirStats EvalCacheDir::stats() const {
  DirStats s;
  const fs::path dir(dir_);
  const IndexData idx = read_index(dir);
  s.index_version = idx.version < 0 ? 0 : idx.version;
  s.index_damage = idx.damage;
  if (index_readable(idx)) {
    s.entries = idx.meta.size();
    s.max_generation = idx.max_generation;
    for (const auto& [key, meta] : idx.meta) {
      s.recorded_bytes += meta.bytes;
      s.hits += meta.hits;
    }
  }
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (!ec) {
    std::size_t present = 0;
    for (const auto& e : it) {
      if (!e.is_regular_file(ec) || ec) continue;
      const std::string name = e.path().filename().string();
      if (name == kIndexName) continue;
      EvalCacheKey key;
      if (!parse_entry_filename(name, key)) {
        ++s.stale_files;
        continue;
      }
      ++s.payload_files;
      std::error_code sz;
      const auto bytes = fs::file_size(e.path(), sz);
      if (!sz) s.payload_bytes += bytes;
      if (index_readable(idx) && idx.meta.count(to_pair(key)))
        ++present;
      else
        ++s.orphan_payloads;
    }
    s.missing_payloads = s.entries - std::min(s.entries, present);
  }
  return s;
}

EvalCacheDir::VerifyStats EvalCacheDir::verify() const {
  VerifyStats v;
  const fs::path dir(dir_);
  const IndexData idx = read_index(dir);
  v.index_damage = idx.damage;
  std::set<KeyPair> indexed;
  if (index_readable(idx)) {
    for (const auto& [key, meta] : idx.meta) {
      indexed.insert(key);
      const EvalCacheKey k{key.first, key.second};
      const fs::path path = dir / entry_filename(k);
      std::error_code ec;
      if (!fs::exists(path, ec) || ec) {
        ++v.missing;
        continue;
      }
      std::string text;
      EvalCacheEntry entry;
      if (!read_payload(path, text) || !parse_eval_entry(text, entry) ||
          !(entry.key == k))
        ++v.corrupt;
      else
        ++v.valid;
    }
  }
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (!ec) {
    for (const auto& e : it) {
      if (!e.is_regular_file(ec) || ec) continue;
      const std::string name = e.path().filename().string();
      if (name == kIndexName) continue;
      EvalCacheKey key;
      if (!parse_entry_filename(name, key)) {
        ++v.stale_files;
        continue;
      }
      if (indexed.count(to_pair(key))) continue;
      std::string text;
      EvalCacheEntry entry;
      if (read_payload(e.path(), text) && parse_eval_entry(text, entry) &&
          entry.key == key)
        ++v.orphans;
      else
        ++v.orphan_corrupt;
    }
  }
  return v;
}

EvalCacheDir::MergeStats EvalCacheDir::merge(const std::string& dst,
                                             const std::string& src) {
  const CanonOut out =
      canonicalize(fs::path(dst), {fs::path(src)}, UINT64_MAX, UINT64_MAX);
  return {out.copied, out.failed};
}

std::string eval_cache_stats_json(const EvalCacheDir::DirStats& s) {
  std::string out = "{\n";
  out += "  \"index_version\": " + std::to_string(s.index_version) + ",\n";
  out += "  \"entries\": " + std::to_string(s.entries) + ",\n";
  out += "  \"payload_files\": " + std::to_string(s.payload_files) + ",\n";
  out += "  \"missing_payloads\": " + std::to_string(s.missing_payloads) + ",\n";
  out += "  \"orphan_payloads\": " + std::to_string(s.orphan_payloads) + ",\n";
  out += "  \"stale_files\": " + std::to_string(s.stale_files) + ",\n";
  out += "  \"index_damage\": " + std::to_string(s.index_damage) + ",\n";
  out += "  \"recorded_bytes\": " + std::to_string(s.recorded_bytes) + ",\n";
  out += "  \"payload_bytes\": " + std::to_string(s.payload_bytes) + ",\n";
  out += "  \"hits\": " + std::to_string(s.hits) + ",\n";
  out += "  \"max_generation\": " + std::to_string(s.max_generation) + "\n";
  out += "}\n";
  return out;
}

}  // namespace addm::core
