#include "core/srag_model.hpp"

#include <utility>

namespace addm::core {

SragModel::SragModel(SragConfig config) : config_(std::move(config)) { config_.check(); }

void SragModel::pulse() {
  // DivCnt counts every pulse; the shift fires on the pulse that completes a
  // division period (combinational enable = next & (DivCnt == dC-1)).
  if (++div_ < config_.div_count) return;
  div_ = 0;

  // PassCnt counts enabled shifts; `pass` is asserted during the shift on
  // which the pre-shift count equals pC-1.
  const bool pass = (pass_ == config_.pass_count - 1);
  pass_ = (pass_ + 1) % config_.pass_count;

  const std::size_t len = config_.registers[reg_].size();
  if (pos_ + 1 < len) {
    ++pos_;  // token moves down its register regardless of `pass`
  } else {
    pos_ = 0;
    if (pass) reg_ = (reg_ + 1) % config_.num_registers();
    // otherwise the register's tail feeds its own head (token wraps)
  }
}

void SragModel::reset() {
  reg_ = pos_ = 0;
  div_ = pass_ = 0;
}

std::vector<std::uint32_t> SragModel::generate(std::size_t n) {
  reset();
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(current());
    pulse();
  }
  return out;
}

}  // namespace addm::core
