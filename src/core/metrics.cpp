#include "core/metrics.hpp"

#include <stdexcept>

#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"

namespace addm::core {

GeneratorMetrics measure_netlist(netlist::Netlist& nl, const tech::Library& lib,
                                 int max_fanout) {
  nl.sweep_dead_cells();  // drop logic no output depends on, as synthesis does
  const auto buf_stats = tech::insert_buffers(nl, max_fanout);
  const auto timing = tech::analyze_timing(nl, lib);
  const auto area = tech::analyze_area(nl, lib);

  GeneratorMetrics m;
  m.area_units = area.total;
  m.delay_ns = timing.critical_path_ns;
  m.clk_to_out_ns = timing.clk_to_output_ns;
  m.reg_to_reg_ns = timing.reg_to_reg_ns;
  m.cells = area.cells;
  m.buffers_added = buf_stats.buffers_added;
  const auto stats = nl.stats();
  m.flipflops = stats.num_seq;
  return m;
}

Srag2dBuild build_srag_2d_for_trace(const seq::AddressTrace& trace) {
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  MapResult row_map =
      map_sequence(rows, static_cast<std::uint32_t>(trace.geometry().height));
  if (!row_map.ok())
    throw std::invalid_argument("row sequence unmappable: " + to_string(*row_map.failure) +
                                " (" + row_map.detail + ")");
  MapResult col_map =
      map_sequence(cols, static_cast<std::uint32_t>(trace.geometry().width));
  if (!col_map.ok())
    throw std::invalid_argument("column sequence unmappable: " +
                                to_string(*col_map.failure) + " (" + col_map.detail + ")");

  Srag2dBuild out;
  out.row = std::move(*row_map.config);
  out.col = std::move(*col_map.config);
  out.netlist = elaborate_srag_2d(out.row, out.col);
  return out;
}

}  // namespace addm::core
