// ArithAG: arithmetic-based address generator — the third generator style of
// the paper's landscape (Section 2/6: "the counter-based style was chosen as
// the benchmark because, for regular access patterns, it performs better
// than arithmetic-based address generators [7]").
//
// Architecture, following the ADOPT-style accumulator scheme: one small loop
// counter per nest level plus a linear-address accumulator. Every `next`
// pulse adds a stride constant to the accumulator; the constant is selected
// (priority mux, innermost first) by which loop counters are about to wrap,
// so each level contributes coeff*step minus the spans the wrapped inner
// loops retract. When the whole nest wraps, the accumulator reloads its
// initial value.
//
// The accumulator's adder sits on the clk->address path, so ArithAG trades
// the CntAG's decoder-dominated delay for a carry-chain-dominated one —
// bench_ext_arithag reproduces the related-work claim that this loses on
// regular patterns.
#pragma once

#include "netlist/builder.hpp"
#include "seq/loopnest.hpp"
#include "synth/decoder.hpp"

namespace addm::core {

struct ArithAgOptions {
  synth::DecoderStyle decoder_style = synth::DecoderStyle::SharedChain;
  bool include_decoders = true;
};

struct ArithAgPorts {
  std::vector<netlist::NetId> address;  ///< linear address accumulator bits
  std::vector<netlist::NetId> row_addr;
  std::vector<netlist::NetId> col_addr;
  std::vector<netlist::NetId> rs;
  std::vector<netlist::NetId> cs;
};

/// Appends an ArithAG for `program` to `b`. The geometry width must be a
/// power of two (the accumulator holds linear addresses and the row/column
/// split is a bit split). Throws std::invalid_argument otherwise.
ArithAgPorts build_arithag(netlist::NetlistBuilder& b, const seq::LoopNestProgram& program,
                           netlist::NetId next, netlist::NetId reset,
                           const ArithAgOptions& opt = {});

/// Standalone netlist: inputs "next"/"reset", outputs "ra"/"ca" (+ "rs"/"cs"
/// with decoders).
netlist::Netlist elaborate_arithag(const seq::LoopNestProgram& program,
                                   const ArithAgOptions& opt = {});

}  // namespace addm::core
