#include "core/arithag.hpp"

#include <stdexcept>

#include "synth/adder.hpp"
#include "synth/counter.hpp"

namespace addm::core {

using netlist::CellType;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

ArithAgPorts build_arithag(NetlistBuilder& b, const seq::LoopNestProgram& program,
                           NetId next, NetId reset, const ArithAgOptions& opt) {
  const auto& loops = program.nest.loops();
  if (loops.empty()) throw std::invalid_argument("build_arithag: empty loop nest");
  const auto geom = program.geometry;
  if ((geom.width & (geom.width - 1)) != 0)
    throw std::invalid_argument("build_arithag: width must be a power of two");
  const std::size_t levels = loops.size();
  const int addr_bits = synth::bits_for(geom.size());
  const std::uint64_t addr_mask = (std::uint64_t{1} << addr_bits) - 1;

  auto coeff_at = [](const std::vector<long>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0L;
  };
  // Linear-address coefficient and per-loop movement span.
  std::vector<long> lc(levels), span(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    lc[l] = coeff_at(program.access.row_coeffs, l) * static_cast<long>(geom.width) +
            coeff_at(program.access.col_coeffs, l);
    span[l] = lc[l] * loops[l].step * (static_cast<long>(loops[l].trip_count()) - 1);
  }
  // Stride constant applied when level l increments: its own step forward
  // minus everything the wrapped inner loops walked.
  std::vector<std::uint64_t> delta(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    long d = lc[l] * loops[l].step;
    for (std::size_t j = l + 1; j < levels; ++j) d -= span[j];
    delta[l] = static_cast<std::uint64_t>(d) & addr_mask;
  }
  // Initial linear address (all loops at their lower bounds).
  std::vector<long> lowers(levels);
  for (std::size_t l = 0; l < levels; ++l) lowers[l] = loops[l].lower;
  const long init_row = program.access.row(lowers);
  const long init_col = program.access.col(lowers);
  const std::uint64_t init_addr =
      static_cast<std::uint64_t>(init_row * static_cast<long>(geom.width) + init_col);

  // Loop iteration counters, innermost enabled by `next`, each outer level by
  // the wraps of everything inside it.
  std::vector<NetId> wrap(levels);
  {
    NetId enable = next;
    for (std::size_t l = levels; l-- > 0;) {
      const std::size_t trips = loops[l].trip_count();
      if (trips == 1) {
        wrap[l] = netlist::kConst1;  // a one-trip loop wraps every time
        continue;
      }
      synth::CounterSpec spec;
      spec.bits = synth::bits_for(trips);
      spec.modulo = trips;
      const auto cnt = synth::build_counter(b, spec, enable, reset);
      wrap[l] = cnt.wrap;
      enable = b.and2(enable, cnt.wrap);
    }
  }

  // Address accumulator flip-flops (created up-front for the feedback).
  auto& nl = b.netlist();
  std::vector<NetId> acc(static_cast<std::size_t>(addr_bits));
  for (auto& n : acc) n = nl.new_net();

  // Stride selection: innermost non-wrapping level wins.
  std::vector<NetId> stride = b.constant_word(delta[0], addr_bits);
  for (std::size_t l = 1; l < levels; ++l)
    stride = b.mux2_word(wrap[l], b.constant_word(delta[l], addr_bits), stride);

  const auto adder = synth::build_adder(b, acc, stride);

  // Whole-nest wrap: reload the initial address.
  std::vector<NetId> all_wraps(wrap.begin(), wrap.end());
  const NetId nest_wrap = b.and_tree(all_wraps);
  const auto init_word = b.constant_word(init_addr, addr_bits);
  for (int k = 0; k < addr_bits; ++k) {
    const NetId d = b.mux2(nest_wrap, adder.sum[static_cast<std::size_t>(k)],
                           init_word[static_cast<std::size_t>(k)]);
    // Reset loads the initial address bit-by-bit (set for 1-bits).
    const CellType ff = (init_addr >> k) & 1 ? CellType::DffES : CellType::DffER;
    nl.add_cell(ff, {d, next, reset}, acc[static_cast<std::size_t>(k)]);
  }

  ArithAgPorts ports;
  ports.address = acc;
  const int col_bits = synth::bits_for(geom.width);
  ports.col_addr.assign(acc.begin(), acc.begin() + col_bits);
  ports.row_addr.assign(acc.begin() + col_bits, acc.end());
  if (opt.include_decoders) {
    ports.rs = synth::build_decoder(b, ports.row_addr, geom.height, netlist::kConst1,
                                    opt.decoder_style);
    ports.cs = synth::build_decoder(b, ports.col_addr, geom.width, netlist::kConst1,
                                    opt.decoder_style);
  }
  return ports;
}

Netlist elaborate_arithag(const seq::LoopNestProgram& program, const ArithAgOptions& opt) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const auto ports = build_arithag(b, program, next, reset, opt);
  b.output_bus("ra", ports.row_addr);
  b.output_bus("ca", ports.col_addr);
  if (opt.include_decoders) {
    b.output_bus("rs", ports.rs);
    b.output_bus("cs", ports.cs);
  }
  return nl;
}

}  // namespace addm::core
