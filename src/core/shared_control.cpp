#include "core/shared_control.hpp"

#include "synth/counter.hpp"

namespace addm::core {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

namespace {

struct DerivedEnable {
  NetId enable = netlist::kInvalidNet;
  ControlSharing sharing = ControlSharing::None;
};

/// Derives the slow dimension's shift enable from the fast dimension's
/// control events, if the divisibility conditions allow it.
DerivedEnable derive_enable(NetlistBuilder& b, const SragPorts& fast,
                            const SragConfig& fast_cfg, std::uint32_t slow_div,
                            NetId reset) {
  DerivedEnable out;
  const std::uint64_t fast_div = fast_cfg.div_count;
  const std::uint64_t fast_cycle =
      static_cast<std::uint64_t>(fast_cfg.pass_count) * fast_cfg.num_registers();

  if (slow_div % fast_div != 0) return out;  // no alignment at all
  const std::uint64_t per_enable = slow_div / fast_div;

  if (per_enable == 1) {
    // Same division: the slow dimension shifts on every fast enable.
    out.enable = fast.enable;
    out.sharing = ControlSharing::ColumnEnable;
    return out;
  }
  if (per_enable % fast_cycle == 0) {
    const std::uint64_t r = per_enable / fast_cycle;
    if (r == 1) {
      out.enable = fast.cycle_complete;
      out.sharing = ControlSharing::ColumnCycle;
      return out;
    }
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(r);
    spec.modulo = r;
    const auto cnt = synth::build_counter(b, spec, fast.cycle_complete, reset);
    out.enable = b.and2(fast.cycle_complete, cnt.wrap);
    out.sharing = ControlSharing::ColumnCycleScaled;
    return out;
  }
  // Count fast enables with a reduced modulo (saves bits over a raw DivCnt
  // whenever the fast dimension divides at all).
  synth::CounterSpec spec;
  spec.bits = synth::bits_for(per_enable);
  spec.modulo = per_enable;
  const auto cnt = synth::build_counter(b, spec, fast.enable, reset);
  out.enable = b.and2(fast.enable, cnt.wrap);
  out.sharing = ControlSharing::ColumnEnable;
  return out;
}

}  // namespace

SharedSrag2dResult build_srag_2d_shared(NetlistBuilder& b, const SragConfig& row_cfg,
                                        const SragConfig& col_cfg, NetId next,
                                        NetId reset) {
  row_cfg.check();
  col_cfg.check();
  SharedSrag2dResult res;

  // The dimension with the smaller division count is the "fast" one; it is
  // built with its own DivCnt and the other dimension taps its events.
  const bool col_is_fast = col_cfg.div_count <= row_cfg.div_count;
  const SragConfig& fast_cfg = col_is_fast ? col_cfg : row_cfg;
  const SragConfig& slow_cfg = col_is_fast ? row_cfg : col_cfg;

  SragPorts fast = build_srag(b, fast_cfg, next, reset);
  DerivedEnable derived = derive_enable(b, fast, fast_cfg, slow_cfg.div_count, reset);

  SragPorts slow;
  if (derived.sharing == ControlSharing::None) {
    slow = build_srag(b, slow_cfg, next, reset);  // independent fallback
  } else {
    slow = build_srag_with_enable(b, slow_cfg, derived.enable, reset);
  }
  res.sharing = derived.sharing;
  res.row = col_is_fast ? slow : fast;
  res.col = col_is_fast ? fast : slow;
  return res;
}

Netlist elaborate_srag_2d_shared(const SragConfig& row_cfg, const SragConfig& col_cfg,
                                 ControlSharing* sharing_out) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const auto res = build_srag_2d_shared(b, row_cfg, col_cfg, next, reset);
  b.output_bus("rs", res.row.select);
  b.output_bus("cs", res.col.select);
  if (sharing_out) *sharing_out = res.sharing;
  return nl;
}

}  // namespace addm::core
