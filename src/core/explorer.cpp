#include "core/explorer.hpp"

#include <algorithm>
#include <sstream>

#include "core/cntag.hpp"
#include "core/multicounter.hpp"
#include "core/sfm.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "synth/fsm.hpp"

namespace addm::core {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

namespace {

DesignPoint measured_point(std::string arch, Netlist nl, const ExploreOptions& opt,
                           std::string note = {}) {
  DesignPoint p;
  p.architecture = std::move(arch);
  p.metrics = measure_netlist(nl, opt.library, opt.max_fanout);
  p.feasible = true;
  p.note = std::move(note);
  return p;
}

DesignPoint infeasible_point(std::string arch, std::string why) {
  DesignPoint p;
  p.architecture = std::move(arch);
  p.feasible = false;
  p.note = std::move(why);
  return p;
}

Netlist elaborate_fsm_2d(const seq::AddressTrace& trace, synth::FsmEncoding enc) {
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  const std::size_t L = trace.length();

  synth::FsmSpec row_spec;
  row_spec.next_state.resize(L);
  for (std::size_t i = 0; i < L; ++i)
    row_spec.next_state[i] = static_cast<std::uint32_t>((i + 1) % L);
  row_spec.select_of_state = rows;
  row_spec.num_select_lines = trace.geometry().height;

  synth::FsmSpec col_spec = row_spec;
  col_spec.select_of_state = cols;
  col_spec.num_select_lines = trace.geometry().width;

  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const synth::FsmStyle style{enc, /*flat_mapping=*/true};
  const auto row_ports = synth::build_fsm(b, row_spec, next, reset, style);
  const auto col_ports = synth::build_fsm(b, col_spec, next, reset, style);
  b.output_bus("rs", row_ports.select);
  b.output_bus("cs", col_ports.select);
  return nl;
}

bool is_fifo(const seq::AddressTrace& trace) {
  const auto& a = trace.linear();
  if (a.size() != trace.geometry().size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != i) return false;
  return true;
}

}  // namespace

std::vector<DesignPoint> explore_generators(const seq::AddressTrace& trace,
                                            const ExploreOptions& opt) {
  std::vector<DesignPoint> points;

  // SRAG (two-hot).
  try {
    Srag2dBuild srag = build_srag_2d_for_trace(trace);
    std::ostringstream note;
    note << "row: " << srag.row.num_registers() << " regs/" << srag.row.num_flipflops()
         << " ffs dC=" << srag.row.div_count << " pC=" << srag.row.pass_count
         << "; col: " << srag.col.num_registers() << " regs/" << srag.col.num_flipflops()
         << " ffs dC=" << srag.col.div_count << " pC=" << srag.col.pass_count;
    points.push_back(
        measured_point("SRAG", std::move(srag.netlist), opt, note.str()));
  } catch (const std::invalid_argument& e) {
    points.push_back(infeasible_point("SRAG", e.what()));
  }

  // Multi-counter SRAG.
  {
    const auto rows = trace.rows();
    const auto cols = trace.cols();
    auto row_map = map_sequence_multicounter(
        rows, static_cast<std::uint32_t>(trace.geometry().height));
    auto col_map = map_sequence_multicounter(
        cols, static_cast<std::uint32_t>(trace.geometry().width));
    if (row_map.ok() && col_map.ok()) {
      Netlist nl;
      NetlistBuilder b(nl);
      const NetId next = b.input("next");
      const NetId reset = b.input("reset");
      const auto rp = build_multi_srag(b, *row_map.config, next, reset);
      const auto cp = build_multi_srag(b, *col_map.config, next, reset);
      b.output_bus("rs", rp.select);
      b.output_bus("cs", cp.select);
      points.push_back(measured_point("SRAG-multicounter", std::move(nl), opt));
    } else {
      points.push_back(infeasible_point(
          "SRAG-multicounter",
          !row_map.ok() ? "row: " + row_map.detail : "col: " + col_map.detail));
    }
  }

  // CntAG variants.
  {
    CntAgOptions copt;
    copt.decoder_style = synth::DecoderStyle::Flat;
    points.push_back(
        measured_point("CntAG-flat", elaborate_cntag(trace, copt), opt, "flat decoders"));
    copt.decoder_style = synth::DecoderStyle::SharedChain;
    points.push_back(measured_point("CntAG-shared", elaborate_cntag(trace, copt), opt,
                                    "shared chain decoders (2002 flow)"));
    copt.decoder_style = synth::DecoderStyle::SharedBalanced;
    points.push_back(measured_point("CntAG-predecoded", elaborate_cntag(trace, copt), opt,
                                    "balanced predecoders (modern flow)"));
  }

  // Symbolic FSMs.
  if (opt.include_fsm) {
    const char* names[] = {"FSM-binary", "FSM-gray", "FSM-onehot"};
    const synth::FsmEncoding encs[] = {synth::FsmEncoding::Binary, synth::FsmEncoding::Gray,
                                       synth::FsmEncoding::OneHot};
    for (int k = 0; k < 3; ++k) {
      if (trace.length() > opt.max_fsm_states) {
        points.push_back(infeasible_point(
            names[k], "synthesis impractical beyond " +
                          std::to_string(opt.max_fsm_states) + " states (sequence has " +
                          std::to_string(trace.length()) + ")"));
        continue;
      }
      points.push_back(measured_point(names[k], elaborate_fsm_2d(trace, encs[k]), opt));
    }
  }

  // SFM.
  if (is_fifo(trace)) {
    points.push_back(measured_point("SFM", elaborate_sfm(trace.geometry().size()), opt,
                                    "one-hot FIFO pointers (1-D memory)"));
  } else {
    points.push_back(infeasible_point("SFM", "SFM supports FIFO access only"));
  }
  return points;
}

std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j || !points[j].feasible) continue;
      const bool no_worse = points[j].metrics.area_units <= points[i].metrics.area_units &&
                            points[j].metrics.delay_ns <= points[i].metrics.delay_ns;
      const bool better = points[j].metrics.area_units < points[i].metrics.area_units ||
                          points[j].metrics.delay_ns < points[i].metrics.delay_ns;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string format_exploration(const std::vector<DesignPoint>& points) {
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "architecture        feasible  area(units)  delay(ns)  pareto  note\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    os << p.architecture;
    for (std::size_t pad = p.architecture.size(); pad < 20; ++pad) os << ' ';
    if (p.feasible) {
      std::ostringstream area, delay;
      area.precision(0);
      area << std::fixed << p.metrics.area_units;
      delay.precision(3);
      delay << std::fixed << p.metrics.delay_ns;
      os << "yes       ";
      os << area.str();
      for (std::size_t pad = area.str().size(); pad < 13; ++pad) os << ' ';
      os << delay.str();
      for (std::size_t pad = delay.str().size(); pad < 11; ++pad) os << ' ';
      os << (on_front(i) ? "*       " : "        ");
      os << p.note << "\n";
    } else {
      os << "no        -            -          -       " << p.note << "\n";
    }
  }
  return os.str();
}

}  // namespace addm::core
