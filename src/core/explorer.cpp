#include "core/explorer.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

#include "core/cntag.hpp"
#include "core/multicounter.hpp"
#include "core/sfm.hpp"
#include "core/srag_elab.hpp"
#include "core/srag_mapper.hpp"
#include "core/thread_pool.hpp"
#include "core/verify.hpp"
#include "seq/periodicity.hpp"
#include "synth/fsm.hpp"

namespace addm::core {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

namespace {

DesignPoint measured_point(std::string arch, Netlist nl, const ExploreOptions& opt,
                           std::string note = {}) {
  DesignPoint p;
  p.architecture = std::move(arch);
  p.metrics = measure_netlist(nl, opt.library, opt.max_fanout);
  p.feasible = true;
  p.note = std::move(note);
  return p;
}

DesignPoint infeasible_point(std::string arch, std::string why) {
  DesignPoint p;
  p.architecture = std::move(arch);
  p.feasible = false;
  p.note = std::move(why);
  return p;
}

Netlist elaborate_fsm_2d(const seq::AddressTrace& trace, synth::FsmEncoding enc,
                         const logic::MinimizeOptions& minimize) {
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  const std::size_t L = trace.length();

  synth::FsmSpec row_spec;
  row_spec.next_state.resize(L);
  for (std::size_t i = 0; i < L; ++i)
    row_spec.next_state[i] = static_cast<std::uint32_t>((i + 1) % L);
  row_spec.select_of_state = rows;
  row_spec.num_select_lines = trace.geometry().height;

  synth::FsmSpec col_spec = row_spec;
  col_spec.select_of_state = cols;
  col_spec.num_select_lines = trace.geometry().width;

  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const synth::FsmStyle style{enc, /*flat_mapping=*/true, minimize};
  const auto row_ports = synth::build_fsm(b, row_spec, next, reset, style);
  const auto col_ports = synth::build_fsm(b, col_spec, next, reset, style);
  b.output_bus("rs", row_ports.select);
  b.output_bus("cs", col_ports.select);
  return nl;
}

bool is_fifo(const seq::AddressTrace& trace) {
  const auto& a = trace.linear();
  if (a.size() != trace.geometry().size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != i) return false;
  return true;
}

bool always(const seq::AddressTrace&, const ExploreOptions&) { return true; }

DesignPoint elaborate_srag_point(const seq::AddressTrace& trace,
                                 const ExploreOptions& opt) {
  try {
    Srag2dBuild srag = build_srag_2d_for_trace(trace);
    std::ostringstream note;
    note << "row: " << srag.row.num_registers() << " regs/" << srag.row.num_flipflops()
         << " ffs dC=" << srag.row.div_count << " pC=" << srag.row.pass_count
         << "; col: " << srag.col.num_registers() << " regs/" << srag.col.num_flipflops()
         << " ffs dC=" << srag.col.div_count << " pC=" << srag.col.pass_count;
    return measured_point("SRAG", std::move(srag.netlist), opt, note.str());
  } catch (const std::invalid_argument& e) {
    return infeasible_point("SRAG", e.what());
  }
}

DesignPoint elaborate_multicounter_point(const seq::AddressTrace& trace,
                                         const ExploreOptions& opt) {
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  auto row_map = map_sequence_multicounter(
      rows, static_cast<std::uint32_t>(trace.geometry().height));
  auto col_map = map_sequence_multicounter(
      cols, static_cast<std::uint32_t>(trace.geometry().width));
  if (!row_map.ok() || !col_map.ok()) {
    return infeasible_point(
        "SRAG-multicounter",
        !row_map.ok() ? "row: " + row_map.detail : "col: " + col_map.detail);
  }
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const auto rp = build_multi_srag(b, *row_map.config, next, reset);
  const auto cp = build_multi_srag(b, *col_map.config, next, reset);
  b.output_bus("rs", rp.select);
  b.output_bus("cs", cp.select);
  return measured_point("SRAG-multicounter", std::move(nl), opt);
}

GeneratorEntry cntag_entry(std::string name, synth::DecoderStyle style,
                           std::string note) {
  GeneratorEntry e;
  e.name = name;
  e.applicable = always;
  e.elaborate = [name, style, note](const seq::AddressTrace& trace,
                                    const ExploreOptions& opt) {
    CntAgOptions copt;
    copt.decoder_style = style;
    copt.minimize = opt.minimize;
    return measured_point(name, elaborate_cntag(trace, copt), opt, note);
  };
  e.reference = [style](const seq::AddressTrace& trace,
                        const ExploreOptions& opt) -> std::optional<ReferenceCircuit> {
    CntAgOptions copt;
    copt.decoder_style = style;
    copt.minimize = opt.minimize;
    ReferenceCircuit rc;
    rc.netlist = elaborate_cntag(trace, copt);
    return rc;
  };
  return e;
}

GeneratorEntry fsm_entry(std::string name, synth::FsmEncoding enc) {
  GeneratorEntry e;
  e.name = name;
  e.applicable = [](const seq::AddressTrace&, const ExploreOptions& opt) {
    return opt.include_fsm;
  };
  e.elaborate = [name, enc](const seq::AddressTrace& trace, const ExploreOptions& opt) {
    if (trace.length() > opt.max_fsm_states) {
      return infeasible_point(
          name, "synthesis impractical beyond " + std::to_string(opt.max_fsm_states) +
                    " states (sequence has " + std::to_string(trace.length()) + ")");
    }
    return measured_point(name, elaborate_fsm_2d(trace, enc, opt.minimize), opt);
  };
  e.reference = [enc](const seq::AddressTrace& trace,
                      const ExploreOptions& opt) -> std::optional<ReferenceCircuit> {
    if (trace.length() > opt.max_fsm_states) return std::nullopt;
    ReferenceCircuit rc;
    rc.netlist = elaborate_fsm_2d(trace, enc, opt.minimize);
    return rc;
  };
  return e;
}

DesignPoint elaborate_sfm_point(const seq::AddressTrace& trace,
                                const ExploreOptions& opt) {
  if (!is_fifo(trace))
    return infeasible_point("SFM", "SFM supports FIFO access only");
  return measured_point("SFM", elaborate_sfm(trace.geometry().size()), opt,
                        "one-hot FIFO pointers (1-D memory)");
}

// --- reference netlists for gate-level front verification -------------------
// Each hook re-elaborates the candidate's raw (unbuffered) netlist and
// names the buses the verify stage must replay against the trace; nullopt
// mirrors the elaborate callable's infeasibility conditions.

std::optional<ReferenceCircuit> srag_reference(const seq::AddressTrace& trace,
                                               const ExploreOptions&) {
  try {
    ReferenceCircuit rc;
    rc.netlist = build_srag_2d_for_trace(trace).netlist;
    return rc;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<ReferenceCircuit> multicounter_reference(const seq::AddressTrace& trace,
                                                       const ExploreOptions&) {
  auto row_map = map_sequence_multicounter(
      trace.rows(), static_cast<std::uint32_t>(trace.geometry().height));
  auto col_map = map_sequence_multicounter(
      trace.cols(), static_cast<std::uint32_t>(trace.geometry().width));
  if (!row_map.ok() || !col_map.ok()) return std::nullopt;
  ReferenceCircuit rc;
  NetlistBuilder b(rc.netlist);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const auto rp = build_multi_srag(b, *row_map.config, next, reset);
  const auto cp = build_multi_srag(b, *col_map.config, next, reset);
  b.output_bus("rs", rp.select);
  b.output_bus("cs", cp.select);
  return rc;
}

std::optional<ReferenceCircuit> sfm_reference(const seq::AddressTrace& trace,
                                              const ExploreOptions&) {
  if (!is_fifo(trace)) return std::nullopt;
  ReferenceCircuit rc;
  rc.netlist = elaborate_sfm(trace.geometry().size());
  rc.drive = {{"next_read", true}, {"next_write", false}};
  rc.row_bus = "rsel";  // head pointer walks the FIFO order = linear trace
  rc.col_bus.clear();
  return rc;
}

std::vector<GeneratorEntry> build_registry() {
  std::vector<GeneratorEntry> reg;
  reg.push_back({"SRAG", always, elaborate_srag_point, srag_reference});
  reg.push_back({"SRAG-multicounter", always, elaborate_multicounter_point,
                 multicounter_reference});
  reg.push_back(cntag_entry("CntAG-flat", synth::DecoderStyle::Flat, "flat decoders"));
  reg.push_back(cntag_entry("CntAG-shared", synth::DecoderStyle::SharedChain,
                            "shared chain decoders (2002 flow)"));
  reg.push_back(cntag_entry("CntAG-predecoded", synth::DecoderStyle::SharedBalanced,
                            "balanced predecoders (modern flow)"));
  reg.push_back(fsm_entry("FSM-binary", synth::FsmEncoding::Binary));
  reg.push_back(fsm_entry("FSM-gray", synth::FsmEncoding::Gray));
  reg.push_back(fsm_entry("FSM-onehot", synth::FsmEncoding::OneHot));
  reg.push_back({"SFM", always, elaborate_sfm_point, sfm_reference});
  return reg;
}

}  // namespace

const std::vector<GeneratorEntry>& generator_registry() {
  static const std::vector<GeneratorEntry> registry = build_registry();
  return registry;
}

std::vector<std::string> generator_names() {
  std::vector<std::string> names;
  for (const GeneratorEntry& e : generator_registry()) names.push_back(e.name);
  return names;
}

std::vector<DesignPoint> explore_generators(const seq::AddressTrace& trace,
                                            const ExploreOptions& opt) {
  // Periodicity compression: when the trace is exactly k >= 2 whole passes
  // of one period (no warm-up prefix, no partial tail — the only shape a
  // cyclic generator reproduces exactly), evaluate every candidate on a
  // single period and annotate the notes with the factorization.  The
  // factorization is itself deterministic, so the result stays a pure
  // function of (trace, opt).  Anything else — including every built-in
  // synthetic suite trace, which are all aperiodic — falls through to the
  // unchanged full-trace path.
  if (opt.compress_periodic) {
    seq::CompressedTrace ct = seq::compress_periodic(trace);
    if (ct.pure() && ct.compressed()) {
      const std::size_t period_len = ct.period.size();
      seq::AddressTrace one_period(trace.geometry(), std::move(ct.period),
                                   trace.name());
      ExploreOptions inner = opt;
      inner.compress_periodic = false;
      std::vector<DesignPoint> points = explore_generators(one_period, inner);
      const std::string tag = "[periodic " + std::to_string(ct.repeats) + "x" +
                              std::to_string(period_len) + "]";
      for (DesignPoint& p : points)
        p.note = p.note.empty() ? tag : p.note + " " + tag;
      return points;
    }
  }

  // Select in registry order; the selection depends only on (trace, opt),
  // never on scheduling, so the slot layout of `points` is fixed up front.
  std::vector<const GeneratorEntry*> selected;
  for (const GeneratorEntry& e : generator_registry()) {
    if (!opt.archs.empty() &&
        std::find(opt.archs.begin(), opt.archs.end(), e.name) == opt.archs.end())
      continue;
    if (!e.applicable(trace, opt)) continue;
    selected.push_back(&e);
  }

  std::vector<DesignPoint> points(selected.size());
  std::vector<std::exception_ptr> errors(selected.size());
  auto run_one = [&](std::size_t i) {
    try {
      points[i] = selected[i]->elaborate(trace, opt);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  std::size_t want = opt.arch_threads;
  if (want == 0) {
    want = std::thread::hardware_concurrency();
    if (want == 0) want = 1;
  }
  want = std::min(want, selected.size());
  if (want <= 1) {
    for (std::size_t i = 0; i < selected.size(); ++i) run_one(i);
  } else {
    // Each entry is a leaf task writing only its own slot; the pool is local
    // to this call, so nesting under a batch worker cannot deadlock.
    ThreadPool pool(want);
    pool.parallel_for(selected.size(), run_one);
  }

  // A degenerate trace may fail several entries on different threads;
  // rethrow the first failure in registry order so callers (and their
  // serialized error strings) see the same exception at every thread count.
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Opt-in gate-level verification of the Pareto front (core/verify.hpp).
  // Runs after the parallel section on the calling thread, annotating notes
  // deterministically — the result stays a pure function of (trace, opt),
  // and the flag is fingerprinted so annotated and plain runs never share
  // cache keys.
  if (opt.verify_front)
    verify_pareto_points(trace, points, pareto_front(points), opt);
  return points;
}

std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j || !points[j].feasible) continue;
      const bool no_worse = points[j].metrics.area_units <= points[i].metrics.area_units &&
                            points[j].metrics.delay_ns <= points[i].metrics.delay_ns;
      const bool better = points[j].metrics.area_units < points[i].metrics.area_units ||
                          points[j].metrics.delay_ns < points[i].metrics.delay_ns;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string format_exploration(const std::vector<DesignPoint>& points) {
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };
  const std::string name_header = "architecture";
  std::size_t name_w = name_header.size();
  for (const DesignPoint& p : points) name_w = std::max(name_w, p.architecture.size());
  name_w += 2;
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << name_header;
  for (std::size_t pad = name_header.size(); pad < name_w; ++pad) os << ' ';
  os << "feasible  area(units)  delay(ns)  pareto  note\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    os << p.architecture;
    for (std::size_t pad = p.architecture.size(); pad < name_w; ++pad) os << ' ';
    if (p.feasible) {
      std::ostringstream area, delay;
      area.precision(0);
      area << std::fixed << p.metrics.area_units;
      delay.precision(3);
      delay << std::fixed << p.metrics.delay_ns;
      os << "yes       ";
      os << area.str();
      for (std::size_t pad = area.str().size(); pad < 13; ++pad) os << ' ';
      os << delay.str();
      for (std::size_t pad = delay.str().size(); pad < 11; ++pad) os << ' ';
      os << (on_front(i) ? "*       " : "        ");
      os << p.note << "\n";
    } else {
      os << "no        -            -          -       " << p.note << "\n";
    }
  }
  return os.str();
}

}  // namespace addm::core
