// Gate-level elaboration of the SRAG architecture (Figure 5) and of the
// complete two-dimensional generator (row SRAG + column SRAG sharing `next`
// and `reset`, the two-hot arrangement of Section 4).
//
// Structure per dimension:
//  * DivCnt: modulo-dC counter + comparator; enable = next & (DivCnt==dC-1).
//    Omitted when dC==1 (enable = next), matching what a synthesis flow
//    would strip.
//  * PassCnt: modulo-pC counter + comparator; pass = (PassCnt==pC-1).
//    Omitted when there is a single shift register (no multiplexors needed,
//    as the paper notes).
//  * Shift registers with enable/reset flip-flops; the token-start flip-flop
//    (register 0, position 0) resets to 1, all others to 0. Register heads
//    are fed through 2:1 muxes steered by `pass`.
// Outputs: one select line per address; lines never visited are tied to 0.
#pragma once

#include <string>
#include <vector>

#include "core/srag_config.hpp"
#include "netlist/builder.hpp"

namespace addm::core {

struct SragPorts {
  std::vector<netlist::NetId> select;          ///< select[k] drives line k
  netlist::NetId enable = netlist::kInvalidNet;  ///< internal enable (for tests)
  netlist::NetId pass = netlist::kInvalidNet;    ///< internal pass (for tests)
  /// Asserted during the enabled shift that completes one full traversal of
  /// the token cycle (token about to re-enter registers[0][0]). Used by the
  /// shared-control composition (core/shared_control.hpp).
  netlist::NetId cycle_complete = netlist::kInvalidNet;
};

/// Appends one SRAG dimension to `b`, driven by existing nets `next`/`reset`.
/// Select lines are NOT registered as primary outputs; callers decide.
SragPorts build_srag(netlist::NetlistBuilder& b, const SragConfig& cfg,
                     netlist::NetId next, netlist::NetId reset);

/// Variant with a caller-provided shift enable: the DivCnt stage is skipped
/// entirely and `enable` gates the shifts directly. This is the hook the
/// shared-control composition uses to drive the row dimension from column
/// events instead of a private divider.
SragPorts build_srag_with_enable(netlist::NetlistBuilder& b, const SragConfig& cfg,
                                 netlist::NetId enable, netlist::NetId reset);

/// Builds a standalone one-dimensional SRAG netlist with primary inputs
/// "next"/"reset" and output bus "sel[...]".
netlist::Netlist elaborate_srag(const SragConfig& cfg);

/// Builds the full two-dimensional generator: inputs "next"/"reset", output
/// buses "rs[...]" (row selects) and "cs[...]" (column selects).
netlist::Netlist elaborate_srag_2d(const SragConfig& row_cfg, const SragConfig& col_cfg);

}  // namespace addm::core
