#include "core/fingerprint.hpp"

#include <algorithm>

#include "netlist/cell.hpp"
#include "tech/library.hpp"

namespace addm::core {

std::uint64_t trace_fingerprint(const seq::AddressTrace& trace) {
  Fnv1a64 h;
  h.u64(trace.geometry().width);
  h.u64(trace.geometry().height);
  h.u64(trace.length());
  for (std::uint32_t a : trace.linear()) h.u64(a);
  return h.digest();
}

std::uint64_t options_fingerprint(const ExploreOptions& opt) {
  Fnv1a64 h;
  h.u64(kOptionsFingerprintSeed);
  h.u64(static_cast<std::uint64_t>(opt.max_fanout));
  h.u64(opt.max_fsm_states);
  h.u64(opt.include_fsm ? 1 : 0);
  // arch_threads is pure scheduling (byte-identical output at any value) and
  // is deliberately NOT hashed: parallel and serial runs share cache keys.
  // An archs subset changes which points exist, so it is hashed — in
  // canonical form (registry-order intersection, deduplicated, and a
  // filter selecting the whole registry collapses to no filter), making
  // every equal-output spelling share one key.  The no-filter form hashes
  // nothing, which keeps default-option fingerprints identical to those of
  // releases that predate the field.
  if (!opt.archs.empty()) {
    std::vector<std::string> selected;
    const std::vector<std::string> names = generator_names();
    for (const std::string& name : names) {
      if (std::find(opt.archs.begin(), opt.archs.end(), name) != opt.archs.end())
        selected.push_back(name);
    }
    if (selected.size() != names.size()) {
      h.str("archs");
      for (const std::string& name : selected) h.str(name);
    }
  }
  // verify_front annotates Pareto-point notes, so it is output-affecting —
  // but it is hashed only when enabled, so default-options fingerprints
  // (and every cache directory written before the flag existed) stay valid.
  if (opt.verify_front) h.str("verify_front");
  // The minimizer selection changes FSM/CntAG covers and therefore metrics.
  // Hashed only when non-default (same pattern as verify_front), and the
  // Auto threshold only when Auto is selected — every equal-output spelling
  // of the default (Isop ignores the threshold) shares the pinned key.
  if (opt.minimize.algo != logic::MinimizerAlgo::Isop) {
    h.str("minimizer");
    h.str(logic::minimizer_name(opt.minimize.algo));
    if (opt.minimize.algo == logic::MinimizerAlgo::Auto)
      h.u64(static_cast<std::uint64_t>(opt.minimize.heuristic_min_vars));
  }
  // Periodicity compression evaluates candidates on one period and
  // annotates notes, so it is output-affecting — hashed only when enabled
  // (verify_front pattern) to keep default-options fingerprints pinned.
  if (opt.compress_periodic) h.str("compress_periodic");
  for (int t = 0; t < static_cast<int>(netlist::kNumCellTypes); ++t) {
    const tech::CellParams& p = opt.library.params(static_cast<netlist::CellType>(t));
    h.f64(p.area);
    h.f64(p.intrinsic);
    h.f64(p.slope);
    h.f64(p.clk_to_q);
    h.f64(p.setup);
  }
  h.f64(opt.library.wire_delay_per_fanout);
  h.f64(opt.library.energy_per_area_toggle);
  return h.digest();
}

}  // namespace addm::core
