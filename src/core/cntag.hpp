// CntAG: the counter-based address generator with address decoders — the
// paper's baseline (Figure 1 path: counter -> binary address -> row/column
// decoders inside the RAM).
//
// For a deterministic sequence of length L the generator is an index counter
// (modulo L) followed by a combinational index->address transform synthesized
// by two-level minimization. For regular sequences (incremental, block
// raster, zoom, transpose) the transform minimizes to bit rewiring, which is
// exactly why counter-based generators beat arithmetic-based ones on such
// patterns [Grant89]. The binary row/column addresses then feed the decoders.
//
// The decoders default to the Flat style — modelling the sharing-poor random
// logic 2002-era synthesis produced from a behavioural decoder description —
// and can be switched to Shared predecoding for the ablation study.
#pragma once

#include <cstdint>

#include "logic/minimize.hpp"
#include "netlist/builder.hpp"
#include "seq/trace.hpp"
#include "synth/counter.hpp"
#include "synth/decoder.hpp"

namespace addm::core {

struct CntAgOptions {
  synth::DecoderStyle decoder_style = synth::DecoderStyle::SharedChain;
  synth::CarryStyle carry = synth::CarryStyle::Lookahead;
  /// Sequence counter digit width (cascaded digit counters keep the counter
  /// delay flat across sequence lengths, as in the paper's Figure 9).
  int counter_digit_bits = 4;
  /// Map the index->address transform without structural sharing.
  bool flat_transform = false;
  /// Build the row/column decoders (false models the bare generator of
  /// Figure 1, whose decode happens inside the RAM macro; the paper's
  /// CntAG delay/area figures include the decode, so true is the default).
  bool include_decoders = true;
  /// Two-level minimizer for the index->address transform.  The default
  /// routes everything through ISOP (byte-identical to the historical
  /// behavior); long traces want MinimizerAlgo::Auto/Espresso.
  logic::MinimizeOptions minimize;
};

struct CntAgPorts {
  std::vector<netlist::NetId> index;     ///< sequence-position counter bits
  std::vector<netlist::NetId> row_addr;  ///< binary row address (RA)
  std::vector<netlist::NetId> col_addr;  ///< binary column address (CA)
  std::vector<netlist::NetId> rs;        ///< one-hot row selects (if decoders)
  std::vector<netlist::NetId> cs;        ///< one-hot column selects (if decoders)
};

/// Appends a CntAG for `trace` to `b`, driven by `next`/`reset`.
CntAgPorts build_cntag(netlist::NetlistBuilder& b, const seq::AddressTrace& trace,
                       netlist::NetId next, netlist::NetId reset,
                       const CntAgOptions& opt = {});

/// Standalone netlist: inputs "next"/"reset"; outputs "ra[...]", "ca[...]"
/// and, with decoders, "rs[...]", "cs[...]".
netlist::Netlist elaborate_cntag(const seq::AddressTrace& trace,
                                 const CntAgOptions& opt = {});

}  // namespace addm::core
