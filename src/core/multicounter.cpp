#include "core/multicounter.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "seq/analysis.hpp"
#include "synth/counter.hpp"

namespace addm::core {

using netlist::CellType;
using netlist::kConst0;
using netlist::kConst1;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

std::size_t MultiSragConfig::num_flipflops() const {
  std::size_t n = 0;
  for (const auto& r : registers) n += r.size();
  return n;
}

void MultiSragConfig::check() const {
  if (registers.empty()) throw std::invalid_argument("MultiSragConfig: no registers");
  if (pass_counts.size() != registers.size())
    throw std::invalid_argument("MultiSragConfig: pass_counts size mismatch");
  if (div_count < 1) throw std::invalid_argument("MultiSragConfig: div_count < 1");
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < registers.size(); ++i) {
    if (registers[i].empty()) throw std::invalid_argument("MultiSragConfig: empty register");
    if (pass_counts[i] < 1 || pass_counts[i] % registers[i].size() != 0)
      throw std::invalid_argument(
          "MultiSragConfig: pass count must be a positive multiple of register length");
    for (std::uint32_t line : registers[i]) {
      if (line >= num_select_lines)
        throw std::invalid_argument("MultiSragConfig: select line out of range");
      if (!seen.insert(line).second)
        throw std::invalid_argument("MultiSragConfig: select line mapped twice");
    }
  }
}

MultiSragModel::MultiSragModel(MultiSragConfig config) : config_(std::move(config)) {
  config_.check();
}

void MultiSragModel::pulse() {
  if (++div_ < config_.div_count) return;
  div_ = 0;

  // The register-local pass counter counts enabled shifts since the token
  // entered this register.
  const bool pass = (pass_ == config_.pass_counts[reg_] - 1);
  pass_ = (pass_ + 1) % config_.pass_counts[reg_];

  const std::size_t len = config_.registers[reg_].size();
  if (pos_ + 1 < len) {
    ++pos_;
  } else {
    pos_ = 0;
    if (pass) {
      reg_ = (reg_ + 1) % config_.num_registers();
      pass_ = 0;  // the next register's counter starts fresh
    }
  }
}

void MultiSragModel::reset() {
  reg_ = pos_ = 0;
  div_ = pass_ = 0;
}

std::vector<std::uint32_t> MultiSragModel::generate(std::size_t n) {
  reset();
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(current());
    pulse();
  }
  return out;
}

MultiMapResult map_sequence_multicounter(std::span<const std::uint32_t> seq,
                                         std::uint32_t num_select_lines) {
  MultiMapResult res;
  // Reuse the Section-5 front end: D/R/U/O/Z and the initial grouping are
  // identical; the uniform-PassCnt requirement (and the single-counter
  // mapper's group-splitting repair) do not apply here.
  SequenceAnalysis base = analyze_sequence(seq);
  res.params = base.params;
  res.detail = base.detail;
  if (base.failure) {
    res.failure = base.failure;
    return res;
  }

  MultiSragConfig cfg;
  cfg.registers = res.params.S;
  cfg.div_count = res.params.dC;
  cfg.pass_counts = res.params.P;
  std::uint32_t max_addr = 0;
  for (std::uint32_t a : seq) max_addr = std::max(max_addr, a);
  cfg.num_select_lines = num_select_lines == 0 ? max_addr + 1 : num_select_lines;

  MultiSragModel model(cfg);
  const auto replay = model.generate(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (replay[i] != seq[i]) {
      res.failure = MapFailure::GroupingFailed;
      res.detail = "multi-counter replay diverges at access " + std::to_string(i) +
                   ": expected " + std::to_string(seq[i]) + ", got " +
                   std::to_string(replay[i]);
      return res;
    }
  }
  res.failure.reset();
  res.config = std::move(cfg);
  return res;
}

MultiSragPorts build_multi_srag(NetlistBuilder& b, const MultiSragConfig& cfg, NetId next,
                                NetId reset) {
  cfg.check();
  auto& nl = b.netlist();
  MultiSragPorts ports;

  if (cfg.div_count == 1) {
    ports.enable = next;
  } else {
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(cfg.div_count);
    spec.modulo = cfg.div_count;
    const auto div = synth::build_counter(b, spec, next, reset);
    ports.enable = b.and2(next, div.wrap);
  }

  const std::size_t n_regs = cfg.num_registers();
  std::vector<std::vector<NetId>> q(n_regs);
  for (std::size_t i = 0; i < n_regs; ++i) {
    q[i].resize(cfg.registers[i].size());
    for (auto& net : q[i]) net = nl.new_net();
  }

  // Per-register pass signal. A register whose pass count equals its length
  // passes the token on every traversal and needs no counter at all — the
  // "no counters necessary" simplification the paper mentions.
  std::vector<NetId> pass(n_regs, kConst1);
  for (std::size_t i = 0; i < n_regs; ++i) {
    if (n_regs == 1) break;  // token never leaves a single register
    if (cfg.pass_counts[i] == cfg.registers[i].size()) continue;  // pass == 1
    const NetId token_here = b.or_tree(q[i]);
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(cfg.pass_counts[i]);
    spec.modulo = cfg.pass_counts[i];
    const auto cnt = synth::build_counter(b, spec, b.and2(ports.enable, token_here), reset);
    pass[i] = cnt.wrap;
  }

  for (std::size_t i = 0; i < n_regs; ++i) {
    const std::size_t len = q[i].size();
    for (std::size_t j = 0; j < len; ++j) {
      NetId d;
      if (j > 0) {
        d = q[i][j - 1];
      } else {
        // Unlike the single-counter SRAG (one global `pass` steering every
        // boundary mux), each boundary is steered by its own upstream pass:
        // the head takes the previous register's tail when THAT register
        // passes, recirculates its own tail otherwise — and must drop it when
        // its own pass fires, or the token would be duplicated.
        const std::size_t prev = (i + n_regs - 1) % n_regs;
        const NetId from_prev = b.and2(pass[prev], q[prev].back());
        const NetId recirc = b.and2(b.inv(pass[i]), q[i][len - 1]);
        d = b.or2(from_prev, recirc);
      }
      const CellType ff = (i == 0 && j == 0) ? CellType::DffES : CellType::DffER;
      nl.add_cell(ff, {d, ports.enable, reset}, q[i][j]);
    }
  }

  ports.select.assign(cfg.num_select_lines, kConst0);
  for (std::size_t i = 0; i < n_regs; ++i)
    for (std::size_t j = 0; j < q[i].size(); ++j)
      ports.select[cfg.registers[i][j]] = q[i][j];
  return ports;
}

Netlist elaborate_multi_srag(const MultiSragConfig& cfg) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const MultiSragPorts ports = build_multi_srag(b, cfg, next, reset);
  b.output_bus("sel", ports.select);
  return nl;
}

}  // namespace addm::core
