#include "core/batch_explorer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/fingerprint.hpp"
#include "core/thread_pool.hpp"

namespace addm::core {

namespace {

/// What one exploration produces. Cache entries and racing waiters share one
/// immutable Outcome (recompute avoidance); each BatchEntry then takes its
/// own copy of the vectors, keeping the public result type plain-value.
struct Outcome {
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;
  std::string error;
};

std::shared_ptr<const Outcome> evaluate_trace(const seq::AddressTrace& trace,
                                              const ExploreOptions& opt) {
  auto out = std::make_shared<Outcome>();
  try {
    out->points = explore_generators(trace, opt);
    out->pareto = pareto_front(out->points);
  } catch (const std::exception& e) {
    out->points.clear();
    out->pareto.clear();
    out->error = e.what();
  }
  return out;
}

std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

std::string json_quote(const std::string& s) {
  std::string q = "\"";
  for (char c : s) {
    switch (c) {
      case '"': q += "\\\""; break;
      case '\\': q += "\\\\"; break;
      case '\n': q += "\\n"; break;
      case '\t': q += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          q += buf;
        } else {
          q += c;
        }
    }
  }
  q += '"';
  return q;
}

}  // namespace

struct BatchExplorer::Impl {
  std::mutex mu;
  /// Keyed by (trace fingerprint ^ rotated options fingerprint). The mapped
  /// shared_future lets a second worker that races on the same trace block
  /// on the first evaluation instead of recomputing it.
  std::unordered_map<std::uint64_t, std::shared_future<std::shared_ptr<const Outcome>>> cache;
};

BatchExplorer::BatchExplorer(BatchOptions opt) : opt_(std::move(opt)), impl_(new Impl) {}

BatchExplorer::~BatchExplorer() { delete impl_; }

std::size_t BatchExplorer::cache_size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->cache.size();
}

void BatchExplorer::clear_cache() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->cache.clear();
}

BatchResult BatchExplorer::run(const std::vector<seq::AddressTrace>& traces) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t opt_fp = options_fingerprint(opt_.explore);

  BatchResult result;
  result.traces = traces.size();
  result.entries.resize(traces.size());

  std::mutex stats_mu;
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;

  auto work = [&](std::size_t i) {
    const seq::AddressTrace& trace = traces[i];
    BatchEntry& entry = result.entries[i];
    entry.name = trace.name().empty() ? "trace" + std::to_string(i) : trace.name();
    entry.geometry = trace.geometry();
    entry.trace_length = trace.length();
    entry.trace_hash = trace_fingerprint(trace);
    const std::uint64_t key =
        entry.trace_hash ^ (opt_fp << 1 | opt_fp >> 63);

    std::shared_ptr<const Outcome> outcome;
    if (!opt_.memoize) {
      outcome = evaluate_trace(trace, opt_.explore);
      std::lock_guard<std::mutex> lk(stats_mu);
      ++evaluations;
    } else {
      std::promise<std::shared_ptr<const Outcome>> promise;
      std::shared_future<std::shared_ptr<const Outcome>> future;
      bool owner = false;
      {
        std::lock_guard<std::mutex> lk(impl_->mu);
        auto [it, inserted] = impl_->cache.try_emplace(key);
        if (inserted) {
          it->second = promise.get_future().share();
          owner = true;
        }
        future = it->second;
      }
      if (owner) {
        promise.set_value(evaluate_trace(trace, opt_.explore));
        std::lock_guard<std::mutex> lk(stats_mu);
        ++evaluations;
      } else {
        std::lock_guard<std::mutex> lk(stats_mu);
        ++cache_hits;
      }
      outcome = future.get();
    }

    entry.points = outcome->points;
    entry.pareto = outcome->pareto;
    entry.error = outcome->error;
  };

  ThreadPool pool(opt_.threads);
  pool.parallel_for(traces.size(), work);

  result.evaluations = evaluations;
  result.cache_hits = cache_hits;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

std::string batch_report_csv(const BatchResult& result) {
  std::ostringstream os;
  os << "trace,width,height,length,trace_hash,architecture,feasible,pareto,"
        "area_units,delay_ns,clk_to_out_ns,reg_to_reg_ns,cells,flipflops,"
        "buffers_added,note\n";
  for (const BatchEntry& e : result.entries) {
    const std::string prefix = csv_quote(e.name) + "," + std::to_string(e.geometry.width) +
                               "," + std::to_string(e.geometry.height) + "," +
                               std::to_string(e.trace_length) + "," + hex64(e.trace_hash);
    if (!e.error.empty()) {
      os << prefix << ",,error,,,,,,,,," << csv_quote(e.error) << "\n";
      continue;
    }
    for (std::size_t i = 0; i < e.points.size(); ++i) {
      const DesignPoint& p = e.points[i];
      const bool on_front =
          std::find(e.pareto.begin(), e.pareto.end(), i) != e.pareto.end();
      os << prefix << "," << csv_quote(p.architecture) << ","
         << (p.feasible ? "yes" : "no") << "," << (on_front ? "yes" : "no") << ",";
      if (p.feasible) {
        os << fixed6(p.metrics.area_units) << "," << fixed6(p.metrics.delay_ns) << ","
           << fixed6(p.metrics.clk_to_out_ns) << "," << fixed6(p.metrics.reg_to_reg_ns)
           << "," << p.metrics.cells << "," << p.metrics.flipflops << ","
           << p.metrics.buffers_added;
      } else {
        os << ",,,,,,";
      }
      os << "," << csv_quote(p.note) << "\n";
    }
  }
  return os.str();
}

std::string batch_report_json(const BatchResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"summary\": {\"traces\": " << result.traces
     << ", \"evaluations\": " << result.evaluations
     << ", \"cache_hits\": " << result.cache_hits << "},\n";
  os << "  \"traces\": [\n";
  for (std::size_t t = 0; t < result.entries.size(); ++t) {
    const BatchEntry& e = result.entries[t];
    os << "    {\n";
    os << "      \"name\": " << json_quote(e.name) << ",\n";
    os << "      \"geometry\": [" << e.geometry.width << ", " << e.geometry.height
       << "],\n";
    os << "      \"length\": " << e.trace_length << ",\n";
    os << "      \"trace_hash\": \"" << hex64(e.trace_hash) << "\",\n";
    if (!e.error.empty()) {
      os << "      \"error\": " << json_quote(e.error) << "\n";
    } else {
      os << "      \"pareto\": [";
      for (std::size_t i = 0; i < e.pareto.size(); ++i)
        os << (i ? ", " : "") << e.pareto[i];
      os << "],\n";
      os << "      \"points\": [\n";
      for (std::size_t i = 0; i < e.points.size(); ++i) {
        const DesignPoint& p = e.points[i];
        os << "        {\"architecture\": " << json_quote(p.architecture)
           << ", \"feasible\": " << (p.feasible ? "true" : "false");
        if (p.feasible) {
          os << ", \"area_units\": " << fixed6(p.metrics.area_units)
             << ", \"delay_ns\": " << fixed6(p.metrics.delay_ns)
             << ", \"clk_to_out_ns\": " << fixed6(p.metrics.clk_to_out_ns)
             << ", \"reg_to_reg_ns\": " << fixed6(p.metrics.reg_to_reg_ns)
             << ", \"cells\": " << p.metrics.cells
             << ", \"flipflops\": " << p.metrics.flipflops
             << ", \"buffers_added\": " << p.metrics.buffers_added;
        }
        os << ", \"note\": " << json_quote(p.note) << "}"
           << (i + 1 < e.points.size() ? ",\n" : "\n");
      }
      os << "      ]\n";
    }
    os << "    }" << (t + 1 < result.entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace addm::core
