#include "core/batch_explorer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/eval_cache.hpp"
#include "core/fingerprint.hpp"
#include "core/thread_pool.hpp"

namespace addm::core {

namespace {

/// What one exploration produces. Cache entries and racing waiters share one
/// immutable Outcome (recompute avoidance); each BatchEntry then takes its
/// own copy of the vectors, keeping the public result type plain-value.
struct Outcome {
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;
  std::string error;
};

std::shared_ptr<const Outcome> evaluate_trace(const seq::AddressTrace& trace,
                                              const ExploreOptions& opt) {
  auto out = std::make_shared<Outcome>();
  try {
    out->points = explore_generators(trace, opt);
    out->pareto = pareto_front(out->points);
  } catch (const std::exception& e) {
    out->points.clear();
    out->pareto.clear();
    out->error = e.what();
  }
  return out;
}

std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

std::string json_quote(const std::string& s) {
  std::string q = "\"";
  for (char c : s) {
    switch (c) {
      case '"': q += "\\\""; break;
      case '\\': q += "\\\\"; break;
      case '\n': q += "\\n"; break;
      case '\t': q += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          q += buf;
        } else {
          q += c;
        }
    }
  }
  q += '"';
  return q;
}

}  // namespace

struct BatchExplorer::Impl {
  std::mutex mu;
  /// Keyed by (trace fingerprint ^ rotated options fingerprint). The mapped
  /// shared_future lets a second worker that races on the same trace block
  /// on the first evaluation instead of recomputing it.
  std::unordered_map<std::uint64_t, std::shared_future<std::shared_ptr<const Outcome>>> cache;
  /// Keys (same combined form) whose outcomes were warm-started from the
  /// persistent cache directory: traces resolving to these count as disk
  /// hits, independent of scheduling.
  std::unordered_set<std::uint64_t> disk_keys;
  /// Deferred-flush state (BatchOptions::defer_disk_flush): successful
  /// evaluations and warm-start hit counts awaiting flush_disk(), guarded
  /// by `mu`.  pending_keys mirrors pending_entries so a key is never
  /// queued twice across runs.
  std::vector<EvalCacheEntry> pending_entries;
  std::unordered_set<std::uint64_t> pending_keys;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> pending_hits;
  /// Serializes every write this process makes to the cache directory
  /// (store_batch, record_hits, budget prune): the eval-cache maintenance
  /// operations assume no concurrent writer, and the serve daemon calls
  /// run()/flush_disk() from several threads.
  std::mutex flush_mu;
};

namespace {

std::uint64_t combined_key(std::uint64_t trace_fp, std::uint64_t opt_fp) {
  return trace_fp ^ (opt_fp << 1 | opt_fp >> 63);
}

}  // namespace

BatchExplorer::BatchExplorer(BatchOptions opt) : opt_(std::move(opt)), impl_(new Impl) {}

BatchExplorer::~BatchExplorer() { delete impl_; }

std::size_t BatchExplorer::cache_size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->cache.size();
}

void BatchExplorer::clear_cache() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->cache.clear();
  impl_->disk_keys.clear();
}

std::size_t BatchExplorer::pending_flush() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->pending_entries.size();
}

BatchExplorer::FlushStats BatchExplorer::flush_disk() {
  FlushStats stats;
  if (opt_.cache_dir.empty() || !opt_.memoize) return stats;
  // One writer at a time: flush_mu serializes this process's store/record/
  // prune sequence so the budget prune never runs under a concurrent write.
  std::lock_guard<std::mutex> flush_lk(impl_->flush_mu);
  std::vector<EvalCacheEntry> batch;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> hits;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    batch.swap(impl_->pending_entries);
    impl_->pending_keys.clear();
    hits.swap(impl_->pending_hits);
  }
  EvalCacheDir store(opt_.cache_dir);
  if (!batch.empty()) stats.stored = store.store_batch(batch);
  if (!hits.empty()) {
    std::vector<std::pair<EvalCacheKey, std::uint64_t>> credit;
    credit.reserve(hits.size());
    for (const auto& [key, count] : hits)
      credit.push_back({{key.first, key.second}, count});
    store.record_hits(credit);
  }
  if (opt_.cache_budget_bytes != 0 && (stats.stored != 0 || !hits.empty())) {
    const EvalCacheDir::MaintenanceStats pruned =
        store.prune(UINT64_MAX, opt_.cache_budget_bytes);
    if (pruned.ok) stats.evicted = pruned.evicted;
  }
  return stats;
}

BatchResult BatchExplorer::run(const std::vector<seq::AddressTrace>& traces) {
  return run(traces, opt_.explore);
}

BatchResult BatchExplorer::run(const std::vector<seq::AddressTrace>& traces,
                               const ExploreOptions& explore) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t opt_fp = options_fingerprint(explore);
  const bool use_disk = opt_.memoize && !opt_.cache_dir.empty();

  BatchResult result;
  result.traces = traces.size();
  result.entries.resize(traces.size());

  // Warm start: probe the cache directory for exactly the keys this run
  // needs (entry filenames derive from the key, so no index scan — cost is
  // O(inputs), not O(cache size)) and resolve hits into the memo table
  // before any worker runs.  Probing every run() also picks up entries
  // stored by concurrent processes since the last one.  Disk damage shows
  // up as failed probes, never as a failure.
  if (use_disk) {
    EvalCacheDir store(opt_.cache_dir);
    std::unordered_set<std::uint64_t> probed;
    for (const seq::AddressTrace& trace : traces) {
      const std::uint64_t trace_fp = trace_fingerprint(trace);
      const std::uint64_t key = combined_key(trace_fp, opt_fp);
      if (!probed.insert(key).second) continue;
      {
        std::lock_guard<std::mutex> lk(impl_->mu);
        if (impl_->cache.count(key)) continue;
      }
      EvalCacheEntry e;
      if (!store.load_entry({trace_fp, opt_fp}, e)) continue;
      auto outcome = std::make_shared<Outcome>();
      outcome->points = std::move(e.points);
      outcome->pareto = std::move(e.pareto);
      std::promise<std::shared_ptr<const Outcome>> ready;
      ready.set_value(std::move(outcome));
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->cache.try_emplace(key, ready.get_future().share()).second) {
        impl_->disk_keys.insert(key);
        ++result.disk_entries_loaded;
      }
    }
  }

  // Two-level scheduler: opt_.threads is the TOTAL thread budget.  The
  // inner level (per-trace candidate fan-out, ExploreOptions::arch_threads)
  // gets its request capped at the budget; the outer level (traces) gets
  // budget / inner workers, so outer × inner never oversubscribes.  Pure
  // scheduling — fingerprints ignore arch_threads and every split yields
  // byte-identical entries.
  const ThreadSplit split = split_threads(opt_.threads, explore.arch_threads);
  ExploreOptions worker_opt = explore;
  worker_opt.arch_threads = split.inner;

  std::mutex stats_mu;
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;
  std::size_t disk_hits = 0;
  /// Owner-evaluated successful outcomes, flushed to disk after the run.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const Outcome>>> fresh;
  /// Per-trace-fingerprint disk-hit counts, credited to the persistent
  /// cache after the run (std::map: deterministic iteration by key).
  std::map<std::uint64_t, std::uint64_t> disk_hit_counts;

  auto work = [&](std::size_t i) {
    const seq::AddressTrace& trace = traces[i];
    BatchEntry& entry = result.entries[i];
    entry.name = trace.name().empty() ? "trace" + std::to_string(i) : trace.name();
    entry.geometry = trace.geometry();
    entry.trace_length = trace.length();
    entry.trace_hash = trace_fingerprint(trace);
    const std::uint64_t key = combined_key(entry.trace_hash, opt_fp);

    std::shared_ptr<const Outcome> outcome;
    if (!opt_.memoize) {
      outcome = evaluate_trace(trace, worker_opt);
      std::lock_guard<std::mutex> lk(stats_mu);
      ++evaluations;
    } else {
      std::promise<std::shared_ptr<const Outcome>> promise;
      std::shared_future<std::shared_ptr<const Outcome>> future;
      bool owner = false;
      bool from_disk = false;
      {
        std::lock_guard<std::mutex> lk(impl_->mu);
        auto [it, inserted] = impl_->cache.try_emplace(key);
        if (inserted) {
          it->second = promise.get_future().share();
          owner = true;
        } else {
          from_disk = impl_->disk_keys.count(key) != 0;
        }
        future = it->second;
      }
      if (owner) {
        auto computed = evaluate_trace(trace, worker_opt);
        promise.set_value(computed);
        std::lock_guard<std::mutex> lk(stats_mu);
        ++evaluations;
        if (use_disk && computed->error.empty())
          fresh.emplace_back(entry.trace_hash, std::move(computed));
      } else {
        std::lock_guard<std::mutex> lk(stats_mu);
        if (from_disk) {
          ++disk_hits;
          if (use_disk) ++disk_hit_counts[entry.trace_hash];
        } else {
          ++cache_hits;
        }
      }
      outcome = future.get();
    }

    entry.points = outcome->points;
    entry.pareto = outcome->pareto;
    entry.error = outcome->error;
  };

  ThreadPool pool(split.outer);
  pool.parallel_for(traces.size(), work);

  // Flush: persist this run's newly computed successes.  Errors are never
  // cached (a transient failure must not become permanent), and I/O errors
  // only cost the entry.  Owners finish — and, with duplicated traces, are
  // even *chosen* — in scheduling order, but store_batch writes the batch
  // in cache-key order under one insertion generation, so cache directories
  // (index.txt line order included) come out byte-identical at every thread
  // split.  After the store, warm-start hits observed this run are credited
  // to their entries (prune's eviction priority feeds on them), and when a
  // byte budget is configured the directory is pruned back under it — the
  // flush-time enforcement that keeps a bounded directory bounded.
  if (use_disk && opt_.defer_disk_flush) {
    // Daemon mode: queue this run's successes and hit counts for the next
    // flush_disk() instead of writing here, so a long-lived process decides
    // when (and under which lock) the directory is touched.
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& [trace_fp, outcome] : fresh) {
      const std::uint64_t key = combined_key(trace_fp, opt_fp);
      if (!impl_->pending_keys.insert(key).second) continue;
      EvalCacheEntry e;
      e.key = {trace_fp, opt_fp};
      e.points = outcome->points;
      e.pareto = outcome->pareto;
      impl_->pending_entries.push_back(std::move(e));
    }
    for (const auto& [trace_fp, count] : disk_hit_counts)
      impl_->pending_hits[{trace_fp, opt_fp}] += count;
  } else if (use_disk) {
    // flush_mu: concurrent run()s must not interleave their store/record/
    // prune sequences (prune assumes no concurrent writer in-process too).
    std::lock_guard<std::mutex> flush_lk(impl_->flush_mu);
    EvalCacheDir store(opt_.cache_dir);
    if (!fresh.empty()) {
      std::vector<EvalCacheEntry> batch;
      batch.reserve(fresh.size());
      for (const auto& [trace_fp, outcome] : fresh) {
        EvalCacheEntry e;
        e.key = {trace_fp, opt_fp};
        e.points = outcome->points;
        e.pareto = outcome->pareto;
        batch.push_back(std::move(e));
      }
      result.disk_entries_stored = store.store_batch(batch);
    }
    if (!disk_hit_counts.empty()) {
      std::vector<std::pair<EvalCacheKey, std::uint64_t>> hits;
      hits.reserve(disk_hit_counts.size());
      for (const auto& [trace_fp, count] : disk_hit_counts)
        hits.push_back({{trace_fp, opt_fp}, count});
      store.record_hits(hits);
    }
    if (opt_.cache_budget_bytes != 0) {
      const EvalCacheDir::MaintenanceStats pruned =
          store.prune(UINT64_MAX, opt_.cache_budget_bytes);
      if (pruned.ok) result.disk_entries_evicted = pruned.evicted;
    }
  }

  result.evaluations = evaluations;
  result.cache_hits = cache_hits;
  result.disk_hits = disk_hits;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

std::string batch_report_csv(const BatchResult& result) {
  std::ostringstream os;
  os << "trace,width,height,length,trace_hash,architecture,feasible,pareto,"
        "area_units,delay_ns,clk_to_out_ns,reg_to_reg_ns,cells,flipflops,"
        "buffers_added,note\n";
  for (const BatchEntry& e : result.entries) {
    const std::string prefix = csv_quote(e.name) + "," + std::to_string(e.geometry.width) +
                               "," + std::to_string(e.geometry.height) + "," +
                               std::to_string(e.trace_length) + "," + hex64(e.trace_hash);
    if (!e.error.empty()) {
      os << prefix << ",,error,,,,,,,,," << csv_quote(e.error) << "\n";
      continue;
    }
    for (std::size_t i = 0; i < e.points.size(); ++i) {
      const DesignPoint& p = e.points[i];
      const bool on_front =
          std::find(e.pareto.begin(), e.pareto.end(), i) != e.pareto.end();
      os << prefix << "," << csv_quote(p.architecture) << ","
         << (p.feasible ? "yes" : "no") << "," << (on_front ? "yes" : "no") << ",";
      if (p.feasible) {
        os << fixed6(p.metrics.area_units) << "," << fixed6(p.metrics.delay_ns) << ","
           << fixed6(p.metrics.clk_to_out_ns) << "," << fixed6(p.metrics.reg_to_reg_ns)
           << "," << p.metrics.cells << "," << p.metrics.flipflops << ","
           << p.metrics.buffers_added;
      } else {
        os << ",,,,,,";
      }
      os << "," << csv_quote(p.note) << "\n";
    }
  }
  return os.str();
}

std::string batch_report_json(const BatchResult& result) {
  std::ostringstream os;
  os << "{\n";
  // Only input-determined data may appear here: evaluation/cache counters
  // depend on cache warmth and sharding, and would break the byte-identical
  // merge contract.  They are reported out-of-band (stderr in the CLI).
  os << "  \"summary\": {\"traces\": " << result.traces << "},\n";
  os << "  \"traces\": [\n";
  for (std::size_t t = 0; t < result.entries.size(); ++t) {
    const BatchEntry& e = result.entries[t];
    os << "    {\n";
    os << "      \"name\": " << json_quote(e.name) << ",\n";
    os << "      \"geometry\": [" << e.geometry.width << ", " << e.geometry.height
       << "],\n";
    os << "      \"length\": " << e.trace_length << ",\n";
    os << "      \"trace_hash\": \"" << hex64(e.trace_hash) << "\",\n";
    if (!e.error.empty()) {
      os << "      \"error\": " << json_quote(e.error) << "\n";
    } else {
      os << "      \"pareto\": [";
      for (std::size_t i = 0; i < e.pareto.size(); ++i)
        os << (i ? ", " : "") << e.pareto[i];
      os << "],\n";
      os << "      \"points\": [\n";
      for (std::size_t i = 0; i < e.points.size(); ++i) {
        const DesignPoint& p = e.points[i];
        os << "        {\"architecture\": " << json_quote(p.architecture)
           << ", \"feasible\": " << (p.feasible ? "true" : "false");
        if (p.feasible) {
          os << ", \"area_units\": " << fixed6(p.metrics.area_units)
             << ", \"delay_ns\": " << fixed6(p.metrics.delay_ns)
             << ", \"clk_to_out_ns\": " << fixed6(p.metrics.clk_to_out_ns)
             << ", \"reg_to_reg_ns\": " << fixed6(p.metrics.reg_to_reg_ns)
             << ", \"cells\": " << p.metrics.cells
             << ", \"flipflops\": " << p.metrics.flipflops
             << ", \"buffers_added\": " << p.metrics.buffers_added;
        }
        os << ", \"note\": " << json_quote(p.note) << "}"
           << (i + 1 < e.points.size() ? ",\n" : "\n");
      }
      os << "      ]\n";
    }
    os << "    }" << (t + 1 < result.entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace addm::core
