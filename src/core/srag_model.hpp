// Behavioral (cycle-accurate) model of the SRAG architecture of Figure 5.
//
// The model tracks the token position and the DivCnt/PassCnt counters and
// advances exactly as the hardware does: every `next` pulse increments
// DivCnt; when DivCnt completes (dC pulses) the shift registers shift once;
// every pC-th shift asserts `pass`, routing the token across the register
// boundary instead of wrapping it. It is the executable specification the
// gate-level elaboration is verified against, and the replay engine behind
// the mapper's verification step.
#pragma once

#include <cstdint>
#include <vector>

#include "core/srag_config.hpp"

namespace addm::core {

class SragModel {
 public:
  /// Validates the config (SragConfig::check).
  explicit SragModel(SragConfig config);

  const SragConfig& config() const { return config_; }

  /// Select line currently asserted (the address presented to the memory).
  std::uint32_t current() const {
    return config_.registers[reg_][pos_];
  }

  /// One `next` pulse.
  void pulse();

  /// Returns to the reset state: token at registers[0][0], counters cleared.
  void reset();

  /// Addresses observed over `n` accesses starting from reset: the address
  /// before each of n-1 pulses plus the initial one (access k uses the
  /// address valid at pulse k).
  std::vector<std::uint32_t> generate(std::size_t n);

  // Introspection (used by equivalence tests against the netlist).
  std::size_t token_register() const { return reg_; }
  std::size_t token_position() const { return pos_; }
  std::uint32_t div_counter() const { return div_; }
  std::uint32_t pass_counter() const { return pass_; }

 private:
  SragConfig config_;
  std::size_t reg_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t div_ = 0;
  std::uint32_t pass_ = 0;
};

}  // namespace addm::core
