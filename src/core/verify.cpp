#include "core/verify.hpp"

#include <sstream>

#include "sim/word_simulator.hpp"

namespace addm::core {

namespace {

using sim::WordSimulator;

/// Nets of "<prefix>[0..width)"; empty if the bus does not exist.
std::vector<netlist::NetId> output_bus_nets(const netlist::Netlist& nl,
                                            const std::string& prefix) {
  std::vector<netlist::NetId> nets;
  for (int i = 0;; ++i) {
    const auto net = nl.find_output(prefix + "[" + std::to_string(i) + "]");
    if (!net) break;
    nets.push_back(*net);
  }
  return nets;
}

/// All 64 lanes carry the same stimulus, so a correct one-hot bus shows the
/// expected line at kAllLanes and every other line at 0.  Anything else is
/// either a functional divergence or a lane-coherence violation.
std::optional<std::string> check_one_hot(const WordSimulator& ws,
                                         const std::vector<netlist::NetId>& nets,
                                         const std::string& bus, std::size_t expected,
                                         std::size_t cycle) {
  if (expected >= nets.size()) {
    std::ostringstream os;
    os << "cycle " << cycle << ": expected " << bus << "[" << expected
       << "] but the bus has only " << nets.size() << " lines";
    return os.str();
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const std::uint64_t want = i == expected ? WordSimulator::kAllLanes : 0;
    const std::uint64_t got = ws.word(nets[i]);
    if (got == want) continue;
    std::ostringstream os;
    os << "cycle " << cycle << ": " << bus << "[" << i << "] lanes 0x" << std::hex
       << got << std::dec << ", expected " << (want ? "all ones" : "all zeros")
       << " (hot line should be " << expected << ")";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> verify_reference_against_trace(
    const ReferenceCircuit& rc, const seq::AddressTrace& trace) {
  WordSimulator ws(rc.netlist);

  const auto row_nets = output_bus_nets(rc.netlist, rc.row_bus);
  if (row_nets.empty()) return "reference netlist has no output bus " + rc.row_bus;
  std::vector<netlist::NetId> col_nets;
  if (!rc.col_bus.empty()) {
    col_nets = output_bus_nets(rc.netlist, rc.col_bus);
    if (col_nets.empty()) return "reference netlist has no output bus " + rc.col_bus;
  }

  // One reset cycle with the replay inputs deasserted, then hold `drive`.
  ws.set_all("reset", true);
  for (const auto& [name, value] : rc.drive) {
    (void)value;
    ws.set_all(name, false);
  }
  ws.step();
  ws.set_all("reset", false);
  for (const auto& [name, value] : rc.drive) ws.set_all(name, value);

  for (std::size_t k = 0; k < trace.length(); ++k) {
    const std::uint32_t a = trace.linear()[k];
    if (col_nets.empty()) {
      if (auto err = check_one_hot(ws, row_nets, rc.row_bus, a, k)) return err;
    } else {
      if (auto err = check_one_hot(ws, row_nets, rc.row_bus, trace.row_of(a), k))
        return err;
      if (auto err = check_one_hot(ws, col_nets, rc.col_bus, trace.col_of(a), k))
        return err;
    }
    ws.step();
  }
  return std::nullopt;
}

FrontVerification verify_pareto_points(const seq::AddressTrace& trace,
                                       std::vector<DesignPoint>& points,
                                       const std::vector<std::size_t>& front,
                                       const ExploreOptions& opt) {
  FrontVerification tally;
  for (std::size_t idx : front) {
    DesignPoint& p = points[idx];

    const GeneratorEntry* entry = nullptr;
    for (const GeneratorEntry& e : generator_registry())
      if (e.name == p.architecture) {
        entry = &e;
        break;
      }

    std::optional<ReferenceCircuit> rc;
    if (entry && entry->reference) rc = entry->reference(trace, opt);
    if (!rc) {
      // A feasible front point whose candidate cannot re-elaborate should
      // not happen; record it visibly rather than passing it silently.
      p.note += " [verify skipped: no reference netlist]";
      ++tally.skipped;
      continue;
    }

    if (auto err = verify_reference_against_trace(*rc, trace)) {
      p.note += " [verify FAILED: " + *err + "]";
      ++tally.failed;
    } else {
      p.note += " [verified: " + std::to_string(trace.length()) + " cycles x " +
                std::to_string(sim::WordSimulator::kLanes) + " lanes]";
      ++tally.verified;
    }
  }
  return tally;
}

}  // namespace addm::core
