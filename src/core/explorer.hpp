// Design-space explorer — the paper's stated "final goal": given an address
// trace, evaluate every applicable generator architecture at a high level
// and report the area/delay landscape plus its Pareto front.
//
// Candidate architectures:
//  * SRAG (two-hot, Section 4)           — needs both dimensions mappable
//  * multi-counter SRAG (Section 4 ext.) — relaxed PassCnt restriction
//  * CntAG, flat decoders (baseline)     — always applicable
//  * CntAG, shared predecoders           — always applicable
//  * symbolic FSM, binary/gray/one-hot   — capped by a state budget; beyond
//    it the point is reported infeasible ("synthesis impractical", matching
//    the paper's Section-3 observation)
//  * SFM (Aloqeely)                      — FIFO traces only
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "seq/trace.hpp"
#include "tech/library.hpp"

namespace addm::core {

/// One evaluated candidate architecture.  Plain value type; everything here
/// is a pure function of (trace, ExploreOptions), which is what makes
/// design points safe to memoize and to persist in the evaluation cache.
struct DesignPoint {
  std::string architecture;  ///< stable candidate label (e.g. "SRAG", "CntAG-flat")
  bool feasible = false;
  std::string note;  ///< why infeasible, or config summary when feasible
  GeneratorMetrics metrics;  ///< zero-initialized when infeasible
};

/// Knobs that affect exploration output.  Every result-affecting field MUST
/// be covered by options_fingerprint (core/fingerprint.hpp) — the persistent
/// cache relies on that hash as its only invalidation mechanism.
struct ExploreOptions {
  tech::Library library = tech::Library::generic_180nm();
  int max_fanout = tech::kDefaultMaxFanout;
  /// FSM candidates are skipped above this many states (sequence length).
  std::size_t max_fsm_states = 1024;
  bool include_fsm = true;
};

/// Evaluates every applicable candidate architecture for `trace` and
/// returns one DesignPoint per candidate, in a fixed candidate order.
/// Deterministic: equal (trace, opt) inputs produce equal output, byte for
/// byte, across runs and hosts.  Thread-safe for concurrent calls (shared
/// state is read-only); a single call runs on the calling thread.  May
/// throw (std::invalid_argument and friends) on degenerate traces, e.g.
/// empty ones; per-candidate infeasibility is reported in the points, not
/// thrown.
std::vector<DesignPoint> explore_generators(const seq::AddressTrace& trace,
                                            const ExploreOptions& opt = {});

/// Indices of the area/delay Pareto-optimal feasible points, in ascending
/// index order.  Deterministic and side-effect free.
std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points);

/// Fixed-width text table of the exploration result.  Deterministic
/// formatting (fixed precision, stable column order).
std::string format_exploration(const std::vector<DesignPoint>& points);

}  // namespace addm::core
