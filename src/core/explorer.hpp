// Design-space explorer — the paper's stated "final goal": given an address
// trace, evaluate every applicable generator architecture at a high level
// and report the area/delay landscape plus its Pareto front.
//
// Candidate architectures:
//  * SRAG (two-hot, Section 4)           — needs both dimensions mappable
//  * multi-counter SRAG (Section 4 ext.) — relaxed PassCnt restriction
//  * CntAG, flat decoders (baseline)     — always applicable
//  * CntAG, shared predecoders           — always applicable
//  * symbolic FSM, binary/gray/one-hot   — capped by a state budget; beyond
//    it the point is reported infeasible ("synthesis impractical", matching
//    the paper's Section-3 observation)
//  * SFM (Aloqeely)                      — FIFO traces only
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "seq/trace.hpp"
#include "tech/library.hpp"

namespace addm::core {

struct DesignPoint {
  std::string architecture;
  bool feasible = false;
  std::string note;  ///< why infeasible, or config summary when feasible
  GeneratorMetrics metrics;
};

struct ExploreOptions {
  tech::Library library = tech::Library::generic_180nm();
  int max_fanout = tech::kDefaultMaxFanout;
  /// FSM candidates are skipped above this many states (sequence length).
  std::size_t max_fsm_states = 1024;
  bool include_fsm = true;
};

std::vector<DesignPoint> explore_generators(const seq::AddressTrace& trace,
                                            const ExploreOptions& opt = {});

/// Indices of the area/delay Pareto-optimal feasible points.
std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points);

/// Fixed-width text table of the exploration result.
std::string format_exploration(const std::vector<DesignPoint>& points);

}  // namespace addm::core
