// Design-space explorer — the paper's stated "final goal": given an address
// trace, evaluate every applicable generator architecture at a high level
// and report the area/delay landscape plus its Pareto front.
//
// Candidate architectures (see generator_registry() for the live table):
//  * SRAG (two-hot, Section 4)           — needs both dimensions mappable
//  * multi-counter SRAG (Section 4 ext.) — relaxed PassCnt restriction
//  * CntAG, flat decoders (baseline)     — always applicable
//  * CntAG, shared predecoders           — always applicable
//  * symbolic FSM, binary/gray/one-hot   — capped by a state budget; beyond
//    it the point is reported infeasible ("synthesis impractical", matching
//    the paper's Section-3 observation)
//  * SFM (Aloqeely)                      — FIFO traces only
//
// Determinism contract: explore_generators is a pure function of
// (trace, result-affecting ExploreOptions fields).  Candidates are
// independent tasks drawn from a stable-ordered registry; the driver may
// evaluate them on any thread in any order (ExploreOptions::arch_threads),
// but points are always reassembled in registry order, so the returned
// vector is byte-identical across runs, hosts, thread counts, and
// scheduling.  Scheduling knobs (arch_threads) are therefore excluded from
// options_fingerprint; subset selection (archs) changes the output and is
// fingerprinted.  Everything below — the batch explorer's reports, the
// persistent evaluation cache, shard merging — leans on this contract.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "logic/minimize.hpp"
#include "netlist/netlist.hpp"
#include "seq/trace.hpp"
#include "tech/library.hpp"

namespace addm::core {

/// One evaluated candidate architecture.  Plain value type; everything here
/// is a pure function of (trace, ExploreOptions), which is what makes
/// design points safe to memoize and to persist in the evaluation cache.
struct DesignPoint {
  std::string architecture;  ///< stable candidate label (e.g. "SRAG", "CntAG-flat")
  bool feasible = false;
  std::string note;  ///< why infeasible, or config summary when feasible
  GeneratorMetrics metrics;  ///< zero-initialized when infeasible
};

/// Knobs that affect exploration.  Every result-affecting field MUST be
/// covered by options_fingerprint (core/fingerprint.hpp) — the persistent
/// cache relies on that hash as its only invalidation mechanism.
/// Scheduling-only fields (arch_threads) MUST stay out of it, so that a
/// differently-parallelized run reuses the same cache entries.
struct ExploreOptions {
  tech::Library library = tech::Library::generic_180nm();
  int max_fanout = tech::kDefaultMaxFanout;
  /// FSM candidates are skipped above this many states (sequence length).
  std::size_t max_fsm_states = 1024;
  bool include_fsm = true;
  /// Candidate subset by registry name; empty selects every entry.  Names
  /// not in the registry select nothing.  Output-affecting: fingerprinted
  /// in canonical (registry-order, deduplicated) form, so a filtered run
  /// never shares cache keys with a full run.
  std::vector<std::string> archs;
  /// Threads used to evaluate candidates of ONE trace (0 = hardware
  /// concurrency, 1 = serial on the calling thread).  Pure scheduling: any
  /// value produces byte-identical points, and the field is excluded from
  /// options_fingerprint.  The batch explorer overrides this per worker via
  /// split_threads so outer × inner never exceeds its thread budget.
  std::size_t arch_threads = 1;
  /// Gate-level verification of the Pareto front (core/verify.hpp): every
  /// front point is re-elaborated and its netlist replayed against the
  /// trace in the 64-lane word simulator; the verdict is appended to the
  /// point's note.  Output-affecting, so it is fingerprinted — but only
  /// when enabled, keeping default-options fingerprints (and thus existing
  /// cache directories and reports) pinned.
  bool verify_front = false;
  /// Two-level minimizer used inside FSM and CntAG elaboration
  /// (logic/minimize.hpp).  The default (Isop) reproduces the historical
  /// covers byte for byte; selecting Auto/Espresso/Exact changes netlists
  /// and therefore metrics, so a non-default value is fingerprinted — only
  /// when non-default, keeping default-options fingerprints pinned (the
  /// verify_front pattern).
  logic::MinimizeOptions minimize;
  /// Exact periodicity compression (seq/periodicity.hpp): when the trace is
  /// whole passes of one period (prefix-free, k >= 2 repeats, no partial
  /// tail), candidates are evaluated on a single period and every note is
  /// annotated "[periodic <k>x<p>]" — exploration cost scales with the
  /// period instead of the trace length.  Traces without such structure
  /// (all the built-in synthetic suites) are explored unchanged, byte for
  /// byte.  Output-affecting (FSM feasibility, metrics, and notes follow
  /// the period trace), so it is fingerprinted — but only when enabled,
  /// keeping default-options fingerprints pinned (the verify_front
  /// pattern).
  bool compress_periodic = false;
};

/// A candidate's netlist re-elaborated for gate-level verification, plus the
/// replay recipe: after one reset cycle with `drive` inputs applied, the
/// asserted line of `row_bus` (and `col_bus`, when present) must track the
/// trace's row/column address sequence cycle by cycle.  With an empty
/// `col_bus` the single bus is checked against the linear address sequence
/// (1-D generators such as the SFM).
struct ReferenceCircuit {
  netlist::Netlist netlist;
  /// Inputs held for the whole replay once "reset" is released.
  std::vector<std::pair<std::string, bool>> drive = {{"next", true}};
  std::string row_bus = "rs";
  std::string col_bus = "cs";
};

/// One self-describing candidate architecture in the registry.  Both
/// callables are pure functions of their arguments and thread-safe for
/// concurrent invocation; `elaborate` returns an infeasible point (never
/// throws) for per-candidate rejection, and throws only for degenerate
/// traces that no candidate could process.
struct GeneratorEntry {
  /// Stable label; doubles as the `archs` filter key and the report value.
  std::string name;
  /// Whether this candidate produces a point at all under `opt` (e.g. FSM
  /// entries disappear when include_fsm is false).  Per-trace rejection is
  /// NOT applicability: an over-budget FSM or a non-FIFO SFM stays
  /// applicable and reports an infeasible point.
  std::function<bool(const seq::AddressTrace&, const ExploreOptions&)> applicable;
  /// Maps + elaborates + measures the candidate for `trace`.
  std::function<DesignPoint(const seq::AddressTrace&, const ExploreOptions&)> elaborate;
  /// Re-elaborates the candidate netlist for gate-level verification
  /// (ExploreOptions::verify_front); nullopt when the candidate is
  /// infeasible for `trace`.  Pure and thread-safe like the other
  /// callables.
  std::function<std::optional<ReferenceCircuit>(const seq::AddressTrace&,
                                                const ExploreOptions&)>
      reference;
};

/// The stable-ordered candidate table.  The order is part of the output
/// contract: explore_generators returns points in registry order, reports
/// render rows in registry order, and the canonical `archs` fingerprint
/// form is the registry-order intersection.  Append-only across versions;
/// reordering or renaming entries requires a kOptionsFingerprintSeed bump
/// (core/fingerprint.hpp).
const std::vector<GeneratorEntry>& generator_registry();

/// Registry names, in registry order — the valid `archs` values.
std::vector<std::string> generator_names();

/// Evaluates every applicable candidate architecture for `trace` and
/// returns one DesignPoint per candidate, in registry order.
/// Deterministic: equal (trace, opt) inputs produce equal output, byte for
/// byte, across runs, hosts, and every arch_threads value.  Thread-safe
/// for concurrent calls (shared state is read-only).  May throw
/// (std::invalid_argument and friends) on degenerate traces, e.g. empty
/// ones — deterministically, the first failing entry in registry order —
/// while per-candidate infeasibility is reported in the points, not
/// thrown.
std::vector<DesignPoint> explore_generators(const seq::AddressTrace& trace,
                                            const ExploreOptions& opt = {});

/// Indices of the area/delay Pareto-optimal feasible points, in ascending
/// index order.  Deterministic and side-effect free.
std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points);

/// Fixed-width text table of the exploration result.  Deterministic
/// formatting (fixed precision, stable column order); the architecture
/// column widens to the longest name plus two spaces, so long names never
/// collide with the feasible column.
std::string format_exploration(const std::vector<DesignPoint>& points);

}  // namespace addm::core
