// SRAG configuration: the outcome of the Section-5 mapping procedure for one
// dimension (row or column) of the address decoder-decoupled memory.
//
// A configured SRAG consists of:
//  * a set of shift registers S = (S_0..S_{N-1}); register i has M_i
//    flip-flops, and flip-flop (i,j) drives one select line — `registers[i][j]`
//    is that select line's index (equivalently, the one-dimensional address);
//  * a division count dC shared by all addresses (DivCnt): each address is
//    held for dC consecutive `next` pulses;
//  * a pass count pC shared by all registers (PassCnt): after every pC
//    enabled shifts the token leaves its register for the next one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace addm::core {

struct SragConfig {
  /// registers[i][j] = select line driven by flip-flop j of shift register i,
  /// in token traversal order. The token starts at registers[0][0].
  std::vector<std::vector<std::uint32_t>> registers;
  std::uint32_t div_count = 1;   ///< dC >= 1
  std::uint32_t pass_count = 1;  ///< pC >= 1
  std::uint32_t num_select_lines = 0;

  std::size_t num_registers() const { return registers.size(); }
  std::size_t num_flipflops() const;
  std::size_t register_length(std::size_t i) const { return registers[i].size(); }

  /// Validates structural invariants (non-empty registers, select lines in
  /// range and pairwise distinct, counts >= 1). Throws std::invalid_argument.
  void check() const;
};

/// The intermediate sets of the mapping procedure, in the paper's notation
/// (Table 2). Kept alongside the config for reporting and for Table-2
/// reproduction.
struct MappingParameters {
  std::vector<std::uint32_t> I;  ///< input address sequence
  std::vector<std::uint32_t> D;  ///< run lengths (division counts)
  std::vector<std::uint32_t> R;  ///< run-collapsed sequence
  std::vector<std::uint32_t> U;  ///< unique addresses in first-appearance order
  std::vector<std::uint32_t> O;  ///< occurrences of each unique address in R
  std::vector<std::uint32_t> Z;  ///< first position of each unique address in R
  std::vector<std::uint32_t> P;  ///< per-register pass counts (M_i * iterations)
  std::uint32_t dC = 0;
  std::uint32_t pC = 0;
  std::vector<std::vector<std::uint32_t>> S;  ///< select-line grouping

  std::string to_string() const;  ///< multi-line, Table-2 style
};

}  // namespace addm::core
