// SFM: Aloqeely's Sequential FIFO Memory pointer logic (Figure 6) — the
// prior-art design SRAG improves on. A one-dimensional memory with the
// address decoder replaced by two one-hot ("one-hot encoded", in contrast to
// SRAG's two-hot) single-bit shift registers: a tail pointer selecting the
// write cell and a head pointer selecting the read cell.
#pragma once

#include "netlist/builder.hpp"

namespace addm::core {

struct SfmPorts {
  std::vector<netlist::NetId> write_select;  ///< one-hot, tail pointer
  std::vector<netlist::NetId> read_select;   ///< one-hot, head pointer
};

/// Appends SFM pointer logic for `cells` memory cells. `next_write` advances
/// the tail pointer, `next_read` the head pointer; `reset` returns both to
/// cell 0.
SfmPorts build_sfm(netlist::NetlistBuilder& b, std::size_t cells,
                   netlist::NetId next_write, netlist::NetId next_read,
                   netlist::NetId reset);

/// Standalone netlist with inputs "next_write"/"next_read"/"reset" and output
/// buses "wsel[...]"/"rsel[...]".
netlist::Netlist elaborate_sfm(std::size_t cells);

}  // namespace addm::core
