#include "core/srag_elab.hpp"

#include "synth/counter.hpp"

namespace addm::core {

using netlist::CellType;
using netlist::kConst0;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

namespace {
SragPorts build_srag_body(NetlistBuilder& b, const SragConfig& cfg, NetId enable,
                          NetId reset);
}  // namespace

SragPorts build_srag(NetlistBuilder& b, const SragConfig& cfg, NetId next, NetId reset) {
  cfg.check();

  // DivCnt + enable derivation.
  NetId enable;
  if (cfg.div_count == 1) {
    enable = next;
  } else {
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(cfg.div_count);
    spec.modulo = cfg.div_count;
    const auto div = synth::build_counter(b, spec, next, reset);
    enable = b.and2(next, div.wrap);  // wrap == (DivCnt == dC-1)
  }
  return build_srag_body(b, cfg, enable, reset);
}

SragPorts build_srag_with_enable(NetlistBuilder& b, const SragConfig& cfg, NetId enable,
                                 NetId reset) {
  cfg.check();
  return build_srag_body(b, cfg, enable, reset);
}

namespace {
SragPorts build_srag_body(NetlistBuilder& b, const SragConfig& cfg, NetId enable,
                          NetId reset) {
  auto& nl = b.netlist();
  SragPorts ports;
  ports.enable = enable;

  // PassCnt + pass derivation (only needed with >= 2 registers).
  const std::size_t n_regs = cfg.num_registers();
  if (n_regs == 1 || cfg.pass_count == 1) {
    ports.pass = netlist::kConst1;
  } else {
    synth::CounterSpec spec;
    spec.bits = synth::bits_for(cfg.pass_count);
    spec.modulo = cfg.pass_count;
    const auto pass_cnt = synth::build_counter(b, spec, ports.enable, reset);
    ports.pass = pass_cnt.wrap;
  }

  // Shift registers. Flip-flop nets are created up front so register heads
  // can reference the previous register's tail.
  std::vector<std::vector<NetId>> q(n_regs);
  for (std::size_t i = 0; i < n_regs; ++i) {
    q[i].resize(cfg.registers[i].size());
    for (auto& net : q[i]) net = nl.new_net();
  }
  for (std::size_t i = 0; i < n_regs; ++i) {
    const std::size_t len = q[i].size();
    for (std::size_t j = 0; j < len; ++j) {
      NetId d;
      if (j > 0) {
        d = q[i][j - 1];
      } else {
        const NetId own_tail = q[i][len - 1];
        const NetId prev_tail = q[(i + n_regs - 1) % n_regs].back();
        d = b.mux2(ports.pass, own_tail, prev_tail);  // pass=1 -> take previous
      }
      const CellType ff = (i == 0 && j == 0) ? CellType::DffES : CellType::DffER;
      nl.add_cell(ff, {d, ports.enable, reset}, q[i][j]);
    }
  }

  // Select-line mapping; unvisited lines tie to 0.
  ports.select.assign(cfg.num_select_lines, kConst0);
  for (std::size_t i = 0; i < n_regs; ++i)
    for (std::size_t j = 0; j < q[i].size(); ++j)
      ports.select[cfg.registers[i][j]] = q[i][j];

  // Cycle-completion event: the enabled shift on which the token leaves the
  // tail of the last register for registers[0][0] (pass asserted there).
  ports.cycle_complete = b.and2(ports.enable, b.and2(ports.pass, q[n_regs - 1].back()));
  return ports;
}
}  // namespace

Netlist elaborate_srag(const SragConfig& cfg) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const SragPorts ports = build_srag(b, cfg, next, reset);
  b.output_bus("sel", ports.select);
  return nl;
}

Netlist elaborate_srag_2d(const SragConfig& row_cfg, const SragConfig& col_cfg) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const SragPorts row = build_srag(b, row_cfg, next, reset);
  const SragPorts col = build_srag(b, col_cfg, next, reset);
  b.output_bus("rs", row.select);
  b.output_bus("cs", col.select);
  return nl;
}

}  // namespace addm::core
