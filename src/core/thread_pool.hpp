// Fixed-size worker pool used by the batch explorer and available to any
// future parallel subsystem.
//
// Semantics:
//  * submit() enqueues a task; workers drain the queue FIFO.
//  * wait_idle() blocks until the queue is empty and no task is running,
//    then rethrows the first task exception (if any) and clears it.
//  * parallel_for(n, fn) runs fn(0..n-1) across the pool and waits; with a
//    pool of size 1 (or n <= 1) it degenerates to a sequential loop, which
//    makes thread-count-independence tests trivial to anchor.
//
// Tasks must not call submit()/wait_idle() on their own pool (no nested
// scheduling).  Nested parallelism uses two *distinct* pools instead: an
// outer pool's task may construct its own inner pool (the explorer's
// per-trace candidate fan-out does exactly that), and split_threads()
// divides one thread budget between the two levels so the product of pool
// sizes never oversubscribes it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace addm::core {

/// A two-level division of one thread budget: `outer` concurrent tasks,
/// each allowed `inner` threads of its own.
struct ThreadSplit {
  std::size_t outer = 1;
  std::size_t inner = 1;
};

/// Splits a total thread budget between an outer task level and an inner
/// per-task level (the batch explorer's traces × architectures nesting).
/// `total` and `inner_request` of 0 mean hardware concurrency.  The inner
/// level gets min(inner_request, total); the outer level gets the largest
/// count with outer × inner <= total (at least 1).  Pure scheduling
/// arithmetic: callers rely on it only for capacity, never for results.
inline ThreadSplit split_threads(std::size_t total, std::size_t inner_request) {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (total == 0) total = hw;
  if (inner_request == 0) inner_request = hw;
  ThreadSplit s;
  s.inner = inner_request < total ? inner_request : total;
  s.outer = total / s.inner;
  return s;
}

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Tasks queued plus tasks currently executing.  A momentary snapshot —
  /// by the time the caller acts it may be stale — so it is only suitable
  /// for liveness probes (the serve daemon's idle-timeout check), never for
  /// synchronization; use wait_idle() for that.
  std::size_t busy() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size() + running_;
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until all submitted work has finished. Rethrows the first
  /// exception raised by any task since the previous wait_idle().
  void wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
    if (first_error_) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Runs fn(i) for i in [0, n) across the pool, then waits.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (size() == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    for (std::size_t i = 0; i < n; ++i)
      submit([&fn, i] { fn(i); });
    wait_idle();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        --running_;
        if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace addm::core
