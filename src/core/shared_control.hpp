// Shared-control two-dimensional SRAG — the first enhancement the paper's
// conclusion proposes: "reduce the area of SRAG through enhancements such as
// reuse of control circuitry between the row and the column address
// sequences or exploiting the interaction between the row and the column
// address generators".
//
// In a 2-D access pattern the row address typically advances exactly when
// the column generator completes a sub-pattern. Instead of giving the row
// SRAG a private DivCnt counting raw `next` pulses (dC_row of them per row
// step), the row's shift enable is derived from column-side events:
//
//  * dC_row == dC_col * col_cycle           -> row shifts on the column's
//       cycle-completion event; the row DivCnt disappears entirely.
//  * dC_row == dC_col * col_cycle * r       -> a small modulo-r counter over
//       completion events replaces the full modulo-dC_row DivCnt.
//  * dC_row == dC_col * r (no cycle align)  -> a modulo-r counter over column
//       *enable* pulses replaces the DivCnt (fewer bits).
//
// where col_cycle = pass_count * num_registers is the column token period in
// enabled shifts. When none of the divisibility conditions hold the builder
// falls back to the independent composition.
#pragma once

#include "core/srag_config.hpp"
#include "core/srag_elab.hpp"
#include "netlist/builder.hpp"

namespace addm::core {

enum class ControlSharing {
  None,             ///< fell back to independent DivCnt
  ColumnEnable,     ///< row DivCnt counts column enables (modulo reduced)
  ColumnCycle,      ///< row shifts directly on column cycle completion
  ColumnCycleScaled ///< small counter over column cycle completions
};

struct SharedSrag2dResult {
  SragPorts row;
  SragPorts col;
  ControlSharing sharing = ControlSharing::None;
};

/// Appends both dimensions with maximal control reuse. Functionally
/// equivalent to two independent build_srag calls (the tests check this by
/// cycle simulation); cheaper whenever the divisibility conditions hold.
SharedSrag2dResult build_srag_2d_shared(netlist::NetlistBuilder& b,
                                        const SragConfig& row_cfg,
                                        const SragConfig& col_cfg, netlist::NetId next,
                                        netlist::NetId reset);

/// Standalone netlist (inputs "next"/"reset", outputs "rs[...]"/"cs[...]")
/// using the shared-control composition.
netlist::Netlist elaborate_srag_2d_shared(const SragConfig& row_cfg,
                                          const SragConfig& col_cfg,
                                          ControlSharing* sharing_out = nullptr);

}  // namespace addm::core
