// Stable 64-bit fingerprints for memoizing design-space evaluations.
//
// The batch explorer keys its cache on (trace fingerprint, options
// fingerprint): two traces with the same geometry and address sequence hash
// identically regardless of their names, and two option sets hash identically
// iff every field that influences explore_generators' output matches
// (technology library parameters included).
//
// The hash is FNV-1a over a canonical little-endian byte stream, so values
// are stable across runs and platforms of equal endianness — good enough for
// an in-process cache and for labeling report rows.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::core {

/// Streaming FNV-1a (64-bit).
class Fnv1a64 {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Hash of geometry + linear address sequence. The trace name is excluded on
/// purpose: renamed copies of the same access pattern are cache hits.
std::uint64_t trace_fingerprint(const seq::AddressTrace& trace);

/// Hash of every ExploreOptions field that affects exploration results,
/// including the full technology library (per-cell area/timing parameters).
std::uint64_t options_fingerprint(const ExploreOptions& opt);

}  // namespace addm::core
