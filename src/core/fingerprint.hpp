// Stable 64-bit fingerprints for memoizing design-space evaluations.
//
// The batch explorer keys both its in-memory memo table and the on-disk
// evaluation cache (core/eval_cache) on (trace fingerprint, options
// fingerprint): two traces with the same geometry and address sequence hash
// identically regardless of their names, and two option sets hash identically
// iff every field that influences explore_generators' output matches
// (technology library parameters included).
//
// The hash is FNV-1a over a canonical little-endian byte stream, so values
// are stable across runs and platforms of equal endianness — stable enough
// to key persistent caches, label report rows, and compare across processes
// and hosts.
//
// Invalidation rule: whenever ExploreOptions grows a result-affecting field,
// it MUST be added to options_fingerprint, and whenever the *semantics* of
// exploration change without an options change (new candidate architecture,
// metrics fix), kOptionsFingerprintSeed MUST be bumped — either change makes
// every previously persisted cache entry unreachable rather than stale.
// The converse also holds: scheduling-only fields (ExploreOptions::
// arch_threads) MUST stay out of the hash, and new result-affecting fields
// must hash nothing at their default value when the default reproduces the
// previous behavior (ExploreOptions::archs does), so existing caches stay
// warm across upgrades.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::core {

/// Semantic version of the exploration pipeline, mixed into every options
/// fingerprint.  Bump it when exploration output changes for reasons not
/// visible in ExploreOptions; persisted caches keyed on the old value then
/// read as misses instead of returning stale results.
inline constexpr std::uint64_t kOptionsFingerprintSeed = 1;

/// Streaming FNV-1a (64-bit).  Deterministic and stateless beyond the
/// accumulated digest; safe to use from any thread (one instance per
/// hasher).
class Fnv1a64 {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// 16-lowercase-hex-digit rendering of a 64-bit value: the canonical
/// textual form of every fingerprint — report columns, cache entry
/// filenames, and index lines all use it.
inline std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Hash of geometry + linear address sequence. The trace name is excluded on
/// purpose: renamed copies of the same access pattern are cache hits.
/// Deterministic across runs, processes, and hosts of equal endianness.
std::uint64_t trace_fingerprint(const seq::AddressTrace& trace);

/// Hash of every ExploreOptions field that affects exploration results,
/// including the full technology library (per-cell area/timing parameters)
/// and kOptionsFingerprintSeed.  This is the persistent cache's sole
/// invalidation mechanism: equal fingerprints assert byte-identical
/// exploration output.
std::uint64_t options_fingerprint(const ExploreOptions& opt);

}  // namespace addm::core
