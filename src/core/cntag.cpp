#include "core/cntag.hpp"

#include <stdexcept>

#include "logic/minimize.hpp"
#include "logic/sop_map.hpp"

namespace addm::core {

using logic::TruthTable;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

namespace {

/// Synthesizes `values[idx]` bit `bit` as a function of the index bits.
NetId synth_table_bit(NetlistBuilder& b, std::span<const NetId> index_bits,
                      const std::vector<std::uint32_t>& values, int bit, bool flat,
                      const logic::MinimizeOptions& minimize) {
  const int n = static_cast<int>(index_bits.size());
  TruthTable onset(n);
  TruthTable care(n);
  for (std::size_t i = 0; i < values.size(); ++i) {
    care.set(i, true);
    if ((values[i] >> bit) & 1) onset.set(i, true);
  }
  const auto cover = logic::minimize(onset, onset | ~care, minimize);
  const bool saved = b.sharing();
  b.set_sharing(!flat);
  const NetId out = logic::map_cover(b, cover, index_bits);
  b.set_sharing(saved);
  return out;
}

}  // namespace

CntAgPorts build_cntag(NetlistBuilder& b, const seq::AddressTrace& trace, NetId next,
                       NetId reset, const CntAgOptions& opt) {
  if (trace.empty()) throw std::invalid_argument("build_cntag: empty trace");
  const std::size_t length = trace.length();
  if (length > (std::size_t{1} << 22))
    throw std::invalid_argument("build_cntag: trace too long for table synthesis");

  CntAgPorts ports;

  // Sequence-position counter.
  synth::CounterSpec spec;
  spec.bits = synth::bits_for(length);
  spec.modulo = length;
  spec.carry = opt.carry;
  spec.cascade_digit_bits = opt.counter_digit_bits;
  ports.index = synth::build_counter(b, spec, next, reset).q;

  // Index -> (row, col) transform, one minimized function per address bit.
  const auto rows = trace.rows();
  const auto cols = trace.cols();
  const int row_bits = synth::bits_for(trace.geometry().height);
  const int col_bits = synth::bits_for(trace.geometry().width);
  for (int k = 0; k < row_bits; ++k)
    ports.row_addr.push_back(
        synth_table_bit(b, ports.index, rows, k, opt.flat_transform, opt.minimize));
  for (int k = 0; k < col_bits; ++k)
    ports.col_addr.push_back(
        synth_table_bit(b, ports.index, cols, k, opt.flat_transform, opt.minimize));

  if (opt.include_decoders) {
    ports.rs = synth::build_decoder(b, ports.row_addr, trace.geometry().height,
                                    netlist::kConst1, opt.decoder_style);
    ports.cs = synth::build_decoder(b, ports.col_addr, trace.geometry().width,
                                    netlist::kConst1, opt.decoder_style);
  }
  return ports;
}

Netlist elaborate_cntag(const seq::AddressTrace& trace, const CntAgOptions& opt) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId next = b.input("next");
  const NetId reset = b.input("reset");
  const CntAgPorts ports = build_cntag(b, trace, next, reset, opt);
  b.output_bus("ra", ports.row_addr);
  b.output_bus("ca", ports.col_addr);
  if (opt.include_decoders) {
    b.output_bus("rs", ports.rs);
    b.output_bus("cs", ports.cs);
  }
  return nl;
}

}  // namespace addm::core
