// The automatic mapping procedure of Section 5 (the SRAdGen tool).
//
// Input: a one-dimensional address sequence (a RowAS or ColAS; the caller
// maps each dimension separately, as the paper does). Output: either an
// SragConfig whose behavioral replay reproduces the input exactly, or a
// diagnostic naming the architectural restriction that failed:
//  * DivCnt restriction  — address repetition lengths are not all equal;
//  * PassCnt restriction — per-register pass counts are not all equal;
//  * grouping failure    — the initial grouping's replay diverges from the
//    input (the paper's 1,2,3,4,3,2,1,4 example); detected by the
//    verification step.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/srag_config.hpp"

namespace addm::core {

enum class MapFailure {
  EmptySequence,
  NonUniformDivCount,   ///< violates the DivCnt restriction
  NonUniformPassCount,  ///< violates the PassCnt restriction
  GroupingFailed,       ///< verification step: replay != input
};

std::string to_string(MapFailure f);

struct MapResult {
  /// Present iff mapping succeeded and was verified by replay.
  std::optional<SragConfig> config;
  /// Intermediate sets; filled as far as the procedure progressed.
  MappingParameters params;
  std::optional<MapFailure> failure;
  std::string detail;

  bool ok() const { return config.has_value(); }
};

/// Maps one address sequence onto the SRAG architecture. `num_select_lines`
/// is the select-line count of the target dimension (0 = max address + 1).
///
/// Extends the paper's procedure with one repair: when the greedy grouping
/// over-merges whole registers (inflating one group's pass count), groups
/// are split back down to the gcd of the pass counts before the replay
/// verification. The paper's own counter-examples still fail as published.
MapResult map_sequence(std::span<const std::uint32_t> seq,
                       std::uint32_t num_select_lines = 0);

/// The Section-5 analysis front end alone: steps 1-6 with the paper's
/// initial grouping and per-register pass counts, no uniformity check and no
/// repair. Used by the multi-counter mapper, which tolerates non-uniform P.
/// `failure` is only EmptySequence or NonUniformDivCount.
struct SequenceAnalysis {
  MappingParameters params;
  std::optional<MapFailure> failure;
  std::string detail;
  bool ok() const { return !failure.has_value(); }
};
SequenceAnalysis analyze_sequence(std::span<const std::uint32_t> seq);

}  // namespace addm::core
