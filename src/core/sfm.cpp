#include "core/sfm.hpp"

#include <stdexcept>

#include "synth/shift.hpp"

namespace addm::core {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

SfmPorts build_sfm(NetlistBuilder& b, std::size_t cells, NetId next_write, NetId next_read,
                   NetId reset) {
  if (cells == 0) throw std::invalid_argument("build_sfm: zero cells");
  SfmPorts ports;
  ports.write_select = synth::build_token_ring(b, cells, next_write, reset);
  ports.read_select = synth::build_token_ring(b, cells, next_read, reset);
  return ports;
}

Netlist elaborate_sfm(std::size_t cells) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId nw = b.input("next_write");
  const NetId nr = b.input("next_read");
  const NetId rst = b.input("reset");
  const SfmPorts ports = build_sfm(b, cells, nw, nr, rst);
  b.output_bus("wsel", ports.write_select);
  b.output_bus("rsel", ports.read_select);
  return nl;
}

}  // namespace addm::core
