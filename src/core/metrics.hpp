// Measurement pipeline shared by every experiment: elaborate -> repair
// fanout with buffer trees -> static timing + area. This mirrors what the
// paper's synthesis runs report (post-synthesis critical path and cell area).
#pragma once

#include "core/srag_config.hpp"
#include "netlist/netlist.hpp"
#include "seq/trace.hpp"
#include "tech/buffering.hpp"
#include "tech/library.hpp"
#include "tech/sta.hpp"

namespace addm::core {

struct GeneratorMetrics {
  double area_units = 0.0;
  double delay_ns = 0.0;        ///< critical path (the paper's "delay")
  double clk_to_out_ns = 0.0;   ///< register-to-select-line component
  double reg_to_reg_ns = 0.0;   ///< internal control-loop component
  std::size_t cells = 0;
  std::size_t flipflops = 0;
  std::size_t buffers_added = 0;
};

/// Buffers `nl` in place, then runs STA and area analysis.
GeneratorMetrics measure_netlist(netlist::Netlist& nl, const tech::Library& lib,
                                 int max_fanout = tech::kDefaultMaxFanout);

/// Maps both dimensions of `trace` and elaborates the two-hot SRAG pair.
/// Throws std::invalid_argument (with the mapper diagnostic) if either
/// dimension is unmappable.
struct Srag2dBuild {
  SragConfig row;
  SragConfig col;
  netlist::Netlist netlist;
};
Srag2dBuild build_srag_2d_for_trace(const seq::AddressTrace& trace);

}  // namespace addm::core
