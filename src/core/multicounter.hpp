// Multi-counter SRAG — the relaxation the paper sketches in Section 4
// ("...can be relaxed by using multiple counters that provide more
// flexibility in the sequences that can be generated") and lists as future
// work. Each shift register gets its own pass counter, lifting the uniform-
// PassCnt restriction; the paper's own counter-example sequence
// 5,5,5x... / 5,1,4,0 repeated unequal numbers of times becomes mappable.
//
// The DivCnt restriction (uniform per-address repetition) is retained; its
// relaxation would require per-address division counts and is documented as
// out of scope in DESIGN.md.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/srag_config.hpp"
#include "core/srag_mapper.hpp"
#include "netlist/builder.hpp"

namespace addm::core {

struct MultiSragConfig {
  std::vector<std::vector<std::uint32_t>> registers;  ///< as SragConfig
  std::uint32_t div_count = 1;
  /// pass_counts[i] = enabled shifts register i keeps the token before
  /// passing it on (= M_i * iterations_i).
  std::vector<std::uint32_t> pass_counts;
  std::uint32_t num_select_lines = 0;

  std::size_t num_registers() const { return registers.size(); }
  std::size_t num_flipflops() const;
  void check() const;
};

/// Behavioral model mirroring SragModel for the multi-counter variant. The
/// per-register counter counts only while its register holds the token.
class MultiSragModel {
 public:
  explicit MultiSragModel(MultiSragConfig config);
  const MultiSragConfig& config() const { return config_; }
  std::uint32_t current() const { return config_.registers[reg_][pos_]; }
  void pulse();
  void reset();
  std::vector<std::uint32_t> generate(std::size_t n);

 private:
  MultiSragConfig config_;
  std::size_t reg_ = 0, pos_ = 0;
  std::uint32_t div_ = 0, pass_ = 0;
};

struct MultiMapResult {
  std::optional<MultiSragConfig> config;
  MappingParameters params;
  std::optional<MapFailure> failure;  ///< never NonUniformPassCount
  std::string detail;
  bool ok() const { return config.has_value(); }
};

/// Section-5 mapping with the PassCnt-uniformity check removed.
MultiMapResult map_sequence_multicounter(std::span<const std::uint32_t> seq,
                                         std::uint32_t num_select_lines = 0);

struct MultiSragPorts {
  std::vector<netlist::NetId> select;
  netlist::NetId enable = netlist::kInvalidNet;
};

/// Gate-level elaboration: per-register pass counters gated by a token-
/// presence OR over the register's flip-flops.
MultiSragPorts build_multi_srag(netlist::NetlistBuilder& b, const MultiSragConfig& cfg,
                                netlist::NetId next, netlist::NetId reset);

/// Standalone netlist with inputs "next"/"reset" and output bus "sel[...]".
netlist::Netlist elaborate_multi_srag(const MultiSragConfig& cfg);

}  // namespace addm::core
