// Gate-level verification of exploration results — the exploration stage the
// word-parallel simulator exists for.  Until now full netlist-level
// verification was a spot-check (the randomized SRAG equivalence test); with
// the levelized 64-lane simulator it is cheap enough to run over every
// Pareto point of every explored trace.
//
// For each Pareto-front design point the candidate's netlist is
// re-elaborated (GeneratorEntry::reference) and replayed against the trace
// in sim::WordSimulator with the stimulus replicated into all 64 lanes: at
// every cycle the expected select line must be asserted in ALL lanes and
// every other line in none, so one replay checks both functional
// correctness and lane coherence.  The verdict is appended to the point's
// note — deterministically, so annotated results memoize, cache and shard
// exactly like plain ones.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "seq/trace.hpp"

namespace addm::core {

/// Tally of one trace's front verification.
struct FrontVerification {
  std::size_t verified = 0;  ///< points whose replay matched the trace
  std::size_t failed = 0;    ///< points whose replay diverged
  std::size_t skipped = 0;   ///< points without a reference recipe
};

/// Replays `trace` through `rc`'s netlist (one reset cycle, then one cycle
/// per access) and checks the select buses against the trace's address
/// sequences in every lane.  Returns nullopt on success, a diagnostic on
/// the first divergence.
std::optional<std::string> verify_reference_against_trace(
    const ReferenceCircuit& rc, const seq::AddressTrace& trace);

/// Verifies every point of `front` (indices into `points`) and appends
/// " [verified: ...]" / " [verify FAILED: ...]" to the point notes.
/// Deterministic: the annotations are a pure function of (trace, points,
/// front, opt).
FrontVerification verify_pareto_points(const seq::AddressTrace& trace,
                                       std::vector<DesignPoint>& points,
                                       const std::vector<std::size_t>& front,
                                       const ExploreOptions& opt);

}  // namespace addm::core
