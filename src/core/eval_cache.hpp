// Persistent (on-disk) evaluation cache for the batch explorer.
//
// A cache directory holds one append-friendly index (`index.txt`) plus one
// entry file per cached evaluation, keyed by the pair
// (trace fingerprint, options fingerprint).  Each entry file serializes the
// full `DesignPoint` vector and Pareto front produced by explore_generators
// for that key, with doubles stored as exact IEEE-754 bit patterns so a
// cache round trip reproduces reports byte-for-byte.
//
// Robustness contract (see docs/cache-format.md for the format spec):
//  * Writes are atomic: entry files are written to a temp name and renamed;
//    index lines are appended in a single write.  Readers never observe a
//    half-written entry.
//  * Corruption tolerance: a malformed index line, a truncated or
//    bit-flipped entry file, a payload replaced by a non-file (directory,
//    FIFO), or an index/entry version mismatch degrades to a cache miss —
//    load never throws for bad cache content and store never corrupts
//    existing entries.
//  * Concurrent access: multiple processes may load from and store into the
//    same directory concurrently.  Duplicate index lines are deduplicated on
//    load (entries for a key are immutable, so every writer stores the same
//    payload).  The maintenance operations (compact, prune, merge) are the
//    exception: they rewrite the index and delete files, so they assume no
//    concurrent writer.
//
// Determinism contract: load_matching returns entries sorted by key, entry
// serialization is canonical, and compact/prune/merge all reduce a directory
// to one canonical form (sorted index, combined metadata, exactly one file
// per surviving entry), so compacting merged shard caches and merging
// compacted shard caches produce byte-identical directories.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"

namespace addm::core {

/// Identifies one cached evaluation: the trace fingerprint (geometry +
/// address sequence, names excluded) and the options fingerprint (every
/// ExploreOptions field, technology library included).
struct EvalCacheKey {
  std::uint64_t trace_hash = 0;
  std::uint64_t options_hash = 0;
  bool operator==(const EvalCacheKey&) const = default;
};

/// One cached evaluation: the design points explore_generators produced for
/// the key, in candidate order, plus the Pareto-front indices.
struct EvalCacheEntry {
  EvalCacheKey key;
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;
};

/// Per-entry access metadata carried by v2 index records.  Every field is
/// input-determined — no timestamps — so eviction decisions derived from it
/// are a pure function of cache contents.
struct EvalCacheMeta {
  /// Insertion generation: all entries flushed by one store_batch share
  /// 1 + the highest generation already in the index.  0 = unknown (legacy
  /// v1 record or adopted orphan), which prune treats as oldest.
  std::uint64_t generation = 0;
  /// Accumulated warm-start hits recorded by record_hits (sum of every
  /// `hit` record plus the hits field of every `entry` record for the key).
  std::uint64_t hits = 0;
  /// Payload (.entry file) size in bytes as recorded at store/compact time;
  /// 0 = unknown (legacy v1 record).
  std::uint64_t bytes = 0;
};

/// One combined per-key index record (duplicate lines already folded:
/// hits summed, generation min'd over non-zero values, bytes max'd).
struct EvalCacheRecord {
  EvalCacheKey key;
  EvalCacheMeta meta;
};

/// Counters reported by load operations.  `skipped` covers everything the
/// robustness contract tolerates: malformed index lines, missing, truncated,
/// corrupt, or version-mismatched entry files.
struct EvalCacheLoadStats {
  std::size_t loaded = 0;
  std::size_t skipped = 0;
};

/// On-disk index format version.  Version 2 added per-entry access metadata
/// (`entry` records grew generation/hits/bytes fields and `hit` records were
/// introduced); readers still accept version-1 indexes with default
/// metadata, and writers append records in the index's own version.  Any
/// *newer* version is treated as an empty cache by readers and refused by
/// writers and maintenance.
inline constexpr int kEvalCacheFormatVersion = 2;

/// On-disk entry-file format version.  Unchanged by the v2 index bump:
/// entry payloads written by v1 remain byte-valid, which is what lets old
/// caches warm-start new binaries.  Bump only when the entry grammar below
/// changes.
inline constexpr int kEvalCacheEntryVersion = 1;

/// Canonical text serialization of one entry (versioned, checksummed).
/// Byte-stable for equal entries; the exact grammar is docs/cache-format.md.
std::string serialize_eval_entry(const EvalCacheEntry& entry);

/// Parses `serialize_eval_entry` output.  Returns false — never throws — on
/// any malformation: wrong version, syntax error, checksum mismatch, or a
/// truncated payload.
bool parse_eval_entry(const std::string& text, EvalCacheEntry& out);

/// Handle to one cache directory.  The handle itself holds no state beyond
/// the path: every operation re-reads the directory, so handles are cheap
/// and safe to use from multiple threads as long as each call site tolerates
/// concurrent writers (the format guarantees they can).
class EvalCacheDir {
 public:
  /// Binds the handle to `dir`.  The directory is created lazily on the
  /// first store(), so constructing a handle for a read-only or missing
  /// path is valid (loads simply return nothing).
  explicit EvalCacheDir(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Loads every valid entry listed in the index, sorted by key.  Invalid
  /// content is counted in `stats->skipped` and otherwise ignored.
  std::vector<EvalCacheEntry> load_all(EvalCacheLoadStats* stats = nullptr) const;

  /// Like load_all but keeps only entries whose options hash equals
  /// `options_hash` (entries for other option sets are not counted as
  /// skipped — they are simply out of scope).
  std::vector<EvalCacheEntry> load_matching(std::uint64_t options_hash,
                                            EvalCacheLoadStats* stats = nullptr) const;

  /// Probes one key directly (the entry filename is derived from it), so
  /// readers that already know their keys pay O(1) per lookup instead of
  /// scanning the index.  Returns false — a plain miss — when the entry is
  /// absent, damaged, replaced by a non-file, or version-mismatched.
  bool load_entry(const EvalCacheKey& key, EvalCacheEntry& out) const;

  /// Combined per-key index records, sorted by key.  Pure index scan: the
  /// payload files are not opened, so recorded metadata may describe dead
  /// entries.  `index_damage` (optional) counts tolerated malformed lines.
  std::vector<EvalCacheRecord> read_records(std::size_t* index_damage = nullptr) const;

  /// Atomically writes the entry file (temp + rename), then appends one
  /// index line.  Returns false on I/O failure; the cache is best-effort,
  /// so callers may ignore the result.  Storing a key twice is harmless.
  bool store(const EvalCacheEntry& entry);

  /// Stores a batch of entries under ONE insertion generation (1 + the
  /// highest generation already indexed), writing payloads atomically and
  /// appending all index lines in a single write, in key order.  Returns
  /// the number of entries indexed (0 when the index append fails or the
  /// directory carries a foreign-version index).
  std::size_t store_batch(const std::vector<EvalCacheEntry>& entries);

  /// Appends `hit` records crediting warm-start hits to existing entries
  /// (keys without an index record are silently dropped — a hit on an
  /// entry pruned by a concurrent maintenance pass must not resurrect it).
  /// Version-2 indexes only; returns false when nothing could be recorded.
  bool record_hits(const std::vector<std::pair<EvalCacheKey, std::uint64_t>>& hits);

  /// Result of the maintenance operations below.
  struct MaintenanceStats {
    std::size_t kept = 0;          ///< entries in the canonical result
    std::size_t dropped = 0;       ///< index keys without any valid payload
    std::size_t adopted = 0;       ///< valid orphan payloads re-indexed
    std::size_t evicted = 0;       ///< valid entries removed by the budget
    std::size_t files_removed = 0; ///< unreferenced/stale files deleted
    std::uint64_t bytes_kept = 0;  ///< total payload bytes of kept entries
    bool ok = true;                ///< false on refusal or index-write failure
  };

  /// Rewrites the directory into canonical form: drops dead and corrupt
  /// index keys, folds duplicate records (hits summed, generation min'd),
  /// re-indexes valid orphan payload files, rewrites payloads whose bytes
  /// are not canonical, atomically replaces the index (sorted by key), and
  /// deletes every file the new index does not reference (corrupt payloads,
  /// stale temp files).  Idempotent byte-for-byte; upgrades v1 indexes to
  /// the current version.  Refuses (ok=false, directory untouched) when the
  /// index carries a future version.  Assumes no concurrent writer.
  MaintenanceStats compact();

  /// compact() plus budget enforcement: evicts entries in deterministic
  /// priority order — ascending (hits, generation, key), i.e. least-hit
  /// first, then oldest generation, then smallest key — until at most
  /// `max_entries` remain and their payload bytes total at most
  /// `max_bytes`.  UINT64_MAX = unlimited.  Assumes no concurrent writer.
  MaintenanceStats prune(std::uint64_t max_entries, std::uint64_t max_bytes);

  /// Cheap directory statistics: one index scan plus one directory listing,
  /// no checksum validation (that is verify()).  Every field is a pure
  /// function of the directory contents.
  struct DirStats {
    int index_version = 0;               ///< 0 = missing or unreadable header
    std::size_t entries = 0;             ///< unique indexed keys
    std::size_t payload_files = 0;       ///< key-named .entry files present
    std::size_t missing_payloads = 0;    ///< indexed keys without a file
    std::size_t orphan_payloads = 0;     ///< key-named files not indexed
    std::size_t stale_files = 0;         ///< any other file (temps, junk)
    std::size_t index_damage = 0;        ///< malformed index lines skipped
    std::uint64_t recorded_bytes = 0;    ///< sum of recorded entry sizes
    std::uint64_t payload_bytes = 0;     ///< sum of actual file sizes
    std::uint64_t hits = 0;              ///< total recorded hits
    std::uint64_t max_generation = 0;    ///< newest insertion generation
  };
  DirStats stats() const;

  /// Full checksum validation of every indexed payload plus an orphan scan.
  /// Never throws and never modifies the directory; `clean()` is the
  /// "nothing for compact to do" predicate.
  struct VerifyStats {
    std::size_t valid = 0;            ///< indexed entries that parse + match
    std::size_t missing = 0;          ///< indexed keys without a payload file
    std::size_t corrupt = 0;          ///< payloads failing parse or key match
    std::size_t orphans = 0;          ///< valid payloads missing an index record
    std::size_t orphan_corrupt = 0;   ///< unindexed payloads that do not parse
    std::size_t stale_files = 0;      ///< temp/non-entry files present
    std::size_t index_damage = 0;     ///< malformed index lines skipped
    bool clean() const {
      return missing == 0 && corrupt == 0 && orphans == 0 &&
             orphan_corrupt == 0 && stale_files == 0 && index_damage == 0;
    }
  };
  VerifyStats verify() const;

  /// Result of merge(): `copied` entries were written into the destination,
  /// `failed` could not be (destination I/O errors — unwritable directory,
  /// full disk).  Invalid *source* entries are neither: they are ordinary
  /// skipped damage, exactly as a load would treat them.
  struct MergeStats {
    std::size_t copied = 0;
    std::size_t failed = 0;
  };

  /// Merges every valid entry of `src` into `dst` and canonicalizes the
  /// result (same rewrite as compact(), so merge output is already
  /// compacted).  Metadata for keys present on both sides combines
  /// commutatively — hits sum, generations take the minimum — which makes
  /// the merged directory a pure function of the source *set*: merging in
  /// any order, or compacting before instead of after, yields byte-identical
  /// directories.  Assumes no concurrent writer on `dst`.
  static MergeStats merge(const std::string& dst, const std::string& src);

 private:
  std::string dir_;
};

/// Fixed-order JSON rendering of DirStats — the exact bytes emitted by
/// `addm_cache stats --json` and embedded in the serve daemon's
/// `admin stats` reply (golden-checked against
/// tests/golden/cache_stats_empty.json).  Field order and formatting are
/// part of the format.
std::string eval_cache_stats_json(const EvalCacheDir::DirStats& s);

}  // namespace addm::core
