// Persistent (on-disk) evaluation cache for the batch explorer.
//
// A cache directory holds one append-friendly index (`index.txt`) plus one
// entry file per cached evaluation, keyed by the pair
// (trace fingerprint, options fingerprint).  Each entry file serializes the
// full `DesignPoint` vector and Pareto front produced by explore_generators
// for that key, with doubles stored as exact IEEE-754 bit patterns so a
// cache round trip reproduces reports byte-for-byte.
//
// Robustness contract (see docs/cache-format.md for the format spec):
//  * Writes are atomic: entry files are written to a temp name and renamed;
//    index lines are appended in a single write.  Readers never observe a
//    half-written entry.
//  * Corruption tolerance: a malformed index line, a truncated or
//    bit-flipped entry file, or an index/entry version mismatch degrades to
//    a cache miss — load never throws for bad cache content and store never
//    corrupts existing entries.
//  * Concurrent access: multiple processes may load from and store into the
//    same directory concurrently.  Duplicate index lines are deduplicated on
//    load (entries for a key are immutable, so every writer stores the same
//    payload).
//
// Determinism contract: load_matching returns entries sorted by key, and
// entry serialization is canonical, so merging N shard caches produces a
// directory whose loaded contents are independent of merge order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"

namespace addm::core {

/// Identifies one cached evaluation: the trace fingerprint (geometry +
/// address sequence, names excluded) and the options fingerprint (every
/// ExploreOptions field, technology library included).
struct EvalCacheKey {
  std::uint64_t trace_hash = 0;
  std::uint64_t options_hash = 0;
  bool operator==(const EvalCacheKey&) const = default;
};

/// One cached evaluation: the design points explore_generators produced for
/// the key, in candidate order, plus the Pareto-front indices.
struct EvalCacheEntry {
  EvalCacheKey key;
  std::vector<DesignPoint> points;
  std::vector<std::size_t> pareto;
};

/// Counters reported by load operations.  `skipped` covers everything the
/// robustness contract tolerates: malformed index lines, missing, truncated,
/// corrupt, or version-mismatched entry files.
struct EvalCacheLoadStats {
  std::size_t loaded = 0;
  std::size_t skipped = 0;
};

/// On-disk format version.  Bump when the entry serialization or index
/// layout changes; readers treat any other version as an empty cache.
inline constexpr int kEvalCacheFormatVersion = 1;

/// Canonical text serialization of one entry (versioned, checksummed).
/// Byte-stable for equal entries; the exact grammar is docs/cache-format.md.
std::string serialize_eval_entry(const EvalCacheEntry& entry);

/// Parses `serialize_eval_entry` output.  Returns false — never throws — on
/// any malformation: wrong version, syntax error, checksum mismatch, or a
/// truncated payload.
bool parse_eval_entry(const std::string& text, EvalCacheEntry& out);

/// Handle to one cache directory.  The handle itself holds no state beyond
/// the path: every operation re-reads the directory, so handles are cheap
/// and safe to use from multiple threads as long as each call site tolerates
/// concurrent writers (the format guarantees they can).
class EvalCacheDir {
 public:
  /// Binds the handle to `dir`.  The directory is created lazily on the
  /// first store(), so constructing a handle for a read-only or missing
  /// path is valid (loads simply return nothing).
  explicit EvalCacheDir(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Loads every valid entry listed in the index, sorted by key.  Invalid
  /// content is counted in `stats->skipped` and otherwise ignored.
  std::vector<EvalCacheEntry> load_all(EvalCacheLoadStats* stats = nullptr) const;

  /// Like load_all but keeps only entries whose options hash equals
  /// `options_hash` (entries for other option sets are not counted as
  /// skipped — they are simply out of scope).
  std::vector<EvalCacheEntry> load_matching(std::uint64_t options_hash,
                                            EvalCacheLoadStats* stats = nullptr) const;

  /// Probes one key directly (the entry filename is derived from it), so
  /// readers that already know their keys pay O(1) per lookup instead of
  /// scanning the index.  Returns false — a plain miss — when the entry is
  /// absent, damaged, or version-mismatched.
  bool load_entry(const EvalCacheKey& key, EvalCacheEntry& out) const;

  /// Atomically writes the entry file (temp + rename), then appends one
  /// index line.  Returns false on I/O failure; the cache is best-effort,
  /// so callers may ignore the result.  Storing a key twice is harmless.
  bool store(const EvalCacheEntry& entry);

  /// Result of merge(): `copied` entries were written into the destination,
  /// `failed` could not be (destination I/O errors — unwritable directory,
  /// full disk).  Invalid *source* entries are neither: they are ordinary
  /// skipped damage, exactly as a load would treat them.
  struct MergeStats {
    std::size_t copied = 0;
    std::size_t failed = 0;
  };

  /// Copies every valid entry of `src` that `dst` does not already index
  /// into `dst`, streaming one entry at a time (bounded memory, and the
  /// canonical on-disk bytes are copied verbatim — no re-serialization).
  /// Merge order is irrelevant to the resulting cache contents.
  static MergeStats merge(const std::string& dst, const std::string& src);

 private:
  std::string dir_;
};

}  // namespace addm::core
