// Unified two-level minimization entry point.
//
// The synthesis layer (synth/fsm, core/cntag) used to call logic::isop
// directly; this dispatcher routes an incompletely specified function to
// the right minimizer:
//  * Isop      — the dense Minato-Morreale recursion (the historical
//                default; exponential in variables but exact-quality on
//                the small functions the default pipeline produces),
//  * Exact     — Quine-McCluskey + branch-and-bound (guaranteed minimum
//                cube count; n <= 12),
//  * Espresso  — the cube-list heuristic (logic/espresso.hpp), whose cost
//                scales with cube count rather than 2^n,
//  * Auto      — Isop below `heuristic_min_vars` variables, Espresso at or
//                above it.
//
// Determinism contract: the default MinimizeOptions routes every function
// through Isop, byte-identically to the pre-dispatcher behavior — so
// default-options exploration fingerprints, reports, and persisted
// eval_cache directories stay pinned.  Non-default options are
// output-affecting and are hashed by core::options_fingerprint (only when
// non-default, following the verify_front pattern).
#pragma once

#include "logic/cube.hpp"
#include "logic/truth_table.hpp"

namespace addm::logic {

enum class MinimizerAlgo {
  Isop,      ///< dense ISOP recursion (historical default)
  Exact,     ///< Quine-McCluskey exact minimum (n <= 12)
  Espresso,  ///< cube-list expand/irredundant/reduce heuristic
  Auto,      ///< Isop for small functions, Espresso above the threshold
};

/// Default Auto crossover: at 9+ variables the dense recursion's 2^n
/// footprint starts to dominate FSM elaboration (ISSUE 3 profile), while
/// the cube-list heuristic keeps scaling with the state count.
inline constexpr int kDefaultHeuristicMinVars = 9;

struct MinimizeOptions {
  MinimizerAlgo algo = MinimizerAlgo::Isop;
  /// Auto only: functions of at least this many variables use Espresso.
  int heuristic_min_vars = kDefaultHeuristicMinVars;

  bool operator==(const MinimizeOptions&) const = default;
};

/// Minimizes onset_lower <= f <= onset_upper with the selected algorithm.
/// Requires matching variable counts and onset_lower.implies(onset_upper);
/// throws std::invalid_argument otherwise (uniformly, whichever backend is
/// selected).  Deterministic: a pure function of (L, U, opt).
Cover minimize(const TruthTable& onset_lower, const TruthTable& onset_upper,
               const MinimizeOptions& opt = {});

/// Completely specified convenience overload.
Cover minimize(const TruthTable& f, const MinimizeOptions& opt = {});

/// The backend `minimize` would use for a function of `num_vars` variables
/// under `opt` (never returns Auto).  Exposed so reports, benches, and docs
/// can state the policy.
MinimizerAlgo selected_minimizer(int num_vars, const MinimizeOptions& opt);

/// Stable lowercase name ("isop", "exact", "espresso", "auto") — the CLI
/// spelling of `--minimizer` values.
const char* minimizer_name(MinimizerAlgo algo);

}  // namespace addm::logic
