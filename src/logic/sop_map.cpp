#include "logic/sop_map.hpp"

#include <stdexcept>
#include <vector>

namespace addm::logic {

using netlist::NetId;
using netlist::NetlistBuilder;

NetId map_cover(NetlistBuilder& b, const Cover& cover, std::span<const NetId> inputs) {
  std::vector<NetId> cube_nets;
  cube_nets.reserve(cover.cubes.size());
  for (const Cube& c : cover.cubes) {
    std::vector<NetId> lits;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (!(c.mask & (1u << k))) continue;
      lits.push_back((c.polarity & (1u << k)) ? inputs[k] : b.inv(inputs[k]));
    }
    if (c.mask >> inputs.size())
      throw std::invalid_argument("map_cover: cube uses a variable beyond the input span");
    cube_nets.push_back(b.and_tree(lits));
  }
  return b.or_tree(cube_nets);
}

}  // namespace addm::logic
