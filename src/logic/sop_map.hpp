// Technology mapping of two-level covers onto the gate library.
//
// Each cube becomes a balanced AND2 tree over its literals; the cover output
// is a balanced OR2 tree over the cube outputs. Whether structurally equal
// subtrees are shared between cubes/outputs is controlled by the builder's
// sharing flag — the knob that distinguishes "flat" from "hashed" synthesis
// styles (see DESIGN.md).
#pragma once

#include <span>

#include "logic/cube.hpp"
#include "netlist/builder.hpp"

namespace addm::logic {

/// Maps `cover` over the given input nets (inputs[k] carries variable x_k).
/// Returns the net computing the cover. Inverters for negative literals are
/// always shared (a flat flow still shares input inverters).
netlist::NetId map_cover(netlist::NetlistBuilder& b, const Cover& cover,
                         std::span<const netlist::NetId> inputs);

}  // namespace addm::logic
