#include "logic/espresso.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>

namespace addm::logic {

namespace {

struct CubeKey {
  std::size_t operator()(const Cube& c) const {
    return std::hash<std::uint64_t>()((std::uint64_t{c.mask} << 32) | c.polarity);
  }
};

bool canonical_less(const Cube& a, const Cube& b) {
  if (a.mask != b.mask) return a.mask < b.mask;
  return a.polarity < b.polarity;
}

/// Minterms of `t` as a vector, by word-at-a-time bit scan (one linear pass
/// over the dense table; everything downstream works on the resulting list).
std::vector<std::uint32_t> minterm_list(const TruthTable& t) {
  std::vector<std::uint32_t> out;
  for (std::uint64_t m = 0; m < t.num_minterms_capacity(); ++m)
    if (t.get(m)) out.push_back(static_cast<std::uint32_t>(m));
  return out;
}

/// a and b intersect iff their common fixed literals agree.
bool cubes_intersect(const Cube& a, const Cube& b) {
  return ((a.polarity ^ b.polarity) & a.mask & b.mask) == 0;
}

/// Cofactor of a cube list with respect to literal x_v = val: cubes
/// conflicting with the literal drop out, the rest lose the variable.
std::vector<Cube> cofactor_cubes(const std::vector<Cube>& cubes, int v, bool val) {
  const std::uint32_t bit = 1u << v;
  std::vector<Cube> out;
  out.reserve(cubes.size());
  for (const Cube& c : cubes) {
    if (c.mask & bit) {
      const bool pol = (c.polarity & bit) != 0;
      if (pol != val) continue;
    }
    Cube r = c;
    r.mask &= ~bit;
    r.polarity &= r.mask;
    out.push_back(r);
  }
  return out;
}

bool tautology_rec(std::vector<Cube> cubes) {
  for (;;) {
    if (cubes.empty()) return false;
    std::uint32_t any_mask = 0;
    for (const Cube& c : cubes) {
      if (c.mask == 0) return true;  // universe cube
      any_mask |= c.mask;
    }
    // Unate reduction: if the cover is unate in x_v, minterms on the
    // unrepresented polarity of x_v are reachable only through cubes
    // independent of x_v — the cover is a tautology iff that subcover is.
    std::uint32_t pos = 0, neg = 0;
    for (const Cube& c : cubes) {
      pos |= c.mask & c.polarity;
      neg |= c.mask & ~c.polarity;
    }
    const std::uint32_t unate = any_mask & ~(pos & neg);
    if (unate != 0) {
      std::vector<Cube> reduced;
      reduced.reserve(cubes.size());
      for (const Cube& c : cubes)
        if ((c.mask & unate) == 0) reduced.push_back(c);
      if (reduced.size() == cubes.size()) return false;  // defensive; unreachable
      cubes = std::move(reduced);
      continue;
    }
    // Binate split on the most-contested variable (ties to the lowest
    // index, keeping the recursion deterministic).
    int best_v = -1;
    int best_count = -1;
    for (int v = 0; v < 24; ++v) {
      if (!(any_mask & (1u << v))) continue;
      int count = 0;
      for (const Cube& c : cubes)
        if (c.mask & (1u << v)) ++count;
      if (count > best_count) {
        best_count = count;
        best_v = v;
      }
    }
    return tautology_rec(cofactor_cubes(cubes, best_v, false)) &&
           tautology_rec(cofactor_cubes(cubes, best_v, true));
  }
}

/// Cost of a cover for the improvement loop: fewer cubes first, then fewer
/// literals.
std::pair<std::size_t, int> cover_cost(const std::vector<Cube>& cubes) {
  int literals = 0;
  for (const Cube& c : cubes) literals += std::popcount(c.mask);
  return {cubes.size(), literals};
}

/// EXPAND: grow each cube to a prime-like maximal cube by dropping literals
/// one at a time (ascending variable order, deterministic); then drop cubes
/// contained in an earlier expanded cube, deduped through a cube hash set.
///
/// Dropping literal x_v is legal iff the flipped half-cube (the minterms the
/// expansion would add) stays inside the upper bound.  Two equivalent checks
/// with very different costs are available, and each literal test picks the
/// cheaper one: enumerating the 2^k minterms of the half-cube against the
/// dense table (k = current free-variable count), or scanning the offset
/// minterm list for one the expanded cube would swallow.  Sparse functions
/// (many offset minterms, small final cubes) stay on the dense check;
/// near-tautologies (huge cubes, few offset minterms) stay on the scan.
void expand_cubes(std::vector<Cube>& cover, const std::vector<std::uint32_t>& offset,
                  const TruthTable& upper, std::uint32_t full_mask) {
  std::vector<Cube> result;
  result.reserve(cover.size());
  std::unordered_set<Cube, CubeKey> seen;
  for (const Cube& orig : cover) {
    // Cheap skip: cubes already swallowed by an accepted expansion.
    bool swallowed = false;
    for (const Cube& big : result)
      if (big.contains(orig)) {
        swallowed = true;
        break;
      }
    if (swallowed) continue;

    std::uint32_t mask = orig.mask;
    const std::uint32_t pol = orig.polarity;
    for (int v = 0; v < 24; ++v) {
      const std::uint32_t bit = 1u << v;
      if (!(mask & bit)) continue;
      const std::uint32_t next_mask = mask & ~bit;
      const std::uint32_t free = full_mask & ~mask;
      bool ok = true;
      if ((std::uint64_t{1} << std::popcount(free)) <= offset.size()) {
        // Dense check: every minterm of the flipped half must be in U.
        const std::uint32_t base = (pol ^ bit) & mask;
        std::uint32_t s = 0;
        do {
          if (!upper.get(base | s)) {
            ok = false;
            break;
          }
          s = (s - free) & free;
        } while (s != 0);
      } else {
        // Offset scan: the expanded cube must not cover any offset minterm.
        for (std::uint32_t r : offset)
          if (((pol ^ r) & next_mask) == 0) {
            ok = false;
            break;
          }
      }
      if (ok) mask = next_mask;
    }

    Cube expanded;
    expanded.mask = mask & full_mask;
    expanded.polarity = pol & expanded.mask;
    if (seen.insert(expanded).second) result.push_back(expanded);
  }

  // Single-cube containment sweep over the (much smaller) expanded list;
  // the list is deduped, so containment is never mutual.
  std::vector<Cube> kept;
  kept.reserve(result.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < result.size(); ++j)
      if (i != j && result[j].contains(result[i])) {
        contained = true;
        break;
      }
    if (!contained) kept.push_back(result[i]);
  }
  cover = std::move(kept);
}

/// IRREDUNDANT: drop every cube whose minterms are covered by the rest of
/// the cover plus the don't-care cubes, tested with the cofactor-based
/// tautology check.  Cubes are visited most-specific first (descending
/// literal count, canonical tie-break) so large cubes survive.
void irredundant_cubes(std::vector<Cube>& cover, const std::vector<Cube>& dc_cubes) {
  std::vector<std::size_t> order(cover.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int la = std::popcount(cover[a].mask), lb = std::popcount(cover[b].mask);
    if (la != lb) return la > lb;
    return canonical_less(cover[a], cover[b]);
  });

  std::vector<char> removed(cover.size(), 0);
  for (std::size_t idx : order) {
    const Cube& c = cover[idx];
    // Cofactor the rest of the cover (plus don't-cares) w.r.t. c; c is
    // redundant iff that cofactor is a tautology.
    std::vector<Cube> rest;
    rest.reserve(cover.size() + dc_cubes.size());
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (j == idx || removed[j]) continue;
      if (cubes_intersect(cover[j], c)) rest.push_back(cover[j]);
    }
    for (const Cube& d : dc_cubes)
      if (cubes_intersect(d, c)) rest.push_back(d);
    // Cofactor w.r.t. the cube: drop c's fixed literals from every survivor.
    for (Cube& r : rest) {
      r.mask &= ~c.mask;
      r.polarity &= r.mask;
    }
    if (tautology_rec(std::move(rest))) removed[idx] = 1;
  }

  std::vector<Cube> kept;
  kept.reserve(cover.size());
  for (std::size_t i = 0; i < cover.size(); ++i)
    if (!removed[i]) kept.push_back(cover[i]);
  cover = std::move(kept);
}

/// REDUCE: shrink each cube to the supercube of the onset minterms only it
/// covers, freeing the next expand pass to grow it in a different
/// direction.  Coverage counts are updated as cubes shrink, so the pass is
/// order-dependent but deterministic (canonical cover order).
bool reduce_cubes(std::vector<Cube>& cover, const std::vector<std::uint32_t>& onset,
                  std::uint32_t full_mask) {
  std::vector<int> count(onset.size(), 0);
  // coverers[i] enumerated lazily: counts suffice.
  for (std::size_t i = 0; i < onset.size(); ++i)
    for (const Cube& c : cover)
      if (c.covers(onset[i])) ++count[i];

  bool changed = false;
  for (Cube& c : cover) {
    bool any = false;
    std::uint32_t sup_mask = full_mask;
    std::uint32_t sup_pol = 0;
    for (std::size_t i = 0; i < onset.size(); ++i) {
      if (count[i] != 1 || !c.covers(onset[i])) continue;
      if (!any) {
        sup_pol = onset[i];
        any = true;
      } else {
        sup_mask &= ~(sup_pol ^ onset[i]);
      }
    }
    if (!any) continue;  // covered elsewhere entirely; leave for irredundant
    Cube shrunk;
    shrunk.mask = sup_mask & full_mask;
    shrunk.polarity = sup_pol & shrunk.mask;
    if (shrunk == c) continue;
    // Minterms c loses must already be covered elsewhere (count >= 2).
    for (std::size_t i = 0; i < onset.size(); ++i)
      if (c.covers(onset[i]) && !shrunk.covers(onset[i])) --count[i];
    c = shrunk;
    changed = true;
  }
  return changed;
}

}  // namespace

bool cover_tautology(const std::vector<Cube>& cubes, int num_vars) {
  (void)num_vars;
  return tautology_rec(cubes);
}

bool cube_contained_in_cover(const Cube& c, const std::vector<Cube>& cover,
                             int num_vars) {
  std::vector<Cube> cof;
  cof.reserve(cover.size());
  for (const Cube& o : cover) {
    if (!cubes_intersect(o, c)) continue;
    Cube r = o;
    r.mask &= ~c.mask;
    r.polarity &= r.mask;
    cof.push_back(r);
  }
  return cover_tautology(cof, num_vars);
}

Cover espresso(const TruthTable& onset_lower, const TruthTable& onset_upper) {
  if (onset_lower.num_vars() != onset_upper.num_vars())
    throw std::invalid_argument("espresso: mismatched variable counts");
  if (!onset_lower.implies(onset_upper))
    throw std::invalid_argument("espresso: lower bound not contained in upper bound");

  const int n = onset_lower.num_vars();
  const std::uint32_t full_mask =
      n >= 32 ? ~0u : ((std::uint32_t{1} << n) - 1);

  if (onset_lower.is_zero()) return {};
  if (onset_upper.is_ones() && onset_lower.is_ones())
    return Cover{{Cube::universe()}};

  const std::vector<std::uint32_t> onset = minterm_list(onset_lower);
  const std::vector<std::uint32_t> offset = minterm_list(~onset_upper);
  if (offset.empty()) return Cover{{Cube::universe()}};

  std::vector<Cube> dc_cubes;
  {
    const TruthTable dc = onset_upper.diff(onset_lower);
    for (std::uint32_t m : minterm_list(dc)) dc_cubes.push_back({full_mask, m});
  }

  // Initial cover: the onset minterms themselves.
  std::vector<Cube> cover;
  cover.reserve(onset.size());
  for (std::uint32_t m : onset) cover.push_back({full_mask, m});

  expand_cubes(cover, offset, onset_upper, full_mask);
  irredundant_cubes(cover, dc_cubes);
  std::sort(cover.begin(), cover.end(), canonical_less);

  std::vector<Cube> best = cover;
  auto best_cost = cover_cost(best);
  constexpr int kMaxPasses = 4;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    // A no-op reduce means expand+irredundant would reproduce the same
    // cover — the loop has converged.
    if (!reduce_cubes(cover, onset, full_mask)) break;
    expand_cubes(cover, offset, onset_upper, full_mask);
    irredundant_cubes(cover, dc_cubes);
    std::sort(cover.begin(), cover.end(), canonical_less);
    const auto cost = cover_cost(cover);
    if (cost >= best_cost) break;
    best = cover;
    best_cost = cost;
  }

  // Cheap internal certification, all cube-count-proportional: every onset
  // minterm covered, no cube touching the offset.
  for (std::uint32_t m : onset) {
    bool covered = false;
    for (const Cube& c : best)
      if (c.covers(m)) {
        covered = true;
        break;
      }
    if (!covered) throw std::logic_error("espresso: onset minterm left uncovered");
  }
  for (const Cube& c : best)
    for (std::uint32_t r : offset)
      if (c.covers(r)) throw std::logic_error("espresso: cube escapes the upper bound");

  Cover out;
  out.cubes = std::move(best);
  return out;
}

Cover espresso(const TruthTable& f) { return espresso(f, f); }

}  // namespace addm::logic
