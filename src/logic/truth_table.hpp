// Dense truth tables over up to 24 variables, stored as 64-bit words.
//
// Bit m of the table is f(m) where variable k contributes bit k of the
// minterm index m. Tables are the workhorse of the logic-minimization layer:
// the ISOP minimizer cofactors them, and tests verify covers against them.
#pragma once

#include <cstdint>
#include <vector>

namespace addm::logic {

class TruthTable {
 public:
  /// All-zero function of `num_vars` variables (0 <= num_vars <= 24).
  explicit TruthTable(int num_vars);

  static TruthTable zeros(int num_vars) { return TruthTable(num_vars); }
  static TruthTable ones(int num_vars);
  /// The projection function f = x_k.
  static TruthTable var(int num_vars, int k);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms_capacity() const { return std::uint64_t{1} << num_vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  bool is_zero() const;
  bool is_ones() const;
  /// Number of minterms where f = 1.
  std::uint64_t count_ones() const;
  bool depends_on(int k) const;
  /// Highest variable index the function depends on, or -1 if constant.
  int top_var() const;

  /// Cofactor with respect to x_k = val; result no longer depends on x_k.
  TruthTable cofactor(int k, bool val) const;

  // Pointwise operators.
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  TruthTable operator~() const;
  /// this & ~o ("and-not"), the set difference used by ISOP.
  TruthTable diff(const TruthTable& o) const;

  bool operator==(const TruthTable& o) const = default;

  /// True if this implies o (this <= o pointwise).
  bool implies(const TruthTable& o) const;

 private:
  int num_vars_;
  std::vector<std::uint64_t> words_;
  std::uint64_t live_mask(std::size_t word_index) const;
  void normalize();
};

}  // namespace addm::logic
