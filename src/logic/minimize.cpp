#include "logic/minimize.hpp"

#include <stdexcept>

#include "logic/espresso.hpp"
#include "logic/isop.hpp"
#include "logic/qmc.hpp"

namespace addm::logic {

MinimizerAlgo selected_minimizer(int num_vars, const MinimizeOptions& opt) {
  if (opt.algo != MinimizerAlgo::Auto) return opt.algo;
  return num_vars >= opt.heuristic_min_vars ? MinimizerAlgo::Espresso
                                            : MinimizerAlgo::Isop;
}

const char* minimizer_name(MinimizerAlgo algo) {
  switch (algo) {
    case MinimizerAlgo::Isop:
      return "isop";
    case MinimizerAlgo::Exact:
      return "exact";
    case MinimizerAlgo::Espresso:
      return "espresso";
    case MinimizerAlgo::Auto:
      return "auto";
  }
  return "?";
}

Cover minimize(const TruthTable& onset_lower, const TruthTable& onset_upper,
               const MinimizeOptions& opt) {
  // Validate once here so every backend rejects bad bounds with the same
  // message shape, before any algorithm-specific work.
  if (onset_lower.num_vars() != onset_upper.num_vars())
    throw std::invalid_argument("minimize: mismatched variable counts");
  if (!onset_lower.implies(onset_upper))
    throw std::invalid_argument("minimize: lower bound not contained in upper bound");

  switch (selected_minimizer(onset_lower.num_vars(), opt)) {
    case MinimizerAlgo::Exact:
      return minimize_exact(onset_lower, onset_upper);
    case MinimizerAlgo::Espresso:
      return espresso(onset_lower, onset_upper);
    case MinimizerAlgo::Isop:
    case MinimizerAlgo::Auto:
      break;
  }
  return isop(onset_lower, onset_upper);
}

Cover minimize(const TruthTable& f, const MinimizeOptions& opt) {
  return minimize(f, f, opt);
}

}  // namespace addm::logic
