// Exact two-level minimization (Quine-McCluskey + unate covering) for small
// functions. Exponential; intended for n <= ~10 variables. Used by tests to
// certify the ISOP heuristic's quality and by callers that need a guaranteed
// minimum-cube cover (e.g. reporting how far a mapping is from optimal).
#pragma once

#include <vector>

#include "logic/cube.hpp"
#include "logic/truth_table.hpp"

namespace addm::logic {

/// All prime implicants of the incompletely specified function
/// (onset_lower <= f <= onset_upper). Throws std::invalid_argument on
/// inconsistent bounds or n > 12.
std::vector<Cube> prime_implicants(const TruthTable& onset_lower,
                                   const TruthTable& onset_upper);

/// A minimum-cube cover: every onset minterm covered, every cube inside the
/// upper bound. Exact via branch-and-bound over the prime implicants.
Cover minimize_exact(const TruthTable& onset_lower, const TruthTable& onset_upper);
Cover minimize_exact(const TruthTable& f);

}  // namespace addm::logic
