#include "logic/isop.hpp"

#include <stdexcept>

namespace addm::logic {

namespace {

// Recursive Minato-Morreale. Returns a cover C with L <= C <= U and, through
// `value_out`, the truth table of C (needed by the caller's remainder step).
Cover isop_rec(const TruthTable& L, const TruthTable& U, TruthTable& value_out) {
  const int n = L.num_vars();
  if (L.is_zero()) {
    value_out = TruthTable::zeros(n);
    return {};
  }
  // Split on the top variable either bound depends on.
  int v = L.top_var();
  const int uv = U.top_var();
  if (uv > v) v = uv;
  if (v < 0) {
    // L is a nonzero constant => L = 1, and since L <= U, U = 1.
    value_out = TruthTable::ones(n);
    return Cover{{Cube::universe()}};
  }

  const TruthTable L0 = L.cofactor(v, false), L1 = L.cofactor(v, true);
  const TruthTable U0 = U.cofactor(v, false), U1 = U.cofactor(v, true);

  // Minterms of L0 not coverable by a cube valid in both halves need x_v'.
  TruthTable val0(n), val1(n), vald(n);
  Cover c0 = isop_rec(L0.diff(U1), U0, val0);
  Cover c1 = isop_rec(L1.diff(U0), U1, val1);

  // Remainder must be covered by cubes independent of x_v.
  const TruthTable Ld = L0.diff(val0) | L1.diff(val1);
  Cover cd = isop_rec(Ld, U0 & U1, vald);

  const TruthTable xv = TruthTable::var(n, v);
  value_out = (val0.diff(xv)) | (val1 & xv) | vald;

  Cover result;
  result.cubes.reserve(c0.cubes.size() + c1.cubes.size() + cd.cubes.size());
  for (Cube c : c0.cubes) {
    c.mask |= 1u << v;  // add literal x_v'
    c.polarity &= ~(1u << v);
    result.cubes.push_back(c);
  }
  for (Cube c : c1.cubes) {
    c.mask |= 1u << v;  // add literal x_v
    c.polarity |= 1u << v;
    result.cubes.push_back(c);
  }
  for (const Cube& c : cd.cubes) result.cubes.push_back(c);
  return result;
}

}  // namespace

Cover isop(const TruthTable& onset_lower, const TruthTable& onset_upper) {
  if (onset_lower.num_vars() != onset_upper.num_vars())
    throw std::invalid_argument("isop: mismatched variable counts");
  if (!onset_lower.implies(onset_upper))
    throw std::invalid_argument("isop: lower bound not contained in upper bound");
  TruthTable value(onset_lower.num_vars());
  return isop_rec(onset_lower, onset_upper, value);
}

Cover isop(const TruthTable& f) { return isop(f, f); }

bool is_irredundant(const Cover& c, const TruthTable& onset_lower, int num_vars) {
  for (std::size_t drop = 0; drop < c.cubes.size(); ++drop) {
    Cover reduced;
    for (std::size_t i = 0; i < c.cubes.size(); ++i)
      if (i != drop) reduced.cubes.push_back(c.cubes[i]);
    if (onset_lower.implies(reduced.to_truth_table(num_vars))) return false;
  }
  return true;
}

}  // namespace addm::logic
