#include "logic/cube.hpp"

#include <bit>

namespace addm::logic {

int Cube::num_literals() const { return std::popcount(mask); }

bool Cube::contains(const Cube& other) const {
  // *this contains other iff this's literals are a subset of other's and agree
  // in polarity.
  if ((mask & other.mask) != mask) return false;
  return (polarity & mask) == (other.polarity & mask);
}

std::string Cube::to_string() const {
  if (mask == 0) return "1";
  std::string s;
  for (int k = 23; k >= 0; --k) {
    if (!(mask & (1u << k))) continue;
    if (!s.empty()) s += "·";
    s += "x" + std::to_string(k);
    if (!(polarity & (1u << k))) s += "'";
  }
  return s;
}

int Cover::num_literals() const {
  int n = 0;
  for (const Cube& c : cubes) n += c.num_literals();
  return n;
}

TruthTable Cover::to_truth_table(int num_vars) const {
  TruthTable f(num_vars);
  for (const Cube& c : cubes) {
    TruthTable t = TruthTable::ones(num_vars);
    for (int k = 0; k < num_vars; ++k) {
      if (!(c.mask & (1u << k))) continue;
      const TruthTable v = TruthTable::var(num_vars, k);
      t = (c.polarity & (1u << k)) ? (t & v) : t.diff(v);
    }
    f = f | t;
  }
  return f;
}

bool Cover::evaluate(std::uint64_t minterm) const {
  for (const Cube& c : cubes)
    if (c.covers(minterm)) return true;
  return false;
}

std::string Cover::to_string() const {
  if (cubes.empty()) return "0";
  std::string s;
  for (const Cube& c : cubes) {
    if (!s.empty()) s += " + ";
    s += c.to_string();
  }
  return s;
}

}  // namespace addm::logic
