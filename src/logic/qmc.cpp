#include "logic/qmc.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace addm::logic {

namespace {

struct CubeKey {
  std::size_t operator()(const Cube& c) const {
    return std::hash<std::uint64_t>()((std::uint64_t{c.mask} << 32) | c.polarity);
  }
};

}  // namespace

std::vector<Cube> prime_implicants(const TruthTable& L, const TruthTable& U) {
  const int n = L.num_vars();
  if (n > 12) throw std::invalid_argument("prime_implicants: too many variables");
  if (L.num_vars() != U.num_vars() || !L.implies(U))
    throw std::invalid_argument("prime_implicants: bad bounds");

  // Level 0: all minterms of the upper bound as full cubes.
  const std::uint32_t full_mask = (std::uint32_t{1} << n) - 1;
  std::unordered_set<Cube, CubeKey> current;
  for (std::uint64_t m = 0; m < U.num_minterms_capacity(); ++m)
    if (U.get(m)) current.insert(Cube{full_mask, static_cast<std::uint32_t>(m)});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::unordered_set<Cube, CubeKey> next;
    std::unordered_set<Cube, CubeKey> merged;
    const std::vector<Cube> cubes(current.begin(), current.end());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        // Merge when masks equal and polarities differ in exactly one bit.
        if (cubes[i].mask != cubes[j].mask) continue;
        const std::uint32_t diff =
            (cubes[i].polarity ^ cubes[j].polarity) & cubes[i].mask;
        if (diff == 0 || (diff & (diff - 1)) != 0) continue;
        Cube big;
        big.mask = cubes[i].mask & ~diff;
        big.polarity = cubes[i].polarity & big.mask;
        next.insert(big);
        merged.insert(cubes[i]);
        merged.insert(cubes[j]);
      }
    }
    for (const Cube& c : cubes)
      if (!merged.count(c)) primes.push_back(c);
    current = std::move(next);
  }
  return primes;
}

namespace {

// Branch-and-bound minimum unate cover. Rows: onset minterms; columns:
// candidate primes.
struct CoverSolver {
  const std::vector<Cube>* primes;
  std::vector<std::uint64_t> minterms;
  std::vector<std::vector<std::size_t>> coverers;  // per minterm: prime indices
  std::vector<std::size_t> best;
  std::vector<std::size_t> chosen;
  std::vector<char> prime_used;

  void solve(std::size_t covered_count, std::vector<char>& covered) {
    if (!best.empty() && chosen.size() >= best.size()) return;  // bound
    if (covered_count == minterms.size()) {
      best = chosen;
      return;
    }
    // Branch on the uncovered minterm with the fewest coverers.
    std::size_t pick = minterms.size();
    std::size_t fewest = SIZE_MAX;
    for (std::size_t r = 0; r < minterms.size(); ++r) {
      if (covered[r]) continue;
      if (coverers[r].size() < fewest) {
        fewest = coverers[r].size();
        pick = r;
      }
    }
    if (pick == minterms.size() || fewest == 0) return;  // uncoverable
    for (std::size_t pi : coverers[pick]) {
      if (prime_used[pi]) continue;
      prime_used[pi] = 1;
      chosen.push_back(pi);
      std::vector<std::size_t> newly;
      for (std::size_t r = 0; r < minterms.size(); ++r)
        if (!covered[r] && (*primes)[pi].covers(minterms[r])) {
          covered[r] = 1;
          newly.push_back(r);
        }
      solve(covered_count + newly.size(), covered);
      for (std::size_t r : newly) covered[r] = 0;
      chosen.pop_back();
      prime_used[pi] = 0;
    }
  }
};

}  // namespace

Cover minimize_exact(const TruthTable& L, const TruthTable& U) {
  const auto primes = prime_implicants(L, U);
  CoverSolver solver;
  solver.primes = &primes;
  for (std::uint64_t m = 0; m < L.num_minterms_capacity(); ++m)
    if (L.get(m)) solver.minterms.push_back(m);

  solver.coverers.resize(solver.minterms.size());
  for (std::size_t r = 0; r < solver.minterms.size(); ++r)
    for (std::size_t p = 0; p < primes.size(); ++p)
      if (primes[p].covers(solver.minterms[r])) solver.coverers[r].push_back(p);

  solver.prime_used.assign(primes.size(), 0);
  std::vector<char> covered(solver.minterms.size(), 0);
  solver.solve(0, covered);

  Cover result;
  for (std::size_t pi : solver.best) result.cubes.push_back(primes[pi]);
  return result;
}

Cover minimize_exact(const TruthTable& f) { return minimize_exact(f, f); }

}  // namespace addm::logic
