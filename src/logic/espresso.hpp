// Espresso-style heuristic two-level minimization over cube lists.
//
// The exact minimizer (logic/qmc) and the dense ISOP recursion (logic/isop)
// both pay 2^n in time and memory, which is what makes FSM elaboration the
// bottleneck of exploration beyond ~1k states.  This module implements the
// classic expand -> irredundant -> reduce improvement loop on *cube lists*:
// after one linear scan turns the dense bounds into minterm lists, every
// step — cube expansion against the offset, cofactor-based tautology
// checking for redundancy, cube reduction — costs a polynomial of the cube
// count, not 2^n.  The result is an irredundant cover C with L <= C <= U,
// canonically sorted so equal inputs produce byte-identical covers
// regardless of hash iteration order, thread, or host.
#pragma once

#include <vector>

#include "logic/cube.hpp"
#include "logic/truth_table.hpp"

namespace addm::logic {

/// Heuristic two-level minimization of the incompletely specified function
/// onset_lower <= f <= onset_upper.  Requires matching variable counts and
/// onset_lower.implies(onset_upper); throws std::invalid_argument otherwise.
///
/// Guarantees (enforced internally, certified exhaustively by tests):
///  * L <= C <= U — the cover is a legal implementation of the ISF,
///  * C is irredundant w.r.t. L: no single cube can be dropped,
///  * deterministic: the cover is a pure function of (L, U), returned in
///    canonical (mask, polarity)-sorted order.
Cover espresso(const TruthTable& onset_lower, const TruthTable& onset_upper);

/// Completely specified convenience overload.
Cover espresso(const TruthTable& f);

/// Cofactor-based tautology check: true iff the OR of `cubes` covers every
/// minterm over `num_vars` variables.  Recursive unate-reduction + binate
/// splitting on the cube list (the classic Espresso TAUTOLOGY procedure);
/// cost scales with the cube count, never 2^n.  Exposed for tests.
bool cover_tautology(const std::vector<Cube>& cubes, int num_vars);

/// True iff every minterm of `c` is covered by `cover` (containment via
/// tautology of the cofactor of `cover` with respect to `c`).
bool cube_contained_in_cover(const Cube& c, const std::vector<Cube>& cover,
                             int num_vars);

}  // namespace addm::logic
