// Irredundant sum-of-products synthesis (Minato-Morreale ISOP).
//
// This is the logic minimizer behind FSM/transform synthesis, standing in
// for the two-level minimization inside a 2002 synthesis flow (see
// DESIGN.md section 2). Given an incompletely specified function as a pair
// of truth tables L <= U (onset lower bound, onset|dc upper bound), it
// returns an irredundant cover C with L <= C <= U.
#pragma once

#include "logic/cube.hpp"
#include "logic/truth_table.hpp"

namespace addm::logic {

/// Minimizes an incompletely specified function. Requires L.implies(U);
/// throws std::invalid_argument otherwise.
Cover isop(const TruthTable& onset_lower, const TruthTable& onset_upper);

/// Completely specified convenience overload.
Cover isop(const TruthTable& f);

/// True if removing any single cube from `c` stops it covering `onset_lower`
/// (used by tests; ISOP output always satisfies this).
bool is_irredundant(const Cover& c, const TruthTable& onset_lower, int num_vars);

}  // namespace addm::logic
