#include "logic/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace addm::logic {

namespace {
constexpr std::uint64_t kVarMask[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

std::size_t words_for(int num_vars) {
  return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}
}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 24)
    throw std::invalid_argument("TruthTable: num_vars out of range [0,24]");
  words_.assign(words_for(num_vars), 0);
}

std::uint64_t TruthTable::live_mask(std::size_t) const {
  // Only the first word can be partially live (when num_vars_ < 6).
  if (num_vars_ >= 6) return ~0ull;
  return (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
}

void TruthTable::normalize() {
  if (num_vars_ < 6) words_[0] &= live_mask(0);
}

TruthTable TruthTable::ones(int num_vars) {
  TruthTable t(num_vars);
  for (auto& w : t.words_) w = ~0ull;
  t.normalize();
  return t;
}

TruthTable TruthTable::var(int num_vars, int k) {
  if (k < 0 || k >= num_vars) throw std::invalid_argument("TruthTable::var: bad index");
  TruthTable t(num_vars);
  if (k < 6) {
    for (auto& w : t.words_) w = kVarMask[k];
  } else {
    const std::size_t stride = std::size_t{1} << (k - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i)
      if ((i / stride) & 1) t.words_[i] = ~0ull;
  }
  t.normalize();
  return t;
}

bool TruthTable::get(std::uint64_t m) const {
  return (words_[m >> 6] >> (m & 63)) & 1;
}

void TruthTable::set(std::uint64_t m, bool value) {
  if (m >= num_minterms_capacity()) throw std::out_of_range("TruthTable::set");
  if (value)
    words_[m >> 6] |= std::uint64_t{1} << (m & 63);
  else
    words_[m >> 6] &= ~(std::uint64_t{1} << (m & 63));
}

bool TruthTable::is_zero() const {
  for (auto w : words_)
    if (w) return false;
  return true;
}

bool TruthTable::is_ones() const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] != live_mask(i)) return false;
  return true;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

TruthTable TruthTable::cofactor(int k, bool val) const {
  if (k < 0 || k >= num_vars_) throw std::invalid_argument("cofactor: bad var");
  TruthTable r = *this;
  if (k < 6) {
    const int shift = 1 << k;
    const std::uint64_t hi = kVarMask[k];
    for (auto& w : r.words_) {
      if (val) {
        const std::uint64_t h = w & hi;
        w = h | (h >> shift);
      } else {
        const std::uint64_t l = w & ~hi;
        w = l | (l << shift);
      }
    }
  } else {
    const std::size_t stride = std::size_t{1} << (k - 6);
    for (std::size_t base = 0; base < r.words_.size(); base += 2 * stride)
      for (std::size_t i = 0; i < stride; ++i) {
        if (val)
          r.words_[base + i] = r.words_[base + stride + i];
        else
          r.words_[base + stride + i] = r.words_[base + i];
      }
  }
  r.normalize();
  return r;
}

bool TruthTable::depends_on(int k) const {
  return cofactor(k, false) != cofactor(k, true);
}

int TruthTable::top_var() const {
  for (int k = num_vars_ - 1; k >= 0; --k)
    if (depends_on(k)) return k;
  return -1;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TruthTable r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] &= o.words_[i];
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  TruthTable r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] |= o.words_[i];
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  TruthTable r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] ^= o.words_[i];
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r = *this;
  for (auto& w : r.words_) w = ~w;
  r.normalize();
  return r;
}

TruthTable TruthTable::diff(const TruthTable& o) const {
  TruthTable r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] &= ~o.words_[i];
  return r;
}

bool TruthTable::implies(const TruthTable& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~o.words_[i]) return false;
  return true;
}

}  // namespace addm::logic
