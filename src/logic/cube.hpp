// Cubes (product terms) and covers (sums of products) over up to 24 vars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.hpp"

namespace addm::logic {

/// A product term. Variable k appears iff bit k of `mask` is set; its
/// polarity is bit k of `polarity` (1 = positive literal). A cube covers
/// minterm m iff (m & mask) == (polarity & mask).
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t polarity = 0;

  int num_literals() const;
  bool covers(std::uint64_t minterm) const {
    return (static_cast<std::uint32_t>(minterm) & mask) == (polarity & mask);
  }
  /// True if every minterm of `other` is covered by *this.
  bool contains(const Cube& other) const;
  /// The universal cube (no literals, covers everything).
  static Cube universe() { return {}; }

  bool operator==(const Cube&) const = default;

  /// e.g. "x3'·x1" (missing vars omitted); "1" for the universal cube.
  std::string to_string() const;
};

/// A cover is an OR of cubes.
struct Cover {
  std::vector<Cube> cubes;

  int num_cubes() const { return static_cast<int>(cubes.size()); }
  int num_literals() const;

  /// Evaluates the cover into a truth table over `num_vars` variables.
  TruthTable to_truth_table(int num_vars) const;
  bool evaluate(std::uint64_t minterm) const;

  std::string to_string() const;
};

}  // namespace addm::logic
