// Two-phase cycle-accurate netlist simulator.
//
// Usage pattern per clock cycle:
//   sim.set("next", true);      // drive primary inputs
//   sim.step();                 // one rising clock edge; outputs then reflect
//                               // the post-edge state
//
// Combinational evaluation is zero-delay in topological order; flip-flops
// update synchronously from pre-edge values. All flip-flops power up at 0 —
// designs are expected to use their reset inputs, exactly as the paper's
// circuits do.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace addm::sim {

class Simulator {
 public:
  /// Throws std::invalid_argument if the netlist has a combinational loop.
  explicit Simulator(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  // --- driving inputs --------------------------------------------------------
  void set_input(netlist::NetId net, bool value);
  /// By port name; throws if the name is unknown.
  void set(std::string_view input_name, bool value);
  /// Drives inputs "<prefix>[0..]" with the bits of `value` (LSB first).
  /// Throws std::invalid_argument when `value` has bits above the bus width.
  void set_bus(std::string_view prefix, std::uint64_t value);

  // --- stepping ---------------------------------------------------------------
  /// Re-evaluates combinational logic from current inputs/state.
  void eval();
  /// eval(), clock edge, eval(). Advances one cycle.
  void step();
  /// Convenience: step `n` times with current inputs held.
  void run(std::size_t n);
  /// Clears all flip-flops to 0, restarts cycle and toggle counting, and
  /// re-evaluates (power-on state).
  void power_on_reset();

  // --- observing values ---------------------------------------------------------
  bool value(netlist::NetId net) const { return values_[net] != 0; }
  bool get(std::string_view output_name) const;
  /// Reads outputs "<prefix>[0..width)" as an integer, LSB first.
  std::uint64_t get_bus(std::string_view prefix) const;
  /// Index of the single asserted line among outputs "<prefix>[i]".
  /// nullopt if zero or more than one line is asserted (two-hot violation).
  std::optional<std::size_t> hot_index(std::string_view prefix) const;
  /// Number of asserted lines among outputs "<prefix>[i]".
  std::size_t hot_count(std::string_view prefix) const;

  std::uint64_t cycles() const { return cycles_; }

  // --- activity ------------------------------------------------------------------
  /// Starts counting per-net toggles (one count per net per step() where the
  /// settled value changed).
  void enable_toggle_counting();
  std::span<const std::uint64_t> toggles() const { return toggles_; }

 private:
  netlist::NetId find_output_checked(std::string_view name) const;
  void collect_bus(std::string_view prefix, std::vector<netlist::NetId>& nets) const;

  const netlist::Netlist* nl_;
  std::vector<std::size_t> topo_;
  std::vector<std::uint8_t> values_;    // per net
  std::vector<std::uint8_t> prev_;      // snapshot for toggle counting
  std::vector<std::uint64_t> toggles_;  // per net, empty unless enabled
  std::vector<std::size_t> seq_cells_;  // indices of flip-flop cells
  std::uint64_t cycles_ = 0;
  bool count_toggles_ = false;
};

}  // namespace addm::sim
