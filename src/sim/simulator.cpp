#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>

namespace addm::sim {

using netlist::Cell;
using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  auto order = nl.topo_order();
  if (!order) throw std::invalid_argument("Simulator: combinational loop");
  topo_ = std::move(*order);
  values_.assign(nl.num_nets(), 0);
  values_[netlist::kConst1] = 1;
  for (std::size_t i = 0; i < nl.cells().size(); ++i)
    if (is_sequential(nl.cell(i).type)) seq_cells_.push_back(i);
  eval();
}

void Simulator::set_input(NetId net, bool value) {
  if (!nl_->is_primary_input(net))
    throw std::invalid_argument("set_input: net is not a primary input");
  values_[net] = value ? 1 : 0;
}

void Simulator::set(std::string_view name, bool value) {
  const auto net = nl_->find_input(name);
  if (!net) throw std::invalid_argument("set: unknown input " + std::string(name));
  values_[*net] = value ? 1 : 0;
}

void Simulator::set_bus(std::string_view prefix, std::uint64_t value) {
  std::vector<NetId> nets;
  for (int i = 0;; ++i) {
    const auto net =
        nl_->find_input(std::string(prefix) + "[" + std::to_string(i) + "]");
    if (!net) break;
    nets.push_back(*net);
  }
  if (nets.empty())
    throw std::invalid_argument("set_bus: unknown bus " + std::string(prefix));
  // A value wider than the bus would silently lose its high bits (e.g. a
  // 10-bit address written onto an 8-bit bus); refuse — before touching any
  // bit, so a rejected call leaves the bus unchanged.
  if (nets.size() < 64 && (value >> nets.size()) != 0)
    throw std::invalid_argument("set_bus: value does not fit the " +
                                std::to_string(nets.size()) + "-bit bus " +
                                std::string(prefix));
  for (std::size_t i = 0; i < nets.size(); ++i)
    values_[nets[i]] = (value >> i) & 1;
}

void Simulator::eval() {
  for (std::size_t ci : topo_) {
    const Cell& c = nl_->cell(ci);
    const auto& in = c.inputs;
    std::uint8_t v = 0;
    switch (c.type) {
      case CellType::Inv:   v = values_[in[0]] ^ 1; break;
      case CellType::Buf:   v = values_[in[0]]; break;
      case CellType::Nand2: v = (values_[in[0]] & values_[in[1]]) ^ 1; break;
      case CellType::Nor2:  v = (values_[in[0]] | values_[in[1]]) ^ 1; break;
      case CellType::And2:  v = values_[in[0]] & values_[in[1]]; break;
      case CellType::Or2:   v = values_[in[0]] | values_[in[1]]; break;
      case CellType::Xor2:  v = values_[in[0]] ^ values_[in[1]]; break;
      case CellType::Xnor2: v = (values_[in[0]] ^ values_[in[1]]) ^ 1; break;
      case CellType::Mux2:  v = values_[in[0]] ? values_[in[2]] : values_[in[1]]; break;
      default: continue;  // sequential cells keep their Q value
    }
    values_[c.output] = v;
  }
}

void Simulator::step() {
  eval();
  if (count_toggles_) prev_ = values_;

  // Capture next states from pre-edge values, then commit.
  std::vector<std::uint8_t> next(seq_cells_.size());
  for (std::size_t k = 0; k < seq_cells_.size(); ++k) {
    const Cell& c = nl_->cell(seq_cells_[k]);
    const auto& in = c.inputs;
    const std::uint8_t q = values_[c.output];
    std::uint8_t v = q;
    switch (c.type) {
      case CellType::Dff:   v = values_[in[0]]; break;
      case CellType::DffR:  v = values_[in[1]] ? 0 : values_[in[0]]; break;
      case CellType::DffS:  v = values_[in[1]] ? 1 : values_[in[0]]; break;
      case CellType::DffE:  v = values_[in[1]] ? values_[in[0]] : q; break;
      case CellType::DffER: v = values_[in[2]] ? 0 : (values_[in[1]] ? values_[in[0]] : q); break;
      case CellType::DffES: v = values_[in[2]] ? 1 : (values_[in[1]] ? values_[in[0]] : q); break;
      default: break;
    }
    next[k] = v;
  }
  for (std::size_t k = 0; k < seq_cells_.size(); ++k)
    values_[nl_->cell(seq_cells_[k]).output] = next[k];
  eval();
  ++cycles_;

  if (count_toggles_) {
    for (NetId n = 0; n < values_.size(); ++n)
      if (values_[n] != prev_[n]) ++toggles_[n];
  }
}

void Simulator::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

void Simulator::power_on_reset() {
  for (std::size_t ci : seq_cells_) values_[nl_->cell(ci).output] = 0;
  cycles_ = 0;
  eval();
  // Power-on starts a fresh measurement window: carrying toggle counts (or
  // the pre-reset value snapshot) across the reset would leak activity from
  // the previous run into the first post-reset steps.
  if (count_toggles_) {
    prev_ = values_;
    toggles_.assign(nl_->num_nets(), 0);
  }
}

NetId Simulator::find_output_checked(std::string_view name) const {
  const auto net = nl_->find_output(name);
  if (!net) throw std::invalid_argument("unknown output " + std::string(name));
  return *net;
}

bool Simulator::get(std::string_view name) const {
  return values_[find_output_checked(name)] != 0;
}

void Simulator::collect_bus(std::string_view prefix, std::vector<NetId>& nets) const {
  for (int i = 0;; ++i) {
    const auto net = nl_->find_output(std::string(prefix) + "[" + std::to_string(i) + "]");
    if (!net) break;
    nets.push_back(*net);
  }
  if (nets.empty())
    throw std::invalid_argument("unknown output bus " + std::string(prefix));
}

std::uint64_t Simulator::get_bus(std::string_view prefix) const {
  std::vector<NetId> nets;
  collect_bus(prefix, nets);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i)
    v |= static_cast<std::uint64_t>(values_[nets[i]]) << i;
  return v;
}

std::optional<std::size_t> Simulator::hot_index(std::string_view prefix) const {
  std::vector<NetId> nets;
  collect_bus(prefix, nets);
  std::optional<std::size_t> hot;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (!values_[nets[i]]) continue;
    if (hot) return std::nullopt;  // more than one line asserted
    hot = i;
  }
  return hot;
}

std::size_t Simulator::hot_count(std::string_view prefix) const {
  std::vector<NetId> nets;
  collect_bus(prefix, nets);
  std::size_t n = 0;
  for (NetId net : nets) n += values_[net];
  return n;
}

void Simulator::enable_toggle_counting() {
  count_toggles_ = true;
  toggles_.assign(nl_->num_nets(), 0);
}

}  // namespace addm::sim
