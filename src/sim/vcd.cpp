#include "sim/vcd.hpp"

#include <sstream>
#include <unordered_set>


namespace addm::sim {

namespace {
// Local bus-name flattening ("sel[3]" -> "sel_3"); keeps sim independent of
// the codegen layer.
std::string flatten(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == '[') out += '_';
    else if (c != ']') out += c;
  }
  return out;
}
}  // namespace

std::string VcdRecorder::make_id(std::size_t index) {
  // Printable-ASCII base-94 identifiers, as the VCD format prescribes.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

VcdRecorder::VcdRecorder(const Simulator& sim, std::string top_name, VcdOptions options)
    : sim_(&sim) {
  const auto& nl = sim.netlist();

  std::unordered_set<netlist::NetId> seen;
  auto add_signal = [&](netlist::NetId net, std::string name) {
    if (!seen.insert(net).second) return;
    signals_.push_back(Signal{net, make_id(signals_.size()), std::move(name), false});
  };
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    add_signal(nl.inputs()[i], flatten(nl.input_name(i)));
  for (std::size_t i = 0; i < nl.outputs().size(); ++i)
    add_signal(nl.outputs()[i], flatten(nl.output_name(i)));
  if (options.include_internal_nets)
    for (const auto& cell : nl.cells()) add_signal(cell.output, "n" + std::to_string(cell.output));

  std::ostringstream os;
  os << "$date addm simulation $end\n";
  os << "$version addm VcdRecorder $end\n";
  os << "$timescale " << options.timescale << " $end\n";
  os << "$scope module " << top_name << " $end\n";
  for (const Signal& s : signals_)
    os << "$var wire 1 " << s.id << " " << s.name << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";
  header_ = os.str();

  // Time-0 snapshot.
  std::ostringstream body;
  body << "#0\n$dumpvars\n";
  for (Signal& s : signals_) {
    s.last = sim_->value(s.net);
    body << (s.last ? '1' : '0') << s.id << "\n";
  }
  body << "$end\n";
  body_ = body.str();
}

void VcdRecorder::sample() {
  ++time_;
  std::ostringstream os;
  bool any = false;
  for (Signal& s : signals_) {
    const bool v = sim_->value(s.net);
    if (v == s.last) continue;
    if (!any) {
      os << "#" << time_ << "\n";
      any = true;
    }
    os << (v ? '1' : '0') << s.id << "\n";
    s.last = v;
  }
  body_ += os.str();
}

std::string VcdRecorder::str() const { return header_ + body_; }

}  // namespace addm::sim
