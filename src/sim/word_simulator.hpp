// Word-parallel compiled netlist simulation: 64 independent runs per pass.
//
// WordSimulator levelizes the netlist once (netlist/levelize) into a flat
// instruction stream and holds one std::uint64_t per net, bit l carrying
// lane l's value.  One pass over the stream therefore advances 64 lanes —
// 64 independent stimulus streams over the same netlist — with the same
// two-phase cycle semantics as sim::Simulator:
//
//   ws.set("next", lane_mask);   // per-lane inputs (bit l = lane l)
//   ws.step();                   // one rising edge for all 64 lanes
//
// Lanes never interact: for every lane l and every cycle, bit l of every
// net equals the value a scalar Simulator driven with lane l's stimulus
// would compute, including toggle counts (the equivalence is enforced by
// tests/word_sim_test.cpp).  Toggle counters aggregate across lanes (one
// popcount per net per step), which is exactly the ensemble-average
// switching activity a power estimate wants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace addm::sim {

class WordSimulator {
 public:
  /// Number of independent simulation lanes per pass.
  static constexpr std::size_t kLanes = 64;
  /// Lane mask driving a value into every lane.
  static constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

  /// Throws std::invalid_argument if the netlist has a combinational loop.
  explicit WordSimulator(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }
  /// Combinational depth of the levelized instruction stream.
  std::size_t num_levels() const { return lev_.num_levels(); }

  // --- driving inputs --------------------------------------------------------
  /// Bit l of `lanes` drives lane l of the input net.
  void set_input(netlist::NetId net, std::uint64_t lanes);
  /// By port name; throws if the name is unknown.
  void set(std::string_view input_name, std::uint64_t lanes);
  /// Same scalar value into every lane.
  void set_all(std::string_view input_name, bool value);
  /// Drives inputs "<prefix>[0..]" with the bits of `value` (LSB first),
  /// replicated into every lane.  Throws std::invalid_argument when `value`
  /// has bits above the bus width.
  void set_bus(std::string_view prefix, std::uint64_t value);
  /// Drives one lane of a bus, leaving the other 63 lanes untouched.
  void set_bus_lane(std::string_view prefix, std::size_t lane, std::uint64_t value);

  // --- stepping ---------------------------------------------------------------
  /// Re-evaluates combinational logic from current inputs/state (all lanes).
  void eval();
  /// eval(), clock edge, eval(). Advances one cycle in every lane.
  void step();
  /// Convenience: step `n` times with current inputs held.
  void run(std::size_t n);
  /// Clears all flip-flops to 0 in every lane, restarts cycle and toggle
  /// counting, and re-evaluates (power-on state).
  void power_on_reset();

  // --- observing values ---------------------------------------------------------
  /// All 64 lanes of a net; bit l is lane l.
  std::uint64_t word(netlist::NetId net) const { return values_[net]; }
  bool value(netlist::NetId net, std::size_t lane) const {
    return (values_[net] >> lane) & 1;
  }
  /// Word of the named output; throws if the name is unknown.
  std::uint64_t get(std::string_view output_name) const;
  /// Reads outputs "<prefix>[0..width)" of one lane as an integer, LSB first.
  std::uint64_t get_bus(std::string_view prefix, std::size_t lane) const;
  /// Index of the single asserted line among outputs "<prefix>[i]" in `lane`;
  /// nullopt if zero or more than one line is asserted.
  std::optional<std::size_t> hot_index(std::string_view prefix, std::size_t lane) const;

  std::uint64_t cycles() const { return cycles_; }

  // --- activity ------------------------------------------------------------------
  /// Starts counting per-net toggles, aggregated across lanes: each step()
  /// adds popcount(changed lanes) to the net's counter, so with identical
  /// stimulus in all lanes every count is exactly 64x the scalar one, and
  /// with distinct stimuli it is the sum over the lane ensemble.
  void enable_toggle_counting();
  std::span<const std::uint64_t> toggles() const { return toggles_; }

 private:
  std::vector<netlist::NetId> collect_output_bus(std::string_view prefix) const;

  const netlist::Netlist* nl_;
  netlist::Levelization lev_;
  std::vector<std::uint64_t> values_;   // per net, one lane per bit
  std::vector<std::uint64_t> prev_;     // snapshot for toggle counting
  std::vector<std::uint64_t> next_;     // flip-flop next-state scratch
  std::vector<std::uint64_t> toggles_;  // per net, summed over lanes
  std::uint64_t cycles_ = 0;
  bool count_toggles_ = false;
};

}  // namespace addm::sim
