// VCD (Value Change Dump) waveform capture for the cycle simulator.
//
// Records the primary inputs, primary outputs and (optionally) every
// internal net of a Simulator run into the standard IEEE-1364 VCD text
// format, so generator behaviour can be inspected in GTKWave & co.
//
// Usage:
//   sim::Simulator s(nl);
//   sim::VcdRecorder vcd(s, "srag");        // header is captured here
//   ... drive inputs ...
//   s.step(); vcd.sample();                  // one sample per cycle
//   std::ofstream("wave.vcd") << vcd.str();
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace addm::sim {

struct VcdOptions {
  bool include_internal_nets = false;  ///< dump every cell output too
  std::string timescale = "1ns";
};

class VcdRecorder {
 public:
  /// Binds to `sim` (which must outlive the recorder) and snapshots the
  /// initial values as time 0.
  explicit VcdRecorder(const Simulator& sim, std::string top_name = "top",
                       VcdOptions options = VcdOptions());

  /// Records the current values as the next timestep.
  void sample();

  /// Complete VCD document (header + all samples so far).
  std::string str() const;

  std::size_t samples() const { return time_; }

 private:
  struct Signal {
    netlist::NetId net;
    std::string id;    // VCD short identifier
    std::string name;  // human-readable
    bool last = false;
  };
  static std::string make_id(std::size_t index);

  const Simulator* sim_;
  std::string header_;
  std::string body_;
  std::vector<Signal> signals_;
  std::size_t time_ = 0;
};

}  // namespace addm::sim
