#include "sim/word_simulator.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace addm::sim {

using netlist::CellType;
using netlist::FlatOp;
using netlist::NetId;
using netlist::Netlist;

WordSimulator::WordSimulator(const Netlist& nl) : nl_(&nl) {
  auto lev = netlist::levelize(nl);
  if (!lev) throw std::invalid_argument("WordSimulator: combinational loop");
  lev_ = std::move(*lev);
  values_.assign(nl.num_nets(), 0);
  values_[netlist::kConst1] = kAllLanes;
  next_.resize(lev_.seq.size());
  eval();
}

void WordSimulator::set_input(NetId net, std::uint64_t lanes) {
  if (!nl_->is_primary_input(net))
    throw std::invalid_argument("set_input: net is not a primary input");
  values_[net] = lanes;
}

void WordSimulator::set(std::string_view name, std::uint64_t lanes) {
  const auto net = nl_->find_input(name);
  if (!net) throw std::invalid_argument("set: unknown input " + std::string(name));
  values_[*net] = lanes;
}

void WordSimulator::set_all(std::string_view name, bool value) {
  set(name, value ? kAllLanes : 0);
}

namespace {

/// Collects the input nets of "<prefix>[0..width)" and validates `value`
/// against the width BEFORE the caller mutates anything, so a rejected
/// set_bus/set_bus_lane leaves the bus untouched.
std::vector<NetId> checked_bus_nets(const netlist::Netlist& nl,
                                    std::string_view prefix, std::uint64_t value,
                                    const char* who) {
  std::vector<NetId> nets;
  for (int i = 0;; ++i) {
    const auto net = nl.find_input(std::string(prefix) + "[" + std::to_string(i) + "]");
    if (!net) break;
    nets.push_back(*net);
  }
  if (nets.empty())
    throw std::invalid_argument(std::string(who) + ": unknown bus " +
                                std::string(prefix));
  if (nets.size() < 64 && (value >> nets.size()) != 0)
    throw std::invalid_argument(std::string(who) + ": value does not fit the " +
                                std::to_string(nets.size()) + "-bit bus " +
                                std::string(prefix));
  return nets;
}

}  // namespace

void WordSimulator::set_bus(std::string_view prefix, std::uint64_t value) {
  const auto nets = checked_bus_nets(*nl_, prefix, value, "set_bus");
  for (std::size_t i = 0; i < nets.size(); ++i)
    values_[nets[i]] = (value >> i) & 1 ? kAllLanes : 0;
}

void WordSimulator::set_bus_lane(std::string_view prefix, std::size_t lane,
                                 std::uint64_t value) {
  if (lane >= kLanes) throw std::invalid_argument("set_bus_lane: lane out of range");
  const auto nets = checked_bus_nets(*nl_, prefix, value, "set_bus_lane");
  const std::uint64_t mask = std::uint64_t{1} << lane;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if ((value >> i) & 1)
      values_[nets[i]] |= mask;
    else
      values_[nets[i]] &= ~mask;
  }
}

void WordSimulator::eval() {
  // One linear pass over the level-major stream: every op's inputs are final
  // before it runs, and each bitwise expression advances all 64 lanes.
  for (const FlatOp& op : lev_.comb) {
    const std::uint64_t a = values_[op.in[0]];
    const std::uint64_t b = values_[op.in[1]];
    std::uint64_t v = 0;
    switch (op.type) {
      case CellType::Inv:   v = ~a; break;
      case CellType::Buf:   v = a; break;
      case CellType::Nand2: v = ~(a & b); break;
      case CellType::Nor2:  v = ~(a | b); break;
      case CellType::And2:  v = a & b; break;
      case CellType::Or2:   v = a | b; break;
      case CellType::Xor2:  v = a ^ b; break;
      case CellType::Xnor2: v = ~(a ^ b); break;
      case CellType::Mux2:  v = (a & values_[op.in[2]]) | (~a & b); break;
      default: continue;
    }
    values_[op.out] = v;
  }
}

void WordSimulator::step() {
  eval();
  if (count_toggles_) prev_ = values_;

  // Capture next states from pre-edge values, then commit — lane-parallel
  // mirrors of the scalar flip-flop semantics (reset/set dominant, enable
  // holds Q).
  for (std::size_t k = 0; k < lev_.seq.size(); ++k) {
    const FlatOp& op = lev_.seq[k];
    const std::uint64_t d = values_[op.in[0]];
    const std::uint64_t q = values_[op.out];
    std::uint64_t v = q;
    switch (op.type) {
      case CellType::Dff:   v = d; break;
      case CellType::DffR:  v = d & ~values_[op.in[1]]; break;
      case CellType::DffS:  v = d | values_[op.in[1]]; break;
      case CellType::DffE: {
        const std::uint64_t en = values_[op.in[1]];
        v = (en & d) | (~en & q);
        break;
      }
      case CellType::DffER: {
        const std::uint64_t en = values_[op.in[1]];
        v = ~values_[op.in[2]] & ((en & d) | (~en & q));
        break;
      }
      case CellType::DffES: {
        const std::uint64_t en = values_[op.in[1]];
        v = values_[op.in[2]] | (en & d) | (~en & q);
        break;
      }
      default: break;
    }
    next_[k] = v;
  }
  for (std::size_t k = 0; k < lev_.seq.size(); ++k)
    values_[lev_.seq[k].out] = next_[k];
  eval();
  ++cycles_;

  if (count_toggles_) {
    for (NetId n = 0; n < values_.size(); ++n)
      toggles_[n] += std::popcount(values_[n] ^ prev_[n]);
  }
}

void WordSimulator::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

void WordSimulator::power_on_reset() {
  for (const FlatOp& op : lev_.seq) values_[op.out] = 0;
  cycles_ = 0;
  eval();
  if (count_toggles_) {
    prev_ = values_;
    toggles_.assign(nl_->num_nets(), 0);
  }
}

std::uint64_t WordSimulator::get(std::string_view name) const {
  const auto net = nl_->find_output(name);
  if (!net) throw std::invalid_argument("unknown output " + std::string(name));
  return values_[*net];
}

std::vector<NetId> WordSimulator::collect_output_bus(std::string_view prefix) const {
  std::vector<NetId> nets;
  for (int i = 0;; ++i) {
    const auto net = nl_->find_output(std::string(prefix) + "[" + std::to_string(i) + "]");
    if (!net) break;
    nets.push_back(*net);
  }
  if (nets.empty())
    throw std::invalid_argument("unknown output bus " + std::string(prefix));
  return nets;
}

std::uint64_t WordSimulator::get_bus(std::string_view prefix, std::size_t lane) const {
  const auto nets = collect_output_bus(prefix);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i)
    v |= static_cast<std::uint64_t>(value(nets[i], lane)) << i;
  return v;
}

std::optional<std::size_t> WordSimulator::hot_index(std::string_view prefix,
                                                    std::size_t lane) const {
  const auto nets = collect_output_bus(prefix);
  std::optional<std::size_t> hot;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (!value(nets[i], lane)) continue;
    if (hot) return std::nullopt;  // more than one line asserted
    hot = i;
  }
  return hot;
}

void WordSimulator::enable_toggle_counting() {
  count_toggles_ = true;
  toggles_.assign(nl_->num_nets(), 0);
}

}  // namespace addm::sim
