// Structural Verilog emitter: renders any Netlist as a synthesizable
// Verilog-2001 module over gate primitives and inferred flip-flops.
//
// Port names of the form "name[i]" are flattened to "name_i" scalars so the
// output is tool-friendly without bus-shape reconstruction. Output is
// deterministic for a given netlist.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace addm::codegen {

std::string to_verilog(const netlist::Netlist& nl, const std::string& module_name);

/// "sel[3]" -> "sel_3"; passes other identifiers through.
std::string sanitize_identifier(const std::string& name);

}  // namespace addm::codegen
