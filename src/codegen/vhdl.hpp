// VHDL emitters — the output format of the paper's SRAdGen tool.
//
// Two flavours:
//  * to_structural_vhdl: any Netlist as an entity/architecture pair over
//    std_logic signals with inline gate expressions and clocked processes,
//    mirroring what Design Compiler would have consumed.
//  * srag_to_behavioral_vhdl: an architectural, human-readable SRAG
//    description generated straight from an SragConfig (shift registers,
//    DivCnt/PassCnt processes) — the shape of VHDL the paper says SRAdGen
//    produces for a successfully mapped sequence.
#pragma once

#include <string>

#include "core/srag_config.hpp"
#include "netlist/netlist.hpp"

namespace addm::codegen {

std::string to_structural_vhdl(const netlist::Netlist& nl, const std::string& entity_name);

std::string srag_to_behavioral_vhdl(const core::SragConfig& cfg,
                                    const std::string& entity_name);

}  // namespace addm::codegen
