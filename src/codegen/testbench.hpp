// Self-checking Verilog testbench emitter.
//
// Completes the SRAdGen flow for users with an HDL simulator: given the SRAG
// configuration and the address sequence it was mapped from, emits a
// testbench that instantiates the generated module (see verilog.hpp /
// elaborate_srag), applies the reset protocol, pulses `next`, and compares
// the one-hot select bundle against the expected sequence every cycle,
// finishing with a pass/fail banner.
#pragma once

#include <span>
#include <string>

#include "core/srag_config.hpp"

namespace addm::codegen {

/// `dut_name` must match the module emitted by to_verilog() for the same
/// configuration (inputs "next"/"reset", outputs "sel_<k>"). `expected` is
/// the address sequence to check, one entry per `next` pulse.
std::string srag_verilog_testbench(const core::SragConfig& cfg,
                                   std::span<const std::uint32_t> expected,
                                   const std::string& dut_name);

}  // namespace addm::codegen
