#include "memory/array_netlist.hpp"

#include <stdexcept>

namespace addm::memory {

using netlist::NetId;
using netlist::NetlistBuilder;

ArrayNetlistPorts build_addm_array(NetlistBuilder& b, seq::ArrayGeometry geom,
                                   std::span<const NetId> rs, std::span<const NetId> cs,
                                   NetId din, NetId we) {
  if (rs.size() != geom.height || cs.size() != geom.width)
    throw std::invalid_argument("build_addm_array: select bundle size mismatch");
  if (geom.size() == 0 || geom.size() > 4096)
    throw std::invalid_argument("build_addm_array: unsupported array size");

  ArrayNetlistPorts ports;
  ports.cells.reserve(geom.size());
  std::vector<NetId> read_terms;
  read_terms.reserve(geom.size());
  for (std::size_t r = 0; r < geom.height; ++r) {
    for (std::size_t c = 0; c < geom.width; ++c) {
      const NetId selected = b.and2(rs[r], cs[c]);
      const NetId q = b.dff_e(din, b.and2(selected, we));
      ports.cells.push_back(q);
      read_terms.push_back(b.and2(q, selected));
    }
  }
  ports.dout = b.or_tree(read_terms);
  return ports;
}

ArrayNetlistPorts build_decoded_array(NetlistBuilder& b, seq::ArrayGeometry geom,
                                      std::span<const NetId> row_addr,
                                      std::span<const NetId> col_addr, NetId din,
                                      NetId we, synth::DecoderStyle style) {
  const auto rs = synth::build_decoder(b, row_addr, geom.height, netlist::kConst1, style);
  const auto cs = synth::build_decoder(b, col_addr, geom.width, netlist::kConst1, style);
  return build_addm_array(b, geom, rs, cs, din, we);
}

}  // namespace addm::memory
