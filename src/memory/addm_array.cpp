#include "memory/addm_array.hpp"

#include <stdexcept>

namespace addm::memory {

AddmArray::AddmArray(seq::ArrayGeometry geom) : geom_(geom) {
  if (geom_.size() == 0) throw std::invalid_argument("AddmArray: empty geometry");
  cells_.assign(geom_.size(), 0);
}

void AddmArray::check_selects(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs) const {
  if (rs.size() != geom_.height || cs.size() != geom_.width)
    throw std::invalid_argument("AddmArray: select vector size mismatch");
  std::size_t rhot = 0, chot = 0;
  for (bool b : rs) rhot += b;
  for (bool b : cs) chot += b;
  if (rhot != 1 || chot != 1) {
    ++violations_;
    if (strict_)
      throw std::logic_error("AddmArray: select violation (rows hot=" +
                             std::to_string(rhot) + ", cols hot=" + std::to_string(chot) +
                             ")");
  }
}

void AddmArray::write(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs,
                      std::uint32_t data) {
  check_selects(rs, cs);
  for (std::size_t r = 0; r < geom_.height; ++r) {
    if (!rs[r]) continue;
    for (std::size_t c = 0; c < geom_.width; ++c)
      if (cs[c]) cells_[r * geom_.width + c] = data;
  }
}

std::uint32_t AddmArray::read(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs) const {
  check_selects(rs, cs);
  std::uint32_t v = 0;
  for (std::size_t r = 0; r < geom_.height; ++r) {
    if (!rs[r]) continue;
    for (std::size_t c = 0; c < geom_.width; ++c)
      if (cs[c]) v |= cells_[r * geom_.width + c];
  }
  return v;
}

void AddmArray::write_cell(std::size_t row, std::size_t col, std::uint32_t data) {
  if (row >= geom_.height || col >= geom_.width)
    throw std::out_of_range("AddmArray::write_cell");
  cells_[row * geom_.width + col] = data;
}

std::uint32_t AddmArray::cell(std::size_t row, std::size_t col) const {
  if (row >= geom_.height || col >= geom_.width) throw std::out_of_range("AddmArray::cell");
  return cells_[row * geom_.width + col];
}

}  // namespace addm::memory
