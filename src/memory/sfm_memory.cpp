#include "memory/sfm_memory.hpp"

#include <stdexcept>

namespace addm::memory {

SfmMemory::SfmMemory(std::size_t cells) {
  if (cells == 0) throw std::invalid_argument("SfmMemory: zero cells");
  cells_.assign(cells, 0);
}

void SfmMemory::push(std::uint32_t data) {
  if (full()) throw std::logic_error("SfmMemory::push: overflow");
  cells_[tail_] = data;
  tail_ = (tail_ + 1) % cells_.size();
  ++occupancy_;
}

std::uint32_t SfmMemory::pop() {
  if (empty()) throw std::logic_error("SfmMemory::pop: underflow");
  const std::uint32_t v = cells_[head_];
  head_ = (head_ + 1) % cells_.size();
  --occupancy_;
  return v;
}

}  // namespace addm::memory
