// End-to-end ADDM system harness: gate-level SRAG address generators driving
// the behavioral ADDM cell array. This is the full Figure-2 system — used by
// integration tests and examples to show that a producer writing through one
// SRAG and a consumer reading through another observe exactly the data the
// software reference (ConventionalRam) would produce.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memory/addm_array.hpp"
#include "seq/trace.hpp"
#include "sim/simulator.hpp"

namespace addm::memory {

class AddmSystem {
 public:
  /// Maps and elaborates SRAG generator pairs for both traces; throws
  /// std::invalid_argument (with the mapper diagnostic) if either trace has
  /// an unmappable dimension. Both traces must share one geometry.
  AddmSystem(const seq::AddressTrace& write_trace, const seq::AddressTrace& read_trace);

  /// Writes `data` (one element per write-trace access; sizes must match),
  /// then performs every read-trace access and returns the observed stream.
  std::vector<std::uint32_t> run(std::span<const std::uint32_t> data);

  const AddmArray& array() const { return array_; }
  /// Select-line legality violations observed across all accesses so far.
  std::size_t violation_count() const { return array_.violation_count(); }

 private:
  std::vector<std::uint8_t> bus_values(const sim::Simulator& s, const char* prefix,
                                       std::size_t width) const;

  seq::AddressTrace write_trace_;
  seq::AddressTrace read_trace_;
  netlist::Netlist write_gen_;
  netlist::Netlist read_gen_;
  AddmArray array_;
};

}  // namespace addm::memory
