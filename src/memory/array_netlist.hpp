// Gate-level memory cell arrays.
//
// The paper's evaluation excludes the cell array ("we have not demonstrated
// the impact of delay reduction ... on the overall memory access delay due
// to lack of data for the memory cell array", Section 7). This module closes
// that gap with synthesizable single-bit-per-cell arrays:
//
//  * build_addm_array: the ADDM array of Figure 2 — cells gated directly by
//    RS/CS lines. Write: cell (r,c) latches din when rs[r] & cs[c] & we.
//    Read: dout = OR over cells of (q & rs[r] & cs[c]) — a wired-OR, which
//    also reproduces the multi-select corruption the paper warns about.
//  * build_decoded_array: the conventional macro of Figure 1 — the same
//    array behind internal row/column decoders driven by a binary address.
//
// Cell count grows as width*height; intended for small-to-medium arrays
// (the system-delay extension bench sweeps 8x8 .. 32x32).
#pragma once

#include "netlist/builder.hpp"
#include "seq/trace.hpp"
#include "synth/decoder.hpp"

namespace addm::memory {

struct ArrayNetlistPorts {
  netlist::NetId dout = netlist::kInvalidNet;
  /// One flip-flop output per cell, row-major (exposed for tests).
  std::vector<netlist::NetId> cells;
};

/// ADDM array: `rs` (height lines) and `cs` (width lines) select the cell;
/// `we` gates writes of `din`.
ArrayNetlistPorts build_addm_array(netlist::NetlistBuilder& b, seq::ArrayGeometry geom,
                                   std::span<const netlist::NetId> rs,
                                   std::span<const netlist::NetId> cs, netlist::NetId din,
                                   netlist::NetId we);

/// Conventional array: binary `row_addr`/`col_addr` are decoded internally
/// (style selects the decoder construction), then drive the same cell array.
ArrayNetlistPorts build_decoded_array(netlist::NetlistBuilder& b, seq::ArrayGeometry geom,
                                      std::span<const netlist::NetId> row_addr,
                                      std::span<const netlist::NetId> col_addr,
                                      netlist::NetId din, netlist::NetId we,
                                      synth::DecoderStyle style);

}  // namespace addm::memory
