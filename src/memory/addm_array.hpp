// Behavioral model of the address decoder-decoupled memory cell array
// (Figure 2): a 2-D array accessed purely through row-select and
// column-select lines, with no internal decoder.
//
// The paper's Section 7 warns that the ADDM's physical viability requires
// that no two row (or column) select lines are ever asserted together. This
// model enforces exactly that contract: accesses with a clean two-hot
// selection behave like a RAM cell; violations are counted and modelled
// pessimistically (multi-writes store to every selected cell, multi-reads
// wire-OR the selected cells), so corruption becomes observable in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/trace.hpp"

namespace addm::memory {

class AddmArray {
 public:
  explicit AddmArray(seq::ArrayGeometry geom);

  const seq::ArrayGeometry& geometry() const { return geom_; }

  /// One write access: `rs`/`cs` are the select-line levels (size = height /
  /// width). Every selected cell is written.
  void write(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs, std::uint32_t data);
  /// One read access: returns the wired-OR of all selected cells (0 if none).
  std::uint32_t read(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs) const;

  /// Convenience accessors for well-formed (single-cell) access.
  void write_cell(std::size_t row, std::size_t col, std::uint32_t data);
  std::uint32_t cell(std::size_t row, std::size_t col) const;

  /// Select-legality accounting.
  std::size_t violation_count() const { return violations_; }
  /// If true (default false), an illegal selection throws std::logic_error
  /// instead of corrupting.
  void set_strict(bool strict) { strict_ = strict; }

 private:
  void check_selects(std::span<const std::uint8_t> rs, std::span<const std::uint8_t> cs) const;
  mutable std::size_t violations_ = 0;
  bool strict_ = false;
  seq::ArrayGeometry geom_;
  std::vector<std::uint32_t> cells_;
};

}  // namespace addm::memory
