// Behavioral model of the conventional RAM of Figure 1: binary-addressed,
// with the row/column decode happening inside the macro. Used as the
// functional reference the ADDM systems are checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/trace.hpp"

namespace addm::memory {

class ConventionalRam {
 public:
  explicit ConventionalRam(seq::ArrayGeometry geom);

  const seq::ArrayGeometry& geometry() const { return geom_; }

  /// Linear-address access (the macro splits row/column internally).
  void write(std::uint32_t address, std::uint32_t data);
  std::uint32_t read(std::uint32_t address) const;

 private:
  seq::ArrayGeometry geom_;
  std::vector<std::uint32_t> cells_;
};

}  // namespace addm::memory
