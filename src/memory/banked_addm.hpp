// Banked (distributed) ADDM — Section 7: "As most modern high-performance
// memory systems are based on distributed memory architectures, the
// interconnect and routing costs should also be considered."
//
// The array is split into B equal vertical banks (column-range partitions),
// each a private AddmArray with its own RS/CS select bundles. A banked
// access asserts the selects of exactly one bank. The model tracks the same
// two-hot legality contract per bank, plus an interconnect-cost estimate:
// select wiring scales with the bank perimeter instead of the full array's,
// which is the routing argument for distribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memory/addm_array.hpp"
#include "seq/trace.hpp"

namespace addm::memory {

/// Wiring-cost estimate for a select-line bundle layout.
struct InterconnectCost {
  std::size_t select_wires = 0;    ///< total RS+CS lines routed
  double wire_length_units = 0.0;  ///< sum of estimated per-line lengths
  /// Longest single select line (the capacitive worst case a driver sees);
  /// banking's routing benefit is cutting this from `width` to `width/B`.
  double max_line_length_units = 0.0;
};

class BankedAddm {
 public:
  /// Splits `geom` into `banks` vertical slices; width must divide evenly.
  BankedAddm(seq::ArrayGeometry geom, std::size_t banks);

  std::size_t num_banks() const { return banks_.size(); }
  const seq::ArrayGeometry& geometry() const { return geom_; }
  seq::ArrayGeometry bank_geometry() const;

  /// Bank owning a linear address (column-range partitioning).
  std::size_t bank_of(std::uint32_t linear_address) const;
  /// Column index within its bank.
  std::size_t local_col(std::uint32_t linear_address) const;

  /// Banked write/read: `bank_select` (one-hot over banks) chooses the bank;
  /// `rs`/`cs` are that bank's local selects (cs sized to the bank width).
  void write(std::span<const std::uint8_t> bank_select, std::span<const std::uint8_t> rs,
             std::span<const std::uint8_t> cs, std::uint32_t data);
  std::uint32_t read(std::span<const std::uint8_t> bank_select,
                     std::span<const std::uint8_t> rs,
                     std::span<const std::uint8_t> cs) const;

  /// Direct access for verification.
  std::uint32_t cell(std::size_t row, std::size_t col) const;

  std::size_t violation_count() const;

  /// Select-wiring estimate for this banking degree: each bank routes
  /// height RS lines across its width and bank-width CS lines across the
  /// height (Manhattan estimate, cell pitch = 1 unit).
  InterconnectCost interconnect_cost() const;
  /// The same estimate for a monolithic (1-bank) array of `geom`.
  static InterconnectCost monolithic_cost(seq::ArrayGeometry geom);

 private:
  std::size_t checked_bank(std::span<const std::uint8_t> bank_select) const;
  seq::ArrayGeometry geom_;
  std::vector<AddmArray> banks_;
  mutable std::size_t bank_violations_ = 0;
};

}  // namespace addm::memory
