#include "memory/system.hpp"

#include <stdexcept>
#include <string>

#include "core/metrics.hpp"

namespace addm::memory {

AddmSystem::AddmSystem(const seq::AddressTrace& write_trace,
                       const seq::AddressTrace& read_trace)
    : write_trace_(write_trace),
      read_trace_(read_trace),
      array_(write_trace.geometry()) {
  if (!(write_trace.geometry() == read_trace.geometry()))
    throw std::invalid_argument("AddmSystem: traces target different geometries");
  write_gen_ = core::build_srag_2d_for_trace(write_trace_).netlist;
  read_gen_ = core::build_srag_2d_for_trace(read_trace_).netlist;
}

std::vector<std::uint8_t> AddmSystem::bus_values(const sim::Simulator& s,
                                                 const char* prefix,
                                                 std::size_t width) const {
  std::vector<std::uint8_t> v(width);
  for (std::size_t i = 0; i < width; ++i)
    v[i] = s.get(std::string(prefix) + "[" + std::to_string(i) + "]");
  return v;
}

std::vector<std::uint32_t> AddmSystem::run(std::span<const std::uint32_t> data) {
  if (data.size() != write_trace_.length())
    throw std::invalid_argument("AddmSystem::run: data length != write trace length");
  const auto& g = array_.geometry();

  // Write phase.
  {
    sim::Simulator s(write_gen_);
    s.set("reset", true);
    s.set("next", false);
    s.step();
    s.set("reset", false);
    s.set("next", true);
    for (std::size_t k = 0; k < data.size(); ++k) {
      array_.write(bus_values(s, "rs", g.height), bus_values(s, "cs", g.width), data[k]);
      s.step();
    }
  }

  // Read phase.
  std::vector<std::uint32_t> out;
  out.reserve(read_trace_.length());
  {
    sim::Simulator s(read_gen_);
    s.set("reset", true);
    s.set("next", false);
    s.step();
    s.set("reset", false);
    s.set("next", true);
    for (std::size_t k = 0; k < read_trace_.length(); ++k) {
      out.push_back(array_.read(bus_values(s, "rs", g.height), bus_values(s, "cs", g.width)));
      s.step();
    }
  }
  return out;
}

}  // namespace addm::memory
