// Behavioral Sequential FIFO Memory (Aloqeely, Figure 6): a 1-D cell array
// whose write cell is chosen by the tail pointer and read cell by the head
// pointer, both advancing one position per access.
#pragma once

#include <cstdint>
#include <vector>

namespace addm::memory {

class SfmMemory {
 public:
  explicit SfmMemory(std::size_t cells);

  std::size_t capacity() const { return cells_.size(); }
  std::size_t occupancy() const { return occupancy_; }
  bool full() const { return occupancy_ == cells_.size(); }
  bool empty() const { return occupancy_ == 0; }

  /// Writes at the tail pointer and advances it. Throws std::logic_error on
  /// overflow (the SFM has no backpressure of its own).
  void push(std::uint32_t data);
  /// Reads at the head pointer and advances it. Throws on underflow.
  std::uint32_t pop();

  std::size_t head() const { return head_; }
  std::size_t tail() const { return tail_; }

 private:
  std::vector<std::uint32_t> cells_;
  std::size_t head_ = 0, tail_ = 0, occupancy_ = 0;
};

}  // namespace addm::memory
