#include "memory/conventional_ram.hpp"

#include <stdexcept>

namespace addm::memory {

ConventionalRam::ConventionalRam(seq::ArrayGeometry geom) : geom_(geom) {
  if (geom_.size() == 0) throw std::invalid_argument("ConventionalRam: empty geometry");
  cells_.assign(geom_.size(), 0);
}

void ConventionalRam::write(std::uint32_t address, std::uint32_t data) {
  if (address >= cells_.size()) throw std::out_of_range("ConventionalRam::write");
  cells_[address] = data;
}

std::uint32_t ConventionalRam::read(std::uint32_t address) const {
  if (address >= cells_.size()) throw std::out_of_range("ConventionalRam::read");
  return cells_[address];
}

}  // namespace addm::memory
