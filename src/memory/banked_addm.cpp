#include "memory/banked_addm.hpp"

#include <stdexcept>

namespace addm::memory {

BankedAddm::BankedAddm(seq::ArrayGeometry geom, std::size_t banks) : geom_(geom) {
  if (banks == 0 || geom.width % banks != 0)
    throw std::invalid_argument("BankedAddm: bank count must divide the array width");
  const seq::ArrayGeometry bank_geom{geom.width / banks, geom.height};
  banks_.reserve(banks);
  for (std::size_t i = 0; i < banks; ++i) banks_.emplace_back(bank_geom);
}

seq::ArrayGeometry BankedAddm::bank_geometry() const {
  return {geom_.width / banks_.size(), geom_.height};
}

std::size_t BankedAddm::bank_of(std::uint32_t a) const {
  const std::size_t col = a % geom_.width;
  return col / bank_geometry().width;
}

std::size_t BankedAddm::local_col(std::uint32_t a) const {
  const std::size_t col = a % geom_.width;
  return col % bank_geometry().width;
}

std::size_t BankedAddm::checked_bank(std::span<const std::uint8_t> bank_select) const {
  if (bank_select.size() != banks_.size())
    throw std::invalid_argument("BankedAddm: bank select size mismatch");
  std::size_t hot = banks_.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < bank_select.size(); ++i)
    if (bank_select[i]) {
      hot = i;
      ++count;
    }
  if (count != 1) {
    ++bank_violations_;
    // Pessimistic fallback: address bank 0 so corruption is observable.
    return 0;
  }
  return hot;
}

void BankedAddm::write(std::span<const std::uint8_t> bank_select,
                       std::span<const std::uint8_t> rs,
                       std::span<const std::uint8_t> cs, std::uint32_t data) {
  banks_[checked_bank(bank_select)].write(rs, cs, data);
}

std::uint32_t BankedAddm::read(std::span<const std::uint8_t> bank_select,
                               std::span<const std::uint8_t> rs,
                               std::span<const std::uint8_t> cs) const {
  return banks_[checked_bank(bank_select)].read(rs, cs);
}

std::uint32_t BankedAddm::cell(std::size_t row, std::size_t col) const {
  const std::size_t bw = bank_geometry().width;
  return banks_[col / bw].cell(row, col % bw);
}

std::size_t BankedAddm::violation_count() const {
  std::size_t n = bank_violations_;
  for (const auto& b : banks_) n += b.violation_count();
  return n;
}

InterconnectCost BankedAddm::interconnect_cost() const {
  const auto bg = bank_geometry();
  InterconnectCost c;
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    c.select_wires += bg.height + bg.width;
    // RS lines run across the bank width; CS lines down the bank height.
    c.wire_length_units += static_cast<double>(bg.height) * static_cast<double>(bg.width) +
                           static_cast<double>(bg.width) * static_cast<double>(bg.height);
  }
  c.max_line_length_units =
      static_cast<double>(bg.width > bg.height ? bg.width : bg.height);
  return c;
}

InterconnectCost BankedAddm::monolithic_cost(seq::ArrayGeometry geom) {
  InterconnectCost c;
  c.select_wires = geom.height + geom.width;
  c.wire_length_units =
      2.0 * static_cast<double>(geom.height) * static_cast<double>(geom.width);
  c.max_line_length_units =
      static_cast<double>(geom.width > geom.height ? geom.width : geom.height);
  return c;
}

}  // namespace addm::memory
