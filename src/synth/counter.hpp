// Parameterized synchronous binary counter generator.
//
// Counts 0,1,...,modulo-1,0,... while `enable` is high; `reset` (synchronous,
// dominant) returns it to 0. Two increment-carry styles are provided:
//  * Ripple:    serial AND chain, delay linear in width (small, slow)
//  * Lookahead: balanced AND trees per carry, delay logarithmic in width
// The paper's CntAG counter corresponds to the lookahead style (its measured
// counter delay is nearly flat across widths, Figure 9).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"

namespace addm::synth {

enum class CarryStyle { Ripple, Lookahead };

struct CounterSpec {
  int bits = 0;                ///< state width; must be >= 1
  std::uint64_t modulo = 0;    ///< wrap value; 0 means 2^bits (free running)
  CarryStyle carry = CarryStyle::Lookahead;
  /// When > 0, the counter is built as a cascade of digit counters of at most
  /// this many bits each (digit j enabled by the wraps of all lower digits).
  /// This is how wide sequence counters were actually built — per-stage carry
  /// chains stay short, so the counter's delay is nearly flat in total width
  /// (the paper's Figure-9 "counter" curve). 0 = monolithic.
  int cascade_digit_bits = 0;
};

struct CounterPorts {
  std::vector<netlist::NetId> q;      ///< state bits, LSB first
  netlist::NetId wrap = netlist::kInvalidNet;  ///< 1 when q==modulo-1 (pre-edge)
};

/// Appends the counter to `b`. `enable` and `reset` are caller-provided nets
/// (use netlist::kConst1 for an always-enabled counter).
CounterPorts build_counter(netlist::NetlistBuilder& b, const CounterSpec& spec,
                           netlist::NetId enable, netlist::NetId reset);

/// Smallest width holding values 0..n-1; at least 1.
int bits_for(std::uint64_t n);

}  // namespace addm::synth
