#include "synth/adder.hpp"

#include <stdexcept>

namespace addm::synth {

using netlist::NetId;
using netlist::NetlistBuilder;

AdderPorts build_adder(NetlistBuilder& b, std::span<const NetId> a,
                       std::span<const NetId> b_in, NetId cin) {
  if (a.size() != b_in.size() || a.empty())
    throw std::invalid_argument("build_adder: width mismatch or empty");
  AdderPorts ports;
  ports.sum.reserve(a.size());
  NetId carry = cin;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const NetId axb = b.xor2(a[k], b_in[k]);
    ports.sum.push_back(b.xor2(axb, carry));
    // carry = a&b | carry&(a^b)
    carry = b.or2(b.and2(a[k], b_in[k]), b.and2(carry, axb));
  }
  ports.carry_out = carry;
  return ports;
}

}  // namespace addm::synth
