// Ripple-carry adder generator (substrate for the arithmetic-based address
// generator baseline of the related work [Miranda et al., ADOPT]).
#pragma once

#include <vector>

#include "netlist/builder.hpp"

namespace addm::synth {

struct AdderPorts {
  std::vector<netlist::NetId> sum;  ///< LSB first, same width as the inputs
  netlist::NetId carry_out = netlist::kInvalidNet;
};

/// sum = a + b + cin (mod 2^width); widths must match. The serial carry
/// chain is the classic area-lean choice — and exactly why arithmetic-based
/// generators lose to counter-based ones on delay for regular patterns.
AdderPorts build_adder(netlist::NetlistBuilder& b, std::span<const netlist::NetId> a,
                       std::span<const netlist::NetId> b_in,
                       netlist::NetId cin = netlist::kConst0);

}  // namespace addm::synth
