#include "synth/fsm.hpp"

#include <stdexcept>

#include "logic/minimize.hpp"
#include "logic/sop_map.hpp"
#include "synth/counter.hpp"

namespace addm::synth {

using logic::Cover;
using logic::TruthTable;
using netlist::CellType;
using netlist::NetId;
using netlist::NetlistBuilder;

std::uint32_t gray_code(std::uint32_t i) { return i ^ (i >> 1); }

void FsmSpec::check() const {
  if (next_state.empty()) throw std::invalid_argument("FsmSpec: no states");
  if (select_of_state.size() != next_state.size())
    throw std::invalid_argument("FsmSpec: select table size mismatch");
  for (std::uint32_t s : next_state)
    if (s >= num_states()) throw std::invalid_argument("FsmSpec: next state out of range");
  for (std::uint32_t l : select_of_state)
    if (l >= num_select_lines)
      throw std::invalid_argument("FsmSpec: select line out of range");
}

namespace {

FsmPorts build_one_hot(NetlistBuilder& b, const FsmSpec& spec, NetId enable, NetId reset) {
  auto& nl = b.netlist();
  const std::size_t n = spec.num_states();
  std::vector<NetId> q(n);
  for (auto& net : q) net = nl.new_net();

  // D of state t = OR of predecessors.
  std::vector<std::vector<NetId>> preds(n);
  for (std::size_t s = 0; s < n; ++s) preds[spec.next_state[s]].push_back(q[s]);
  for (std::size_t t = 0; t < n; ++t) {
    const NetId d = b.or_tree(preds[t]);
    const CellType ff = (t == 0) ? CellType::DffES : CellType::DffER;
    nl.add_cell(ff, {d, enable, reset}, q[t]);
  }

  FsmPorts ports;
  ports.state = q;
  ports.select.resize(spec.num_select_lines);
  std::vector<std::vector<NetId>> gather(spec.num_select_lines);
  for (std::size_t s = 0; s < n; ++s) gather[spec.select_of_state[s]].push_back(q[s]);
  for (std::size_t l = 0; l < spec.num_select_lines; ++l)
    ports.select[l] = b.or_tree(gather[l]);
  return ports;
}

FsmPorts build_encoded(NetlistBuilder& b, const FsmSpec& spec, NetId enable, NetId reset,
                       const FsmStyle& style) {
  auto& nl = b.netlist();
  const std::size_t n = spec.num_states();
  const int bits = bits_for(n);

  auto code = [&](std::uint32_t s) {
    return style.encoding == FsmEncoding::Gray ? gray_code(s) : s;
  };

  std::vector<NetId> q(static_cast<std::size_t>(bits));
  for (auto& net : q) net = nl.new_net();

  // Don't-care set: unused state codes.
  TruthTable used(bits);
  for (std::uint32_t s = 0; s < n; ++s) used.set(code(s), true);
  const TruthTable dc = ~used;

  const bool saved_sharing = b.sharing();
  b.set_sharing(!style.flat_mapping);

  // Next-state functions, one per state bit, over the current code.
  for (int k = 0; k < bits; ++k) {
    TruthTable onset(bits);
    for (std::uint32_t s = 0; s < n; ++s)
      if ((code(spec.next_state[s]) >> k) & 1) onset.set(code(s), true);
    const Cover cov = logic::minimize(onset, onset | dc, style.minimize);
    const NetId d = logic::map_cover(b, cov, q);
    nl.add_cell(CellType::DffER, {d, enable, reset}, q[static_cast<std::size_t>(k)]);
  }

  // Output (select line) functions.
  FsmPorts ports;
  ports.state = q;
  ports.select.resize(spec.num_select_lines);
  for (std::size_t l = 0; l < spec.num_select_lines; ++l) {
    TruthTable onset(bits);
    for (std::uint32_t s = 0; s < n; ++s)
      if (spec.select_of_state[s] == l) onset.set(code(s), true);
    const Cover cov = logic::minimize(onset, onset | dc, style.minimize);
    ports.select[l] = logic::map_cover(b, cov, q);
  }
  b.set_sharing(saved_sharing);
  return ports;
}

}  // namespace

FsmPorts build_fsm(NetlistBuilder& b, const FsmSpec& spec, NetId enable, NetId reset,
                   const FsmStyle& style) {
  spec.check();
  // The reset state must carry code 0 so DffER/DffES resets reach it; both
  // binary and gray give code(0) == 0, and one-hot sets flip-flop 0.
  if (style.encoding == FsmEncoding::OneHot) return build_one_hot(b, spec, enable, reset);
  return build_encoded(b, spec, enable, reset, style);
}

}  // namespace addm::synth
