#include "synth/decoder.hpp"

#include <stdexcept>

namespace addm::synth {

using netlist::kConst1;
using netlist::NetId;
using netlist::NetlistBuilder;

std::vector<NetId> build_decoder(NetlistBuilder& b, std::span<const NetId> addr,
                                 std::size_t num_outputs, NetId enable,
                                 DecoderStyle style) {
  if (addr.empty()) throw std::invalid_argument("build_decoder: empty address");
  if (addr.size() > 24) throw std::invalid_argument("build_decoder: address too wide");
  const std::size_t space = std::size_t{1} << addr.size();
  if (num_outputs == 0) num_outputs = space;
  if (num_outputs > space)
    throw std::invalid_argument("build_decoder: more outputs than address space");

  // Pre-share the input inverters regardless of style.
  std::vector<NetId> inv_addr(addr.size());
  for (std::size_t k = 0; k < addr.size(); ++k) inv_addr[k] = b.inv(addr[k]);

  const bool saved_sharing = b.sharing();
  b.set_sharing(style != DecoderStyle::Flat);

  std::vector<NetId> outs(num_outputs);
  for (std::size_t i = 0; i < num_outputs; ++i) {
    NetId out;
    auto literal = [&](std::size_t k) { return (i >> k) & 1 ? addr[k] : inv_addr[k]; };
    if (style == DecoderStyle::SharedChain) {
      // Serial chain, LSB innermost, mapped DeMorgan-style as alternating
      // NAND2/NOR2 levels (the netlist 2002-era synthesis produced from a
      // behavioural decoder): v' = NAND(lit, v) at odd levels,
      // v' = NOR(lit', v) at even levels, one cell per address bit.
      // Right-associated suffixes are identical across outputs sharing
      // low-order bits, so structural hashing shares them: shared-decoder
      // area, depth linear in the address width. This linear depth is what
      // makes the paper's decoder delay grow so steeply with array size
      // (Figure 9).
      out = literal(0);
      bool inverted = false;
      for (std::size_t k = 1; k < addr.size(); ++k) {
        out = inverted ? b.nor2(b.inv(literal(k)), out) : b.nand2(literal(k), out);
        inverted = !inverted;
      }
      if (enable != kConst1) {
        out = inverted ? b.nor2(b.inv(enable), out) : b.nand2(enable, out);
        inverted = !inverted;
      }
      if (inverted) out = b.inv(out);
    } else {
      // Balanced tree, MSB-first literal order for consistent bracketing so
      // the shared style collapses common low-order suffixes (predecoding).
      std::vector<NetId> lits;
      lits.reserve(addr.size() + 1);
      for (std::size_t k = addr.size(); k-- > 0;) lits.push_back(literal(k));
      if (enable != kConst1) lits.push_back(enable);
      out = b.and_tree(lits);
    }
    outs[i] = out;
  }
  b.set_sharing(saved_sharing);
  return outs;
}

}  // namespace addm::synth
