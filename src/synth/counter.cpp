#include "synth/counter.hpp"

#include <stdexcept>

namespace addm::synth {

using netlist::kConst1;
using netlist::NetId;
using netlist::NetlistBuilder;

int bits_for(std::uint64_t n) {
  int b = 1;
  while ((std::uint64_t{1} << b) < n) ++b;
  return b;
}

namespace {

// Carry into bit k of an incrementer over `q` (carry[0] = 1).
std::vector<NetId> increment_carries(NetlistBuilder& b, std::span<const NetId> q,
                                     CarryStyle style) {
  std::vector<NetId> carry(q.size());
  if (style == CarryStyle::Ripple) {
    NetId c = kConst1;
    for (std::size_t k = 0; k < q.size(); ++k) {
      carry[k] = c;
      c = b.and2(c, q[k]);
    }
  } else {
    for (std::size_t k = 0; k < q.size(); ++k)
      carry[k] = b.and_tree(q.subspan(0, k));
  }
  return carry;
}

}  // namespace

CounterPorts build_counter(NetlistBuilder& b, const CounterSpec& spec, NetId enable,
                           NetId reset) {
  if (spec.bits < 1 || spec.bits > 62)
    throw std::invalid_argument("build_counter: bits out of range");
  const std::uint64_t modulo =
      spec.modulo == 0 ? (std::uint64_t{1} << spec.bits) : spec.modulo;
  if (modulo < 2 || modulo > (std::uint64_t{1} << spec.bits))
    throw std::invalid_argument("build_counter: modulo does not fit in bits");
  if (spec.cascade_digit_bits < 0)
    throw std::invalid_argument("build_counter: negative digit width");

  auto& nl = b.netlist();
  std::vector<NetId> q(static_cast<std::size_t>(spec.bits));
  for (auto& n : q) n = nl.new_net();

  CounterPorts ports;
  ports.wrap = b.equals_const(q, modulo - 1);
  const bool power_of_two = modulo == (std::uint64_t{1} << spec.bits);
  // A non-power-of-two modulo forces every bit to 0 on the wrap cycle; all
  // digits must clock on that cycle even when their lower digits are not
  // all-ones, hence the wrap_force term OR-ed into every digit enable.
  const NetId wrap_kill = power_of_two ? kConst1 : b.inv(ports.wrap);
  const NetId wrap_force =
      power_of_two ? netlist::kConst0 : b.and2(enable, ports.wrap);

  const int digit =
      spec.cascade_digit_bits == 0 ? spec.bits : spec.cascade_digit_bits;

  // Enable of digit d = enable & local wraps of all lower digits (computed as
  // one balanced tree per digit, so counter delay stays flat in total width);
  // within a digit the usual increment carries apply. A monolithic counter is
  // the single-digit special case.
  std::vector<NetId> lower_wraps;  // all-ones detectors of lower digits
  for (int lo = 0; lo < spec.bits; lo += digit) {
    const int width = std::min(digit, spec.bits - lo);
    const std::span<const NetId> dq(q.data() + lo, static_cast<std::size_t>(width));
    NetId digit_enable = b.and2(enable, b.and_tree(lower_wraps));
    if (wrap_force != netlist::kConst0) digit_enable = b.or2(wrap_force, digit_enable);
    const auto carry = increment_carries(b, dq, spec.carry);
    for (int k = 0; k < width; ++k) {
      NetId d = b.xor2(dq[static_cast<std::size_t>(k)], carry[static_cast<std::size_t>(k)]);
      d = b.and2(d, wrap_kill);
      nl.add_cell(netlist::CellType::DffER, {d, digit_enable, reset},
                  q[static_cast<std::size_t>(lo + k)]);
    }
    lower_wraps.push_back(b.and_tree(dq));
  }
  ports.q = std::move(q);
  return ports;
}

}  // namespace addm::synth
