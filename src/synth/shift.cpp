#include "synth/shift.hpp"

#include <stdexcept>

namespace addm::synth {

using netlist::CellType;
using netlist::NetId;
using netlist::NetlistBuilder;

std::vector<NetId> build_token_ring(NetlistBuilder& b, std::size_t length, NetId enable,
                                    NetId reset) {
  if (length == 0) throw std::invalid_argument("build_token_ring: empty ring");
  auto& nl = b.netlist();
  std::vector<NetId> q(length);
  for (auto& n : q) n = nl.new_net();
  for (std::size_t i = 0; i < length; ++i) {
    const NetId d = q[(i + length - 1) % length];
    // Position 0 holds the token after reset; every other stage clears.
    const CellType t = (i == 0) ? CellType::DffES : CellType::DffER;
    nl.add_cell(t, {d, enable, reset}, q[i]);
  }
  return q;
}

}  // namespace addm::synth
