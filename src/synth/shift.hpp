// Token-ring / shift-register primitives.
//
// A token ring is the shift-register solution of Section 3 of the paper: N
// flip-flops in a cycle carrying exactly one hot token that advances one
// position per enabled clock. After reset the token sits at position 0.
#pragma once

#include <vector>

#include "netlist/builder.hpp"

namespace addm::synth {

/// Builds a length-`length` token ring. Returns the flip-flop outputs
/// (position i is hot when the token is at i). `enable` gates advancement;
/// `reset` (synchronous) reloads the token at position 0.
std::vector<netlist::NetId> build_token_ring(netlist::NetlistBuilder& b, std::size_t length,
                                             netlist::NetId enable, netlist::NetId reset);

}  // namespace addm::synth
