// Binary-to-one-hot decoder generator (the row/column decoders of the
// conventional RAM model, Figure 1 of the paper).
//
// Three construction styles spanning the synthesis-quality space:
//  * SharedChain (default for the paper-profile CntAG): product terms built
//    as serial AND chains with hash-consed suffixes. Area matches a shared
//    decoder, but depth grows linearly with the address width — the shape
//    2002-era behavioural synthesis produced, and the reason the paper's
//    decoder delay balloons with array size (Figure 9).
//  * SharedBalanced: hash-consed balanced trees; consistent bracketing makes
//    common suffixes collapse into a predecoded structure (what a modern
//    flow or a hand-designed RAM decoder does). Used by the ablation bench.
//  * Flat: one private balanced tree per output (input inverters still
//    shared) — sharing-free synthesis; maximal area.
// bench_ablation_sharing quantifies the spread.
#pragma once

#include <vector>

#include "netlist/builder.hpp"

namespace addm::synth {

enum class DecoderStyle { SharedChain, SharedBalanced, Flat };

/// Builds a decoder over `addr` (LSB first). Returns `num_outputs` one-hot
/// nets (output i asserted iff addr==i and enable). `num_outputs` may be less
/// than 2^addr.size() for non-power-of-two arrays; pass 0 for the full 2^n.
/// `enable` gates every output (use netlist::kConst1 for none).
std::vector<netlist::NetId> build_decoder(netlist::NetlistBuilder& b,
                                          std::span<const netlist::NetId> addr,
                                          std::size_t num_outputs, netlist::NetId enable,
                                          DecoderStyle style);

}  // namespace addm::synth
