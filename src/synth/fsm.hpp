// Symbolic FSM synthesis — the "general FSM address generator" of Section 3.
//
// The address generator for an ADDM with a deterministic access pattern is an
// autonomous Moore machine: one state per sequence position, a single `next`
// input advancing it, and one-hot select-line outputs. This generator
// synthesizes such machines from a state table:
//  * Binary/Gray encodings: next-state and output functions are minimized
//    over the state code via logic::minimize (ISOP by default, Espresso for
//    large state spaces — FsmStyle::minimize selects), unused codes used as
//    don't-cares, then mapped onto gates (flat or shared style).
//  * OneHot encoding: one flip-flop per state, OR-gathered outputs (the
//    encoding SFM uses; the paper's two-hot SRAG beats it on area).
// State 0 must be the reset state (all encodings give it code 0).
#pragma once

#include <cstdint>
#include <vector>

#include "logic/minimize.hpp"
#include "netlist/builder.hpp"

namespace addm::synth {

struct FsmSpec {
  /// next_state[s] = successor of state s; states are 0..num_states()-1.
  std::vector<std::uint32_t> next_state;
  /// select_of_state[s] = the single select line asserted in state s.
  std::vector<std::uint32_t> select_of_state;
  /// Total select lines (>= max(select_of_state)+1).
  std::size_t num_select_lines = 0;

  std::size_t num_states() const { return next_state.size(); }
  /// Throws std::invalid_argument if the table is malformed.
  void check() const;
};

enum class FsmEncoding { Binary, Gray, OneHot };

struct FsmStyle {
  FsmEncoding encoding = FsmEncoding::Binary;
  bool flat_mapping = true;  ///< no structural sharing while mapping logic
  /// Two-level minimizer for the next-state/output functions.  The default
  /// routes everything through ISOP (byte-identical to the historical
  /// behavior); large state spaces want MinimizerAlgo::Auto/Espresso.
  logic::MinimizeOptions minimize;
};

struct FsmPorts {
  std::vector<netlist::NetId> state;   ///< state register outputs
  std::vector<netlist::NetId> select;  ///< one-hot select lines
};

/// Appends the machine to `b`. `enable` advances it; `reset` (synchronous,
/// dominant) returns it to state 0.
FsmPorts build_fsm(netlist::NetlistBuilder& b, const FsmSpec& spec, netlist::NetId enable,
                   netlist::NetId reset, const FsmStyle& style);

/// Gray code of i (used by the Gray encoding; exposed for tests).
std::uint32_t gray_code(std::uint32_t i);

}  // namespace addm::synth
