// addm_trace_import — converts valgrind/lackey-style recorded memory logs
// into trace files for addm_explore.
//
//   valgrind --tool=lackey --trace-mem=yes ./app 2> app.log
//   addm_trace_import --geometry 64x64 --in app.log --out app.trace
//
// Log lines look like "I 04023c10,3" / " L 04025cb0,8" (instruction fetch,
// load, store, modify; hex address, byte size); `==pid==` chatter and blank
// lines are skipped.  Selected accesses map onto the declared array as
// linear = (addr - base) / word size; by default the base is the first
// selected access's address, so a dumped array maps from word 0.
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hpp"
#include "seq/stream_io.hpp"
#include "seq/trace_io.hpp"

namespace {

using addm::tools::parse_geometry;
using addm::tools::parse_size;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --geometry WxH [options]\n"
      << "\n"
      << "  --geometry WxH       target array shape (required); addresses must\n"
      << "                       map inside it\n"
      << "  --in FILE            lackey-style log to read (default: stdin)\n"
      << "  --out FILE           trace file to write (default: stdout)\n"
      << "  --kinds CHARS        access markers to keep, a subset of ILSM\n"
      << "                       (default LSM: loads, stores, modifies)\n"
      << "  --word N             bytes per array word (default 4); sub-word\n"
      << "                       accesses fold onto their containing word\n"
      << "  --base auto|ADDR     base address mapping to word 0: 'auto' (the\n"
      << "                       default) uses the first kept access, ADDR is\n"
      << "                       hex (0x... or bare hex digits)\n"
      << "  --name NAME          name directive for the output trace\n"
      << "  --quiet              suppress the stderr summary\n";
}

// Hex base address: optional 0x/0X prefix, then hex digits.
bool parse_base(const char* s, std::uint64_t& out) {
  if (!s || !*s) return false;
  if (s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) s += 2;
  if (!*s) return false;
  std::uint64_t v = 0;
  for (; *s; ++s) {
    if (!std::isxdigit(static_cast<unsigned char>(*s))) return false;
    if (v >> 60) return false;  // would overflow
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(*s)));
    v = v * 16 + static_cast<std::uint64_t>(
                     std::isdigit(static_cast<unsigned char>(c)) ? c - '0'
                                                                 : c - 'a' + 10);
  }
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  addm::seq::LackeyImportOptions opt;
  bool have_geometry = false;
  std::string in_path;
  std::string out_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--geometry") {
      if (!parse_geometry(need_value(), opt.geometry)) {
        std::cerr << argv[0] << ": --geometry expects WxH (e.g. 64x64)\n";
        return 2;
      }
      have_geometry = true;
    } else if (arg == "--in") {
      in_path = need_value();
    } else if (arg == "--out") {
      out_path = need_value();
    } else if (arg == "--kinds") {
      opt.kinds = need_value();
      if (opt.kinds.empty() ||
          opt.kinds.find_first_not_of("ILSM") != std::string::npos) {
        std::cerr << argv[0] << ": --kinds expects a non-empty subset of ILSM\n";
        return 2;
      }
    } else if (arg == "--word") {
      std::size_t v = 0;
      if (!parse_size(need_value(), v) || v == 0 || v > (1u << 20)) {
        std::cerr << argv[0] << ": --word expects a positive byte count\n";
        return 2;
      }
      opt.word_bytes = static_cast<std::uint32_t>(v);
    } else if (arg == "--base") {
      const std::string value = need_value();
      if (value == "auto") {
        opt.auto_base = true;
      } else if (parse_base(value.c_str(), opt.base)) {
        opt.auto_base = false;
      } else {
        std::cerr << argv[0] << ": --base expects 'auto' or a hex address\n";
        return 2;
      }
    } else if (arg == "--name") {
      opt.name = need_value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_geometry) {
    std::cerr << argv[0] << ": --geometry is required\n";
    usage(argv[0]);
    return 2;
  }

  try {
    addm::seq::AddressTrace trace =
        in_path.empty() ? addm::seq::import_lackey(std::cin, opt)
                        : addm::seq::import_lackey_file(in_path, opt);
    if (out_path.empty()) {
      addm::seq::write_trace(std::cout, trace);
      std::cout.flush();
      if (!std::cout) {
        std::cerr << argv[0] << ": error writing trace to stdout\n";
        return 1;
      }
    } else {
      addm::seq::write_trace_file(out_path, trace);
    }
    if (!quiet)
      std::cerr << "imported " << trace.length() << " accesses onto "
                << trace.geometry().width << "x" << trace.geometry().height
                << " (kinds " << opt.kinds << ", word " << opt.word_bytes
                << " bytes)\n";
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
