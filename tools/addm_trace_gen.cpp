// addm_trace_gen — writes the built-in workload suite as *.trace files so
// external profilers (and addm_explore --trace-dir) can consume them.
//
//   addm_trace_gen --out-dir traces --suite 12 [--base 8x8]
//
// produces one file per trace, named after the trace
// (e.g. transpose_16x8.trace), in the seq/trace_io text format.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "cli_util.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

using addm::tools::parse_geometry;
using addm::tools::parse_size;

int main(int argc, char** argv) {
  std::string out_dir;
  std::size_t scales = 1;
  addm::seq::ArrayGeometry base{8, 8};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: " << argv[0]
                << " --out-dir DIR [--suite N] [--base WxH]\n";
      return 0;
    } else if (arg == "--out-dir") {
      out_dir = need_value();
    } else if (arg == "--suite") {
      if (!parse_size(need_value(), scales) || scales == 0) {
        std::cerr << argv[0] << ": --suite expects a positive count\n";
        return 2;
      }
    } else if (arg == "--base") {
      if (!parse_geometry(need_value(), base)) {
        std::cerr << argv[0] << ": --base expects WxH (e.g. 8x8)\n";
        return 2;
      }
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::cerr << argv[0] << ": --out-dir is required\n";
    return 2;
  }

  try {
    std::filesystem::create_directories(out_dir);
    const auto traces = addm::seq::scaled_suite(base, scales);
    for (const auto& t : traces) {
      const std::string path =
          (std::filesystem::path(out_dir) / (t.name() + ".trace")).string();
      addm::seq::write_trace_file(path, t);
    }
    std::cerr << "wrote " << traces.size() << " traces to " << out_dir << "\n";
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
