// Shared argument-parsing helpers for the addm command-line tools.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "seq/trace.hpp"

namespace addm::tools {

/// Strict non-negative integer: digits only (no sign, no whitespace, no
/// trailing junk). Returns false on overflow or malformed input.
inline bool parse_size(const char* s, std::size_t& out) {
  if (!s || !std::isdigit(static_cast<unsigned char>(*s))) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// "WxH" with positive dimensions, e.g. "8x8".
inline bool parse_geometry(const char* s, seq::ArrayGeometry& g) {
  const char* x = std::strchr(s, 'x');
  if (!x) return false;
  const std::string w(s, x);
  std::size_t wv = 0, hv = 0;
  if (!parse_size(w.c_str(), wv) || !parse_size(x + 1, hv)) return false;
  if (wv == 0 || hv == 0) return false;
  g.width = wv;
  g.height = hv;
  return true;
}

/// Upper bound on --threads: far above any real machine, low enough that a
/// typo cannot ask the thread pool for billions of workers.
inline constexpr std::size_t kMaxThreads = 1024;

/// Byte size: digits with an optional binary-suffix k/m/g (case-insensitive),
/// e.g. "16384", "16k", "2M".  Returns false on overflow, a bare suffix, or
/// any other malformed input.
inline bool parse_bytes(const char* s, std::uint64_t& out) {
  if (!s || !std::isdigit(static_cast<unsigned char>(*s))) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s) return false;
  std::uint64_t scale = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': scale = 1ull << 10; break;
      case 'm': scale = 1ull << 20; break;
      case 'g': scale = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  if (v > UINT64_MAX / scale) return false;
  out = static_cast<std::uint64_t>(v) * scale;
  return true;
}

/// Slurps a file in binary mode.  Returns false when the file cannot be
/// opened or the read fails partway.
inline bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return false;
  out = os.str();
  return true;
}

/// Upper bound on the --shard count: generous for any real fleet, and low
/// enough that len*count cannot overflow std::size_t in ShardSpec::range.
inline constexpr std::size_t kMaxShards = 4096;

/// "I/N" shard spec with 0 <= I < N and 1 <= N <= kMaxShards, e.g. "0/3".
/// Shard I of N owns the contiguous block [I*len/N, (I+1)*len/N) of the
/// input trace list, so concatenating the per-shard reports in shard order
/// reproduces the unsharded report byte-for-byte (see docs/cache-format.md).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// The half-open range this shard owns out of `n` items.
  std::pair<std::size_t, std::size_t> range(std::size_t n) const {
    return {n * index / count, n * (index + 1) / count};
  }
};

inline bool parse_shard(const char* s, ShardSpec& out) {
  const char* slash = std::strchr(s, '/');
  if (!slash) return false;
  const std::string i(s, slash);
  std::size_t iv = 0, nv = 0;
  if (!parse_size(i.c_str(), iv) || !parse_size(slash + 1, nv)) return false;
  if (nv == 0 || nv > kMaxShards || iv >= nv) return false;
  out.index = iv;
  out.count = nv;
  return true;
}

}  // namespace addm::tools
