// Shared argument-parsing helpers for the addm command-line tools.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "seq/trace.hpp"

namespace addm::tools {

/// Strict non-negative integer: digits only (no sign, no whitespace, no
/// trailing junk). Returns false on overflow or malformed input.
inline bool parse_size(const char* s, std::size_t& out) {
  if (!s || !std::isdigit(static_cast<unsigned char>(*s))) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// "WxH" with positive dimensions, e.g. "8x8".
inline bool parse_geometry(const char* s, seq::ArrayGeometry& g) {
  const char* x = std::strchr(s, 'x');
  if (!x) return false;
  const std::string w(s, x);
  std::size_t wv = 0, hv = 0;
  if (!parse_size(w.c_str(), wv) || !parse_size(x + 1, hv)) return false;
  if (wv == 0 || hv == 0) return false;
  g.width = wv;
  g.height = hv;
  return true;
}

/// Upper bound on --threads: far above any real machine, low enough that a
/// typo cannot ask the thread pool for billions of workers.
inline constexpr std::size_t kMaxThreads = 1024;

}  // namespace addm::tools
