// addm_client — batch client for the addm_serve exploration daemon.
//
// Mirrors the addm_explore interface over a socket: the same input
// selection and exploration flags build one explore request, the daemon
// runs it against its warm shared cache, and the report streamed back is
// byte-identical to the offline addm_explore run with the same arguments
// (tests/serve_smoke.sh compares the two in CI).
//
// Besides explorations the client drives the daemon's lifecycle:
//   addm_client ping                  liveness probe (prints the banner)
//   addm_client admin stats           cache statistics (JSON)
//   addm_client admin compact         canonicalize the cache directory
//   addm_client admin prune --max-entries N / --max-bytes B
//   addm_client admin flush           persist pending cache state now
//   addm_client admin shutdown        ask the daemon to drain and exit
//
// Exit status: 0 = success, 1 = transport or server failure, 2 = usage,
// 3 = exploration completed but some traces reported errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/explorer.hpp"
#include "serve/client.hpp"

namespace {

using addm::tools::parse_bytes;
using addm::tools::parse_size;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [connection] [explore options]\n"
      << "       " << argv0 << " [connection] ping\n"
      << "       " << argv0 << " [connection] admin COMMAND [options]\n"
      << "\n"
      << "connection (default: unix socket ./addm_serve.sock):\n"
      << "  --socket PATH        connect to a unix-domain socket at PATH\n"
      << "  --connect PORT       connect to 127.0.0.1:PORT instead\n"
      << "  --json               speak the JSON-lines fallback mode\n"
      << "\n"
      << "explore input selection (at least one):\n"
      << "  --suite N            built-in workload suite over N geometries\n"
      << "  --base WxH           base geometry for --suite (default 8x8)\n"
      << "  --trace FILE         add one trace file, read by the daemon\n"
      << "                       (repeatable)\n"
      << "  --send-trace FILE    add one trace file, read here and sent\n"
      << "                       inline (repeatable; for daemons that cannot\n"
      << "                       see this filesystem path)\n"
      << "\n"
      << "explore options (same semantics as addm_explore):\n"
      << "  --archs a,b,...      only these candidate architectures\n"
      << "  --no-fsm             skip symbolic-FSM candidates\n"
      << "  --max-fsm-states N   FSM feasibility cap\n"
      << "  --max-fanout N       buffering fanout limit\n"
      << "  --minimizer M        isop, espresso, exact, or auto\n"
      << "  --espresso-threshold N\n"
      << "                       auto-minimizer variable threshold (1..24)\n"
      << "  --verify-front       gate-level-verify every Pareto point\n"
      << "  --compress-periodic  evaluate periodic traces on one period\n"
      << "\n"
      << "output:\n"
      << "  --format csv|json    report format (default csv)\n"
      << "  --out FILE           write report to FILE (default stdout)\n"
      << "  --quiet              suppress the stderr summary\n"
      << "\n"
      << "admin commands:\n"
      << "  stats | compact | flush | shutdown\n"
      << "  prune --max-entries N and/or --max-bytes B\n";
}

}  // namespace

int main(int argc, char** argv) {
  using addm::serve::ExploreRequest;
  using addm::serve::ServeClient;
  using addm::serve::TraceSource;

  std::string socket_path = "addm_serve.sock";
  int tcp_port = -1;
  bool json_mode = false;
  std::string out_path;
  bool quiet = false;

  ExploreRequest req;
  std::string mode;  // "", "ping", "admin"
  std::vector<std::string> admin_args;
  bool have_input = false;
  bool have_max_entries = false;
  bool have_max_bytes = false;
  std::uint64_t max_entries = 0;
  std::uint64_t max_bytes = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto add_option = [&](const char* key, std::string value = {}) {
      req.options.emplace_back(key, std::move(value));
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--socket") {
      socket_path = need_value();
      tcp_port = -1;
    } else if (arg == "--connect") {
      std::size_t port = 0;
      if (!parse_size(need_value(), port) || port == 0 || port > 65535) {
        std::cerr << argv[0] << ": --connect expects a port number (1..65535)\n";
        return 2;
      }
      tcp_port = static_cast<int>(port);
    } else if (arg == "--json") {
      json_mode = true;
    } else if (arg == "--suite") {
      if (!parse_size(need_value(), req.suite_scales) || req.suite_scales == 0) {
        std::cerr << argv[0] << ": --suite expects a positive count\n";
        return 2;
      }
      have_input = true;
    } else if (arg == "--base") {
      if (!addm::tools::parse_geometry(need_value(), req.suite_base)) {
        std::cerr << argv[0] << ": --base expects WxH (e.g. 8x8)\n";
        return 2;
      }
    } else if (arg == "--trace") {
      TraceSource t;
      t.kind = TraceSource::Kind::kPath;
      // The daemon resolves relative paths against its own working
      // directory, so hand it an absolute one when we can.
      std::error_code ec;
      const auto abs = std::filesystem::absolute(need_value(), ec);
      t.name = ec ? std::string(argv[i]) : abs.string();
      req.traces.push_back(std::move(t));
      have_input = true;
    } else if (arg == "--send-trace") {
      const std::string path = need_value();
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << argv[0] << ": cannot open trace file: " << path << "\n";
        return 1;
      }
      std::ostringstream data;
      data << in.rdbuf();
      TraceSource t;
      t.kind = TraceSource::Kind::kInline;
      t.name = std::filesystem::path(path).stem().string();
      t.data = data.str();
      req.traces.push_back(std::move(t));
      have_input = true;
    } else if (arg == "--archs") {
      add_option("archs", need_value());
    } else if (arg == "--no-fsm") {
      add_option("no-fsm");
    } else if (arg == "--verify-front") {
      add_option("verify-front");
    } else if (arg == "--compress-periodic") {
      add_option("compress-periodic");
    } else if (arg == "--max-fsm-states") {
      add_option("max-fsm-states", need_value());
    } else if (arg == "--max-fanout") {
      add_option("max-fanout", need_value());
    } else if (arg == "--minimizer") {
      add_option("minimizer", need_value());
    } else if (arg == "--espresso-threshold") {
      add_option("espresso-threshold", need_value());
    } else if (arg == "--format") {
      req.format = need_value();
      if (req.format != "csv" && req.format != "json") {
        std::cerr << argv[0] << ": --format must be csv or json\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = need_value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--max-entries") {
      if (!parse_bytes(need_value(), max_entries) || max_entries == 0) {
        std::cerr << argv[0] << ": --max-entries expects a positive number\n";
        return 2;
      }
      have_max_entries = true;
    } else if (arg == "--max-bytes") {
      if (!parse_bytes(need_value(), max_bytes) || max_bytes == 0) {
        std::cerr << argv[0]
                  << ": --max-bytes expects a positive byte size (suffix k/m/g)\n";
        return 2;
      }
      have_max_bytes = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    } else if (mode.empty()) {
      if (arg != "ping" && arg != "admin") {
        std::cerr << argv[0] << ": unknown command '" << arg << "'\n";
        usage(argv[0]);
        return 2;
      }
      mode = arg;
    } else if (mode == "admin") {
      admin_args.push_back(arg);
    } else {
      std::cerr << argv[0] << ": unexpected argument '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  // Validate the exploration options locally so usage errors stay exit 2
  // and never reach the daemon.
  if (mode.empty()) {
    if (!have_input) {
      std::cerr << argv[0]
                << ": no input traces (use --suite, --trace or --send-trace)\n";
      usage(argv[0]);
      return 2;
    }
    addm::core::ExploreOptions scratch;
    std::string why;
    if (!addm::serve::build_explore_options(req, scratch, why)) {
      std::cerr << argv[0] << ": " << why << "\n";
      return 2;
    }
  }

  std::string admin_command;
  if (mode == "admin") {
    if (admin_args.empty()) {
      std::cerr << argv[0]
                << ": admin expects a command (stats, compact, prune, flush, shutdown)\n";
      return 2;
    }
    const std::string& verb = admin_args[0];
    if (admin_args.size() > 1) {
      std::cerr << argv[0] << ": unexpected argument '" << admin_args[1] << "'\n";
      return 2;
    }
    if (verb == "prune") {
      if (!have_max_entries && !have_max_bytes) {
        std::cerr << argv[0]
                  << ": prune requires --max-entries and/or --max-bytes\n";
        return 2;
      }
      admin_command = "prune " + std::to_string(have_max_entries ? max_entries : 0) +
                      " " + std::to_string(have_max_bytes ? max_bytes : 0);
    } else if (verb == "stats" || verb == "compact" || verb == "flush" ||
               verb == "shutdown") {
      admin_command = verb;
    } else {
      std::cerr << argv[0] << ": unknown admin command '" << verb << "'\n";
      return 2;
    }
    if (have_max_entries || have_max_bytes) {
      if (verb != "prune") {
        std::cerr << argv[0]
                  << ": --max-entries/--max-bytes only apply to admin prune\n";
        return 2;
      }
    }
  } else if (have_max_entries || have_max_bytes) {
    std::cerr << argv[0] << ": --max-entries/--max-bytes only apply to admin prune\n";
    return 2;
  }

  ServeClient client;
  client.set_json_mode(json_mode);
  std::string error;
  const bool connected =
      tcp_port >= 0 ? client.connect_tcp("127.0.0.1", tcp_port, error)
                    : client.connect_unix(socket_path, error);
  if (!connected) {
    std::cerr << argv[0] << ": " << error << "\n";
    return 1;
  }

  if (mode == "ping") {
    std::string banner;
    if (!client.ping(banner, error)) {
      std::cerr << argv[0] << ": " << error << "\n";
      return 1;
    }
    std::cout << banner << "\n";
    return 0;
  }

  if (mode == "admin") {
    ServeClient::Result result;
    if (!client.admin(admin_command, result, error)) {
      std::cerr << argv[0] << ": " << error << "\n";
      return 1;
    }
    if (!result.ok) {
      std::cerr << argv[0] << ": " << result.error.code << ": "
                << result.error.message << "\n";
      return 1;
    }
    std::cout << result.body;
    std::cout.flush();
    return std::cout ? 0 : 1;
  }

  ServeClient::Result result;
  if (!client.explore(req, result, error)) {
    std::cerr << argv[0] << ": " << error << "\n";
    return 1;
  }
  if (!result.ok) {
    std::cerr << argv[0] << ": " << result.error.code << ": "
              << result.error.message << "\n";
    return 1;
  }

  if (out_path.empty()) {
    std::cout << result.body;
    std::cout.flush();
    if (!std::cout) {
      std::cerr << argv[0] << ": error writing report to stdout\n";
      return 1;
    }
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << argv[0] << ": cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << result.body;
    out.flush();
    if (!out) {
      std::cerr << argv[0] << ": error writing report to " << out_path << "\n";
      return 1;
    }
  }

  if (!quiet) {
    std::fprintf(stderr,
                 "served %llu traces (%llu evaluated, %llu memo hits, "
                 "%llu disk hits, %llu errors)\n",
                 static_cast<unsigned long long>(result.summary.traces),
                 static_cast<unsigned long long>(result.summary.evaluations),
                 static_cast<unsigned long long>(result.summary.cache_hits),
                 static_cast<unsigned long long>(result.summary.disk_hits),
                 static_cast<unsigned long long>(result.summary.errors));
  }
  return result.summary.errors == 0 ? 0 : 3;
}
