// addm_merge — merges sharded addm_explore outputs back into one artifact.
//
// Two independent jobs, either or both per invocation:
//  * Report merge: given the per-shard reports in shard order (shard 0
//    first), emits one report byte-identical to what the unsharded
//    addm_explore run would have produced.  Works for both report formats;
//    the inputs must all be the same format as --format.
//  * Cache merge: --cache-into DST --cache SRC (repeatable) folds every
//    valid evaluation-cache entry of the sources into DST and canonicalizes
//    the result (the same rewrite addm_cache compact performs), so per-shard
//    cache directories collapse into one warm, already-compacted cache and
//    merge order cannot influence the output bytes.
//
// The byte-identical guarantee holds because addm_explore shards the input
// list into contiguous blocks, report rows carry no shard- or
// schedule-dependent data, and the JSON summary contains only the trace
// count (see docs/cache-format.md for the contract).
//
// Exit status: 0 on success, 1 on I/O errors or malformed inputs, 2 on
// usage errors.
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/eval_cache.hpp"

namespace {

using addm::tools::read_file;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [REPORT...]\n"
      << "\n"
      << "Merges per-shard addm_explore reports (given in shard order) and/or\n"
      << "per-shard evaluation-cache directories.\n"
      << "\n"
      << "report merge:\n"
      << "  REPORT...            per-shard report files, shard 0 first\n"
      << "  --format csv|json    format of the inputs and output (default csv)\n"
      << "  --out FILE           write merged report to FILE (default stdout)\n"
      << "\n"
      << "cache merge:\n"
      << "  --cache-into DIR     destination cache directory\n"
      << "  --cache DIR          source cache directory (repeatable)\n"
      << "\n"
      << "other:\n"
      << "  --quiet              suppress the stderr summary\n";
}

/// Merged CSV = first file's header + every file's rows, in argument order.
/// Fails unless every input starts with the same header line.
bool merge_csv(const std::vector<std::string>& texts, std::string& out,
               std::string& error) {
  std::string header;
  std::string body;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const std::string& text = texts[i];
    const std::size_t nl = text.find('\n');
    if (nl == std::string::npos) {
      error = "report " + std::to_string(i) + " has no header line";
      return false;
    }
    const std::string h = text.substr(0, nl + 1);
    if (i == 0)
      header = h;
    else if (h != header) {
      error = "report " + std::to_string(i) + " header differs from report 0";
      return false;
    }
    body += text.substr(nl + 1);
  }
  out = header + body;
  return true;
}

/// Extracts the per-shard pieces of a batch_report_json document: the
/// summary trace count and the raw text of the trace-entry list.  Relies on
/// the report's fixed serialization (deterministic field order, 4-space
/// entry indentation), which is part of its documented format.
bool split_json(const std::string& text, std::size_t index, std::size_t& traces,
                std::string& chunk, std::string& error) {
  const std::string summary_open = "\"summary\": {\"traces\": ";
  const std::size_t s = text.find(summary_open);
  const std::size_t s_end = s == std::string::npos
                                ? std::string::npos
                                : text.find('}', s + summary_open.size());
  const std::string list_open = "\n  \"traces\": [\n";
  const std::size_t l = text.find(list_open);
  const std::string suffix = "  ]\n}\n";
  if (s == std::string::npos || s_end == std::string::npos ||
      l == std::string::npos || text.size() < l + list_open.size() + suffix.size() ||
      text.compare(text.size() - suffix.size(), suffix.size(), suffix) != 0) {
    error = "report " + std::to_string(index) + " is not an addm_explore JSON report";
    return false;
  }
  const std::string count =
      text.substr(s + summary_open.size(), s_end - s - summary_open.size());
  traces = 0;
  for (char c : count) {
    if (c < '0' || c > '9') {
      error = "report " + std::to_string(index) + " has a malformed summary";
      return false;
    }
    traces = traces * 10 + static_cast<std::size_t>(c - '0');
  }
  chunk = text.substr(l + list_open.size(),
                      text.size() - suffix.size() - l - list_open.size());
  if (!chunk.empty() &&
      (chunk.size() < 6 || chunk.compare(chunk.size() - 6, 6, "    }\n") != 0)) {
    error = "report " + std::to_string(index) + " has an unexpected entry layout";
    return false;
  }
  return true;
}

bool merge_json(const std::vector<std::string>& texts, std::string& out,
                std::string& error) {
  std::size_t total = 0;
  std::vector<std::string> chunks;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    std::size_t traces = 0;
    std::string chunk;
    if (!split_json(texts[i], i, traces, chunk, error)) return false;
    total += traces;
    if (!chunk.empty()) chunks.push_back(std::move(chunk));
  }
  std::ostringstream os;
  os << "{\n";
  os << "  \"summary\": {\"traces\": " << total << "},\n";
  os << "  \"traces\": [\n";
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    std::string& chunk = chunks[i];
    // Every chunk ends with its last entry's unterminated "    }\n"; all but
    // the final chunk need the "," separator the unsharded report would have.
    if (i + 1 < chunks.size()) chunk = chunk.substr(0, chunk.size() - 1) + ",\n";
    os << chunk;
  }
  os << "  ]\n";
  os << "}\n";
  out = os.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> reports;
  std::string format = "csv";
  std::string out_path;
  std::string cache_into;
  std::vector<std::string> cache_srcs;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--format") {
      format = need_value();
      if (format != "csv" && format != "json") {
        std::cerr << argv[0] << ": --format must be csv or json\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = need_value();
    } else if (arg == "--cache-into") {
      cache_into = need_value();
    } else if (arg == "--cache") {
      cache_srcs.push_back(need_value());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    } else {
      reports.push_back(arg);
    }
  }

  if (reports.empty() && (cache_into.empty() || cache_srcs.empty())) {
    std::cerr << argv[0]
              << ": nothing to merge (give REPORT files and/or --cache-into with "
                 "--cache)\n";
    usage(argv[0]);
    return 2;
  }
  if (cache_into.empty() != cache_srcs.empty()) {
    std::cerr << argv[0] << ": --cache-into and --cache must be used together\n";
    return 2;
  }

  if (!reports.empty()) {
    std::vector<std::string> texts(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (!read_file(reports[i], texts[i])) {
        std::cerr << argv[0] << ": cannot read " << reports[i] << "\n";
        return 1;
      }
    }
    std::string merged;
    std::string error;
    const bool ok = format == "json" ? merge_json(texts, merged, error)
                                     : merge_csv(texts, merged, error);
    if (!ok) {
      std::cerr << argv[0] << ": " << error << "\n";
      return 1;
    }
    if (out_path.empty()) {
      std::cout << merged;
      std::cout.flush();
      if (!std::cout) {
        std::cerr << argv[0] << ": error writing report to stdout\n";
        return 1;
      }
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << argv[0] << ": cannot open " << out_path << " for writing\n";
        return 1;
      }
      out << merged;
      out.flush();
      if (!out) {
        std::cerr << argv[0] << ": error writing report to " << out_path << "\n";
        return 1;
      }
    }
    if (!quiet)
      std::fprintf(stderr, "merged %zu reports\n", reports.size());
  }

  if (!cache_into.empty()) {
    std::size_t copied = 0;
    std::size_t failed = 0;
    for (const std::string& src : cache_srcs) {
      const auto stats = addm::core::EvalCacheDir::merge(cache_into, src);
      copied += stats.copied;
      failed += stats.failed;
    }
    if (!quiet)
      std::fprintf(stderr, "merged %zu cache dirs into %s (%zu entries copied)\n",
                   cache_srcs.size(), cache_into.c_str(), copied);
    if (failed != 0) {
      std::cerr << argv[0] << ": failed to write " << failed << " entries into "
                << cache_into << "\n";
      return 1;
    }
  }

  return 0;
}
