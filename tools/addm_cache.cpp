// addm_cache — maintenance CLI for persistent evaluation-cache directories.
//
// Subcommands (all take the cache directory as their positional argument):
//   stats DIR             index/payload statistics; --json emits a fixed-order
//                         JSON object (golden-checked in CI)
//   verify-checksums DIR  full checksum validation of every indexed payload
//                         plus an orphan/stale-file scan; read-only
//   compact DIR           rewrite the directory into canonical form: drop
//                         dead and corrupt entries, fold duplicate records,
//                         re-adopt valid orphans, atomically replace the
//                         index, delete unreferenced files
//   prune DIR             compact plus budget enforcement (--max-entries /
//                         --max-bytes), evicting in the deterministic
//                         priority order documented in docs/cache-format.md
//
// compact and prune assume no concurrent writer on DIR (see the maintenance
// contract in core/eval_cache.hpp); stats and verify-checksums are safe any
// time.
//
// Exit status: 0 = success and (for verify-checksums) a clean directory,
// 1 = damage found or a maintenance/IO failure, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cli_util.hpp"
#include "core/eval_cache.hpp"

namespace {

using addm::core::EvalCacheDir;
using addm::tools::parse_bytes;
using addm::tools::parse_size;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " COMMAND DIR [options]\n"
      << "\n"
      << "commands:\n"
      << "  stats DIR            cache directory statistics\n"
      << "  verify-checksums DIR validate every indexed payload checksum\n"
      << "  compact DIR          rewrite DIR into canonical form\n"
      << "  prune DIR            compact plus entry/byte budget enforcement\n"
      << "\n"
      << "options:\n"
      << "  --json               (stats) emit a JSON object instead of text\n"
      << "  --max-entries N      (prune) keep at most N entries\n"
      << "  --max-bytes B        (prune) keep at most B payload bytes\n"
      << "                       (suffix k/m/g; at least one budget required)\n"
      << "  --quiet              suppress the stderr summary\n"
      << "  --help               this message\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::string dir;
  bool json = false;
  bool quiet = false;
  bool have_max_entries = false;
  bool have_max_bytes = false;
  std::uint64_t max_entries = UINT64_MAX;
  std::uint64_t max_bytes = UINT64_MAX;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--max-entries") {
      std::size_t v = 0;
      if (!parse_size(need_value(), v)) {
        std::cerr << argv[0] << ": --max-entries expects a non-negative number\n";
        return 2;
      }
      max_entries = v;
      have_max_entries = true;
    } else if (arg == "--max-bytes") {
      if (!parse_bytes(need_value(), max_bytes)) {
        std::cerr << argv[0]
                  << ": --max-bytes expects a byte size (suffix k/m/g)\n";
        return 2;
      }
      have_max_bytes = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    } else if (command.empty()) {
      command = arg;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << argv[0] << ": unexpected argument '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (command.empty() || dir.empty()) {
    std::cerr << argv[0] << ": expected a command and a cache directory\n";
    usage(argv[0]);
    return 2;
  }
  if (json && command != "stats") {
    std::cerr << argv[0] << ": --json only applies to stats\n";
    return 2;
  }
  if ((have_max_entries || have_max_bytes) && command != "prune") {
    std::cerr << argv[0] << ": --max-entries/--max-bytes only apply to prune\n";
    return 2;
  }

  EvalCacheDir cache(dir);

  if (command == "stats") {
    const EvalCacheDir::DirStats s = cache.stats();
    if (json) {
      std::cout << addm::core::eval_cache_stats_json(s);
      std::cout.flush();
      return std::cout ? 0 : 1;
    }
    std::printf("index version:    %d\n", s.index_version);
    std::printf("entries:          %zu\n", s.entries);
    std::printf("payload files:    %zu\n", s.payload_files);
    std::printf("missing payloads: %zu\n", s.missing_payloads);
    std::printf("orphan payloads:  %zu\n", s.orphan_payloads);
    std::printf("stale files:      %zu\n", s.stale_files);
    std::printf("index damage:     %zu\n", s.index_damage);
    std::printf("recorded bytes:   %llu\n",
                static_cast<unsigned long long>(s.recorded_bytes));
    std::printf("payload bytes:    %llu\n",
                static_cast<unsigned long long>(s.payload_bytes));
    std::printf("hits:             %llu\n", static_cast<unsigned long long>(s.hits));
    std::printf("max generation:   %llu\n",
                static_cast<unsigned long long>(s.max_generation));
    return 0;
  }

  if (command == "verify-checksums") {
    const EvalCacheDir::VerifyStats v = cache.verify();
    if (!quiet)
      std::fprintf(stderr,
                   "%s: %zu valid, %zu missing, %zu corrupt, %zu orphans, "
                   "%zu orphan-corrupt, %zu stale files, %zu damaged index lines\n",
                   dir.c_str(), v.valid, v.missing, v.corrupt, v.orphans,
                   v.orphan_corrupt, v.stale_files, v.index_damage);
    return v.clean() ? 0 : 1;
  }

  if (command == "compact" || command == "prune") {
    if (command == "prune" && !have_max_entries && !have_max_bytes) {
      std::cerr << argv[0]
                << ": prune requires --max-entries and/or --max-bytes\n";
      return 2;
    }
    const EvalCacheDir::MaintenanceStats m =
        command == "compact" ? cache.compact() : cache.prune(max_entries, max_bytes);
    if (!quiet)
      std::fprintf(stderr,
                   "%s: %zu kept (%llu bytes), %zu dropped, %zu adopted, "
                   "%zu evicted, %zu files removed\n",
                   dir.c_str(), m.kept,
                   static_cast<unsigned long long>(m.bytes_kept), m.dropped,
                   m.adopted, m.evicted, m.files_removed);
    if (!m.ok)
      std::cerr << argv[0] << ": maintenance failed on " << dir
                << " (future-version index, unwritable directory, or index "
                   "rewrite failure)\n";
    return m.ok ? 0 : 1;
  }

  std::cerr << argv[0] << ": unknown command '" << command << "'\n";
  usage(argv[0]);
  return 2;
}
