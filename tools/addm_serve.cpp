// addm_serve — exploration-as-a-service daemon.
//
// Keeps the batch explorer's memo table (and optionally a persistent cache
// directory) warm across many exploration requests, so a stream of related
// runs pays the evaluation cost once instead of once per process.  Clients
// connect over a local socket — Unix-domain by default, TCP loopback with
// --listen — and speak the versioned framing in docs/serve-protocol.md
// (addm_client is the reference client; a JSON-lines fallback serves
// shell/script clients without the binary).
//
// Served reports are byte-identical to the offline addm_explore run with
// the same inputs and options — the daemon is a latency optimization, never
// a result change (tests/serve_smoke.sh enforces this in CI).
//
// Cache lifecycle: request threads never write the cache directory; new
// results accumulate in memory and one serialized writer flushes them
// periodically (--flush-entries), on admin flush, and at shutdown,
// honoring --cache-budget.  Admin compact/prune run under the same
// serialization, so the eval-cache maintenance contract holds inside a
// live daemon.
//
// Lifecycle: SIGINT/SIGTERM drain in-flight requests, flush pending cache
// state, and exit 0.  --max-requests and --idle-timeout bound a daemon's
// lifetime for CI.
//
// Exit status: 0 = clean drain, 1 = startup or socket failure, 2 = usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using addm::tools::parse_bytes;
using addm::tools::parse_size;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "\n"
      << "transport (default: unix socket ./addm_serve.sock):\n"
      << "  --socket PATH        listen on a unix-domain socket at PATH\n"
      << "  --listen PORT        listen on 127.0.0.1:PORT instead (0 = pick a\n"
      << "                       free port; see --port-file)\n"
      << "  --port-file FILE     write the bound TCP port number to FILE\n"
      << "\n"
      << "execution:\n"
      << "  --threads N          worker-thread budget per request (default:\n"
      << "                       hardware)\n"
      << "  --request-threads N  concurrent connections served (default 2)\n"
      << "\n"
      << "cache lifecycle:\n"
      << "  --cache-dir DIR      persistent evaluation cache shared with\n"
      << "                       addm_explore runs\n"
      << "  --cache-budget B     prune the directory to at most B payload bytes\n"
      << "                       after each flush (suffix k/m/g; requires\n"
      << "                       --cache-dir)\n"
      << "  --flush-entries N    flush to disk once N entries are pending\n"
      << "                       (default 16; 0 = only on admin flush/shutdown)\n"
      << "\n"
      << "lifetime (for CI and scripting):\n"
      << "  --max-requests N     drain and exit 0 after serving N requests\n"
      << "  --idle-timeout S     drain and exit 0 after S seconds with no\n"
      << "                       activity\n"
      << "\n"
      << "  --quiet              suppress the stderr lifecycle log\n"
      << "  --help               this message\n";
}

addm::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  addm::serve::ServiceOptions service_opt;
  addm::serve::ServerOptions server_opt;
  server_opt.unix_path = "addm_serve.sock";
  std::string port_file;
  bool have_listen = false;
  bool have_socket = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--socket") {
      server_opt.unix_path = need_value();
      have_socket = true;
    } else if (arg == "--listen") {
      std::size_t port = 0;
      if (!parse_size(need_value(), port) || port > 65535) {
        std::cerr << argv[0] << ": --listen expects a port number (0..65535)\n";
        return 2;
      }
      server_opt.tcp_port = static_cast<int>(port);
      have_listen = true;
    } else if (arg == "--port-file") {
      port_file = need_value();
    } else if (arg == "--threads") {
      if (!parse_size(need_value(), service_opt.threads) ||
          service_opt.threads > addm::tools::kMaxThreads) {
        std::cerr << argv[0] << ": --threads expects a number between 0 and "
                  << addm::tools::kMaxThreads << "\n";
        return 2;
      }
    } else if (arg == "--request-threads") {
      if (!parse_size(need_value(), server_opt.request_threads) ||
          server_opt.request_threads == 0 ||
          server_opt.request_threads > addm::tools::kMaxThreads) {
        std::cerr << argv[0] << ": --request-threads expects 1.."
                  << addm::tools::kMaxThreads << "\n";
        return 2;
      }
    } else if (arg == "--cache-dir") {
      service_opt.cache_dir = need_value();
    } else if (arg == "--cache-budget") {
      if (!parse_bytes(need_value(), service_opt.cache_budget_bytes) ||
          service_opt.cache_budget_bytes == 0) {
        std::cerr << argv[0]
                  << ": --cache-budget expects a positive byte size (suffix k/m/g)\n";
        return 2;
      }
    } else if (arg == "--flush-entries") {
      if (!parse_size(need_value(), service_opt.flush_entries)) {
        std::cerr << argv[0] << ": --flush-entries expects a number\n";
        return 2;
      }
    } else if (arg == "--max-requests") {
      std::size_t v = 0;
      if (!parse_size(need_value(), v) || v == 0) {
        std::cerr << argv[0] << ": --max-requests expects a positive number\n";
        return 2;
      }
      server_opt.max_requests = v;
    } else if (arg == "--idle-timeout") {
      char* end = nullptr;
      const char* s = need_value();
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || !(v > 0)) {
        std::cerr << argv[0] << ": --idle-timeout expects a positive number of seconds\n";
        return 2;
      }
      server_opt.idle_timeout_seconds = v;
    } else if (arg == "--quiet") {
      server_opt.quiet = true;
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (have_listen && have_socket) {
    std::cerr << argv[0] << ": --socket and --listen are mutually exclusive\n";
    return 2;
  }
  if (have_listen) server_opt.unix_path.clear();
  if (!port_file.empty() && !have_listen) {
    std::cerr << argv[0] << ": --port-file requires --listen\n";
    return 2;
  }
  if (service_opt.cache_budget_bytes != 0 && service_opt.cache_dir.empty()) {
    std::cerr << argv[0] << ": --cache-budget requires --cache-dir\n";
    return 2;
  }

  addm::serve::ExploreService service(service_opt);
  addm::serve::Server server(service, server_opt);

  std::string error;
  if (!server.start(error)) {
    std::cerr << argv[0] << ": " << error << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.bound_port() << "\n";
    out.flush();
    if (!out) {
      std::cerr << argv[0] << ": cannot write " << port_file << "\n";
      return 1;
    }
  }

  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  return server.run();
}
