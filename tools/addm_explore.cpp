// addm_explore — batch design-space exploration CLI.
//
// Evaluates every applicable address-generator architecture (SRAG,
// multi-counter SRAG, CntAG variants, symbolic FSMs, SFM) for each input
// trace, concurrently, and emits an aggregated CSV or JSON report with
// per-trace Pareto fronts.
//
// Inputs are any mix of:
//   --suite N         the built-in workload suite over N doubling geometries
//                     (9 traces per geometry; --suite 12 gives 108 traces)
//   --trace FILE      a trace file in the seq/trace_io text format
//   --trace-dir DIR   every *.trace file in DIR (sorted by name)
//
// The report is byte-identical for a given input list and options regardless
// of --threads and of cache warmth; timing and cache statistics go to stderr
// only.  --cache-dir persists evaluations across invocations, and --shard I/N
// restricts the run to a deterministic contiguous slice of the input list so
// N shard reports concatenate (via addm_merge) into the unsharded report.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hpp"
#include "core/batch_explorer.hpp"
#include "logic/minimize.hpp"
#include "seq/stream_io.hpp"
#include "seq/trace_io.hpp"
#include "seq/workloads.hpp"

namespace {

using addm::tools::parse_bytes;
using addm::tools::parse_geometry;
using addm::tools::parse_shard;
using addm::tools::parse_size;
using addm::tools::ShardSpec;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "\n"
      << "input selection (at least one):\n"
      << "  --suite N            built-in workload suite over N geometries\n"
      << "  --base WxH           base geometry for --suite (default 8x8)\n"
      << "  --trace FILE         add one trace file (repeatable)\n"
      << "  --trace-dir DIR      add every *.trace file under DIR\n"
      << "  --stream             read trace files with the chunked streaming\n"
      << "                       reader (identical traces and reports; peak\n"
      << "                       memory drops to one chunk + one line)\n"
      << "\n"
      << "exploration:\n"
      << "  --threads N          total worker-thread budget (default: hardware)\n"
      << "  --arch-threads N     per-trace candidate threads, taken from the\n"
      << "                       --threads budget (default 1; 0 = hardware)\n"
      << "  --archs a,b,...      only these candidate architectures (registry names)\n"
      << "  --no-cache           disable (trace, options) memoization\n"
      << "  --cache-dir DIR      persistent evaluation cache shared across runs\n"
      << "  --cache-budget B     prune the cache directory to at most B payload\n"
      << "                       bytes after each flush (suffix k/m/g; requires\n"
      << "                       --cache-dir; never affects the report)\n"
      << "  --shard I/N          explore only shard I (0-based) of N\n"
      << "  --no-fsm             skip symbolic-FSM candidates\n"
      << "  --max-fsm-states N   FSM feasibility cap (default 1024)\n"
      << "  --max-fanout N       buffering fanout limit\n"
      << "  --minimizer M        two-level minimizer for FSM/CntAG synthesis:\n"
      << "                       isop (default), espresso, exact, or auto\n"
      << "                       (auto = isop below the espresso threshold)\n"
      << "  --espresso-threshold N\n"
      << "                       with --minimizer auto, use espresso for\n"
      << "                       functions of >= N variables (default "
      << addm::logic::kDefaultHeuristicMinVars << ")\n"
      << "  --verify-front       gate-level-verify every Pareto point in the\n"
      << "                       64-lane word simulator; verdicts annotate the\n"
      << "                       report notes (distinct cache keys)\n"
      << "  --compress-periodic  factor each trace into k x period and, when it\n"
      << "                       is exactly whole passes of one period, evaluate\n"
      << "                       candidates on a single period (notes annotated\n"
      << "                       \"[periodic kxp]\"; distinct cache keys;\n"
      << "                       aperiodic traces explore unchanged)\n"
      << "\n"
      << "output:\n"
      << "  --format csv|json    report format (default csv)\n"
      << "  --out FILE           write report to FILE (default stdout)\n"
      << "  --quiet              suppress the stderr summary\n";
}

}  // namespace

int main(int argc, char** argv) {
  using addm::core::BatchExplorer;
  using addm::core::BatchOptions;

  BatchOptions opt;
  std::size_t suite_scales = 0;
  addm::seq::ArrayGeometry base{8, 8};
  std::vector<std::string> trace_files;
  std::vector<std::string> trace_dirs;
  std::string format = "csv";
  std::string out_path;
  bool stream = false;
  bool quiet = false;
  bool have_shard = false;
  ShardSpec shard;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--suite") {
      if (!parse_size(need_value(), suite_scales) || suite_scales == 0) {
        std::cerr << argv[0] << ": --suite expects a positive count\n";
        return 2;
      }
    } else if (arg == "--base") {
      if (!parse_geometry(need_value(), base)) {
        std::cerr << argv[0] << ": --base expects WxH (e.g. 8x8)\n";
        return 2;
      }
    } else if (arg == "--trace") {
      trace_files.push_back(need_value());
    } else if (arg == "--trace-dir") {
      trace_dirs.push_back(need_value());
    } else if (arg == "--threads") {
      if (!parse_size(need_value(), opt.threads) ||
          opt.threads > addm::tools::kMaxThreads) {
        std::cerr << argv[0] << ": --threads expects a number between 0 and "
                  << addm::tools::kMaxThreads << "\n";
        return 2;
      }
    } else if (arg == "--arch-threads") {
      if (!parse_size(need_value(), opt.explore.arch_threads) ||
          opt.explore.arch_threads > addm::tools::kMaxThreads) {
        std::cerr << argv[0] << ": --arch-threads expects a number between 0 and "
                  << addm::tools::kMaxThreads << "\n";
        return 2;
      }
    } else if (arg == "--archs") {
      const std::string list = need_value();
      const std::vector<std::string> known = addm::core::generator_names();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty()) continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          std::cerr << argv[0] << ": --archs: unknown architecture '" << name
                    << "' (known:";
          for (const std::string& k : known) std::cerr << " " << k;
          std::cerr << ")\n";
          return 2;
        }
        opt.explore.archs.push_back(name);
      }
      if (opt.explore.archs.empty()) {
        std::cerr << argv[0] << ": --archs expects a comma-separated list of names\n";
        return 2;
      }
    } else if (arg == "--no-cache") {
      opt.memoize = false;
    } else if (arg == "--cache-dir") {
      opt.cache_dir = need_value();
    } else if (arg == "--cache-budget") {
      if (!parse_bytes(need_value(), opt.cache_budget_bytes) ||
          opt.cache_budget_bytes == 0) {
        std::cerr << argv[0]
                  << ": --cache-budget expects a positive byte size (suffix k/m/g)\n";
        return 2;
      }
    } else if (arg == "--shard") {
      if (!parse_shard(need_value(), shard)) {
        std::cerr << argv[0] << ": --shard expects I/N with 0 <= I < N <= "
                  << addm::tools::kMaxShards << " (e.g. 0/3)\n";
        return 2;
      }
      have_shard = true;
    } else if (arg == "--no-fsm") {
      opt.explore.include_fsm = false;
    } else if (arg == "--verify-front") {
      opt.explore.verify_front = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--compress-periodic") {
      opt.explore.compress_periodic = true;
    } else if (arg == "--max-fsm-states") {
      if (!parse_size(need_value(), opt.explore.max_fsm_states)) {
        std::cerr << argv[0] << ": --max-fsm-states expects a number\n";
        return 2;
      }
    } else if (arg == "--minimizer") {
      const std::string name = need_value();
      using addm::logic::MinimizerAlgo;
      if (name == "isop") {
        opt.explore.minimize.algo = MinimizerAlgo::Isop;
      } else if (name == "exact") {
        opt.explore.minimize.algo = MinimizerAlgo::Exact;
      } else if (name == "espresso") {
        opt.explore.minimize.algo = MinimizerAlgo::Espresso;
      } else if (name == "auto") {
        opt.explore.minimize.algo = MinimizerAlgo::Auto;
      } else {
        std::cerr << argv[0]
                  << ": --minimizer must be isop, exact, espresso or auto\n";
        return 2;
      }
    } else if (arg == "--espresso-threshold") {
      std::size_t v = 0;
      if (!parse_size(need_value(), v) || v == 0 || v > 24) {
        std::cerr << argv[0] << ": --espresso-threshold expects 1..24\n";
        return 2;
      }
      opt.explore.minimize.heuristic_min_vars = static_cast<int>(v);
    } else if (arg == "--max-fanout") {
      std::size_t v = 0;
      if (!parse_size(need_value(), v) || v == 0) {
        std::cerr << argv[0] << ": --max-fanout expects a positive number\n";
        return 2;
      }
      opt.explore.max_fanout = static_cast<int>(v);
    } else if (arg == "--format") {
      format = need_value();
      if (format != "csv" && format != "json") {
        std::cerr << argv[0] << ": --format must be csv or json\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = need_value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (!opt.memoize && !opt.cache_dir.empty()) {
    std::cerr << argv[0] << ": --no-cache and --cache-dir are mutually exclusive\n";
    return 2;
  }
  if (opt.cache_budget_bytes != 0 && opt.cache_dir.empty()) {
    std::cerr << argv[0] << ": --cache-budget requires --cache-dir\n";
    return 2;
  }

  std::vector<addm::seq::AddressTrace> traces;
  try {
    std::vector<addm::seq::AddressTrace> suite;
    if (suite_scales > 0) suite = addm::seq::scaled_suite(base, suite_scales);
    std::vector<std::string> files = trace_files;
    for (const std::string& dir : trace_dirs) {
      std::vector<std::string> found;
      for (const auto& e : std::filesystem::directory_iterator(dir))
        if (e.is_regular_file() && e.path().extension() == ".trace")
          found.push_back(e.path().string());
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    }

    // The input list is suite traces followed by file traces.  The shard
    // slice is defined over list *positions*, so it is applied before any
    // file is read: each shard process parses only the traces it owns, and
    // an empty slice is a valid (empty-report) run.  Report rows depend
    // only on trace content and names — suite names and file stems, both
    // position-independent — so shard outputs concatenate byte-identically.
    const std::size_t total = suite.size() + files.size();
    if (total == 0) {
      std::cerr << argv[0]
                << ": no input traces (use --suite, --trace or --trace-dir)\n";
      usage(argv[0]);
      return 2;
    }
    std::size_t begin = 0;
    std::size_t end = total;
    if (have_shard) {
      const auto range = shard.range(total);
      begin = range.first;
      end = range.second;
    }
    for (std::size_t i = begin; i < end && i < suite.size(); ++i)
      traces.push_back(std::move(suite[i]));
    // --stream swaps the materializing file reader for the chunked
    // TraceReader; both produce identical AddressTraces (differential-
    // tested), so the choice is pure scheduling and not fingerprinted.
    auto read_file = [&](const std::string& f) {
      if (!stream) return addm::seq::read_trace_file(f);
      std::ifstream in(f, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open trace file: " + f);
      addm::seq::TraceReader reader(in);
      return reader.read_all();
    };
    for (std::size_t i = std::max(begin, suite.size()); i < end; ++i) {
      const std::string& f = files[i - suite.size()];
      auto t = read_file(f);
      if (t.name().empty())
        t.set_name(std::filesystem::path(f).stem().string());
      traces.push_back(std::move(t));
    }
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }

  addm::core::BatchResult result;
  try {
    BatchExplorer explorer(opt);
    result = explorer.run(traces);
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": exploration failed: " << e.what() << "\n";
    return 1;
  }

  const std::string report = format == "json" ? addm::core::batch_report_json(result)
                                              : addm::core::batch_report_csv(result);
  if (out_path.empty()) {
    std::cout << report;
    std::cout.flush();
    if (!std::cout) {
      std::cerr << argv[0] << ": error writing report to stdout\n";
      return 1;
    }
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << argv[0] << ": cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << report;
    out.flush();
    if (!out) {
      std::cerr << argv[0] << ": error writing report to " << out_path << "\n";
      return 1;
    }
  }

  std::size_t errors = 0;
  for (const auto& e : result.entries)
    if (!e.error.empty()) ++errors;
  if (!quiet) {
    std::fprintf(stderr,
                 "explored %zu traces (%zu evaluated, %zu memo hits, %zu disk hits, "
                 "%zu errors) in %.3fs with %zu threads\n",
                 result.traces, result.evaluations, result.cache_hits,
                 result.disk_hits, errors, result.wall_seconds,
                 opt.threads ? opt.threads
                             : static_cast<std::size_t>(
                                   std::max(1u, std::thread::hardware_concurrency())));
    if (!opt.cache_dir.empty()) {
      std::fprintf(stderr, "cache %s: %zu entries loaded, %zu stored\n",
                   opt.cache_dir.c_str(), result.disk_entries_loaded,
                   result.disk_entries_stored);
      if (opt.cache_budget_bytes != 0)
        std::fprintf(stderr, "cache budget %llu bytes: %zu entries evicted\n",
                     static_cast<unsigned long long>(opt.cache_budget_bytes),
                     result.disk_entries_evicted);
    }
  }
  return errors == 0 ? 0 : 3;
}
