// Extension experiment: the third generator style — arithmetic-based
// (accumulator + adder) — against counter-based and SRAG. Validates the
// premise the paper takes from [7]: "for regular access patterns,
// [counter-based] performs better than arithmetic-based address generators",
// which is why CntAG is the baseline in Figures 8-10.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/arithag.hpp"
#include "seq/loopnest.hpp"

namespace {

using namespace addm;

void print_table() {
  const auto lib = tech::Library::generic_180nm();
  bench::print_header(
      "Extension: arithmetic-based vs counter-based vs SRAG (motion est read)\n"
      "validates the paper's choice of CntAG as the stronger baseline");
  std::printf("%10s %14s %14s %12s %14s %14s %12s\n", "array", "ArithAG ns", "CntAG ns",
              "SRAG ns", "ArithAG a", "CntAG a", "SRAG a");
  for (std::size_t dim : {16u, 64u, 256u}) {
    seq::MotionEstimationParams p;
    p.img_width = p.img_height = dim;
    p.mb_width = p.mb_height = 8;
    p.m = 0;
    const auto prog = seq::motion_estimation_program(p);
    const auto trace = seq::motion_estimation_read(p);

    auto arith_nl = core::elaborate_arithag(prog);
    const auto arith = core::measure_netlist(arith_nl, lib);
    const auto cnt = bench::cntag_metrics(trace, lib);
    const auto srag = bench::srag_metrics(trace, lib);

    std::printf("%4zux%-5zu %14.3f %14.3f %12.3f %14.0f %14.0f %12.0f\n", dim, dim,
                arith.delay_ns, cnt.delay_ns, srag.delay_ns, arith.area_units,
                cnt.area_units, srag.area_units);
  }
  std::printf("\n(ArithAG delay is the full-netlist critical path, dominated by the\n"
              "accumulator's serial carry chain; CntAG uses the paper's sum metric.)\n\n");
}

void BM_ArithAgElaboration(benchmark::State& state) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 64;
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto prog = seq::motion_estimation_program(p);
  for (auto _ : state) {
    auto nl = core::elaborate_arithag(prog);
    benchmark::DoNotOptimize(nl.stats().num_cells);
  }
}
BENCHMARK(BM_ArithAgElaboration);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
