// Host-performance benchmarks (google-benchmark proper): throughput of the
// library's hot paths — mapping, elaboration, cycle simulation, STA, logic
// minimization. These are the costs a user of this library pays, not paper
// quantities.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/srag_mapper.hpp"
#include "logic/isop.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace addm;

void BM_MapSequence(benchmark::State& state) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = static_cast<std::size_t>(state.range(0));
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto rows = seq::motion_estimation_read(p).rows();
  for (auto _ : state) benchmark::DoNotOptimize(core::map_sequence(rows).ok());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_MapSequence)->Arg(16)->Arg(64)->Arg(256);

void BM_Srag2dElaboration(benchmark::State& state) {
  const auto trace = bench::fig8_read_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto build = core::build_srag_2d_for_trace(trace);
    benchmark::DoNotOptimize(build.netlist.stats().num_cells);
  }
}
BENCHMARK(BM_Srag2dElaboration)->Arg(16)->Arg(64)->Arg(256);

void BM_CycleSimulation(benchmark::State& state) {
  const auto trace = bench::fig8_read_trace(static_cast<std::size_t>(state.range(0)));
  auto build = core::build_srag_2d_for_trace(trace);
  sim::Simulator s(build.netlist);
  s.set("reset", true);
  s.set("next", false);
  s.step();
  s.set("reset", false);
  s.set("next", true);
  for (auto _ : state) s.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CycleSimulation)->Arg(16)->Arg(64)->Arg(256);

void BM_StaticTiming(benchmark::State& state) {
  const auto lib = tech::Library::generic_180nm();
  auto build = core::build_srag_2d_for_trace(
      bench::fig8_read_trace(static_cast<std::size_t>(state.range(0))));
  tech::insert_buffers(build.netlist);
  for (auto _ : state)
    benchmark::DoNotOptimize(tech::analyze_timing(build.netlist, lib).critical_path_ns);
}
BENCHMARK(BM_StaticTiming)->Arg(64)->Arg(256);

void BM_IsopMinimization(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  logic::TruthTable f(n);
  // A decode-like onset: every 5th minterm.
  for (std::uint64_t m = 0; m < f.num_minterms_capacity(); m += 5) f.set(m, true);
  for (auto _ : state) benchmark::DoNotOptimize(logic::isop(f).num_cubes());
}
BENCHMARK(BM_IsopMinimization)->Arg(8)->Arg(12)->Arg(16);

void BM_BufferInsertionLarge(benchmark::State& state) {
  const auto trace = seq::incremental({256, 256});
  for (auto _ : state) {
    state.PauseTiming();
    auto build = core::build_srag_2d_for_trace(trace);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tech::insert_buffers(build.netlist).buffers_added);
  }
}
BENCHMARK(BM_BufferInsertionLarge);

}  // namespace

BENCHMARK_MAIN();
