// Host-performance benchmark for the batch explorer: end-to-end traces/sec
// across thread counts, and the cost profile of a fully warmed memo cache.
// These are throughput numbers for the exploration service itself, not paper
// quantities.
#include <benchmark/benchmark.h>

#include "core/batch_explorer.hpp"
#include "seq/workloads.hpp"

namespace {

using namespace addm;

const std::vector<seq::AddressTrace>& suite() {
  static const std::vector<seq::AddressTrace> traces = seq::scaled_suite({8, 8}, 2);
  return traces;
}

void BM_BatchExplore(benchmark::State& state) {
  core::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::BatchExplorer explorer(opt);  // fresh cache: every trace evaluated
    benchmark::DoNotOptimize(explorer.run(suite()).entries.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suite().size()));
}
BENCHMARK(BM_BatchExplore)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BatchExploreWarmCache(benchmark::State& state) {
  core::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  core::BatchExplorer explorer(opt);
  explorer.run(suite());  // warm
  for (auto _ : state)
    benchmark::DoNotOptimize(explorer.run(suite()).cache_hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suite().size()));
}
BENCHMARK(BM_BatchExploreWarmCache)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ReportCsv(benchmark::State& state) {
  core::BatchExplorer explorer(core::BatchOptions{});
  const core::BatchResult result = explorer.run(suite());
  for (auto _ : state)
    benchmark::DoNotOptimize(core::batch_report_csv(result).size());
}
BENCHMARK(BM_ReportCsv);

}  // namespace

BENCHMARK_MAIN();
