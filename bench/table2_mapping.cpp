// Table 2 reproduction: the mapping parameters the SRAdGen procedure derives
// for the paper's running example.
//
// Note: the paper labels its Table 2 "mapping parameters for column address
// sequence", but the data shown (I = 0,0,1,1,...) is the RowAS of Table 1.
// We print the mapping for both dimensions; the row mapping must equal the
// paper's Table 2 verbatim.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/srag_mapper.hpp"

namespace {

using namespace addm;

int run() {
  bench::print_header(
      "Table 2: SRAdGen mapping parameters (4x4 image, 2x2 macroblocks, m=0)");
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = 4;
  p.mb_width = p.mb_height = 2;
  p.m = 0;
  const auto trace = seq::motion_estimation_read(p);

  const auto rows = trace.rows();
  const auto rm = core::map_sequence(rows, 4);
  if (!rm.ok()) {
    std::printf("row mapping failed: %s\n", rm.detail.c_str());
    return 1;
  }
  std::printf("Row address sequence (the data the paper's Table 2 shows):\n%s\n",
              rm.params.to_string().c_str());

  using V = std::vector<std::uint32_t>;
  const bool exact = rm.params.I == V{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3} &&
                     rm.params.D == V(8, 2) && rm.params.R == V{0, 1, 0, 1, 2, 3, 2, 3} &&
                     rm.params.U == V{0, 1, 2, 3} && rm.params.O == V(4, 2) &&
                     rm.params.Z == V{0, 1, 4, 5} && rm.params.P == V(2, 4) &&
                     rm.params.dC == 2 && rm.params.pC == 4 &&
                     rm.params.S == std::vector<V>{{0, 1}, {2, 3}};
  std::printf("  Table 2 parameters %s the paper exactly\n\n",
              exact ? "match" : "DO NOT match");

  const auto cols = trace.cols();
  const auto cm = core::map_sequence(cols, 4);
  if (!cm.ok()) {
    std::printf("column mapping failed: %s\n", cm.detail.c_str());
    return 1;
  }
  std::printf("Column address sequence (dC=1, two periods reduce to one):\n%s\n",
              cm.params.to_string().c_str());
  return exact ? 0 : 1;
}

void BM_MapRowSequence(benchmark::State& state) {
  seq::MotionEstimationParams p;
  p.img_width = p.img_height = static_cast<std::size_t>(state.range(0));
  p.mb_width = p.mb_height = 8;
  p.m = 0;
  const auto rows = seq::motion_estimation_read(p).rows();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::map_sequence(rows, p.img_height).ok());
}
BENCHMARK(BM_MapRowSequence)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
